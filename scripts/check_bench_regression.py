#!/usr/bin/env python3
"""Benchmark regression gate.

Compares BENCH_*.json files produced by the benchmark binaries (see
bench/json_report.h) against checked-in baselines and fails when any
benchmark's throughput (ops_per_s) regressed by more than the allowed
fraction. Stdlib only, so it runs anywhere CI does.

Usage:
  check_bench_regression.py --baseline-dir bench/baselines \
      [--threshold 0.25] [--threshold-for BENCH_net.json=0.5] \
      BENCH_parse.json BENCH_toolchain.json BENCH_net.json

Benchmarks present only on one side are reported but never fail the
gate (new benchmarks need a baseline update, retired ones a cleanup —
both intentional, reviewable changes). --threshold-for overrides the
threshold for one result file: suites dominated by loopback-TCP
round-trips (BENCH_net.json) jitter far more run-to-run on shared
runners than the CPU-bound suites, so they gate at a looser bound.

Besides throughput, the gate watches the latency tail: when both sides
carry p99_ns (json_report.h emits p50/p95/p99), a benchmark whose p99
grew by more than --tail-threshold (default 1.0 = doubling) fails too.
The tail bound is intentionally loose — p99 across a handful of
repetitions is noisy — it exists to catch order-of-magnitude tail
blowups (a new lock on the hot path), not percent-level drift.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional ops/s regression (default 0.25)",
    )
    parser.add_argument(
        "--threshold-for",
        action="append",
        default=[],
        metavar="FILE=FRACTION",
        help="per-file threshold override, e.g. BENCH_net.json=0.5 "
        "(repeatable)",
    )
    parser.add_argument(
        "--tail-threshold",
        type=float,
        default=1.0,
        help="maximum allowed fractional p99_ns growth when both sides "
        "report it (default 1.0, i.e. p99 may double)",
    )
    args = parser.parse_args()

    overrides = {}
    for spec in args.threshold_for:
        file_name, sep, value = spec.partition("=")
        if not sep:
            parser.error(f"--threshold-for expects FILE=FRACTION, got {spec!r}")
        overrides[file_name] = float(value)

    failures = []
    for result_path in args.results:
        name = os.path.basename(result_path)
        threshold = overrides.get(name, args.threshold)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"note: no baseline for {name}, skipping")
            continue
        current = load(result_path)
        baseline = load(baseline_path)
        for bench, base in sorted(baseline.items()):
            if bench not in current:
                print(f"note: {bench} missing from {name} (retired?)")
                continue
            base_ops = base.get("ops_per_s", 0.0)
            cur_ops = current[bench].get("ops_per_s", 0.0)
            if base_ops <= 0:
                continue
            ratio = cur_ops / base_ops
            status = "ok"
            if ratio < 1.0 - threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {bench}: {base_ops:.4g} -> {cur_ops:.4g} ops/s "
                    f"({(1.0 - ratio) * 100:.1f}% slower, "
                    f"allowed {threshold * 100:.0f}%)"
                )
            base_p99 = base.get("p99_ns", 0.0)
            cur_p99 = current[bench].get("p99_ns", 0.0)
            if base_p99 > 0 and cur_p99 > 0:
                tail_ratio = cur_p99 / base_p99
                if tail_ratio > 1.0 + args.tail_threshold:
                    status = "REGRESSION"
                    failures.append(
                        f"{name}: {bench}: p99 {base_p99:.4g} -> "
                        f"{cur_p99:.4g} ns ({tail_ratio:.2f}x, allowed "
                        f"{1.0 + args.tail_threshold:.2f}x)"
                    )
            print(
                f"{status:>10}  {bench}: {cur_ops:.4g} ops/s "
                f"(baseline {base_ops:.4g}, x{ratio:.2f})"
            )
        for bench in sorted(set(current) - set(baseline)):
            print(f"note: {bench} has no baseline entry yet")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond the allowed "
              "threshold:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
