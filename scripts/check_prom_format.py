#!/usr/bin/env python3
"""Validator for Prometheus text exposition format 0.0.4.

Reads an exposition (file argument or stdin) — e.g. the output of
`curl -H 'Accept: text/plain' http://host:port/metrics` against xpdld —
and checks the structural rules a real Prometheus scraper enforces:

  * metric and label names match the allowed grammar,
  * every sample parses as `name[{labels}] value [timestamp]` with a
    float-parseable value,
  * `# TYPE` declares a known type and precedes its family's samples,
  * no family is declared twice and no exact sample repeats,
  * counter sample names end in `_total`,
  * histograms carry `_bucket` series with non-decreasing cumulative
    counts, an `le="+Inf"` bucket equal to `_count`, and `_sum`/`_count`.

Stdlib only, so it runs anywhere CI does. Exit status: 0 valid, 1 when
any rule is violated (all violations are listed), 2 usage/IO error.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)


def family_of(name):
    """The metric family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        try:
            with open(sys.argv[1], "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_prom_format: {e}", file=sys.stderr)
            return 2
    else:
        text = sys.stdin.read()

    errors = []
    types = {}  # family -> declared type
    seen_samples = set()
    samples = []  # (family, name, labels-dict, value)

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Other comments are legal and ignored.
                continue
            kind, name = parts[1], parts[2]
            if not METRIC_NAME.match(name):
                errors.append(f"line {lineno}: bad metric name in {kind}: "
                              f"{name!r}")
                continue
            if kind == "TYPE":
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in TYPES:
                    errors.append(f"line {lineno}: unknown TYPE {declared!r} "
                                  f"for {name}")
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if any(f == name for f, _, _, _ in samples):
                    errors.append(f"line {lineno}: TYPE for {name} after its "
                                  "samples")
                types[name] = declared
            continue
        m = SAMPLE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = re.sub(LABEL_PAIR, "", raw_labels)
            if consumed.strip(", \t"):
                errors.append(f"line {lineno}: malformed labels: "
                              f"{raw_labels!r}")
            for lname, lvalue in LABEL_PAIR.findall(raw_labels):
                if not LABEL_NAME.match(lname):
                    errors.append(f"line {lineno}: bad label name {lname!r}")
                labels[lname] = lvalue
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: unparseable value "
                          f"{m.group('value')!r}")
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{labels}")
        seen_samples.add(key)
        samples.append((family_of(name), name, labels, value))

    # Per-family structural checks.
    families = {}
    for family, name, labels, value in samples:
        families.setdefault(family, []).append((name, labels, value))
    for family, rows in sorted(families.items()):
        declared = types.get(family, types.get(family_of(family)))
        if declared == "counter":
            for name, _, value in rows:
                if not name.endswith("_total"):
                    errors.append(f"{family}: counter sample {name} does not "
                                  "end in _total")
                if value < 0:
                    errors.append(f"{family}: counter value {value} < 0")
        if declared == "histogram":
            buckets = [(labels.get("le"), value)
                       for name, labels, value in rows
                       if name == family + "_bucket"]
            counts = [value for name, _, value in rows
                      if name == family + "_count"]
            sums = [value for name, _, value in rows
                    if name == family + "_sum"]
            if not buckets:
                errors.append(f"{family}: histogram without _bucket series")
                continue
            if len(counts) != 1 or len(sums) != 1:
                errors.append(f"{family}: histogram needs exactly one _sum "
                              "and one _count")
                continue
            if buckets[-1][0] != "+Inf":
                errors.append(f"{family}: last bucket must be le=\"+Inf\"")
            prev = -1.0
            for le, value in buckets:
                if le is None:
                    errors.append(f"{family}: _bucket without an le label")
                    continue
                if value < prev:
                    errors.append(f"{family}: bucket le={le} count {value} "
                                  f"decreases (previous {prev})")
                prev = value
            inf = [v for le, v in buckets if le == "+Inf"]
            if inf and inf[0] != counts[0]:
                errors.append(f"{family}: le=\"+Inf\" bucket ({inf[0]}) != "
                              f"_count ({counts[0]})")

    if errors:
        for e in errors:
            print(f"check_prom_format: {e}", file=sys.stderr)
        print(f"check_prom_format: {len(errors)} violation(s) in "
              f"{len(samples)} sample(s)", file=sys.stderr)
        return 1
    print(f"check_prom_format: OK ({len(samples)} samples, "
          f"{len(families)} families, {len(types)} typed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
