# Empty dependencies file for pdl_migration.
# This may be replaced when dependencies are built.
