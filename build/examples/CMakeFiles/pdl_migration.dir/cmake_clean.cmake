file(REMOVE_RECURSE
  "CMakeFiles/pdl_migration.dir/pdl_migration.cpp.o"
  "CMakeFiles/pdl_migration.dir/pdl_migration.cpp.o.d"
  "pdl_migration"
  "pdl_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
