file(REMOVE_RECURSE
  "CMakeFiles/platform_report.dir/platform_report.cpp.o"
  "CMakeFiles/platform_report.dir/platform_report.cpp.o.d"
  "platform_report"
  "platform_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
