# Empty dependencies file for deploy_bootstrap.
# This may be replaced when dependencies are built.
