file(REMOVE_RECURSE
  "CMakeFiles/deploy_bootstrap.dir/deploy_bootstrap.cpp.o"
  "CMakeFiles/deploy_bootstrap.dir/deploy_bootstrap.cpp.o.d"
  "deploy_bootstrap"
  "deploy_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
