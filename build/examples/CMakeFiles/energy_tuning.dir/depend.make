# Empty dependencies file for energy_tuning.
# This may be replaced when dependencies are built.
