file(REMOVE_RECURSE
  "CMakeFiles/energy_tuning.dir/energy_tuning.cpp.o"
  "CMakeFiles/energy_tuning.dir/energy_tuning.cpp.o.d"
  "energy_tuning"
  "energy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
