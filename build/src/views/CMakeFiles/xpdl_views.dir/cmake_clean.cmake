file(REMOVE_RECURSE
  "CMakeFiles/xpdl_views.dir/views.cpp.o"
  "CMakeFiles/xpdl_views.dir/views.cpp.o.d"
  "libxpdl_views.a"
  "libxpdl_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
