# Empty dependencies file for xpdl_views.
# This may be replaced when dependencies are built.
