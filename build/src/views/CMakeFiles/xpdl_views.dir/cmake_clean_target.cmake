file(REMOVE_RECURSE
  "libxpdl_views.a"
)
