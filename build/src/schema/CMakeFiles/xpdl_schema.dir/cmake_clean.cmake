file(REMOVE_RECURSE
  "CMakeFiles/xpdl_schema.dir/schema.cpp.o"
  "CMakeFiles/xpdl_schema.dir/schema.cpp.o.d"
  "libxpdl_schema.a"
  "libxpdl_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
