# Empty compiler generated dependencies file for xpdl_schema.
# This may be replaced when dependencies are built.
