file(REMOVE_RECURSE
  "libxpdl_schema.a"
)
