# Empty compiler generated dependencies file for xpdl_microbench.
# This may be replaced when dependencies are built.
