file(REMOVE_RECURSE
  "libxpdl_microbench.a"
)
