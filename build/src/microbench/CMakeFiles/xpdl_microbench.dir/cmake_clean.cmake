file(REMOVE_RECURSE
  "CMakeFiles/xpdl_microbench.dir/bootstrap.cpp.o"
  "CMakeFiles/xpdl_microbench.dir/bootstrap.cpp.o.d"
  "CMakeFiles/xpdl_microbench.dir/drivergen.cpp.o"
  "CMakeFiles/xpdl_microbench.dir/drivergen.cpp.o.d"
  "CMakeFiles/xpdl_microbench.dir/simmachine.cpp.o"
  "CMakeFiles/xpdl_microbench.dir/simmachine.cpp.o.d"
  "libxpdl_microbench.a"
  "libxpdl_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
