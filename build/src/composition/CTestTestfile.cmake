# CMake generated Testfile for 
# Source directory: /root/repo/src/composition
# Build directory: /root/repo/build/src/composition
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
