# Empty compiler generated dependencies file for xpdl_composition.
# This may be replaced when dependencies are built.
