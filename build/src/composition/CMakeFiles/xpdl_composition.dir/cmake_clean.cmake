file(REMOVE_RECURSE
  "CMakeFiles/xpdl_composition.dir/selector.cpp.o"
  "CMakeFiles/xpdl_composition.dir/selector.cpp.o.d"
  "CMakeFiles/xpdl_composition.dir/spmv.cpp.o"
  "CMakeFiles/xpdl_composition.dir/spmv.cpp.o.d"
  "CMakeFiles/xpdl_composition.dir/stencil.cpp.o"
  "CMakeFiles/xpdl_composition.dir/stencil.cpp.o.d"
  "libxpdl_composition.a"
  "libxpdl_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
