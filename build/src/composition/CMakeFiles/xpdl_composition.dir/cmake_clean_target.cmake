file(REMOVE_RECURSE
  "libxpdl_composition.a"
)
