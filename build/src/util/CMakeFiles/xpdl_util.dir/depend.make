# Empty dependencies file for xpdl_util.
# This may be replaced when dependencies are built.
