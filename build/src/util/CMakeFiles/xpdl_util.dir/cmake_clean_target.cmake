file(REMOVE_RECURSE
  "libxpdl_util.a"
)
