
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/expr.cpp" "src/util/CMakeFiles/xpdl_util.dir/expr.cpp.o" "gcc" "src/util/CMakeFiles/xpdl_util.dir/expr.cpp.o.d"
  "/root/repo/src/util/io.cpp" "src/util/CMakeFiles/xpdl_util.dir/io.cpp.o" "gcc" "src/util/CMakeFiles/xpdl_util.dir/io.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/xpdl_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/xpdl_util.dir/status.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/xpdl_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/xpdl_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/xpdl_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/xpdl_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
