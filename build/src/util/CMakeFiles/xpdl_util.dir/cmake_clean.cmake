file(REMOVE_RECURSE
  "CMakeFiles/xpdl_util.dir/expr.cpp.o"
  "CMakeFiles/xpdl_util.dir/expr.cpp.o.d"
  "CMakeFiles/xpdl_util.dir/io.cpp.o"
  "CMakeFiles/xpdl_util.dir/io.cpp.o.d"
  "CMakeFiles/xpdl_util.dir/status.cpp.o"
  "CMakeFiles/xpdl_util.dir/status.cpp.o.d"
  "CMakeFiles/xpdl_util.dir/strings.cpp.o"
  "CMakeFiles/xpdl_util.dir/strings.cpp.o.d"
  "CMakeFiles/xpdl_util.dir/units.cpp.o"
  "CMakeFiles/xpdl_util.dir/units.cpp.o.d"
  "libxpdl_util.a"
  "libxpdl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
