# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("xml")
subdirs("schema")
subdirs("model")
subdirs("repository")
subdirs("compose")
subdirs("energy")
subdirs("microbench")
subdirs("runtime")
subdirs("codegen")
subdirs("views")
subdirs("query")
subdirs("lint")
subdirs("pdl")
subdirs("diff")
subdirs("composition")
subdirs("tools")
