# Empty compiler generated dependencies file for xpdl_query.
# This may be replaced when dependencies are built.
