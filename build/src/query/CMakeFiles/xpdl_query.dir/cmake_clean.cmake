file(REMOVE_RECURSE
  "CMakeFiles/xpdl_query.dir/query.cpp.o"
  "CMakeFiles/xpdl_query.dir/query.cpp.o.d"
  "libxpdl_query.a"
  "libxpdl_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
