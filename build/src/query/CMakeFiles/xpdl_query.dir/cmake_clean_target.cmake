file(REMOVE_RECURSE
  "libxpdl_query.a"
)
