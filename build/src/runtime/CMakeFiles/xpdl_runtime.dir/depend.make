# Empty dependencies file for xpdl_runtime.
# This may be replaced when dependencies are built.
