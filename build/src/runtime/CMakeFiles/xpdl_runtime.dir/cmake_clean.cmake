file(REMOVE_RECURSE
  "CMakeFiles/xpdl_runtime.dir/capi.cpp.o"
  "CMakeFiles/xpdl_runtime.dir/capi.cpp.o.d"
  "CMakeFiles/xpdl_runtime.dir/model.cpp.o"
  "CMakeFiles/xpdl_runtime.dir/model.cpp.o.d"
  "CMakeFiles/xpdl_runtime.dir/serialize.cpp.o"
  "CMakeFiles/xpdl_runtime.dir/serialize.cpp.o.d"
  "libxpdl_runtime.a"
  "libxpdl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
