file(REMOVE_RECURSE
  "libxpdl_runtime.a"
)
