file(REMOVE_RECURSE
  "libxpdl_repository.a"
)
