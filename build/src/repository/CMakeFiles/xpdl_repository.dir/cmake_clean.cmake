file(REMOVE_RECURSE
  "CMakeFiles/xpdl_repository.dir/repository.cpp.o"
  "CMakeFiles/xpdl_repository.dir/repository.cpp.o.d"
  "libxpdl_repository.a"
  "libxpdl_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
