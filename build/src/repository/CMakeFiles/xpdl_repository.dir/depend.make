# Empty dependencies file for xpdl_repository.
# This may be replaced when dependencies are built.
