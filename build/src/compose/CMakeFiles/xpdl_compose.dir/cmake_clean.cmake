file(REMOVE_RECURSE
  "CMakeFiles/xpdl_compose.dir/analysis.cpp.o"
  "CMakeFiles/xpdl_compose.dir/analysis.cpp.o.d"
  "CMakeFiles/xpdl_compose.dir/compose.cpp.o"
  "CMakeFiles/xpdl_compose.dir/compose.cpp.o.d"
  "libxpdl_compose.a"
  "libxpdl_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
