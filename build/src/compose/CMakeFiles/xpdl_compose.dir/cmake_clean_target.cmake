file(REMOVE_RECURSE
  "libxpdl_compose.a"
)
