# Empty dependencies file for xpdl_compose.
# This may be replaced when dependencies are built.
