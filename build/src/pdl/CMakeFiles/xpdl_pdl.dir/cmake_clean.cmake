file(REMOVE_RECURSE
  "CMakeFiles/xpdl_pdl.dir/pdl.cpp.o"
  "CMakeFiles/xpdl_pdl.dir/pdl.cpp.o.d"
  "libxpdl_pdl.a"
  "libxpdl_pdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
