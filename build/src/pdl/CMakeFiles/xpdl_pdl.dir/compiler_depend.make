# Empty compiler generated dependencies file for xpdl_pdl.
# This may be replaced when dependencies are built.
