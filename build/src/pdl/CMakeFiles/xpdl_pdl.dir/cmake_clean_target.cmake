file(REMOVE_RECURSE
  "libxpdl_pdl.a"
)
