file(REMOVE_RECURSE
  "libxpdl_diff.a"
)
