# Empty dependencies file for xpdl_diff.
# This may be replaced when dependencies are built.
