file(REMOVE_RECURSE
  "CMakeFiles/xpdl_diff.dir/diff.cpp.o"
  "CMakeFiles/xpdl_diff.dir/diff.cpp.o.d"
  "libxpdl_diff.a"
  "libxpdl_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
