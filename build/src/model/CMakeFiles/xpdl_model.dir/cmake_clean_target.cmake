file(REMOVE_RECURSE
  "libxpdl_model.a"
)
