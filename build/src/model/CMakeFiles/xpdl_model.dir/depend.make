# Empty dependencies file for xpdl_model.
# This may be replaced when dependencies are built.
