file(REMOVE_RECURSE
  "CMakeFiles/xpdl_model.dir/ir.cpp.o"
  "CMakeFiles/xpdl_model.dir/ir.cpp.o.d"
  "CMakeFiles/xpdl_model.dir/power.cpp.o"
  "CMakeFiles/xpdl_model.dir/power.cpp.o.d"
  "libxpdl_model.a"
  "libxpdl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
