# Empty dependencies file for xpdl_energy.
# This may be replaced when dependencies are built.
