file(REMOVE_RECURSE
  "CMakeFiles/xpdl_energy.dir/cluster.cpp.o"
  "CMakeFiles/xpdl_energy.dir/cluster.cpp.o.d"
  "CMakeFiles/xpdl_energy.dir/energy.cpp.o"
  "CMakeFiles/xpdl_energy.dir/energy.cpp.o.d"
  "CMakeFiles/xpdl_energy.dir/thermal.cpp.o"
  "CMakeFiles/xpdl_energy.dir/thermal.cpp.o.d"
  "libxpdl_energy.a"
  "libxpdl_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
