file(REMOVE_RECURSE
  "libxpdl_energy.a"
)
