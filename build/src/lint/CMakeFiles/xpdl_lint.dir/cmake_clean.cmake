file(REMOVE_RECURSE
  "CMakeFiles/xpdl_lint.dir/lint.cpp.o"
  "CMakeFiles/xpdl_lint.dir/lint.cpp.o.d"
  "libxpdl_lint.a"
  "libxpdl_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
