file(REMOVE_RECURSE
  "libxpdl_lint.a"
)
