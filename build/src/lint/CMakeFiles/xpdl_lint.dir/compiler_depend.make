# Empty compiler generated dependencies file for xpdl_lint.
# This may be replaced when dependencies are built.
