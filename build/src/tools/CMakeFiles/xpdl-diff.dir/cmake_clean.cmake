file(REMOVE_RECURSE
  "CMakeFiles/xpdl-diff.dir/xpdl_diff_tool.cpp.o"
  "CMakeFiles/xpdl-diff.dir/xpdl_diff_tool.cpp.o.d"
  "xpdl-diff"
  "xpdl-diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl-diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
