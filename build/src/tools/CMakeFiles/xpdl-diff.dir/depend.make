# Empty dependencies file for xpdl-diff.
# This may be replaced when dependencies are built.
