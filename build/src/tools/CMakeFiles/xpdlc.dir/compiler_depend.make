# Empty compiler generated dependencies file for xpdlc.
# This may be replaced when dependencies are built.
