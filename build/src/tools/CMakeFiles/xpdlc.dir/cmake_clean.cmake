file(REMOVE_RECURSE
  "CMakeFiles/xpdlc.dir/xpdlc.cpp.o"
  "CMakeFiles/xpdlc.dir/xpdlc.cpp.o.d"
  "xpdlc"
  "xpdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
