file(REMOVE_RECURSE
  "CMakeFiles/xpdl-codegen.dir/xpdl_codegen_tool.cpp.o"
  "CMakeFiles/xpdl-codegen.dir/xpdl_codegen_tool.cpp.o.d"
  "xpdl-codegen"
  "xpdl-codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl-codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
