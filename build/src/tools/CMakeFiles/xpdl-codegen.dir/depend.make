# Empty dependencies file for xpdl-codegen.
# This may be replaced when dependencies are built.
