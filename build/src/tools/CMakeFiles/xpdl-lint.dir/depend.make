# Empty dependencies file for xpdl-lint.
# This may be replaced when dependencies are built.
