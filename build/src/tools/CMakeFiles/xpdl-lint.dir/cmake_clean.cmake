file(REMOVE_RECURSE
  "CMakeFiles/xpdl-lint.dir/xpdl_lint_tool.cpp.o"
  "CMakeFiles/xpdl-lint.dir/xpdl_lint_tool.cpp.o.d"
  "xpdl-lint"
  "xpdl-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl-lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
