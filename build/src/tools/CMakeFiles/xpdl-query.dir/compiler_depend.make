# Empty compiler generated dependencies file for xpdl-query.
# This may be replaced when dependencies are built.
