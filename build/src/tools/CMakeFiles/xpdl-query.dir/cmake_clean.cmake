file(REMOVE_RECURSE
  "CMakeFiles/xpdl-query.dir/xpdl_query.cpp.o"
  "CMakeFiles/xpdl-query.dir/xpdl_query.cpp.o.d"
  "xpdl-query"
  "xpdl-query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl-query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
