# Empty compiler generated dependencies file for xpdl_xml.
# This may be replaced when dependencies are built.
