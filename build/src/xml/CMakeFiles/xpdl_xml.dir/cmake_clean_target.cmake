file(REMOVE_RECURSE
  "libxpdl_xml.a"
)
