file(REMOVE_RECURSE
  "CMakeFiles/xpdl_xml.dir/element.cpp.o"
  "CMakeFiles/xpdl_xml.dir/element.cpp.o.d"
  "CMakeFiles/xpdl_xml.dir/reader.cpp.o"
  "CMakeFiles/xpdl_xml.dir/reader.cpp.o.d"
  "CMakeFiles/xpdl_xml.dir/writer.cpp.o"
  "CMakeFiles/xpdl_xml.dir/writer.cpp.o.d"
  "libxpdl_xml.a"
  "libxpdl_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
