file(REMOVE_RECURSE
  "libxpdl_codegen.a"
)
