file(REMOVE_RECURSE
  "CMakeFiles/xpdl_codegen.dir/codegen.cpp.o"
  "CMakeFiles/xpdl_codegen.dir/codegen.cpp.o.d"
  "libxpdl_codegen.a"
  "libxpdl_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpdl_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
