# Empty compiler generated dependencies file for xpdl_codegen.
# This may be replaced when dependencies are built.
