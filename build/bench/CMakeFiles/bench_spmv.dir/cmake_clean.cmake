file(REMOVE_RECURSE
  "CMakeFiles/bench_spmv.dir/bench_spmv.cpp.o"
  "CMakeFiles/bench_spmv.dir/bench_spmv.cpp.o.d"
  "bench_spmv"
  "bench_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
