
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_energy.cpp" "bench/CMakeFiles/bench_energy.dir/bench_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_energy.dir/bench_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microbench/CMakeFiles/xpdl_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/xpdl_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/composition/CMakeFiles/xpdl_composition.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/xpdl_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/xpdl_views.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/xpdl_query.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xpdl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lint/CMakeFiles/xpdl_lint.dir/DependInfo.cmake"
  "/root/repo/build/src/pdl/CMakeFiles/xpdl_pdl.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/xpdl_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/compose/CMakeFiles/xpdl_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/xpdl_repository.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/xpdl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/xpdl_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xpdl_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xpdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
