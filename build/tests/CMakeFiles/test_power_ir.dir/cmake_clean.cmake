file(REMOVE_RECURSE
  "CMakeFiles/test_power_ir.dir/test_power_ir.cpp.o"
  "CMakeFiles/test_power_ir.dir/test_power_ir.cpp.o.d"
  "test_power_ir"
  "test_power_ir.pdb"
  "test_power_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
