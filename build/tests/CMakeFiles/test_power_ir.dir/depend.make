# Empty dependencies file for test_power_ir.
# This may be replaced when dependencies are built.
