file(REMOVE_RECURSE
  "CMakeFiles/test_pdl.dir/test_pdl.cpp.o"
  "CMakeFiles/test_pdl.dir/test_pdl.cpp.o.d"
  "test_pdl"
  "test_pdl.pdb"
  "test_pdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
