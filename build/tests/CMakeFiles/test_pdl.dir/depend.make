# Empty dependencies file for test_pdl.
# This may be replaced when dependencies are built.
