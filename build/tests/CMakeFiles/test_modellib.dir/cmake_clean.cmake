file(REMOVE_RECURSE
  "CMakeFiles/test_modellib.dir/test_modellib.cpp.o"
  "CMakeFiles/test_modellib.dir/test_modellib.cpp.o.d"
  "test_modellib"
  "test_modellib.pdb"
  "test_modellib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modellib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
