# Empty compiler generated dependencies file for test_modellib.
# This may be replaced when dependencies are built.
