# Empty custom commands generated dependencies file for xpdl_generated_header.
# This may be replaced when dependencies are built.
