file(REMOVE_RECURSE
  "CMakeFiles/xpdl_generated_header"
  "generated/xpdl_classes.h"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/xpdl_generated_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
