file(REMOVE_RECURSE
  "CMakeFiles/test_model_ir.dir/test_model_ir.cpp.o"
  "CMakeFiles/test_model_ir.dir/test_model_ir.cpp.o.d"
  "test_model_ir"
  "test_model_ir.pdb"
  "test_model_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
