file(REMOVE_RECURSE
  "CMakeFiles/test_listings.dir/test_listings.cpp.o"
  "CMakeFiles/test_listings.dir/test_listings.cpp.o.d"
  "test_listings"
  "test_listings.pdb"
  "test_listings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_listings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
