file(REMOVE_RECURSE
  "CMakeFiles/generated_driver_dv1.dir/generated_drivers/mb_x86_base_1/dv1.cpp.o"
  "CMakeFiles/generated_driver_dv1.dir/generated_drivers/mb_x86_base_1/dv1.cpp.o.d"
  "generated_driver_dv1"
  "generated_driver_dv1.pdb"
  "generated_drivers/mb_x86_base_1/dv1.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_driver_dv1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
