# Empty dependencies file for generated_driver_dv1.
# This may be replaced when dependencies are built.
