// Quickstart: model a small platform in XPDL, run it through the
// toolchain, and introspect it through the Runtime Query API.
//
//   $ ./quickstart
//
// What it shows, end to end:
//   1. an XPDL descriptor as a string (normally a .xpdl file),
//   2. schema validation,
//   3. composition (group expansion, static analyses),
//   4. the runtime model + Query API (tree browsing, typed getters,
//      derived-attribute analysis functions).
#include <cstdio>

#include "xpdl/compose/compose.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"
#include "xpdl/schema/schema.h"
#include "xpdl/xml/xml.h"

namespace {

constexpr const char* kMyLaptop = R"(
<system id="my_laptop">
  <socket>
    <cpu id="cpu0" frequency="2.4" frequency_unit="GHz"
         static_power="12" static_power_unit="W">
      <group prefix="core" quantity="4">
        <core frequency="2.4" frequency_unit="GHz"
              static_power="1.5" static_power_unit="W" />
        <cache name="L1" size="48" unit="KiB" />
      </group>
      <cache name="L3" size="8" unit="MiB" />
    </cpu>
  </socket>
  <memory id="ram" size="16" unit="GiB"
          static_power="3" static_power_unit="W" />
  <software>
    <installed type="OpenBLAS_0.3" path="/usr/lib" />
  </software>
</system>)";

}  // namespace

int main() {
  // 1. Parse the descriptor.
  auto doc = xpdl::xml::parse(kMyLaptop, "my_laptop.xpdl");
  if (!doc.is_ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().to_string().c_str());
    return 1;
  }

  // 2. Validate against the XPDL core schema.
  auto report = xpdl::schema::Schema::core().validate(*doc.value().root);
  if (!report.ok()) {
    std::fprintf(stderr, "validate: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("descriptor valid (%zu lint warning(s))\n",
              report.warnings.size());

  // 3. Compose: expand the core group, run the static analyses.
  xpdl::repository::Repository repo;  // no external references needed
  xpdl::compose::Composer composer(repo);
  auto composed = composer.compose(*doc.value().root);
  if (!composed.is_ok()) {
    std::fprintf(stderr, "compose: %s\n",
                 composed.status().to_string().c_str());
    return 1;
  }

  // 4. Build the runtime model and query it.
  auto model = xpdl::runtime::Model::from_composed(*composed);
  if (!model.is_ok()) {
    std::fprintf(stderr, "runtime: %s\n",
                 model.status().to_string().c_str());
    return 1;
  }

  std::printf("cores:             %zu\n", model->count_cores());
  std::printf("static power:      %.1f W\n", model->total_static_power_w());
  std::printf("OpenBLAS present:  %s\n",
              model->has_installed("OpenBLAS") ? "yes" : "no");

  // Tree browsing + typed getters: list every core with its L1.
  auto cpu = model->find_by_id("cpu0");
  if (cpu.has_value()) {
    for (const xpdl::runtime::Node& group : cpu->children("group")) {
      for (const xpdl::runtime::Node& core : group.children("core")) {
        auto freq = core.quantity("frequency");
        std::printf("  core %-8s  %s\n",
                    std::string(core.id()).c_str(),
                    freq.is_ok() ? freq->to_string().c_str() : "?");
      }
    }
  }

  // Round-trip through the runtime model file, exactly like a deployed
  // application would (xpdl_init loads this file).
  std::string bytes = model->serialize();
  auto loaded = xpdl::runtime::Model::deserialize(bytes);
  std::printf("runtime model file: %zu bytes, reload %s\n", bytes.size(),
              loaded.is_ok() ? "ok" : "FAILED");
  return loaded.is_ok() ? 0 : 1;
}
