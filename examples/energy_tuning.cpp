// energy_tuning: use the XPDL power model to pick energy-minimal DVFS
// schedules — the "adaptive optimization of system settings for improved
// energy efficiency" the paper targets.
//
//   $ ./energy_tuning
//
// The E5-2630L power state machine (states, powers) is compiled once
// into an `xpdl::opt::Engine`; every job in the batch then becomes one
// optimization query: minimum-energy P-state per core domain subject to
// the job's deadline, printed next to naive race-to-idle (run everything
// in the fastest state). The energy/makespan Pareto front shows the
// whole trade-off curve the per-job queries pick from.
#include <cstdio>
#include <string>
#include <vector>

#include "xpdl/energy/energy.h"
#include "xpdl/model/power.h"
#include "xpdl/opt/engine.h"
#include "xpdl/repository/repository.h"

int main() {
  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  auto pm_doc = (*repo)->lookup("power_model_E5_2630L");
  if (!pm_doc.is_ok()) {
    std::fprintf(stderr, "%s\n", pm_doc.status().to_string().c_str());
    return 1;
  }
  auto pm = xpdl::model::PowerModel::parse(**pm_doc);
  if (!pm.is_ok()) {
    std::fprintf(stderr, "%s\n", pm.status().to_string().c_str());
    return 1;
  }

  // Compile once; every query below reuses the cached per-state rates.
  auto engine = xpdl::opt::Engine::from_power_model(*pm);
  if (!engine.is_ok()) {
    std::fprintf(stderr, "%s\n", engine.status().to_string().c_str());
    return 1;
  }
  std::printf("compiled '%s': %zu governed domain instance(s)\n",
              pm->identity.name.c_str(), engine->domains().size());

  // The energy/makespan Pareto front of a reference workload (1 Gcycle
  // per core): every deadline-constrained optimum below is one of these
  // non-dominated points.
  xpdl::opt::DvfsQuery reference;
  reference.cycles = 1e9;
  auto front = engine->pareto(reference);
  if (!front.is_ok()) {
    std::fprintf(stderr, "%s\n", front.status().to_string().c_str());
    return 1;
  }
  std::printf("\nPareto front for 1 Gcycle/core (energy vs makespan):\n");
  for (const xpdl::opt::DvfsPlan& p : *front) {
    std::printf("  %8.2f J  %6.3f s  (", p.energy_j, p.time_s);
    for (std::size_t i = 0; i < p.per_domain.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " ", p.per_domain[i].state.c_str());
    }
    std::printf(")\n");
  }

  struct Job {
    const char* name;
    double cycles;  ///< per core domain
    double deadline_s;
  };
  const Job jobs[] = {
      {"frame_decode", 0.6e9, 0.31},
      {"batch_filter", 2.4e9, 1.25},
      {"nightly_index", 12.0e9, 10.0},
      {"tight_control", 1.2e9, 0.52},
  };

  std::printf("\n%-14s %9s | race-to-idle | optimal schedule\n", "job",
              "deadline");
  for (const Job& job : jobs) {
    xpdl::opt::DvfsQuery query;
    query.cycles = job.cycles;
    query.deadline_s = job.deadline_s;
    auto best = engine->minimize_energy(query);
    if (!best.is_ok()) {
      std::fprintf(stderr, "%s\n", best.status().to_string().c_str());
      return 1;
    }
    // Race-to-idle: the minimum-makespan end of the job's Pareto front
    // (every core in the fastest state).
    xpdl::opt::DvfsQuery race_query;
    race_query.cycles = job.cycles;
    auto race_front = engine->pareto(race_query);
    if (!race_front.is_ok() || race_front->empty()) {
      std::fprintf(stderr, "no Pareto front for '%s'\n", job.name);
      return 1;
    }
    const xpdl::opt::DvfsPlan& race = race_front->back();
    std::printf("%-14s %7.2f s |", job.name, job.deadline_s);
    if (race.time_s <= job.deadline_s) {
      std::printf(" %9.2f J |", race.energy_j);
    } else {
      std::printf(" %10s |", "infeasible");
    }
    if (!best->feasible) {
      std::printf(" infeasible\n");
      continue;
    }
    std::printf(" %7.2f J  (%s, %.2f s)", best->energy_j,
                best->per_domain.front().state.c_str(), best->time_s);
    if (race.time_s <= job.deadline_s && best->energy_j < race.energy_j) {
      std::printf("  saves %.1f%%",
                  (race.energy_j - best->energy_j) / race.energy_j * 100);
    }
    std::printf("\n");
  }

  // Heterogeneous work: a pipeline whose first core carries 2x the
  // cycles. The optimizer picks a faster state for that core only
  // instead of overclocking all four.
  if (!engine->domains().empty()) {
    xpdl::opt::DvfsQuery skew;
    skew.cycles = 1e9;
    skew.deadline_s = 0.9;
    skew.cycles_by_domain[engine->domains().front()] = 2e9;
    auto plan = engine->minimize_energy(skew);
    if (plan.is_ok() && plan->feasible) {
      std::printf("\nskewed pipeline (core 0 at 2 Gcycles, deadline %.2f s):\n",
                  skew.deadline_s);
      for (const xpdl::opt::DomainPlan& d : plan->per_domain) {
        std::printf("  %-10s %-3s %6.3f s  %6.2f J\n", d.domain.c_str(),
                    d.state.c_str(), d.time_s, d.energy_j);
      }
      std::printf("  total %.2f J, makespan %.3f s\n", plan->energy_j,
                  plan->time_s);
    }
  }

  // Power-domain gating on the Myriad1 (Listing 12): when is CMX allowed
  // to power down?
  auto myriad_pm_doc = (*repo)->lookup("power_model_Myriad1");
  if (myriad_pm_doc.is_ok()) {
    auto myriad_pm = xpdl::model::PowerModel::parse(**myriad_pm_doc);
    if (myriad_pm.is_ok() && myriad_pm->domains.has_value()) {
      std::printf("\nMyriad1 power gating (Listing 12 semantics):\n");
      std::vector<std::string> off;
      for (int shaves_off = 6; shaves_off <= 8; ++shaves_off) {
        off.clear();
        for (int i = 0; i < shaves_off; ++i) {
          off.push_back("Shave_pd" + std::to_string(i));
        }
        auto allowed = xpdl::energy::may_switch_off(*myriad_pm->domains,
                                                    "CMX_pd", off);
        std::printf("  %d/8 SHAVEs off -> CMX may power down: %s\n",
                    shaves_off,
                    allowed.is_ok() && allowed.value() ? "yes" : "no");
      }
    }
  }
  return 0;
}
