// energy_tuning: use the XPDL power model to pick energy-minimal DVFS
// schedules — the "adaptive optimization of system settings for improved
// energy efficiency" the paper targets.
//
//   $ ./energy_tuning
//
// For a batch of jobs with different deadlines, the planner consults the
// E5-2630L power state machine (states, powers, transition overheads)
// and prints the chosen schedule next to naive race-to-idle.
#include <cstdio>

#include "xpdl/energy/energy.h"
#include "xpdl/model/power.h"
#include "xpdl/repository/repository.h"

int main() {
  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  auto pm_doc = (*repo)->lookup("power_model_E5_2630L");
  if (!pm_doc.is_ok()) {
    std::fprintf(stderr, "%s\n", pm_doc.status().to_string().c_str());
    return 1;
  }
  auto pm = xpdl::model::PowerModel::parse(**pm_doc);
  if (!pm.is_ok() || pm->state_machines.empty()) {
    std::fprintf(stderr, "no power state machine in the model\n");
    return 1;
  }
  const xpdl::model::PowerStateMachine& fsm = pm->state_machines.front();
  xpdl::energy::DvfsPlanner planner(fsm);

  std::printf("power states of '%s':\n", fsm.name.c_str());
  for (const auto* s : planner.states_by_frequency()) {
    std::printf("  %-3s %4.1f GHz  %5.1f W\n", s->name.c_str(),
                s->frequency_hz / 1e9, s->power_w);
  }

  struct Job {
    const char* name;
    double cycles;
    double deadline_s;
  };
  const Job jobs[] = {
      {"frame_decode", 0.6e9, 0.30},
      {"batch_filter", 2.4e9, 1.25},
      {"nightly_index", 12.0e9, 10.0},
      {"tight_control", 1.2e9, 0.52},
  };

  std::printf("\n%-14s %9s | race-to-idle | optimal schedule\n", "job",
              "deadline");
  for (const Job& job : jobs) {
    xpdl::energy::Workload w{.cycles = job.cycles,
                             .deadline_s = job.deadline_s,
                             .idle_power_w = 2.0};  // C1 sleep power
    auto race = planner.single_state("P4", w);
    auto best = planner.best_two_state(w, "P4");
    std::printf("%-14s %7.2f s |", job.name, job.deadline_s);
    if (race.is_ok() && race->feasible) {
      std::printf(" %9.2f J |", race->energy_j);
    } else {
      std::printf(" %10s |", "infeasible");
    }
    if (!best.is_ok()) {
      std::printf(" infeasible\n");
      continue;
    }
    std::printf(" %7.2f J  (", best->energy_j);
    bool first = true;
    for (const auto& leg : best->legs) {
      if (leg.duration_s < 1e-9) continue;
      std::printf("%s%s %.2fs", first ? "" : ", ", leg.state.c_str(),
                  leg.duration_s);
      first = false;
    }
    std::printf(")");
    if (race.is_ok() && race->feasible && best->energy_j < race->energy_j) {
      std::printf("  saves %.1f%%",
                  (race->energy_j - best->energy_j) / race->energy_j * 100);
    }
    std::printf("\n");
  }

  // Power-domain gating on the Myriad1 (Listing 12): when is CMX allowed
  // to power down?
  auto myriad_pm_doc = (*repo)->lookup("power_model_Myriad1");
  if (myriad_pm_doc.is_ok()) {
    auto myriad_pm = xpdl::model::PowerModel::parse(**myriad_pm_doc);
    if (myriad_pm.is_ok() && myriad_pm->domains.has_value()) {
      std::printf("\nMyriad1 power gating (Listing 12 semantics):\n");
      std::vector<std::string> off;
      for (int shaves_off = 6; shaves_off <= 8; ++shaves_off) {
        off.clear();
        for (int i = 0; i < shaves_off; ++i) {
          off.push_back("Shave_pd" + std::to_string(i));
        }
        auto allowed = xpdl::energy::may_switch_off(*myriad_pm->domains,
                                                    "CMX_pd", off);
        std::printf("  %d/8 SHAVEs off -> CMX may power down: %s\n",
                    shaves_off,
                    allowed.is_ok() && allowed.value() ? "yes" : "no");
      }
    }
  }
  return 0;
}
