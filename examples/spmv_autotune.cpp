// spmv_autotune: the paper's conditional-composition case study as an
// application. A multi-variant SpMV component binds to the platform
// model at startup (xpdl_init-style), then every call is dispatched to
// the variant the XPDL-guided selector predicts to be fastest.
//
//   $ ./spmv_autotune [system-ref]          (default: liu_gpu_server)
//
// Try `./spmv_autotune myriad_server` to watch the GPU variant disappear
// when the platform model lacks a CUDA device + CUBLAS installation.
#include <cstdio>
#include <string>

#include <map>

#include "xpdl/composition/spmv.h"
#include "xpdl/compose/compose.h"
#include "xpdl/opt/engine.h"
#include "xpdl/repository/repository.h"

int main(int argc, char** argv) {
  std::string ref = argc > 1 ? argv[1] : "liu_gpu_server";

  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  xpdl::compose::Composer composer(**repo);
  auto composed = composer.compose(ref);
  if (!composed.is_ok()) {
    std::fprintf(stderr, "%s\n", composed.status().to_string().c_str());
    return 1;
  }
  auto platform = xpdl::runtime::Model::from_composed(*composed);
  if (!platform.is_ok()) {
    std::fprintf(stderr, "%s\n", platform.status().to_string().c_str());
    return 1;
  }

  auto component = xpdl::composition::SpmvComponent::create(*platform);
  if (!component.is_ok()) {
    std::fprintf(stderr, "%s\n", component.status().to_string().c_str());
    return 1;
  }
  std::printf("platform '%s': %zu cores, %zu CUDA device(s), CUBLAS %s\n",
              ref.c_str(), platform->count_cores(),
              platform->count_cuda_devices(),
              platform->has_installed("CUBLAS") ? "installed" : "absent");

  const std::size_t n = 2048;
  std::vector<double> x(n, 1.0);
  // Per-phase admissible variants and their predicted costs, fed to the
  // optimizer below. Energy is modeled from the predicted time at a
  // nominal power per variant class (offload burns the accelerator's
  // envelope, CPU variants the host's).
  std::map<std::string, std::vector<xpdl::opt::Variant>, std::less<>> phases;
  std::printf("\n%8s  %10s  %-13s %12s   rejected variants\n", "density",
              "nnz", "choice", "time");
  for (double density : {0.002, 0.02, 0.2, 1.0}) {
    auto a = xpdl::composition::CsrMatrix::random(n, n, density, 1);
    auto decision = component->select(a);
    if (!decision.is_ok()) {
      std::printf("%8.3f  selection failed: %s\n", density,
                  decision.status().to_string().c_str());
      continue;
    }
    auto result = component->run_tuned(a, x);
    if (!result.is_ok()) {
      std::printf("%8.3f  run failed: %s\n", density,
                  result.status().to_string().c_str());
      continue;
    }
    std::printf("%8.3f  %10zu  %-13s %9.3f ms%s  ", density, a.nnz(),
                result->variant.c_str(), result->seconds * 1e3,
                result->simulated ? "*" : " ");
    for (const auto& [name, why] : decision->rejected) {
      std::printf("[%s] ", name.c_str());
    }
    std::printf("\n");
    char phase_name[32];
    std::snprintf(phase_name, sizeof phase_name, "d%.3f", density);
    std::vector<xpdl::opt::Variant>& options = phases[phase_name];
    for (const auto& [name, cost_s] : decision->considered) {
      double power_w = name == "gpu_offload" ? 75.0 : 20.0;
      options.push_back({name, cost_s, cost_s * power_w});
    }
  }
  std::printf("\n(*) modeled time: the GPU is simulated per DESIGN.md.\n");

  // Whole-batch plan through xpdl::opt: one decision variable per
  // density phase, each admissible variant a choice with its predicted
  // time/energy. Minimizing "energy_j" (phases add) and "time_s"
  // (parallel phases bottleneck on the slowest) can disagree with the
  // per-call greedy pick above when a slightly slower variant is much
  // cheaper in energy.
  auto problem = xpdl::opt::variant_problem(phases);
  if (problem.is_ok() && problem->variables().size() == phases.size()) {
    xpdl::opt::Optimizer optimizer;
    auto by_energy = optimizer.minimize(
        *problem, static_cast<std::size_t>(problem->find_objective("energy_j")));
    auto by_time = optimizer.minimize(
        *problem, static_cast<std::size_t>(problem->find_objective("time_s")));
    if (by_energy.is_ok() && by_energy->best.has_value() && by_time.is_ok() &&
        by_time->best.has_value()) {
      std::printf("\nbatch plan (xpdl::opt over predicted costs):\n");
      std::printf("  energy-minimal (%.3f mJ):", by_energy->best->value * 1e3);
      for (const auto& [phase, variant] : by_energy->best->assignment) {
        std::printf(" %s=%s", phase.c_str(), variant.c_str());
      }
      std::printf("\n  time-minimal   (%.3f ms):", by_time->best->value * 1e3);
      for (const auto& [phase, variant] : by_time->best->assignment) {
        std::printf(" %s=%s", phase.c_str(), variant.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
