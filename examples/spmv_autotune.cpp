// spmv_autotune: the paper's conditional-composition case study as an
// application. A multi-variant SpMV component binds to the platform
// model at startup (xpdl_init-style), then every call is dispatched to
// the variant the XPDL-guided selector predicts to be fastest.
//
//   $ ./spmv_autotune [system-ref]          (default: liu_gpu_server)
//
// Try `./spmv_autotune myriad_server` to watch the GPU variant disappear
// when the platform model lacks a CUDA device + CUBLAS installation.
#include <cstdio>
#include <string>

#include "xpdl/composition/spmv.h"
#include "xpdl/compose/compose.h"
#include "xpdl/repository/repository.h"

int main(int argc, char** argv) {
  std::string ref = argc > 1 ? argv[1] : "liu_gpu_server";

  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  xpdl::compose::Composer composer(**repo);
  auto composed = composer.compose(ref);
  if (!composed.is_ok()) {
    std::fprintf(stderr, "%s\n", composed.status().to_string().c_str());
    return 1;
  }
  auto platform = xpdl::runtime::Model::from_composed(*composed);
  if (!platform.is_ok()) {
    std::fprintf(stderr, "%s\n", platform.status().to_string().c_str());
    return 1;
  }

  auto component = xpdl::composition::SpmvComponent::create(*platform);
  if (!component.is_ok()) {
    std::fprintf(stderr, "%s\n", component.status().to_string().c_str());
    return 1;
  }
  std::printf("platform '%s': %zu cores, %zu CUDA device(s), CUBLAS %s\n",
              ref.c_str(), platform->count_cores(),
              platform->count_cuda_devices(),
              platform->has_installed("CUBLAS") ? "installed" : "absent");

  const std::size_t n = 2048;
  std::vector<double> x(n, 1.0);
  std::printf("\n%8s  %10s  %-13s %12s   rejected variants\n", "density",
              "nnz", "choice", "time");
  for (double density : {0.002, 0.02, 0.2, 1.0}) {
    auto a = xpdl::composition::CsrMatrix::random(n, n, density, 1);
    auto decision = component->select(a);
    if (!decision.is_ok()) {
      std::printf("%8.3f  selection failed: %s\n", density,
                  decision.status().to_string().c_str());
      continue;
    }
    auto result = component->run_tuned(a, x);
    if (!result.is_ok()) {
      std::printf("%8.3f  run failed: %s\n", density,
                  result.status().to_string().c_str());
      continue;
    }
    std::printf("%8.3f  %10zu  %-13s %9.3f ms%s  ", density, a.nnz(),
                result->variant.c_str(), result->seconds * 1e3,
                result->simulated ? "*" : " ");
    for (const auto& [name, why] : decision->rejected) {
      std::printf("[%s] ", name.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n(*) modeled time: the GPU is simulated per DESIGN.md.\n");
  return 0;
}
