// deploy_bootstrap: what the toolchain does at system deployment time
// (Sec. III-C / IV).
//
//   $ ./deploy_bootstrap [output-dir]       (default: /tmp/xpdl_deploy)
//
// Steps performed:
//   1. compose liu_gpu_server from the repository,
//   2. generate the microbenchmark driver code tree for every suite
//      referenced from the model (one C++ driver per instruction, build
//      file, runner script),
//   3. run the bootstrap protocol against the simulated power sensor to
//      fill every '?' energy entry,
//   4. write the finished runtime model file for xpdl_init().
#include <cstdio>
#include <string>

#include "xpdl/compose/compose.h"
#include "xpdl/microbench/bootstrap.h"
#include "xpdl/util/io.h"
#include "xpdl/microbench/drivergen.h"
#include "xpdl/microbench/simmachine.h"
#include "xpdl/model/power.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "/tmp/xpdl_deploy";

  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  xpdl::compose::Composer composer(**repo);
  auto composed = composer.compose("liu_gpu_server");
  if (!composed.is_ok()) {
    std::fprintf(stderr, "%s\n", composed.status().to_string().c_str());
    return 1;
  }
  std::printf("composed liu_gpu_server (%zu elements)\n",
              composed->root().subtree_size());

  // Driver code generation for every microbenchmark suite in the model.
  std::vector<const xpdl::xml::Element*> stack = {&composed->root()};
  while (!stack.empty()) {
    const auto* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "microbenchmarks") continue;
    auto suite = xpdl::model::MicrobenchmarkSuite::parse(*e);
    if (!suite.is_ok()) continue;
    std::string dir = out_dir + "/drivers/" + suite->id;
    if (auto st = xpdl::microbench::generate_driver_tree(*suite, dir);
        st.is_ok()) {
      std::printf("generated %zu driver(s) in %s\n",
                  suite->benchmarks.size(), dir.c_str());
    }
  }

  // Bootstrap against the simulated sensor (stand-in for RAPL / external
  // power meters; see DESIGN.md).
  xpdl::microbench::SimMachine machine(
      xpdl::microbench::SimMachineConfig{},
      xpdl::microbench::paper_x86_ground_truth());
  xpdl::microbench::BootstrapOptions opts;
  opts.frequencies_hz = {2.8e9, 2.9e9, 3.0e9, 3.1e9, 3.2e9, 3.3e9, 3.4e9};
  xpdl::microbench::Bootstrapper bootstrapper(machine, opts);
  auto report = bootstrapper.bootstrap_model(composed->mutable_root());
  if (!report.is_ok()) {
    std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
    return 1;
  }
  composed->reindex();
  std::printf("bootstrapped %zu instruction(s); measured background power "
              "%.2f W (machine truth: %.2f W)\n",
              report->measured_instructions,
              report->estimated_static_power_w,
              machine.config().static_power_w);
  for (const auto& entry : report->entries) {
    if (entry.frequency_hz != 3.0e9) continue;  // one line per instruction
    std::printf("  %-6s @ 3.0 GHz: %7.3f nJ\n", entry.instruction.c_str(),
                entry.measured_energy_j * 1e9);
  }

  // Final runtime model file.
  auto rt = xpdl::runtime::Model::from_composed(*composed);
  if (!rt.is_ok()) {
    std::fprintf(stderr, "%s\n", rt.status().to_string().c_str());
    return 1;
  }
  std::string model_file = out_dir + "/liu_gpu_server.xpdlrt";
  if (auto st = xpdl::io::make_directories(out_dir); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  if (auto st = rt->save(model_file); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("wrote runtime model (%zu nodes) to %s\n", rt->node_count(),
              model_file.c_str());
  std::printf("applications load it with xpdl_init(\"%s\")\n",
              model_file.c_str());
  return 0;
}
