// platform_report: compose a system from the shipped model repository and
// print a human-readable platform report — the "machine-readable data
// sheet" of Sec. III rendered for humans.
//
//   $ ./platform_report [system-ref]        (default: liu_gpu_server)
//
// Reported: hardware tree with ids/types/key metrics, interconnects with
// the composed effective bandwidth, installed software, power domains and
// power states, and the derived analysis values.
#include <cstdio>
#include <string>

#include "xpdl/compose/compose.h"
#include "xpdl/energy/energy.h"
#include "xpdl/model/power.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"

namespace {

void print_hardware(const xpdl::xml::Element& e, int depth) {
  // Skip non-hardware subtrees in the tree rendering.
  if (e.tag() == "software" || e.tag() == "properties" ||
      e.tag() == "power_model" || e.tag() == "interconnects") {
    return;
  }
  std::printf("%*s<%s>", depth * 2, "", e.tag().c_str());
  for (const char* attr : {"id", "name", "type"}) {
    if (auto v = e.attribute(attr)) {
      std::printf(" %s=%s", attr, std::string(*v).c_str());
    }
  }
  for (const char* metric : {"frequency", "size", "static_power"}) {
    auto m = xpdl::model::metric_of(e, metric);
    if (m.is_ok() && m->has_value() && (*m)->is_number()) {
      std::printf("  %s=%s", metric, (*m)->quantity().to_string().c_str());
    }
  }
  std::printf("\n");
  // Groups with many identical members are summarized.
  if (e.tag() == "group" && e.attribute_or("expanded", "") == "true" &&
      e.child_count() > 8) {
    std::printf("%*s  ... %zu expanded members ...\n", depth * 2, "",
                e.child_count());
    print_hardware(*e.children().front(), depth + 1);
    return;
  }
  for (const auto& c : e.children()) print_hardware(*c, depth + 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string ref = argc > 1 ? argv[1] : "liu_gpu_server";

  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  xpdl::compose::Composer composer(**repo);
  auto model = composer.compose(ref);
  if (!model.is_ok()) {
    std::fprintf(stderr, "compose %s: %s\n", ref.c_str(),
                 model.status().to_string().c_str());
    return 1;
  }

  std::printf("=== platform report: %s ===\n\n-- hardware --\n",
              ref.c_str());
  print_hardware(model->root(), 0);

  std::printf("\n-- interconnects --\n");
  std::vector<const xpdl::xml::Element*> stack = {&model->root()};
  while (!stack.empty()) {
    const auto* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "interconnect") continue;
    std::printf("  %-12s %-12s %s -> %s",
                std::string(e->attribute_or("id", "?")).c_str(),
                std::string(e->attribute_or("type", "")).c_str(),
                std::string(e->attribute_or("head", "?")).c_str(),
                std::string(e->attribute_or("tail", "?")).c_str());
    if (auto bw = e->attribute(xpdl::compose::kEffectiveBandwidthAttr)) {
      double bps = std::strtod(std::string(*bw).c_str(), nullptr);
      std::printf("   effective %s",
                  xpdl::units::bytes_per_second(bps).to_string().c_str());
    }
    std::printf("\n");
  }

  std::printf("\n-- software --\n");
  stack = {&model->root()};
  while (!stack.empty()) {
    const auto* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() == "installed" || e->tag() == "hostOS") {
      std::printf("  %-10s %-16s %s\n", e->tag().c_str(),
                  std::string(e->attribute_or(
                      "type", e->attribute_or("name", "?"))).c_str(),
                  std::string(e->attribute_or("path", "")).c_str());
    }
  }

  std::printf("\n-- power model --\n");
  stack = {&model->root()};
  while (!stack.empty()) {
    const auto* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() == "power_state_machine") {
      auto fsm = xpdl::model::PowerStateMachine::parse(*e);
      if (!fsm.is_ok()) continue;
      std::printf("  state machine '%s' (domain %s): ", fsm->name.c_str(),
                  fsm->power_domain.c_str());
      for (const auto& s : fsm->states) {
        std::printf("%s(%.1fGHz/%.0fW) ", s.name.c_str(),
                    s.frequency_hz / 1e9, s.power_w);
      }
      std::printf("- %zu transitions, %s\n", fsm->transitions.size(),
                  fsm->strongly_connected() ? "strongly connected"
                                            : "NOT strongly connected");
    }
    if (e->tag() == "instructions") {
      auto isa = xpdl::model::InstructionSet::parse(*e);
      if (!isa.is_ok()) continue;
      std::size_t placeholders = 0;
      for (const auto& inst : isa->instructions) {
        if (inst.placeholder) ++placeholders;
      }
      std::printf("  ISA '%s': %zu instructions, %zu awaiting "
                  "microbenchmarking\n",
                  isa->name.c_str(), isa->instructions.size(),
                  placeholders);
    }
  }

  auto rt = xpdl::runtime::Model::from_composed(*model);
  if (rt.is_ok()) {
    std::printf("\n-- derived analysis (Query API category 4) --\n");
    std::printf("  cores:          %zu\n", rt->count_cores());
    std::printf("  devices:        %zu (%zu CUDA)\n", rt->count_devices(),
                rt->count_cuda_devices());
    std::printf("  static power:   %.2f W\n", rt->total_static_power_w());
  }
  for (const std::string& w : model->warnings()) {
    std::printf("note: %s\n", w.c_str());
  }
  return 0;
}
