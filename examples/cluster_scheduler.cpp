// cluster_scheduler: system-wide time/energy-aware task mapping — the
// optimization layer the EXCESS framework builds on top of XPDL. Pulls
// node compute rates, static powers and the InfiniBand cost model out of
// the composed XScluster (paper Listing 11) and maps a small pipeline of
// dependent tasks under both objectives.
//
//   $ ./cluster_scheduler
#include <cstdio>

#include "xpdl/energy/cluster.h"
#include "xpdl/repository/repository.h"

int main() {
  auto repo = xpdl::repository::open_repository({XPDL_MODELS_DIR});
  if (!repo.is_ok()) {
    std::fprintf(stderr, "%s\n", repo.status().to_string().c_str());
    return 1;
  }
  xpdl::compose::Composer composer(**repo);
  auto cluster = composer.compose("XScluster");
  if (!cluster.is_ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().to_string().c_str());
    return 1;
  }
  auto estimator = xpdl::energy::ClusterEstimator::create(*cluster);
  if (!estimator.is_ok()) {
    std::fprintf(stderr, "%s\n", estimator.status().to_string().c_str());
    return 1;
  }

  std::printf("cluster nodes (from the composed XScluster model):\n");
  for (const auto& n : estimator->nodes()) {
    std::printf("  %-4s %5.1f GFLOP/s  static %6.1f W  active %5.1f W\n",
                n.id.c_str(), n.flops / 1e9, n.static_power_w,
                n.active_power_w);
  }
  std::printf("inter-node link: %.1f Gbit/s, %.0f ns/message\n\n",
              estimator->link().bandwidth_bps * 8 / 1e9,
              estimator->link().time_offset_s * 1e9);

  // A fork-join pipeline: one producer, four parallel workers, one
  // reducer pulling all partial results.
  std::vector<xpdl::energy::ClusterTask> tasks;
  tasks.push_back({"ingest", 16e9, {}});
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({"work" + std::to_string(i), 64e9,
                     {{"ingest", 2e9}}});  // 2 GB partition each
  }
  std::vector<std::pair<std::string, double>> partials;
  for (int i = 0; i < 4; ++i) {
    partials.emplace_back("work" + std::to_string(i), 0.5e9);
  }
  tasks.push_back({"reduce", 8e9, partials});

  for (auto objective : {xpdl::energy::Objective::kMakespan,
                         xpdl::energy::Objective::kEnergy}) {
    auto mapped = estimator->greedy_map(tasks, objective);
    if (!mapped.is_ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().to_string().c_str());
      return 1;
    }
    const auto& [placement, estimate] = *mapped;
    std::printf("objective: %s\n",
                objective == xpdl::energy::Objective::kMakespan
                    ? "minimize makespan"
                    : "minimize energy");
    for (const auto& t : tasks) {
      std::printf("  %-7s -> %s\n", t.name.c_str(),
                  placement.at(t.name).c_str());
    }
    std::printf("  makespan %.2f s;  energy %.0f J "
                "(compute %.0f + comm %.1f + static %.0f)\n\n",
                estimate.makespan_s, estimate.total_energy_j(),
                estimate.compute_energy_j, estimate.comm_energy_j,
                estimate.static_energy_j);
  }
  return 0;
}
