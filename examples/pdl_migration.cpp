// pdl_migration: convert a legacy PEPPHER-PDL platform description into
// XPDL (Sec. II of the paper reviews why the control-hierarchy-centric
// PDL design was replaced), then explore the result with the query
// language.
//
//   $ ./pdl_migration
#include <cstdio>

#include "xpdl/compose/compose.h"
#include "xpdl/pdl/pdl.h"
#include "xpdl/query/query.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"
#include "xpdl/xml/xml.h"

namespace {

// A PDL platform in the style of Sandrieser et al.: control roles,
// free-form properties (including the paper's x86_MAX_CLOCK_FREQUENCY
// example), a memory region and an interconnect.
constexpr const char* kLegacyPdl = R"(
<Platform name="legacy_cell_like">
  <ProcessingUnits>
    <ProcessingUnit id="ppe" type="PowerPC" role="Hybrid">
      <Property key="x86_MAX_CLOCK_FREQUENCY" value="3200"/>
      <Property key="NUM_CORES" value="2"/>
      <Property key="ALTIVEC" value="yes"/>
    </ProcessingUnit>
    <ProcessingUnit id="spe0" type="SPE" role="Worker"/>
    <ProcessingUnit id="spe1" type="SPE" role="Worker"/>
  </ProcessingUnits>
  <MemoryRegions>
    <MemoryRegion id="xdr" type="GLOBAL">
      <Property key="MEMORY_SIZE" value="512"/>
    </MemoryRegion>
  </MemoryRegions>
  <Interconnects>
    <Interconnect id="eib0"><From>ppe</From><To>spe0</To></Interconnect>
    <Interconnect id="eib1"><From>ppe</From><To>spe1</To></Interconnect>
  </Interconnects>
</Platform>)";

}  // namespace

int main() {
  xpdl::pdl::ImportReport report;
  auto system = xpdl::pdl::import_platform_text(kLegacyPdl, &report);
  if (!system.is_ok()) {
    std::fprintf(stderr, "import: %s\n",
                 system.status().to_string().c_str());
    return 1;
  }
  std::printf("imported PDL platform: %zu PU(s), %zu memory region(s), "
              "%zu link(s)\n",
              report.processing_units, report.memory_regions,
              report.interconnects);
  for (const auto& note : report.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  std::printf("\n-- resulting XPDL --\n%s\n",
              xpdl::xml::write(**system).c_str());

  // Compose and query the imported model.
  xpdl::repository::Repository repo;
  xpdl::compose::Composer composer(repo);
  auto composed = composer.compose(**system);
  if (!composed.is_ok()) {
    std::fprintf(stderr, "compose: %s\n",
                 composed.status().to_string().c_str());
    return 1;
  }
  auto model = xpdl::runtime::Model::from_composed(*composed);
  if (!model.is_ok()) return 1;

  std::printf("-- queries over the imported model --\n");
  for (const char* q :
       {"//cpu[@role=\"hybrid\"]", "//device[@role=\"worker\"]",
        "//cpu[@frequency>3GHz]", "//memory[@size>=256MB]"}) {
    auto nodes = xpdl::query::select(*model, q);
    if (!nodes.is_ok()) continue;
    std::printf("  %-28s -> %zu match(es)\n", q, nodes->size());
  }
  std::printf("cores: %zu, devices: %zu\n", model->count_cores(),
              model->count_devices());
  return 0;
}
