// xpdld -- the XPDL model repository server (Sec. III).
//
// Serves a scanned repository over HTTP so remote tools can resolve
// their model search path against this machine: raw descriptors with
// content-hash ETags, the JSON index, composed runtime artifacts
// (snapshot-cache backed) and the query engine. See docs/server.md for
// the endpoint reference.
//
// Usage:
//   xpdld --repo DIR [--repo DIR]... [--host ADDR] [--port N]
//         [--port-file FILE] [--max-requests N] [--quiet]
//         [--max-pending N] [--max-inflight N]
//         [--request-deadline-ms MS] [--header-deadline-ms MS]
//         [--drain-timeout-ms MS]
//         [--jobs N] [--stats] [--trace FILE.json]
//         [--access-log FILE] [--access-log-sample N]
//         [--flight-dump FILE] [--no-flight]
//         [--strict] [--keep-going] [--fault-plan SPEC]
//         [--no-cache] [--cache-dir DIR]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port as a single line once the server is listening, so scripts
// can start xpdld in the background and discover where it landed; the
// file is removed on every exit path, including fatal signals.
// --max-requests N shuts the server down after N requests (smoke tests).
// --jobs / XPDL_JOBS size both the scan's parse pool and the HTTP worker
// pool.
//
// Overload & degradation (docs/robustness.md): --max-pending bounds the
// accepted-connection queue and --max-inflight the serving concurrency —
// beyond either, requests are shed with 503 + Retry-After instead of
// queued. --request-deadline-ms bounds each request's handling time,
// --header-deadline-ms cuts off slow-loris clients with 408. SIGTERM
// drains: /healthz flips to "draining", new connections shed, in-flight
// requests finish (up to --drain-timeout-ms), then the daemon flight-
// dumps and exits 0. SIGINT still stops immediately.
//
// Observability (docs/observability.md): the flight recorder is on by
// default — a fixed ring of recent spans/requests dumped to
// --flight-dump (default xpdld-flight.json) on a fatal signal and on
// shutdown, and served live at /debug/flight; --no-flight turns it off.
// --access-log appends one JSON object per request; --access-log-sample
// N keeps every Nth record. Exit status (tool_common.h contract): 0
// clean shutdown (including degraded scans under the default lenient
// mode), 1 when the repository could not be served, 2 usage.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "tool_common.h"
#include "xpdl/net/repo_service.h"
#include "xpdl/net/server.h"
#include "xpdl/obs/eventlog.h"
#include "xpdl/obs/flight.h"
#include "xpdl/obs/report.h"
#include "xpdl/util/io.h"

namespace {

// The last signal received (0 = none). SIGTERM starts a graceful drain;
// SIGINT stops immediately. Plain store: the main loop polls.
std::atomic<int> g_signal{0};

void on_signal(int signo) { g_signal.store(signo); }

void usage() {
  std::fputs(
      "usage: xpdld --repo DIR [--repo DIR]... [--host ADDR] [--port N]\n"
      "             [--port-file FILE] [--max-requests N] [--quiet]\n"
      "             [--max-pending N] [--max-inflight N]\n"
      "             [--request-deadline-ms MS] [--header-deadline-ms MS]\n"
      "             [--drain-timeout-ms MS]\n"
      "             [--jobs N] [--stats] [--trace FILE.json]\n"
      "             [--access-log FILE] [--access-log-sample N]\n"
      "             [--flight-dump FILE] [--no-flight]\n"
      "             [--strict] [--keep-going] [--fault-plan SPEC]\n"
      "             [--no-cache] [--cache-dir DIR]\n",
      stderr);
}

int fail(const xpdl::Status& status) {
  return xpdl::tools::fail_with("xpdld", status);
}

/// Removes the --port-file on every normal exit path; the fatal-signal
/// path is covered by FlightRecorder::set_crash_cleanup_path.
struct PortFileGuard {
  std::string path;
  ~PortFileGuard() {
    if (!path.empty()) ::std::remove(path.c_str());
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> repos;
  xpdl::net::ServerOptions server_options;
  std::string port_file;
  std::string access_log;
  std::uint64_t access_log_sample = 1;
  std::string flight_dump = "xpdld-flight.json";
  bool flight = true;
  bool quiet = false;
  xpdl::obs::ToolSession obs("xpdld");
  xpdl::tools::ResilienceFlags rflags("xpdld");
  xpdl::tools::PerfFlags pflags("xpdld");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--repo") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      repos.emplace_back(v);
    } else if (a == "--host") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      server_options.host = v;
    } else if (a == "--port") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      char* end = nullptr;
      unsigned long p = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || p > 65535) {
        std::fprintf(stderr, "xpdld: invalid port '%s'\n", v);
        return 2;
      }
      server_options.port = static_cast<std::uint16_t>(p);
    } else if (a == "--port-file") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      port_file = v;
    } else if (a == "--max-requests") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      char* end = nullptr;
      server_options.max_requests = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "xpdld: invalid request count '%s'\n", v);
        return 2;
      }
    } else if (a == "--max-pending" || a == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      char* end = nullptr;
      unsigned long n = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "xpdld: invalid count '%s' for %s\n", v,
                     std::string(a).c_str());
        return 2;
      }
      if (a == "--max-pending") {
        server_options.max_pending = static_cast<std::size_t>(n);
      } else {
        server_options.max_inflight = static_cast<std::size_t>(n);
      }
    } else if (a == "--request-deadline-ms" || a == "--header-deadline-ms" ||
               a == "--drain-timeout-ms") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      char* end = nullptr;
      double ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || ms < 0) {
        std::fprintf(stderr, "xpdld: invalid duration '%s' for %s\n", v,
                     std::string(a).c_str());
        return 2;
      }
      if (a == "--request-deadline-ms") {
        server_options.request_deadline_ms = ms;
      } else if (a == "--header-deadline-ms") {
        server_options.header_deadline_ms = ms;
      } else {
        server_options.drain_timeout_ms = ms;
      }
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--access-log") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      access_log = v;
    } else if (a == "--access-log-sample") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      char* end = nullptr;
      access_log_sample = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || access_log_sample == 0) {
        std::fprintf(stderr, "xpdld: invalid sample rate '%s' (want N >= 1)\n",
                     v);
        return 2;
      }
    } else if (a == "--flight-dump") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      flight_dump = v;
    } else if (a == "--no-flight") {
      flight = false;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (obs.parse_flag(argc, argv, i) ||
               rflags.parse_flag(argc, argv, i) ||
               pflags.parse_flag(argc, argv, i)) {
      continue;
    } else {
      std::fprintf(stderr, "xpdld: unknown option '%s'\n", argv[i]);
      usage();
      return 2;
    }
  }
  if (repos.empty()) {
    std::fputs("xpdld: at least one --repo is required\n", stderr);
    usage();
    return 2;
  }
  obs.begin();

  // Flight recorder: on by default, dumped from fatal-signal handlers
  // and on graceful shutdown. Cheap enough to always leave running. The
  // crash handlers install even under --no-flight (with an empty dump
  // path) so the --port-file is unlinked on a fatal signal either way.
  if (flight) xpdl::obs::FlightRecorder::instance().enable();
  xpdl::obs::FlightRecorder::install_crash_handlers(
      flight ? flight_dump : std::string());
  if (!access_log.empty()) {
    if (auto st = xpdl::obs::EventLog::instance().open(access_log,
                                                       access_log_sample);
        !st.is_ok()) {
      return fail(st);
    }
  }

  xpdl::repository::ScanOptions scan_options;
  scan_options.strict = rflags.strict();
  pflags.apply(scan_options);
  // --jobs / XPDL_JOBS also size the HTTP worker pool.
  server_options.threads = pflags.threads();

  xpdl::repository::ScanReport scan_report;
  auto service = xpdl::net::RepoService::create(repos, scan_options,
                                                &scan_report);
  if (!service.is_ok()) return fail(service.status());
  for (const std::string& w : scan_report.to_warnings()) {
    xpdl::tools::warn("xpdld", w);
  }

  xpdl::net::HttpServer server(server_options);
  // /healthz reports "draining" the moment SIGTERM flips the server, so
  // load balancers stop routing before the listener closes.
  (*service)->set_draining_provider(
      [&server] { return server.draining(); });
  if (auto st = server.start([svc = service->get()](
                                 const xpdl::net::Request& request) {
        return svc->handle(request);
      });
      !st.is_ok()) {
    return fail(st);
  }
  PortFileGuard port_file_guard;
  if (!port_file.empty()) {
    if (auto st = xpdl::io::write_file(
            port_file, std::to_string(server.port()) + "\n");
        !st.is_ok()) {
      server.stop();
      return fail(st);
    }
    port_file_guard.path = port_file;
    xpdl::obs::FlightRecorder::set_crash_cleanup_path(port_file);
  }
  if (!quiet) {
    std::printf("xpdld: serving %zu descriptor(s) on http://%s:%u\n",
                (*service)->descriptor_count(), server_options.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Serve until a signal arrives or --max-requests trips request_stop().
  // SIGINT stops immediately; SIGTERM drains — the server sheds new
  // connections, finishes in-flight requests (bounded by
  // --drain-timeout-ms) and then stops itself, so we keep looping on
  // running() until the drain completes.
  bool draining = false;
  while (server.running()) {
    int signo = g_signal.load();
    if (signo == SIGINT) break;
    if (signo == SIGTERM && !draining) {
      draining = true;
      if (!quiet) {
        std::printf("xpdld: draining (SIGTERM), waiting for in-flight "
                    "requests\n");
        std::fflush(stdout);
      }
      server.request_drain();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::uint64_t served = server.served();
  server.stop();
  if (flight) {
    // The graceful-shutdown dump mirrors the crash path: the last thing
    // the daemon did is on disk either way.
    if (auto st = xpdl::obs::FlightRecorder::instance().dump(flight_dump);
        !st.is_ok()) {
      xpdl::tools::warn("xpdld", st.to_string());
    }
  }
  xpdl::obs::EventLog::instance().close();
  if (!quiet) {
    std::printf("xpdld: shut down after %llu request(s)\n",
                static_cast<unsigned long long>(served));
  }
  return 0;
}
