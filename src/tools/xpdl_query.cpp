// xpdl-query -- command-line inspector for runtime model files.
//
// Exercises the Runtime Query API (Sec. IV) from the shell:
//   xpdl-query FILE info                   # summary + analysis getters
//   xpdl-query FILE ls [ID]                # children of a node
//   xpdl-query FILE get ID [ATTR]          # attributes of a node
//   xpdl-query FILE find TAG               # all nodes of a kind
//   xpdl-query FILE installed PREFIX       # software availability check
//   xpdl-query FILE query EXPR             # query language, e.g.
//                                          #   //cache[@size>=64KiB]
#include <cstdio>
#include <string>

#include "tool_common.h"
#include "xpdl/obs/report.h"
#include "xpdl/query/query.h"
#include "xpdl/resilience/retry.h"
#include "xpdl/runtime/model.h"

namespace {

int fail(const xpdl::Status& status) {
  return xpdl::tools::fail_with("xpdl-query", status);
}

void print_node_line(const xpdl::runtime::Node& node) {
  std::printf("<%.*s>", static_cast<int>(node.tag().size()),
              node.tag().data());
  for (std::string_view attr : {"id", "name", "type"}) {
    auto v = node.attribute(attr);
    if (v.has_value()) {
      std::printf(" %.*s=\"%.*s\"", static_cast<int>(attr.size()),
                  attr.data(), static_cast<int>(v->size()), v->data());
    }
  }
  std::printf("  (%zu children)\n", node.child_count());
}

}  // namespace

int main(int argc, char** argv) {
  xpdl::obs::ToolSession obs("xpdl-query");
  xpdl::tools::ResilienceFlags rflags("xpdl-query");
  // Uniform flag surface: runtime model files already embed the composed
  // result, so the snapshot cache has nothing to do here, but the shared
  // perf flags are still accepted for scripting symmetry.
  xpdl::tools::PerfFlags pflags("xpdl-query");
  // The commands are positional; filter the observability, resilience
  // and perf flags out of argv first so they may appear anywhere.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse_flag(argc, argv, i) || rflags.parse_flag(argc, argv, i) ||
        pflags.parse_flag(argc, argv, i)) {
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (argc < 3) {
    std::fputs(
        "usage: xpdl-query [--stats] [--trace FILE.json] "
        "[--fault-plan SPEC] FILE\n"
        "                  (info | ls [ID] | get ID [ATTR] | find TAG "
        "| installed PREFIX | query EXPR)\n",
        stderr);
    return xpdl::tools::kExitUsage;
  }
  obs.begin();
  // Loading the runtime model file is the tool's only I/O; a transient
  // read failure (NFS hiccup, injected fault at site `runtime.load`)
  // is retried with backoff before giving up.
  xpdl::resilience::RetryPolicy retry;
  auto loaded = retry.run_result(
      "loading runtime model", [&]() -> xpdl::Result<xpdl::runtime::Model> {
        XPDL_RETURN_IF_ERROR(
            xpdl::resilience::FaultInjector::instance().check("runtime.load"));
        return xpdl::runtime::Model::load(argv[1]);
      });
  if (!loaded.is_ok()) return fail(loaded.status());
  const xpdl::runtime::Model& model = loaded.value();
  std::string cmd = argv[2];

  if (cmd == "info") {
    std::printf("nodes:              %zu\n", model.node_count());
    std::printf("cores:              %zu\n", model.count_cores());
    std::printf("devices:            %zu\n", model.count_devices());
    std::printf("cuda devices:       %zu\n", model.count_cuda_devices());
    std::printf("static power (W):   %.3f\n", model.total_static_power_w());
    auto stats = model.memory_stats();
    std::printf("arena bytes:        %zu (%zu strings)\n",
                stats.total_bytes(), stats.string_count);
    return 0;
  }
  if (cmd == "ls") {
    xpdl::runtime::Node node = model.root();
    if (argc >= 4) {
      auto found = model.find_by_id(argv[3]);
      if (!found.has_value()) {
        std::fprintf(stderr, "xpdl-query: no node with id '%s'\n", argv[3]);
        return 1;
      }
      node = *found;
    }
    print_node_line(node);
    for (std::size_t i = 0; i < node.child_count(); ++i) {
      std::printf("  [%zu] ", i);
      print_node_line(node.child(i));
    }
    return 0;
  }
  if (cmd == "get") {
    if (argc < 4) {
      std::fputs("xpdl-query: get requires an ID\n", stderr);
      return 2;
    }
    auto found = model.find_by_id(argv[3]);
    if (!found.has_value()) {
      std::fprintf(stderr, "xpdl-query: no node with id '%s'\n", argv[3]);
      return 1;
    }
    if (argc >= 5) {
      auto v = found->attribute(argv[4]);
      if (!v.has_value()) {
        std::fprintf(stderr, "xpdl-query: node has no attribute '%s'\n",
                     argv[4]);
        return 1;
      }
      std::printf("%.*s\n", static_cast<int>(v->size()), v->data());
      return 0;
    }
    print_node_line(*found);
    return 0;
  }
  if (cmd == "find") {
    if (argc < 4) {
      std::fputs("xpdl-query: find requires a TAG\n", stderr);
      return 2;
    }
    for (const xpdl::runtime::Node& n : model.find_all(argv[3])) {
      print_node_line(n);
    }
    return 0;
  }
  if (cmd == "query") {
    if (argc < 4) {
      std::fputs("xpdl-query: query requires an expression\n", stderr);
      return 2;
    }
    auto nodes = xpdl::query::select(model, argv[3]);
    if (!nodes.is_ok()) return fail(nodes.status());
    for (const xpdl::runtime::Node& n : *nodes) {
      print_node_line(n);
    }
    std::printf("%zu match(es)\n", nodes->size());
    return 0;
  }
  if (cmd == "installed") {
    if (argc < 4) {
      std::fputs("xpdl-query: installed requires a PREFIX\n", stderr);
      return 2;
    }
    bool has = model.has_installed(argv[3]);
    std::printf("%s\n", has ? "yes" : "no");
    return has ? 0 : 1;
  }
  std::fprintf(stderr, "xpdl-query: unknown command '%s'\n", cmd.c_str());
  return 2;
}
