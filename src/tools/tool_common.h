// Shared helpers for the XPDL command-line tools.
//
// Every tool reports failures in the same shape so that scripts (and
// humans) can parse diagnostics uniformly:
//
//   <tool>: error: <error-kind>: <message> [file:line:col]
//   <tool>: warning: <message>
//
// with the bracketed location omitted when the Status carries none.
//
// Exit-code contract (see docs/robustness.md):
//   0  success — including *degraded* success (some inputs quarantined or
//      skipped); every degradation is reported as a warning on stderr
//   1  data error: bad input the tool could not (or, under --strict, was
//      not allowed to) work around
//   2  usage error: bad command line
// Tool-specific refinements keep within these bands and are documented in
// each tool's header comment (xpdl-diff exits 1 when models differ;
// xpdl-lint exits 1 when lint errors were found).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "xpdl/repository/repository.h"
#include "xpdl/resilience/fault.h"
#include "xpdl/util/status.h"

namespace xpdl::tools {

inline constexpr int kExitOk = 0;         ///< success, possibly degraded
inline constexpr int kExitDataError = 1;  ///< bad input data
inline constexpr int kExitUsage = 2;      ///< bad command line

/// Renders `status` in the unified diagnostic format (no trailing \n).
inline std::string format_error(std::string_view tool,
                                const Status& status) {
  std::string out;
  out += tool;
  out += ": error: ";
  out += to_string(status.code());
  out += ": ";
  out += status.message();
  std::string loc = status.location().to_string();
  if (!loc.empty()) {
    out += " [";
    out += loc;
    out += "]";
  }
  return out;
}

/// Prints the unified diagnostic to stderr and returns `exit_code`,
/// so call sites can write `return fail_with(...)`.
inline int fail_with(std::string_view tool, const Status& status,
                     int exit_code = kExitDataError) {
  std::string line = format_error(tool, status);
  std::fprintf(stderr, "%s\n", line.c_str());
  return exit_code;
}

/// Prints a unified warning line to stderr (degraded-success reporting).
inline void warn(std::string_view tool, std::string_view message) {
  std::fprintf(stderr, "%.*s: warning: %.*s\n",
               static_cast<int>(tool.size()), tool.data(),
               static_cast<int>(message.size()), message.data());
}

/// Parses a worker-thread count from `--jobs`/`-j` or the XPDL_JOBS
/// environment variable: a positive decimal integer. Anything else —
/// including 0 and negative values — is a usage error (exit kExitUsage):
/// 0 would silently mean "default" and hide typos. `source` names where
/// the value came from ("--jobs", "XPDL_JOBS") for the diagnostic.
inline std::size_t parse_jobs_or_exit(std::string_view tool,
                                      std::string_view source,
                                      const char* text) {
  char* end = nullptr;
  unsigned long v = std::strtoul(text, &end, 10);
  bool digits = text[0] >= '0' && text[0] <= '9';
  if (!digits || end == text || *end != '\0' || v == 0) {
    std::fprintf(stderr,
                 "%.*s: invalid %.*s value '%s' (expected a positive "
                 "thread count)\n",
                 static_cast<int>(tool.size()), tool.data(),
                 static_cast<int>(source.size()), source.data(), text);
    std::exit(kExitUsage);
  }
  return static_cast<std::size_t>(v);
}

/// Worker-thread count from XPDL_JOBS (0 = unset, use the default).
/// Every place that accepts --jobs honours this variable, and an invalid
/// value exits with kExitUsage rather than silently misconfiguring a
/// scan or pool.
inline std::size_t jobs_from_env(std::string_view tool) {
  const char* env = std::getenv("XPDL_JOBS");
  if (env == nullptr || env[0] == '\0') return 0;
  return parse_jobs_or_exit(tool, "XPDL_JOBS", env);
}

/// Shared resilience flags. Construction installs any XPDL_FAULTS
/// environment plan into the process-wide FaultInjector (mirroring how
/// ToolSession honours XPDL_STATS/XPDL_TRACE); parse_flag() consumes
///
///   --fault-plan SPEC   install a fault plan (see docs/robustness.md)
///   --strict            fail fast instead of degrading
///   --keep-going        degrade harder: skip unmeasurable work
///
/// so every tool exposes the same resilience surface. A malformed spec
/// is a usage error: the tool exits with kExitUsage.
class ResilienceFlags {
 public:
  explicit ResilienceFlags(std::string tool_name)
      : tool_name_(std::move(tool_name)) {
    if (Status st = resilience::FaultInjector::install_from_env();
        !st.is_ok()) {
      std::exit(fail_with(tool_name_, st, kExitUsage));
    }
  }

  /// Consumes a resilience flag at argv[i], advancing i past any value.
  /// Returns false (leaving i untouched) for other options.
  bool parse_flag(int argc, char** argv, int& i) {
    std::string_view a = argv[i];
    if (a == "--strict") {
      strict_ = true;
      return true;
    }
    if (a == "--keep-going") {
      keep_going_ = true;
      return true;
    }
    if (a == "--fault-plan") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --fault-plan requires a SPEC argument\n",
                     tool_name_.c_str());
        std::exit(kExitUsage);
      }
      Status st =
          resilience::FaultInjector::instance().configure(argv[++i]);
      if (!st.is_ok()) {
        std::exit(fail_with(tool_name_, st, kExitUsage));
      }
      return true;
    }
    return false;
  }

  [[nodiscard]] bool strict() const noexcept { return strict_; }
  [[nodiscard]] bool keep_going() const noexcept { return keep_going_; }

 private:
  std::string tool_name_;
  bool strict_ = false;
  bool keep_going_ = false;
};

/// Shared fast-path flags (see docs/performance.md). parse_flag()
/// consumes
///
///   --no-cache       bypass the snapshot cache (read and write nothing;
///                    XPDL_NO_CACHE=1 has the same effect)
///   --cache-dir DIR  snapshot location (default: $XPDL_CACHE_DIR or
///                    <first repo root>/.xpdl.cache)
///   --jobs N         worker threads for the repository scan's parse
///                    phase (N >= 1; default: one per hardware thread).
///                    The XPDL_JOBS environment variable sets the same
///                    default everywhere --jobs is accepted; the flag
///                    wins when both are given.
///
/// so every tool exposes the same performance surface. The cache is on
/// by default in the tools: results are byte-identical warm or cold, so
/// there is nothing to opt into.
class PerfFlags {
 public:
  explicit PerfFlags(std::string tool_name)
      : tool_name_(std::move(tool_name)),
        threads_(jobs_from_env(tool_name_)) {}

  /// Consumes a perf flag at argv[i], advancing i past any value.
  /// Returns false (leaving i untouched) for other options.
  bool parse_flag(int argc, char** argv, int& i) {
    std::string_view a = argv[i];
    if (a == "--no-cache") {
      cache_.enabled = false;
      return true;
    }
    if (a == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --cache-dir requires a DIR argument\n",
                     tool_name_.c_str());
        std::exit(kExitUsage);
      }
      cache_.directory = argv[++i];
      return true;
    }
    if (a == "--jobs" || a == "-j") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a thread count\n",
                     tool_name_.c_str(), std::string(a).c_str());
        std::exit(kExitUsage);
      }
      threads_ = parse_jobs_or_exit(tool_name_, a, argv[++i]);
      return true;
    }
    return false;
  }

  /// Applies the flags to a repository scan.
  void apply(repository::ScanOptions& options) const {
    options.cache = cache_;
    options.threads = threads_;
  }

  [[nodiscard]] const cache::Options& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

 private:
  std::string tool_name_;
  cache::Options cache_{/*enabled=*/true, /*directory=*/{}};
  std::size_t threads_ = 0;
};

}  // namespace xpdl::tools
