// Shared helpers for the XPDL command-line tools.
//
// Every tool reports failures in the same shape so that scripts (and
// humans) can parse diagnostics uniformly:
//
//   <tool>: error: <error-kind>: <message> [file:line:col]
//
// with the bracketed location omitted when the Status carries none.
#pragma once

#include <cstdio>
#include <string>

#include "xpdl/util/status.h"

namespace xpdl::tools {

/// Renders `status` in the unified diagnostic format (no trailing \n).
inline std::string format_error(std::string_view tool,
                                const Status& status) {
  std::string out;
  out += tool;
  out += ": error: ";
  out += to_string(status.code());
  out += ": ";
  out += status.message();
  std::string loc = status.location().to_string();
  if (!loc.empty()) {
    out += " [";
    out += loc;
    out += "]";
  }
  return out;
}

/// Prints the unified diagnostic to stderr and returns `exit_code`,
/// so call sites can write `return fail_with(...)`.
inline int fail_with(std::string_view tool, const Status& status,
                     int exit_code = 1) {
  std::string line = format_error(tool, status);
  std::fprintf(stderr, "%s\n", line.c_str());
  return exit_code;
}

}  // namespace xpdl::tools
