// xpdl-diff -- semantic diff of two XPDL descriptors.
//
// Usage:
//   xpdl-diff --repo DIR REF_A REF_B          # two repository descriptors
//   xpdl-diff FILE_A FILE_B                   # two descriptor files
//
// Exit status (tool_common.h contract): 0 when equivalent, 1 when
// differences were found or an input could not be read, 2 usage.
// Repository scans degrade by default (quarantined files become warnings
// on stderr as long as both operands still resolve); --strict fails on
// the first bad repository file.
#include <cstdio>
#include <string>
#include <vector>

#include "tool_common.h"
#include "xpdl/diff/diff.h"
#include "xpdl/net/http_transport.h"
#include "xpdl/obs/report.h"
#include "xpdl/repository/repository.h"
#include "xpdl/xml/xml.h"

int main(int argc, char** argv) {
  std::vector<std::string> repos;
  std::vector<std::string> operands;
  xpdl::obs::ToolSession obs("xpdl-diff");
  xpdl::tools::ResilienceFlags rflags("xpdl-diff");
  xpdl::tools::PerfFlags pflags("xpdl-diff");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--repo" && i + 1 < argc) {
      repos.emplace_back(argv[++i]);
    } else if (obs.parse_flag(argc, argv, i) ||
               rflags.parse_flag(argc, argv, i) ||
               pflags.parse_flag(argc, argv, i)) {
      continue;
    } else {
      operands.emplace_back(argv[i]);
    }
  }
  if (operands.size() != 2) {
    std::fputs("usage: xpdl-diff [--repo DIR] [--stats] "
               "[--trace FILE.json] [--strict] [--fault-plan SPEC] "
               "[--no-cache] [--cache-dir DIR] [--jobs N] A B  "
               "(repository references when --repo is given, files "
               "otherwise)\n",
               stderr);
    return xpdl::tools::kExitUsage;
  }
  obs.begin();

  const xpdl::xml::Element* left = nullptr;
  const xpdl::xml::Element* right = nullptr;
  xpdl::xml::Document doc_a, doc_b;
  xpdl::repository::Repository repo(repos);
  // http:// --repo entries resolve against a remote xpdld repository.
  repo.set_transport(xpdl::net::make_http_aware_transport());
  if (!repos.empty()) {
    xpdl::repository::ScanOptions scan_options;
    scan_options.strict = rflags.strict();
    pflags.apply(scan_options);
    auto scan_report = repo.scan(scan_options);
    if (!scan_report.is_ok()) {
      return xpdl::tools::fail_with("xpdl-diff", scan_report.status(),
                                    xpdl::tools::kExitDataError);
    }
    for (const std::string& w : scan_report->to_warnings()) {
      xpdl::tools::warn("xpdl-diff", w);
    }
    auto la = repo.lookup(operands[0]);
    auto rb = repo.lookup(operands[1]);
    if (!la.is_ok() || !rb.is_ok()) {
      return xpdl::tools::fail_with(
          "xpdl-diff", !la.is_ok() ? la.status() : rb.status(),
          xpdl::tools::kExitDataError);
    }
    left = *la;
    right = *rb;
  } else {
    auto pa = xpdl::xml::parse_file(operands[0]);
    auto pb = xpdl::xml::parse_file(operands[1]);
    if (!pa.is_ok() || !pb.is_ok()) {
      return xpdl::tools::fail_with(
          "xpdl-diff", !pa.is_ok() ? pa.status() : pb.status(),
          xpdl::tools::kExitDataError);
    }
    doc_a = std::move(pa).value();
    doc_b = std::move(pb).value();
    left = doc_a.root.get();
    right = doc_b.root.get();
  }

  auto changes = xpdl::diff::diff(*left, *right);
  for (const auto& c : changes) {
    std::printf("%s\n", c.to_string().c_str());
  }
  std::printf("%zu difference(s)\n", changes.size());
  return changes.empty() ? xpdl::tools::kExitOk
                         : xpdl::tools::kExitDataError;
}
