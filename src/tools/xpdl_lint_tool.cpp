// xpdl-lint -- static analysis driver for XPDL model repositories.
//
// Usage:
//   xpdl-lint --repo DIR [--repo DIR]...
//             [--format=text|json|sarif] [--out FILE]
//             [--baseline FILE] [--write-baseline FILE]
//             [--disable=RULE]... [--Werror[=RULE]]... [--list-rules]
//             [--jobs N | --serial] [--no-models] [--no-unreferenced]
//             [--quiet] [--stats] [--trace FILE.json] [--strict]
//             [--keep-going] [--fault-plan SPEC]
//
// Findings (text) or the full report (json/sarif) go to stdout or --out;
// the one-line summary always goes to stderr. Exit status
// (tool_common.h contract): 0 clean or warnings/notes only, 1 when
// errors were found (quarantined files count as errors) or the
// repository could not be read, 2 usage. --strict promotes warnings to
// errors and aborts the scan on the first quarantined file.
#include <cstdio>
#include <string>
#include <vector>

#include "tool_common.h"
#include "xpdl/analysis/analysis.h"
#include "xpdl/analysis/sarif.h"
#include "xpdl/net/http_transport.h"
#include "xpdl/obs/report.h"
#include "xpdl/repository/repository.h"
#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"

namespace {

namespace analysis = xpdl::analysis;
namespace tools = xpdl::tools;

int usage() {
  std::fprintf(
      stderr,
      "usage: xpdl-lint --repo DIR [--repo DIR]...\n"
      "                 [--format=text|json|sarif] [--out FILE]\n"
      "                 [--baseline FILE] [--write-baseline FILE]\n"
      "                 [--disable=RULE]... [--Werror[=RULE]]...\n"
      "                 [--list-rules] [--jobs N | --serial] [--no-models]\n"
      "                 [--no-unreferenced] [--quiet] [--stats]\n"
      "                 [--trace FILE.json] [--strict] [--keep-going]\n"
      "                 [--fault-plan SPEC] [--no-cache] [--cache-dir DIR]\n");
  return tools::kExitUsage;
}

int list_rules() {
  std::printf("%-28s %-10s %-8s %s\n", "RULE", "SCOPE", "SEVERITY",
              "SUMMARY");
  for (const analysis::AnalysisRule* rule :
       analysis::Registry::instance().rules()) {
    const analysis::RuleInfo& info = rule->info();
    std::printf("%-28s %-10s %-8s %s\n", info.id.c_str(),
                std::string(analysis::to_string(info.scope)).c_str(),
                std::string(analysis::to_string(info.default_severity))
                    .c_str(),
                info.summary.c_str());
  }
  return tools::kExitOk;
}

int emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return tools::kExitOk;
  }
  if (xpdl::Status st = xpdl::io::write_file(out_path, text); !st.is_ok()) {
    return tools::fail_with("xpdl-lint", st, tools::kExitDataError);
  }
  return tools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> repos;
  analysis::Options options;
  std::string format = "text";
  std::string out_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool quiet = false;
  xpdl::obs::ToolSession obs("xpdl-lint");
  tools::ResilienceFlags rflags("xpdl-lint");
  tools::PerfFlags pflags("xpdl-lint");
  // XPDL_JOBS seeds the analysis pool too; --jobs / --serial override.
  options.threads = tools::jobs_from_env("xpdl-lint");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--repo" && i + 1 < argc) {
      repos.emplace_back(argv[++i]);
    } else if (a.rfind("--format=", 0) == 0) {
      format = std::string(a.substr(9));
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "xpdl-lint: unknown format '%s'\n",
                     format.c_str());
        return usage();
      }
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (a == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (a.rfind("--disable=", 0) == 0) {
      options.rules.disabled.emplace(a.substr(10));
    } else if (a == "--Werror") {
      options.rules.warnings_as_errors = true;
    } else if (a.rfind("--Werror=", 0) == 0) {
      options.rules.overrides.emplace(std::string(a.substr(9)),
                                      analysis::Severity::kError);
    } else if (a == "--list-rules") {
      return list_rules();
    } else if (a == "--jobs" && i + 1 < argc) {
      options.threads = tools::parse_jobs_or_exit("xpdl-lint", a, argv[++i]);
    } else if (a == "--serial") {
      options.threads = 1;
    } else if (a == "--no-models") {
      options.analyze_models = false;
    } else if (a == "--no-unreferenced") {
      options.rules.disabled.emplace("unreferenced-meta");
    } else if (a == "--quiet") {
      quiet = true;
    } else if (obs.parse_flag(argc, argv, i) ||
               rflags.parse_flag(argc, argv, i) ||
               pflags.parse_flag(argc, argv, i)) {
      // Note: xpdl-lint's own --jobs (analysis threads) is matched
      // above; PerfFlags contributes --no-cache / --cache-dir here.
      continue;
    } else {
      return usage();
    }
  }
  if (repos.empty()) {
    std::fputs("xpdl-lint: at least one --repo is required\n", stderr);
    return usage();
  }
  options.rules.warnings_as_errors |= rflags.strict();
  obs.begin();

  xpdl::repository::Repository repo(repos);
  // http:// --repo entries resolve against a remote xpdld repository.
  repo.set_transport(xpdl::net::make_http_aware_transport());
  xpdl::repository::ScanOptions scan_options;
  scan_options.strict = rflags.strict();
  pflags.apply(scan_options);
  if (options.threads != 0) scan_options.threads = options.threads;
  auto scan_report = repo.scan(scan_options);
  if (!scan_report.is_ok()) {
    return tools::fail_with("xpdl-lint", scan_report.status(),
                            tools::kExitDataError);
  }

  auto result = analysis::Engine(options).analyze_repository(repo);
  if (!result.is_ok()) {
    return tools::fail_with("xpdl-lint", result.status(),
                            tools::kExitDataError);
  }
  analysis::Report report = std::move(*result);

  // A quarantined file is a repository consistency error by definition;
  // report it through the registered rule so it reaches every format.
  if (const analysis::AnalysisRule* rule =
          analysis::Registry::instance().find("quarantined-file");
      rule != nullptr && options.rules.enabled(rule->info().id)) {
    analysis::Sink sink(options.rules, report.findings);
    for (const auto& q : scan_report->quarantined) {
      sink.report(rule->info(), "quarantined: " + q.reason.to_string(),
                  xpdl::SourceLocation{q.path, 0, 0});
    }
    report.sort();
  }

  if (!write_baseline_path.empty()) {
    analysis::Baseline baseline =
        analysis::Baseline::from_findings(report.findings);
    if (xpdl::Status st = xpdl::io::write_file(write_baseline_path,
                                               baseline.serialize());
        !st.is_ok()) {
      return tools::fail_with("xpdl-lint", st, tools::kExitDataError);
    }
    std::fprintf(stderr, "xpdl-lint: wrote baseline with %zu finding(s)\n",
                 baseline.size());
    return tools::kExitOk;
  }

  if (!baseline_path.empty()) {
    auto baseline = analysis::Baseline::load(baseline_path);
    if (!baseline.is_ok()) {
      return tools::fail_with("xpdl-lint", baseline.status(),
                              tools::kExitDataError);
    }
    report.apply_baseline(*baseline);
  }

  int emit_status = tools::kExitOk;
  if (format == "sarif") {
    emit_status = emit(analysis::write_sarif(report), out_path);
  } else if (format == "json") {
    emit_status =
        emit(xpdl::json::write(analysis::to_json(report), 2) + "\n",
             out_path);
  } else {
    std::string text;
    if (!quiet) {
      for (const auto& f : report.findings) {
        text += f.to_string();
        text += '\n';
      }
    }
    emit_status = emit(text, out_path);
  }
  if (emit_status != tools::kExitOk) return emit_status;

  std::size_t errors = report.count(analysis::Severity::kError);
  std::fprintf(stderr,
               "xpdl-lint: %zu descriptor(s), %zu model(s) composed: "
               "%s%s%s\n",
               report.descriptors, report.models_composed,
               report.summary().c_str(),
               report.suppressed > 0 ? ", " : "",
               report.suppressed > 0
                   ? (std::to_string(report.suppressed) + " suppressed")
                         .c_str()
                   : "");
  return errors > 0 ? tools::kExitDataError : tools::kExitOk;
}
