// xpdl-lint -- consistency checker for XPDL model repositories.
//
// Usage:
//   xpdl-lint --repo DIR [--repo DIR]... [--no-unreferenced] [--quiet]
//            [--stats] [--trace FILE.json]
//
// Exit status: 0 clean / notes only, 1 warnings, 2 errors, 3 usage.
#include <cstdio>
#include <string>
#include <vector>

#include "tool_common.h"
#include "xpdl/lint/lint.h"
#include "xpdl/obs/report.h"
#include "xpdl/repository/repository.h"

int main(int argc, char** argv) {
  std::vector<std::string> repos;
  xpdl::lint::Options options;
  bool quiet = false;
  xpdl::obs::ToolSession obs("xpdl-lint");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--repo" && i + 1 < argc) {
      repos.emplace_back(argv[++i]);
    } else if (a == "--no-unreferenced") {
      options.unreferenced_meta = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (obs.parse_flag(argc, argv, i)) {
      continue;
    } else {
      std::fprintf(stderr,
                   "usage: xpdl-lint --repo DIR [--repo DIR]... "
                   "[--no-unreferenced] [--quiet] [--stats] "
                   "[--trace FILE.json]\n");
      return 3;
    }
  }
  if (repos.empty()) {
    std::fputs("xpdl-lint: at least one --repo is required\n", stderr);
    return 3;
  }
  obs.begin();

  xpdl::repository::Repository repo(repos);
  if (auto st = repo.scan(); !st.is_ok()) {
    return xpdl::tools::fail_with("xpdl-lint", st, 2);
  }
  auto findings = xpdl::lint::lint_repository(repo, options);
  if (!findings.is_ok()) {
    return xpdl::tools::fail_with("xpdl-lint", findings.status(), 2);
  }
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const auto& f : *findings) {
    switch (f.severity) {
      case xpdl::lint::Severity::kError: ++errors; break;
      case xpdl::lint::Severity::kWarning: ++warnings; break;
      case xpdl::lint::Severity::kNote: ++notes; break;
    }
    if (!quiet) std::printf("%s\n", f.to_string().c_str());
  }
  std::printf("xpdl-lint: %zu descriptor(s): %zu error(s), %zu warning(s), "
              "%zu note(s)\n",
              repo.size(), errors, warnings, notes);
  if (errors > 0) return 2;
  if (warnings > 0) return 1;
  return 0;
}
