// xpdl-lint -- consistency checker for XPDL model repositories.
//
// Usage:
//   xpdl-lint --repo DIR [--repo DIR]... [--no-unreferenced] [--quiet]
//            [--stats] [--trace FILE.json] [--strict] [--fault-plan SPEC]
//
// Exit status (tool_common.h contract): 0 clean / warnings / notes only,
// 1 when lint errors were found or the repository could not be read,
// 2 usage. Quarantined repository files (unreadable or malformed) are
// reported as lint errors; --strict aborts on the first one instead.
#include <cstdio>
#include <string>
#include <vector>

#include "tool_common.h"
#include "xpdl/lint/lint.h"
#include "xpdl/obs/report.h"
#include "xpdl/repository/repository.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xpdl-lint --repo DIR [--repo DIR]... "
               "[--no-unreferenced] [--quiet] [--stats] "
               "[--trace FILE.json] [--strict] [--fault-plan SPEC]\n");
  return xpdl::tools::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> repos;
  xpdl::lint::Options options;
  bool quiet = false;
  xpdl::obs::ToolSession obs("xpdl-lint");
  xpdl::tools::ResilienceFlags rflags("xpdl-lint");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--repo" && i + 1 < argc) {
      repos.emplace_back(argv[++i]);
    } else if (a == "--no-unreferenced") {
      options.unreferenced_meta = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (obs.parse_flag(argc, argv, i) ||
               rflags.parse_flag(argc, argv, i)) {
      continue;
    } else {
      return usage();
    }
  }
  if (repos.empty()) {
    std::fputs("xpdl-lint: at least one --repo is required\n", stderr);
    return usage();
  }
  obs.begin();

  xpdl::repository::Repository repo(repos);
  xpdl::repository::ScanOptions scan_options;
  scan_options.strict = rflags.strict();
  auto scan_report = repo.scan(scan_options);
  if (!scan_report.is_ok()) {
    return xpdl::tools::fail_with("xpdl-lint", scan_report.status(),
                                  xpdl::tools::kExitDataError);
  }
  auto findings = xpdl::lint::lint_repository(repo, options);
  if (!findings.is_ok()) {
    return xpdl::tools::fail_with("xpdl-lint", findings.status(),
                                  xpdl::tools::kExitDataError);
  }
  std::size_t errors = 0, warnings = 0, notes = 0;
  // A quarantined file is a repository consistency error by definition —
  // count it with the findings so the summary and exit code reflect it.
  for (const auto& q : scan_report->quarantined) {
    ++errors;
    if (!quiet) {
      std::printf("error: quarantined '%s': %s\n", q.path.c_str(),
                  q.reason.to_string().c_str());
    }
  }
  for (const auto& f : *findings) {
    switch (f.severity) {
      case xpdl::lint::Severity::kError: ++errors; break;
      case xpdl::lint::Severity::kWarning: ++warnings; break;
      case xpdl::lint::Severity::kNote: ++notes; break;
    }
    if (!quiet) std::printf("%s\n", f.to_string().c_str());
  }
  std::printf("xpdl-lint: %zu descriptor(s): %zu error(s), %zu warning(s), "
              "%zu note(s)\n",
              repo.size(), errors, warnings, notes);
  return errors > 0 ? xpdl::tools::kExitDataError : xpdl::tools::kExitOk;
}
