// xpdl-trace -- stitch per-process Chrome trace files into one timeline.
//
// Usage:
//   xpdl-trace merge [-o OUT.json] FILE.json...
//
// Every xpdl tool and xpdld can write a Chrome trace_event file for its
// own process (--trace / --trace-file). When a request crosses processes
// — xpdlc fetching descriptors from a remote xpdld — each side records
// its half, stamped with extension keys the Chrome viewer ignores:
// `xpdlBaseUnixUs` (wall clock at trace start) and the flow events
// emitted at traceparent injection/adoption points. `merge` loads the
// files, gives each process a distinct pid, aligns their relative
// timestamps on the shared wall clock, and concatenates the events, so
// chrome://tracing or ui.perfetto.dev shows the server's compose/cache
// spans under the client's fetch span, connected by flow arrows.
//
// Exit status: 0 merged, 1 unreadable/unparseable input, 2 usage.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "xpdl/util/io.h"
#include "xpdl/util/json.h"
#include "xpdl/util/status.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitDataError = 1;
constexpr int kExitUsage = 2;

int usage() {
  std::fputs("usage: xpdl-trace merge [-o OUT.json] FILE.json...\n", stderr);
  return kExitUsage;
}

/// One input trace file, decoded.
struct InputTrace {
  std::string path;
  std::string process_name;
  double base_unix_us = 0.0;
  xpdl::json::Array events;
};

[[nodiscard]] double number_or(const xpdl::json::Value& doc,
                               std::string_view key, double fallback) {
  const xpdl::json::Value* v = doc.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string_view(argv[1]) != "merge") return usage();
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "-o" || a == "--output") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<InputTrace> traces;
  traces.reserve(inputs.size());
  for (const std::string& path : inputs) {
    auto text = xpdl::io::read_file(path);
    if (!text.is_ok()) {
      std::fprintf(stderr, "xpdl-trace: error: %s\n",
                   text.status().to_string().c_str());
      return kExitDataError;
    }
    auto doc = xpdl::json::parse(*text);
    if (!doc.is_ok()) {
      std::fprintf(stderr, "xpdl-trace: error: %s: %s\n", path.c_str(),
                   doc.status().to_string().c_str());
      return kExitDataError;
    }
    InputTrace in;
    in.path = path;
    in.base_unix_us = number_or(*doc, "xpdlBaseUnixUs", 0.0);
    const xpdl::json::Value* name = doc->find("xpdlProcessName");
    in.process_name = (name != nullptr && name->is_string())
                          ? name->as_string()
                          : path;
    const xpdl::json::Value* events = doc->find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "xpdl-trace: error: %s: no traceEvents array\n",
                   path.c_str());
      return kExitDataError;
    }
    in.events = events->as_array();
    traces.push_back(std::move(in));
  }

  // Align on the earliest wall-clock base; files without a base (foreign
  // Chrome traces) keep their own timeline and get a warning.
  double min_base = 0.0;
  for (const InputTrace& t : traces) {
    if (t.base_unix_us > 0.0 &&
        (min_base == 0.0 || t.base_unix_us < min_base)) {
      min_base = t.base_unix_us;
    }
  }

  xpdl::json::Array merged;
  std::set<std::string> flow_starts;
  std::set<std::string> flow_ends;
  for (std::size_t pi = 0; pi < traces.size(); ++pi) {
    InputTrace& t = traces[pi];
    double shift = 0.0;
    if (t.base_unix_us > 0.0) {
      shift = t.base_unix_us - min_base;
    } else {
      std::fprintf(stderr,
                   "xpdl-trace: warning: %s has no xpdlBaseUnixUs; its "
                   "timestamps are not aligned with the other files\n",
                   t.path.c_str());
    }
    std::uint64_t pid = pi + 1;
    bool has_process_meta = false;
    for (xpdl::json::Value& ev : t.events) {
      ev["pid"] = pid;
      const xpdl::json::Value* ph = ev.find("ph");
      std::string phase =
          (ph != nullptr && ph->is_string()) ? ph->as_string() : "";
      if (phase == "M") {
        const xpdl::json::Value* mname = ev.find("name");
        if (mname != nullptr && mname->is_string() &&
            mname->as_string() == "process_name") {
          has_process_meta = true;
        }
        merged.push_back(std::move(ev));
        continue;
      }
      const xpdl::json::Value* ts = ev.find("ts");
      if (ts != nullptr && ts->is_number()) {
        ev["ts"] = ts->as_number() + shift;
      }
      const xpdl::json::Value* id = ev.find("id");
      if (id != nullptr && id->is_string()) {
        if (phase == "s") flow_starts.insert(id->as_string());
        if (phase == "f") flow_ends.insert(id->as_string());
      }
      merged.push_back(std::move(ev));
    }
    if (!has_process_meta) {
      xpdl::json::Value meta;
      meta["name"] = "process_name";
      meta["ph"] = "M";
      meta["pid"] = pid;
      meta["tid"] = 0;
      meta["args"]["name"] = t.process_name;
      merged.push_back(std::move(meta));
    }
  }

  std::size_t linked = 0;
  for (const std::string& id : flow_ends) {
    if (flow_starts.count(id) != 0) ++linked;
  }
  std::fprintf(stderr,
               "xpdl-trace: merged %zu file(s), %zu event(s), %zu "
               "cross-process flow edge(s) linked\n",
               traces.size(), merged.size(), linked);

  xpdl::json::Value doc;
  doc["traceEvents"] = xpdl::json::Value(std::move(merged));
  doc["displayTimeUnit"] = "ms";
  doc["xpdlMergedFrom"] = [&] {
    xpdl::json::Array from;
    for (const InputTrace& t : traces) from.push_back(t.process_name);
    return xpdl::json::Value(std::move(from));
  }();
  std::string text = xpdl::json::write(doc, 1) + "\n";
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else if (xpdl::Status st = xpdl::io::write_file(out_path, text);
             !st.is_ok()) {
    std::fprintf(stderr, "xpdl-trace: error: %s\n", st.to_string().c_str());
    return kExitDataError;
  }
  return kExitOk;
}
