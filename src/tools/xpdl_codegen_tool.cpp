// xpdl-codegen -- generates the C++ Query-API classes and the shareable
// XML schema from the built-in XPDL core metamodel (Sec. IV).
//
// Usage:
//   xpdl-codegen --out HEADER.h [--schema-out SCHEMA.xml] [--ns NAMESPACE]
//                [--stats] [--trace FILE.json] [--fault-plan SPEC]
//
// Output writes go through the retry policy (fault site `codegen.write`):
// a transient filesystem failure is retried with backoff before the tool
// gives up with exit 1.
#include <cstdio>
#include <string>

#include "tool_common.h"
#include "xpdl/codegen/codegen.h"
#include "xpdl/obs/report.h"
#include "xpdl/resilience/retry.h"
#include "xpdl/schema/schema.h"
#include "xpdl/util/io.h"

namespace {

xpdl::Status write_with_retry(const std::string& path,
                              const std::string& content) {
  xpdl::resilience::RetryPolicy retry;
  return retry.run("writing '" + path + "'", [&]() -> xpdl::Status {
    XPDL_RETURN_IF_ERROR(
        xpdl::resilience::FaultInjector::instance().check("codegen.write"));
    return xpdl::io::write_file(path, content);
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  std::string schema_out;
  std::string doc_out;
  std::string ns = "xpdl::generated";
  xpdl::obs::ToolSession obs("xpdl-codegen");
  xpdl::tools::ResilienceFlags rflags("xpdl-codegen");
  // Uniform flag surface: codegen scans no repository, but still accepts
  // the shared perf flags so wrappers can pass one flag set everywhere.
  xpdl::tools::PerfFlags pflags("xpdl-codegen");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--out") {
      const char* v = next();
      if (v == nullptr) break;
      out = v;
    } else if (a == "--schema-out") {
      const char* v = next();
      if (v == nullptr) break;
      schema_out = v;
    } else if (a == "--doc") {
      const char* v = next();
      if (v == nullptr) break;
      doc_out = v;
    } else if (a == "--ns") {
      const char* v = next();
      if (v == nullptr) break;
      ns = v;
    } else if (obs.parse_flag(argc, argv, i) ||
               rflags.parse_flag(argc, argv, i) ||
               pflags.parse_flag(argc, argv, i)) {
      continue;
    } else {
      std::fprintf(stderr, "xpdl-codegen: unknown option '%s'\n", argv[i]);
      return xpdl::tools::kExitUsage;
    }
  }
  if (out.empty() && schema_out.empty() && doc_out.empty()) {
    std::fputs(
        "usage: xpdl-codegen [--out HEADER.h] [--schema-out SCHEMA.xml] "
        "[--doc REFERENCE.md] [--ns NAMESPACE] [--stats] "
        "[--trace FILE.json] [--fault-plan SPEC]\n",
        stderr);
    return xpdl::tools::kExitUsage;
  }
  obs.begin();
  const xpdl::schema::Schema& schema = xpdl::schema::Schema::core();
  if (!out.empty()) {
    if (auto st =
            write_with_retry(out, xpdl::codegen::generate_header(schema, ns));
        !st.is_ok()) {
      return xpdl::tools::fail_with("xpdl-codegen", st);
    }
    std::printf("xpdl-codegen: wrote %s (%zu element kinds)\n", out.c_str(),
                schema.elements().size());
  }
  if (!doc_out.empty()) {
    if (auto st =
            write_with_retry(doc_out, xpdl::codegen::generate_markdown(schema));
        !st.is_ok()) {
      return xpdl::tools::fail_with("xpdl-codegen", st);
    }
    std::printf("xpdl-codegen: wrote %s\n", doc_out.c_str());
  }
  if (!schema_out.empty()) {
    if (auto st = write_with_retry(schema_out, schema.to_xml());
        !st.is_ok()) {
      return xpdl::tools::fail_with("xpdl-codegen", st);
    }
    std::printf("xpdl-codegen: wrote %s\n", schema_out.c_str());
  }
  return xpdl::tools::kExitOk;
}
