// xpdlc -- the XPDL processing tool (Sec. IV).
//
// Browses the model repository for all XPDL files recursively referenced
// from a concrete model, parses them, composes the model, optionally
// generates microbenchmark driver code and bootstraps unspecified energy
// entries (against the simulated sensor machine), runs the static
// analyses, and writes the light-weight runtime data structure to a file
// for xpdl_init() / the Query API.
//
// Usage:
//   xpdlc --repo DIR [--repo DIR]... (--model REF | --file PATH)
//         [--out FILE.xpdlrt] [--bootstrap] [--drivers DIR]
//         [--configurations[=all|first]]
//         [--print-xml] [--quiet] [--stats] [--trace FILE.json]
//         [--strict] [--keep-going] [--fault-plan SPEC]
//
// Degradation: unreadable/malformed repository files are quarantined with
// a warning and the rest of the repository still serves (exit 0);
// --strict restores fail-fast (exit 1 on the first bad file). With
// --bootstrap --keep-going, instructions that stay unmeasurable after all
// retries are reported and skipped instead of failing the run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tool_common.h"
#include "xpdl/analysis/analysis.h"
#include "xpdl/compose/compose.h"
#include "xpdl/microbench/bootstrap.h"
#include "xpdl/microbench/drivergen.h"
#include "xpdl/microbench/simmachine.h"
#include "xpdl/model/power.h"
#include "xpdl/net/http_transport.h"
#include "xpdl/obs/report.h"
#include "xpdl/opt/engine.h"
#include "xpdl/util/expr.h"
#include "xpdl/pdl/pdl.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"
#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"
#include "xpdl/views/views.h"
#include "xpdl/xml/xml.h"

namespace {

struct Args {
  std::vector<std::string> repos;
  std::string model_ref;
  std::string file;
  std::string pdl_file;
  std::string out;
  std::string drivers_dir;
  std::string dot_out;
  std::string uml_out;
  std::string configurations;  ///< "", "all", "first" or "best"
  std::size_t best_n = 1;      ///< N of --configurations=best:N
  std::string objective;       ///< expression for --configurations=best
  std::string optimize;        ///< "", "energy", "makespan" or "pareto"
  double cycles = 1e9;         ///< work per power domain for --optimize
  double deadline_s = 0.0;     ///< makespan limit for --optimize (0 = none)
  bool bootstrap = false;
  bool analyze = false;
  bool print_xml = false;
  bool quiet = false;
};

void usage() {
  std::fputs(
      "usage: xpdlc --repo DIR [--repo DIR]... \n"
      "             (--model REF | --file PATH | --pdl PDL_FILE)\n"
      "             [--out FILE.xpdlrt] [--bootstrap] [--analyze]\n"
      "             [--drivers DIR]\n"
      "             [--dot FILE.dot] [--uml FILE.puml] [--print-xml]\n"
      "             [--configurations[=all|first|best[:N]]]\n"
      "             [--objective EXPR]\n"
      "             [--optimize=energy|makespan|pareto]\n"
      "             [--cycles N] [--deadline SECONDS]\n"
      "             [--quiet] [--stats] [--trace FILE.json]\n"
      "             [--strict] [--keep-going] [--fault-plan SPEC]\n"
      "             [--no-cache] [--cache-dir DIR] [--jobs N]\n",
      stderr);
}

int fail(const xpdl::Status& status) {
  return xpdl::tools::fail_with("xpdlc", status);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  xpdl::obs::ToolSession obs("xpdlc");
  xpdl::tools::ResilienceFlags rflags("xpdlc");
  xpdl::tools::PerfFlags pflags("xpdlc");
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--repo") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.repos.emplace_back(v);
    } else if (a == "--model") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.model_ref = v;
    } else if (a == "--file") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.file = v;
    } else if (a == "--pdl") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.pdl_file = v;
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.out = v;
    } else if (a == "--drivers") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.drivers_dir = v;
    } else if (a == "--dot") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.dot_out = v;
    } else if (a == "--uml") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.uml_out = v;
    } else if (a == "--configurations" || a == "--configurations=all") {
      args.configurations = "all";
    } else if (a == "--configurations=first") {
      args.configurations = "first";
    } else if (a.rfind("--configurations=best", 0) == 0) {
      args.configurations = "best";
      std::string_view rest = a.substr(std::strlen("--configurations=best"));
      if (!rest.empty()) {
        if (rest[0] != ':') { usage(); return 2; }
        char* end = nullptr;
        args.best_n = std::strtoul(rest.data() + 1, &end, 10);
        if (end != rest.data() + rest.size() || args.best_n == 0) {
          usage();
          return 2;
        }
      }
    } else if (a == "--objective") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.objective = v;
    } else if (a == "--optimize=energy" || a == "--optimize=makespan" ||
               a == "--optimize=pareto") {
      args.optimize = a.substr(std::strlen("--optimize="));
    } else if (a == "--cycles") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.cycles = std::strtod(v, nullptr);
    } else if (a == "--deadline") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      args.deadline_s = std::strtod(v, nullptr);
    } else if (a == "--bootstrap") {
      args.bootstrap = true;
    } else if (a == "--analyze") {
      args.analyze = true;
    } else if (a == "--print-xml") {
      args.print_xml = true;
    } else if (a == "--quiet") {
      args.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (obs.parse_flag(argc, argv, i) ||
               rflags.parse_flag(argc, argv, i) ||
               pflags.parse_flag(argc, argv, i)) {
      continue;
    } else {
      std::fprintf(stderr, "xpdlc: unknown option '%s'\n", argv[i]);
      usage();
      return 2;
    }
  }
  int inputs = (!args.model_ref.empty() ? 1 : 0) +
               (!args.file.empty() ? 1 : 0) +
               (!args.pdl_file.empty() ? 1 : 0);
  if (inputs != 1) {
    usage();
    return 2;
  }
  obs.begin();

  xpdl::repository::Repository repo(args.repos);
  // http:// entries in the search path resolve against a remote xpdld
  // repository; plain directories keep using the local transport.
  repo.set_transport(xpdl::net::make_http_aware_transport());
  xpdl::repository::ScanOptions scan_options;
  scan_options.strict = rflags.strict();
  pflags.apply(scan_options);
  auto scan_report = repo.scan(scan_options);
  if (!scan_report.is_ok()) return fail(scan_report.status());
  for (const std::string& w : scan_report->to_warnings()) {
    xpdl::tools::warn("xpdlc", w);
  }
  if (!args.quiet) {
    std::printf("xpdlc: indexed %zu descriptor(s) from %zu repository "
                "root(s)",
                repo.size(), args.repos.size());
    if (scan_report->degraded()) {
      std::printf(" (%zu quarantined)", scan_report->quarantined.size());
    }
    std::printf("\n");
  }

  std::string ref = args.model_ref;
  if (!args.pdl_file.empty()) {
    // PDL compatibility path: import the PEPPHER-PDL platform and
    // register the resulting XPDL system in the repository.
    auto text = xpdl::io::read_file(args.pdl_file);
    if (!text.is_ok()) return fail(text.status());
    xpdl::pdl::ImportReport import_report;
    auto imported =
        xpdl::pdl::import_platform_text(*text, &import_report);
    if (!imported.is_ok()) return fail(imported.status());
    if (!args.quiet) {
      std::printf("xpdlc: imported PDL platform (%zu PU(s), %zu memory "
                  "region(s), %zu interconnect(s); %zu properties "
                  "promoted)\n",
                  import_report.processing_units,
                  import_report.memory_regions,
                  import_report.interconnects,
                  import_report.promoted_properties);
      for (const std::string& n : import_report.notes) {
        std::printf("xpdlc: note: %s\n", n.c_str());
      }
    }
    auto registered = repo.add_descriptor(std::move(imported).value());
    if (!registered.is_ok()) return fail(registered.status());
    ref = std::string((*registered)->attribute_or("id", ""));
  }
  if (!args.file.empty()) {
    auto loaded = repo.load_file(args.file);
    if (!loaded.is_ok()) return fail(loaded.status());
    ref = std::string(loaded.value()->attribute_or(
        "id", loaded.value()->attribute_or("name", "")));
  }

  if (!args.configurations.empty()) {
    // Configuration-space mode: solve the declared parameter space of the
    // referenced meta-model instead of composing it. `first` searches for
    // one witness (branch-and-prune, no enumeration); `all` enumerates the
    // propagation-pruned space.
    auto meta = repo.lookup(ref);
    if (!meta.is_ok()) return fail(meta.status());
    auto print_configuration = [](const xpdl::compose::Configuration& c) {
      std::string line;
      for (const auto& [name, value] : c.values_si) {
        if (!line.empty()) line += ", ";
        line += name + " = " + xpdl::strings::format("%g", value);
      }
      std::printf("  %s\n", line.c_str());
    };
    if (args.configurations == "best") {
      // Ranked mode: branch-and-bound over the declared space, no
      // enumeration — the N best valid configurations by the objective.
      if (args.objective.empty()) {
        std::fprintf(stderr,
                     "xpdlc: --configurations=best needs --objective EXPR\n");
        return 2;
      }
      auto objective = xpdl::expr::Expression::parse(args.objective);
      if (!objective.is_ok()) return fail(objective.status());
      auto ranked = xpdl::opt::rank_configurations(**meta, &repo, *objective,
                                                   args.best_n);
      if (!ranked.is_ok()) return fail(ranked.status());
      if (ranked->empty()) {
        std::printf("xpdlc: '%s' has no valid configuration\n", ref.c_str());
        return 0;
      }
      std::printf("xpdlc: best %zu configuration(s) of '%s' by '%s':\n",
                  ranked->size(), ref.c_str(), args.objective.c_str());
      for (const auto& rc : *ranked) {
        std::string line;
        for (const auto& [name, value] : rc.values_si) {
          if (!line.empty()) line += ", ";
          line += name + " = " + xpdl::strings::format("%g", value);
        }
        std::printf("  objective = %g: %s\n", rc.objective, line.c_str());
      }
      return 0;
    }
    if (args.configurations == "first") {
      auto first = xpdl::compose::first_configuration(**meta, &repo);
      if (!first.is_ok()) return fail(first.status());
      if (!first->has_value()) {
        std::printf("xpdlc: '%s' has no valid configuration\n", ref.c_str());
      } else {
        std::printf("xpdlc: first valid configuration of '%s':\n",
                    ref.c_str());
        print_configuration(**first);
      }
      return 0;
    }
    auto configs = xpdl::compose::enumerate_configurations(**meta, &repo);
    if (!configs.is_ok()) return fail(configs.status());
    std::printf("xpdlc: '%s' has %zu valid configuration(s)\n", ref.c_str(),
                configs->size());
    for (const auto& c : *configs) print_configuration(c);
    return 0;
  }

  xpdl::compose::Composer composer(repo);

  // The common compile invocation -- only --out consumes the composed
  // tree -- goes through the cached artifact fast path: a warm run
  // re-hashes the repository and copies the serialized runtime model
  // without composing anything, while printing the same output (compose
  // warnings and summary counts are replayed from the snapshot).
  const bool out_only = !args.out.empty() && !args.analyze &&
                        args.drivers_dir.empty() && !args.bootstrap &&
                        args.dot_out.empty() && args.uml_out.empty() &&
                        !args.print_xml && args.optimize.empty();
  if (out_only) {
    auto artifact = composer.compose_runtime(ref);
    if (!artifact.is_ok()) return fail(artifact.status());
    if (!args.quiet) {
      std::printf("xpdlc: composed '%s': %zu elements, %zu id(s)\n",
                  ref.c_str(), artifact->element_count, artifact->id_count);
      for (const std::string& w : artifact->warnings) {
        std::printf("xpdlc: note: %s\n", w.c_str());
      }
    }
    if (auto st = xpdl::io::write_file(args.out, artifact->bytes);
        !st.is_ok()) {
      return fail(st);
    }
    if (!args.quiet) {
      std::printf("xpdlc: wrote runtime model (%zu nodes) to %s\n",
                  artifact->node_count, args.out.c_str());
    }
    return 0;
  }

  auto composed = composer.compose(ref);
  if (!composed.is_ok()) return fail(composed.status());
  if (!args.quiet) {
    std::printf("xpdlc: composed '%s': %zu elements, %zu id(s)\n",
                ref.c_str(), composed->root().subtree_size(),
                composed->ids().size());
    for (const std::string& w : composed->warnings()) {
      std::printf("xpdlc: note: %s\n", w.c_str());
    }
  }

  if (!args.optimize.empty()) {
    // DVFS optimization over the composed model's power state machines
    // (Sec. V): pick a power state per domain instance minimizing the
    // requested objective under the optional deadline.
    auto engine = xpdl::opt::Engine::from_element(composed->root());
    if (!engine.is_ok()) return fail(engine.status());
    xpdl::opt::DvfsQuery query;
    query.cycles = args.cycles;
    query.deadline_s = args.deadline_s;
    if (args.optimize == "pareto") {
      auto front = engine->pareto(query);
      if (!front.is_ok()) return fail(front.status());
      std::printf("xpdlc: energy/makespan Pareto front of '%s' "
                  "(%zu point(s), cycles=%g):\n",
                  ref.c_str(), front->size(), args.cycles);
      for (const auto& plan : *front) {
        std::string states;
        for (const auto& d : plan.per_domain) {
          if (!states.empty()) states += ", ";
          states += d.domain + "=" + d.state;
        }
        std::printf("  energy %.6g J, makespan %.6g s: %s\n", plan.energy_j,
                    plan.time_s, states.c_str());
      }
    } else if (args.optimize == "energy") {
      auto plan = engine->minimize_energy(query);
      if (!plan.is_ok()) return fail(plan.status());
      if (!plan->feasible) {
        std::printf("xpdlc: no power-state assignment of '%s' meets the "
                    "deadline of %g s\n",
                    ref.c_str(), args.deadline_s);
        return xpdl::tools::kExitDataError;
      }
      std::printf("xpdlc: minimum-energy plan for '%s' (cycles=%g%s):\n",
                  ref.c_str(), args.cycles,
                  args.deadline_s > 0.0
                      ? xpdl::strings::format(", deadline=%g s",
                                              args.deadline_s)
                            .c_str()
                      : "");
      for (const auto& d : plan->per_domain) {
        std::printf("  %s: %s (%.6g s, %.6g J)\n", d.domain.c_str(),
                    d.state.c_str(), d.time_s, d.energy_j);
      }
      std::printf("  total energy %.6g J, makespan %.6g s\n", plan->energy_j,
                  plan->time_s);
    } else {  // makespan
      auto problem = engine->compile(query);
      if (!problem.is_ok()) return fail(problem.status());
      xpdl::opt::Optimizer optimizer;
      auto result = optimizer.minimize(
          *problem, xpdl::opt::Engine::kMakespanObjective);
      if (!result.is_ok()) return fail(result.status());
      if (!result->best.has_value()) {
        std::printf("xpdlc: '%s' has no feasible power-state assignment\n",
                    ref.c_str());
        return xpdl::tools::kExitDataError;
      }
      std::printf("xpdlc: minimum-makespan plan for '%s' (cycles=%g):\n",
                  ref.c_str(), args.cycles);
      for (const auto& [domain, state] : result->best->assignment) {
        std::printf("  %s: %s\n", domain.c_str(), state.c_str());
      }
      std::printf(
          "  makespan %.6g s, energy %.6g J\n", result->best->value,
          result->best->values[xpdl::opt::Engine::kEnergyObjective]);
    }
  }

  if (args.analyze) {
    // Diagnostic passes over the elaborated model: the descriptor-scope
    // rules on the composed tree plus the model-scope invariants
    // (bandwidth downgrade, Sec. IV).
    xpdl::analysis::Options aopts;
    aopts.rules.warnings_as_errors = rflags.strict();
    xpdl::analysis::Engine engine(aopts);
    xpdl::analysis::Report areport;
    areport.findings = engine.analyze_descriptor(composed->root());
    std::vector<xpdl::analysis::Finding> model_findings =
        engine.analyze_model(*composed, ref);
    areport.findings.insert(areport.findings.end(),
                            std::make_move_iterator(model_findings.begin()),
                            std::make_move_iterator(model_findings.end()));
    areport.sort();
    if (!args.quiet) {
      for (const auto& f : areport.findings) {
        std::printf("%s\n", f.to_string().c_str());
      }
    }
    std::fprintf(stderr, "xpdlc: analyze '%s': %s\n", ref.c_str(),
                 areport.summary().c_str());
    if (areport.count(xpdl::analysis::Severity::kError) > 0) {
      return xpdl::tools::kExitDataError;
    }
  }

  if (!args.drivers_dir.empty()) {
    // Emit driver code for every microbenchmark suite in the model.
    std::vector<const xpdl::xml::Element*> stack = {&composed->root()};
    std::size_t suites = 0;
    while (!stack.empty()) {
      const xpdl::xml::Element* e = stack.back();
      stack.pop_back();
      for (const auto& c : e->children()) stack.push_back(c.get());
      if (e->tag() != "microbenchmarks") continue;
      auto suite = xpdl::model::MicrobenchmarkSuite::parse(*e);
      if (!suite.is_ok()) return fail(suite.status());
      std::string dir = args.drivers_dir + "/" + suite->id;
      if (auto st = xpdl::microbench::generate_driver_tree(*suite, dir);
          !st.is_ok()) {
        return fail(st);
      }
      ++suites;
    }
    if (!args.quiet) {
      std::printf("xpdlc: generated driver code for %zu suite(s) in %s\n",
                  suites, args.drivers_dir.c_str());
    }
  }

  if (args.bootstrap) {
    xpdl::microbench::SimMachine machine(
        xpdl::microbench::SimMachineConfig{},
        xpdl::microbench::paper_x86_ground_truth());
    xpdl::microbench::BootstrapOptions opts;
    opts.frequencies_hz = {2.8e9, 2.9e9, 3.0e9, 3.1e9, 3.2e9, 3.3e9, 3.4e9};
    opts.keep_going = rflags.keep_going();
    xpdl::microbench::Bootstrapper bootstrapper(machine, opts);
    auto report = bootstrapper.bootstrap_model(composed->mutable_root());
    if (!report.is_ok()) return fail(report.status());
    composed->reindex();
    for (const auto& um : report->unmeasurable) {
      xpdl::tools::warn("xpdlc", "instruction '" + um.instruction +
                                     "' left unmeasured: " +
                                     um.reason.to_string());
    }
    if (!args.quiet) {
      std::printf("xpdlc: bootstrapped %zu instruction(s) (%zu already "
                  "specified), background power %.2f W",
                  report->measured_instructions,
                  report->skipped_instructions,
                  report->estimated_static_power_w);
      if (report->degraded()) {
        std::printf(" (%zu unmeasurable)", report->unmeasurable.size());
      }
      std::printf("\n");
    }
  }

  if (!args.dot_out.empty()) {
    if (auto st = xpdl::io::write_file(args.dot_out,
                                       xpdl::views::to_dot(*composed));
        !st.is_ok()) {
      return fail(st);
    }
    if (!args.quiet) {
      std::printf("xpdlc: wrote Graphviz view to %s\n",
                  args.dot_out.c_str());
    }
  }
  if (!args.uml_out.empty()) {
    if (auto st = xpdl::io::write_file(
            args.uml_out, xpdl::views::to_plantuml(composed->root()));
        !st.is_ok()) {
      return fail(st);
    }
    if (!args.quiet) {
      std::printf("xpdlc: wrote PlantUML view to %s\n",
                  args.uml_out.c_str());
    }
  }

  if (args.print_xml) {
    std::fputs(xpdl::xml::write(composed->root()).c_str(), stdout);
  }

  if (!args.out.empty()) {
    auto rt = xpdl::runtime::Model::from_composed(*composed);
    if (!rt.is_ok()) return fail(rt.status());
    if (auto st = rt->save(args.out); !st.is_ok()) return fail(st);
    if (!args.quiet) {
      std::printf("xpdlc: wrote runtime model (%zu nodes) to %s\n",
                  rt->node_count(), args.out.c_str());
    }
  }
  return 0;
}
