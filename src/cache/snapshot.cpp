#include "xpdl/cache/cache.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "xpdl/intern/intern.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/schema/schema.h"
#include "xpdl/util/io.h"

namespace xpdl::cache {
namespace {

constexpr std::string_view kMagic = "XPDLSNAP";
constexpr std::uint32_t kFormatVersion = 1;
// Everything a hostile snapshot could claim is bounds-checked against
// the actual payload size; these caps just keep the checks cheap.
constexpr std::uint32_t kMaxCount = 1u << 26;

std::uint32_t fnv1a32(std::string_view data) noexcept {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

/// Checksum for blob bodies, which can run to megabytes: FNV-1a folded
/// over 8-byte chunks with a byte-wise tail. One serial multiply per 8
/// bytes instead of per byte; integrity-only, and host-endian (snapshot
/// caches are per-machine, never shipped).
std::uint32_t chunked_checksum(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data.data() + i, 8);
    h = (h ^ chunk) * 0x100000001b3ULL;
  }
  for (; i < data.size(); ++i) {
    h = (h ^ static_cast<unsigned char>(data[i])) * 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Forgiving byte reader: any overrun flips `ok` and the caller bails.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() noexcept {
    if (pos + 4 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() noexcept {
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return ok ? (hi << 32) | lo : 0;
  }
  std::string_view bytes(std::size_t n) noexcept {
    if (pos + n > data.size() || n > data.size()) {
      ok = false;
      return {};
    }
    std::string_view v = data.substr(pos, n);
    pos += n;
    return v;
  }
};

/// Deduplicating string table; views must outlive serialization (they
/// point into the tree being written).
struct StringTable {
  std::vector<std::string_view> entries;
  std::unordered_map<std::string_view, std::uint32_t> index;

  std::uint32_t add(std::string_view s) {
    auto [it, inserted] =
        index.emplace(s, static_cast<std::uint32_t>(entries.size()));
    if (inserted) entries.push_back(s);
    return it->second;
  }
};

void write_element(const xml::Element& e, StringTable& strings,
                   std::string& nodes) {
  put_u32(nodes, strings.add(e.tag()));
  put_u32(nodes, strings.add(e.location().file.view()));
  put_u32(nodes, e.location().line);
  put_u32(nodes, e.location().column);
  put_u32(nodes, strings.add(e.text()));
  put_u32(nodes, static_cast<std::uint32_t>(e.attributes().size()));
  for (const xml::Attribute& a : e.attributes()) {
    put_u32(nodes, strings.add(a.name.view()));
    put_u32(nodes, strings.add(a.value));
  }
  put_u32(nodes, static_cast<std::uint32_t>(e.children().size()));
  for (const auto& c : e.children()) {
    write_element(*c, strings, nodes);
  }
}

std::string serialize(Kind kind, std::uint64_t key, const xml::Element& root,
                      const std::vector<std::string>& warnings) {
  StringTable strings;
  std::string nodes;
  std::string warning_refs;
  put_u32(warning_refs, static_cast<std::uint32_t>(warnings.size()));
  for (const std::string& w : warnings) put_u32(warning_refs, strings.add(w));
  write_element(root, strings, nodes);

  std::string body;
  put_u32(body, kFormatVersion);
  put_u64(body, schema_fingerprint());
  body.push_back(static_cast<char>(kind));
  put_u64(body, key);
  put_u32(body, static_cast<std::uint32_t>(strings.entries.size()));
  for (std::string_view s : strings.entries) {
    put_u32(body, static_cast<std::uint32_t>(s.size()));
    body.append(s);
  }
  body += warning_refs;
  body += nodes;

  std::string out;
  out.reserve(kMagic.size() + body.size() + 4);
  out.append(kMagic);
  out += body;
  put_u32(out, fnv1a32(body));
  return out;
}

/// Rebuilds one element (and, via the explicit child counts, its whole
/// subtree) from `c`. Iterative so corrupt child counts cannot blow the
/// stack; `budget` caps total node count against the payload size.
std::unique_ptr<xml::Element> read_tree(
    Cursor& c, const std::vector<std::string_view>& strings) {
  auto string_at = [&](std::uint32_t idx) -> std::string_view {
    if (idx >= strings.size()) {
      c.ok = false;
      return {};
    }
    return strings[idx];
  };

  struct Pending {
    xml::Element* parent;
    std::uint32_t remaining;
  };
  std::unique_ptr<xml::Element> root;
  std::vector<Pending> stack;
  // The payload cannot describe more nodes than it has bytes for (each
  // node record is at least 7 u32 fields).
  std::size_t budget = c.data.size() / 7 + 1;

  do {
    if (budget-- == 0) {
      c.ok = false;
      return nullptr;
    }
    std::string_view tag = string_at(c.u32());
    std::string_view file = string_at(c.u32());
    std::uint32_t line = c.u32();
    std::uint32_t column = c.u32();
    std::string_view text = string_at(c.u32());
    std::uint32_t attr_count = c.u32();
    if (!c.ok || attr_count > kMaxCount) {
      c.ok = false;
      return nullptr;
    }
    auto element = std::make_unique<xml::Element>(intern::Atom(tag));
    element->set_location(
        SourceLocation{intern::Atom(file), line, column});
    if (!text.empty()) element->set_text(std::string(text));
    for (std::uint32_t i = 0; i < attr_count; ++i) {
      std::string_view name = string_at(c.u32());
      std::string_view value = string_at(c.u32());
      if (!c.ok) return nullptr;
      element->set_attribute(name, value);
    }
    std::uint32_t child_count = c.u32();
    if (!c.ok || child_count > kMaxCount) {
      c.ok = false;
      return nullptr;
    }
    xml::Element* handle = element.get();
    if (stack.empty()) {
      root = std::move(element);
    } else {
      stack.back().parent->add_child(std::move(element));
      if (--stack.back().remaining == 0) stack.pop_back();
    }
    if (child_count > 0) stack.push_back(Pending{handle, child_count});
    // Keep popping exhausted frames (possible when child_count was the
    // last slot of several ancestors at once).
    while (!stack.empty() && stack.back().remaining == 0) stack.pop_back();
  } while (!stack.empty());

  return root;
}

/// Rejection classification for loads: *corrupt* snapshots (bad magic,
/// checksum mismatch, truncation, structural damage) are quarantined so
/// the bad bytes are parsed at most once; *stale* ones (older format
/// version, different schema fingerprint, kind/key mismatch) are valid
/// files that simply no longer apply — a plain miss, overwritten by the
/// next store.
std::optional<Snapshot> deserialize(std::string_view data, Kind kind,
                                    std::uint64_t key, bool& corrupt) {
  corrupt = true;
  if (data.size() < kMagic.size() + 4 ||
      data.substr(0, kMagic.size()) != kMagic) {
    return std::nullopt;
  }
  std::string_view body =
      data.substr(kMagic.size(), data.size() - kMagic.size() - 4);
  std::string_view tail = data.substr(data.size() - 4);
  Cursor check{tail};
  if (check.u32() != fnv1a32(body)) return std::nullopt;

  // Checksummed clean from here on: any header mismatch below means the
  // snapshot is intact but written by a different world — stale.
  corrupt = false;
  Cursor c{body};
  if (c.u32() != kFormatVersion) return std::nullopt;
  if (c.u64() != schema_fingerprint()) return std::nullopt;
  std::string_view k = c.bytes(1);
  if (!c.ok || k[0] != static_cast<char>(kind)) return std::nullopt;
  if (c.u64() != key) return std::nullopt;

  // A structural failure past an intact checksum is producer damage.
  corrupt = true;

  std::uint32_t string_count = c.u32();
  if (!c.ok || string_count > kMaxCount) return std::nullopt;
  std::vector<std::string_view> strings;
  strings.reserve(string_count);
  for (std::uint32_t i = 0; i < string_count; ++i) {
    std::uint32_t len = c.u32();
    std::string_view s = c.bytes(len);
    if (!c.ok) return std::nullopt;
    strings.push_back(s);
  }

  Snapshot snap;
  std::uint32_t warning_count = c.u32();
  if (!c.ok || warning_count > kMaxCount) return std::nullopt;
  snap.warnings.reserve(warning_count);
  for (std::uint32_t i = 0; i < warning_count; ++i) {
    std::uint32_t idx = c.u32();
    if (!c.ok || idx >= strings.size()) return std::nullopt;
    snap.warnings.emplace_back(strings[idx]);
  }

  snap.root = read_tree(c, strings);
  if (!c.ok || snap.root == nullptr || c.pos != body.size()) {
    return std::nullopt;
  }
  corrupt = false;
  return snap;
}

std::string serialize_blob(Kind kind, std::uint64_t key,
                           const BlobSnapshot& snap) {
  std::string body;
  put_u32(body, kFormatVersion);
  put_u64(body, schema_fingerprint());
  body.push_back(static_cast<char>(kind));
  put_u64(body, key);
  put_u32(body, static_cast<std::uint32_t>(snap.warnings.size()));
  for (const std::string& w : snap.warnings) {
    put_u32(body, static_cast<std::uint32_t>(w.size()));
    body.append(w);
  }
  put_u32(body, static_cast<std::uint32_t>(snap.stats.size()));
  for (std::uint64_t s : snap.stats) put_u64(body, s);
  put_u64(body, snap.bytes.size());
  body += snap.bytes;

  std::string out;
  out.reserve(kMagic.size() + body.size() + 4);
  out.append(kMagic);
  out += body;
  put_u32(out, chunked_checksum(body));
  return out;
}

std::optional<BlobSnapshot> deserialize_blob(std::string_view data, Kind kind,
                                             std::uint64_t key,
                                             bool& corrupt) {
  corrupt = true;
  if (data.size() < kMagic.size() + 4 ||
      data.substr(0, kMagic.size()) != kMagic) {
    return std::nullopt;
  }
  std::string_view body =
      data.substr(kMagic.size(), data.size() - kMagic.size() - 4);
  std::string_view tail = data.substr(data.size() - 4);
  Cursor check{tail};
  if (check.u32() != chunked_checksum(body)) return std::nullopt;

  corrupt = false;  // intact; header mismatches below are staleness
  Cursor c{body};
  if (c.u32() != kFormatVersion) return std::nullopt;
  if (c.u64() != schema_fingerprint()) return std::nullopt;
  std::string_view k = c.bytes(1);
  if (!c.ok || k[0] != static_cast<char>(kind)) return std::nullopt;
  if (c.u64() != key) return std::nullopt;

  corrupt = true;  // structural damage past an intact checksum
  BlobSnapshot snap;
  std::uint32_t warning_count = c.u32();
  if (!c.ok || warning_count > kMaxCount) return std::nullopt;
  snap.warnings.reserve(warning_count);
  for (std::uint32_t i = 0; i < warning_count; ++i) {
    std::uint32_t len = c.u32();
    std::string_view w = c.bytes(len);
    if (!c.ok) return std::nullopt;
    snap.warnings.emplace_back(w);
  }
  std::uint32_t stat_count = c.u32();
  if (!c.ok || stat_count > kMaxCount) return std::nullopt;
  snap.stats.reserve(stat_count);
  for (std::uint32_t i = 0; i < stat_count; ++i) snap.stats.push_back(c.u64());
  std::uint64_t byte_count = c.u64();
  if (!c.ok || byte_count > body.size()) return std::nullopt;
  std::string_view bytes = c.bytes(static_cast<std::size_t>(byte_count));
  if (!c.ok || c.pos != body.size()) return std::nullopt;
  snap.bytes.assign(bytes);
  corrupt = false;
  return snap;
}

/// Moves a corrupt snapshot aside to `<path>.corrupt` so its bytes are
/// parsed exactly once: the next load is a plain file-not-found miss,
/// and the evidence survives for postmortems (a later corrupt snapshot
/// of the same name replaces it).
void quarantine(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".corrupt", ec);
  if (!ec) XPDL_OBS_COUNT("cache.quarantined", 1);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t content_key(std::string_view path,
                          std::string_view content) noexcept {
  std::uint64_t h = fnv1a64(path);
  h = fnv1a64(std::string_view("\0", 1), h);
  return fnv1a64(content, h);
}

std::uint64_t schema_fingerprint() {
  static const std::uint64_t fp = fnv1a64(schema::Schema::core().to_xml());
  return fp;
}

bool env_disabled() noexcept {
  const char* v = std::getenv("XPDL_NO_CACHE");
  return v != nullptr && v[0] != '\0';
}

SnapshotCache::SnapshotCache(std::string_view default_root,
                             const Options& options)
    : enabled_(options.enabled && !env_disabled()),
      min_source_bytes_(options.min_source_bytes) {
  if (!options.directory.empty()) {
    directory_ = options.directory;
  } else if (const char* env = std::getenv("XPDL_CACHE_DIR");
             env != nullptr && env[0] != '\0') {
    directory_ = env;
  } else if (!default_root.empty()) {
    directory_ = std::string(default_root) + "/.xpdl.cache";
  } else {
    directory_ = ".xpdl.cache";
  }
}

std::string SnapshotCache::path_for(Kind kind, std::uint64_t key) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%c%016llx.snap", static_cast<char>(kind),
                static_cast<unsigned long long>(key));
  return directory_ + "/" + buf;
}

std::optional<Snapshot> SnapshotCache::load(Kind kind, std::uint64_t key) {
  if (!enabled_) {
    XPDL_OBS_COUNT("cache.disabled_loads", 1);
    return std::nullopt;
  }
  std::string path = path_for(kind, key);
  auto text = io::read_file(path);
  if (!text.is_ok()) {
    XPDL_OBS_COUNT("cache.misses", 1);
    return std::nullopt;
  }
  bool corrupt = false;
  auto snap = deserialize(*text, kind, key, corrupt);
  if (!snap.has_value()) {
    // Either way the caller falls back to the XML parse; a corrupt file
    // (bad checksum/truncation) is additionally quarantined so its bytes
    // are never re-parsed, while a stale one is simply overwritten.
    XPDL_OBS_COUNT("cache.misses", 1);
    if (corrupt) {
      XPDL_OBS_COUNT("cache.corrupt", 1);
      quarantine(path);
    } else {
      XPDL_OBS_COUNT("cache.stale", 1);
    }
    return std::nullopt;
  }
  XPDL_OBS_COUNT("cache.hits", 1);
  return snap;
}

void SnapshotCache::store(Kind kind, std::uint64_t key,
                          const xml::Element& root,
                          const std::vector<std::string>& warnings) {
  if (!enabled_) return;
  store_encoded(kind, key, serialize(kind, key, root, warnings));
}

std::optional<BlobSnapshot> SnapshotCache::load_blob(Kind kind,
                                                     std::uint64_t key) {
  if (!enabled_) {
    XPDL_OBS_COUNT("cache.disabled_loads", 1);
    return std::nullopt;
  }
  std::string path = path_for(kind, key);
  auto text = io::read_file(path);
  if (!text.is_ok()) {
    XPDL_OBS_COUNT("cache.misses", 1);
    return std::nullopt;
  }
  bool corrupt = false;
  auto snap = deserialize_blob(*text, kind, key, corrupt);
  if (!snap.has_value()) {
    XPDL_OBS_COUNT("cache.misses", 1);
    if (corrupt) {
      XPDL_OBS_COUNT("cache.corrupt", 1);
      quarantine(path);
    } else {
      XPDL_OBS_COUNT("cache.stale", 1);
    }
    return std::nullopt;
  }
  XPDL_OBS_COUNT("cache.hits", 1);
  return snap;
}

void SnapshotCache::store_blob(Kind kind, std::uint64_t key,
                               const BlobSnapshot& snap) {
  if (!enabled_) return;
  store_encoded(kind, key, serialize_blob(kind, key, snap));
}

void SnapshotCache::store_encoded(Kind kind, std::uint64_t key,
                                  std::string encoded) {
  if (!io::make_directories(directory_).is_ok()) {
    XPDL_OBS_COUNT("cache.store_failures", 1);
    return;
  }
  std::string path = path_for(kind, key);
  std::string tmp = path + ".tmp" + std::to_string(::getpid());
  // Durable write (fsync before close) so the rename below can never
  // publish a half-written snapshot across a crash: rename is atomic
  // with respect to readers, but only durability makes it atomic with
  // respect to power loss.
  if (!io::write_file_durable(tmp, encoded).is_ok()) {
    XPDL_OBS_COUNT("cache.store_failures", 1);
    return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    XPDL_OBS_COUNT("cache.store_failures", 1);
    return;
  }
  XPDL_OBS_COUNT("cache.stores", 1);
}

}  // namespace xpdl::cache
