#include "xpdl/repository/transport.h"

#include <algorithm>
#include <filesystem>

#include "xpdl/resilience/fault.h"
#include "xpdl/util/io.h"

namespace xpdl::repository {

namespace fs = std::filesystem;

Result<std::vector<std::string>> LocalFsTransport::list(
    const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status(ErrorCode::kIoError,
                  "model search path entry is not a directory",
                  SourceLocation{root, 0, 0});
  }
  std::vector<std::string> files;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      return Status(ErrorCode::kIoError,
                    "error walking repository: " + ec.message(),
                    SourceLocation{root, 0, 0});
    }
    if (it->is_regular_file() && it->path().extension() == ".xpdl") {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::string> LocalFsTransport::read(const std::string& path) {
  return io::read_file(path);
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner)
    : inner_(std::move(inner)) {}

Result<std::vector<std::string>> FaultInjectingTransport::list(
    const std::string& root) {
  resilience::FaultInjector& injector = resilience::FaultInjector::instance();
  if (!injector.empty()) {
    XPDL_RETURN_IF_ERROR(injector.check("transport.list:" + root));
  }
  return inner_->list(root);
}

Result<std::string> FaultInjectingTransport::read(const std::string& path) {
  resilience::FaultInjector& injector = resilience::FaultInjector::instance();
  if (!injector.empty()) {
    XPDL_RETURN_IF_ERROR(injector.check("transport.read:" + path));
  }
  return inner_->read(path);
}

std::unique_ptr<Transport> make_default_transport() {
  return std::make_unique<FaultInjectingTransport>(
      std::make_unique<LocalFsTransport>());
}

}  // namespace xpdl::repository
