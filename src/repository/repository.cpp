#include "xpdl/repository/repository.h"

#include <algorithm>
#include <utility>

#include "xpdl/model/ir.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/io.h"
#include "xpdl/util/parallel.h"

namespace xpdl::repository {

/// Everything the parallel phase derives from one descriptor file. The
/// slots are task-indexed, so the scan result is independent of the
/// worker schedule.
struct Repository::Parsed {
  std::unique_ptr<xml::Element> root;
  std::vector<std::string> warnings;  ///< parse + validation warnings
  Status status;                      ///< read/parse/validate failure
  std::uint64_t key = 0;              ///< cache::content_key of the file
  std::size_t retries = 0;            ///< transport retries spent reading
  bool read_ok = false;
  bool from_cache = false;
};

namespace {

/// Parses and schema-validates one descriptor. Pure function of its
/// inputs (safe to run concurrently across files): warnings go to the
/// caller-owned vector, never to shared state.
Status parse_and_validate(const std::string& path, std::string_view text,
                          std::unique_ptr<xml::Element>& root,
                          std::vector<std::string>& warnings) {
  XPDL_ASSIGN_OR_RETURN(xml::Document doc, xml::parse(text, path));
  for (std::string& w : doc.warnings) warnings.push_back(std::move(w));

  schema::ValidationReport report =
      schema::Schema::core().validate(*doc.root);
  for (std::string& w : report.warnings) warnings.push_back(std::move(w));
  if (!report.ok()) {
    return report.status();
  }
  root = std::move(doc.root);
  return Status::ok();
}

}  // namespace

Repository::Repository(std::vector<std::string> search_path)
    : search_path_(std::move(search_path)),
      transport_(make_default_transport()) {}

void Repository::add_root(std::string directory) {
  search_path_.push_back(std::move(directory));
  scanned_ = false;
}

void Repository::set_transport(std::unique_ptr<Transport> transport) {
  transport_ = std::move(transport);
  scanned_ = false;
  // load_file() memoizes path → reference name; those results came
  // through the *old* transport, so serving them after a swap would
  // return stale bytes. The next scan() clears entries_ anyway, but
  // load_file() is callable without a scan — drop the memo now.
  loaded_files_.clear();
}

std::vector<std::string> ScanReport::to_warnings() const {
  std::vector<std::string> out;
  out.reserve(quarantined.size());
  for (const Quarantined& q : quarantined) {
    out.push_back("quarantined '" + q.path + "': " + q.reason.to_string());
  }
  return out;
}

void Repository::fold_digest(std::string_view path,
                             std::uint64_t key) noexcept {
  content_digest_ = cache::fnv1a64(path, content_digest_);
  content_digest_ = cache::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(&key), sizeof key),
      content_digest_);
}

Status Repository::register_parsed(const std::string& path,
                                   const std::string& root_dir,
                                   Parsed&& parsed) {
  std::unique_ptr<xml::Element> root = std::move(parsed.root);
  model::Identity ident = model::identity_of(*root);
  const std::string& ref = ident.reference_name();
  if (ref.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "descriptor root <" + root->tag() +
                      "> has neither 'name' nor 'id'; it cannot be "
                      "referenced from other models",
                  root->location());
  }

  auto it = entries_.find(ref);
  if (it != entries_.end()) {
    // Shadowing across roots is allowed with a warning (earlier search
    // path roots win); duplicates inside the same root are hard errors.
    if (it->second.info.path.rfind(root_dir, 0) == 0) {
      return Status(ErrorCode::kSchemaViolation,
                    "duplicate descriptor name '" + ref + "' in '" + path +
                        "' (already defined in '" + it->second.info.path +
                        "')",
                    root->location());
    }
    warnings_.push_back("descriptor '" + ref + "' from '" + path +
                        "' is shadowed by '" + it->second.info.path + "'");
    return Status::ok();
  }

  Entry entry;
  entry.info = DescriptorInfo{ref, root->tag(), path, ident.is_meta()};
  entry.root = std::move(root);
  entries_.emplace(ref, std::move(entry));
  return Status::ok();
}

Result<ScanReport> Repository::scan(const ScanOptions& options) {
  obs::Span span("repo.scan");
  entries_.clear();
  warnings_.clear();
  loaded_files_.clear();
  cache_options_ = options.cache;
  content_digest_ = cache::fnv1a64(std::string_view{});
  digest_valid_ = true;
  ScanReport report;

  // Phase 1 (serial): list every root, in search-path order. Produces
  // the definitive event order — quarantined roots interleaved with file
  // ranges exactly where a serial scan would have visited them.
  struct FileTask {
    std::string path;
    std::size_t root_index;
  };
  struct Event {
    bool is_file;
    std::size_t index;  ///< into `tasks` or `root_failures`
  };
  std::vector<FileTask> tasks;
  std::vector<Event> events;
  std::vector<ScanReport::Quarantined> root_failures;
  resilience::RetryPolicy retry(options.retry);
  // Overloaded remote roots answer 503 + Retry-After; the transport
  // remembers the hint per thread and the policy stretches its backoff
  // to match (bounded by the retry deadline).
  retry.set_hint_provider([this] { return transport_->retry_after_hint_ms(); });

  for (std::size_t r = 0; r < search_path_.size(); ++r) {
    const std::string& root = search_path_[r];
    XPDL_OBS_COUNT("repo.scan.search_path_probes", 1);
    auto files = retry.run_result(
        "listing repository root '" + root + "'",
        [&] { return transport_->list(root); });
    report.transport_retries +=
        static_cast<std::size_t>(retry.last_run().retries);
    if (!files.is_ok()) {
      // A whole root failing to list is a configuration-level fault; in
      // degraded mode it is quarantined like a file so the remaining
      // roots still serve.
      if (options.strict) {
        digest_valid_ = false;
        return std::move(files).status();
      }
      events.push_back(Event{false, root_failures.size()});
      root_failures.push_back(
          ScanReport::Quarantined{root, std::move(files).status()});
      continue;
    }
    report.files_seen += files->size();
    XPDL_OBS_COUNT("repo.scan.files_probed", files->size());
    for (std::string& f : *files) {
      events.push_back(Event{true, tasks.size()});
      tasks.push_back(FileTask{std::move(f), r});
    }
  }

  // Phase 2 (parallel): read, hash, and either restore each file from
  // its snapshot or parse + validate it. Results land in task-indexed
  // slots; nothing here touches repository state, so the work is
  // embarrassingly parallel and the outcome is schedule-independent.
  cache::SnapshotCache snapshots(cache_anchor(), options.cache);
  std::vector<Parsed> slots(tasks.size());
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : util::parallel::default_threads();
  util::parallel::parallel_for(threads, tasks.size(), [&](std::size_t i) {
    const std::string& f = tasks[i].path;
    Parsed& slot = slots[i];
    resilience::RetryPolicy file_retry(options.retry);
    // Same server-hint plumbing as the listing phase; the hint is
    // thread-local in the transport and this policy runs on the thread
    // that performs the read, so the pairing is exact.
    file_retry.set_hint_provider(
        [this] { return transport_->retry_after_hint_ms(); });
    auto text = file_retry.run_result(
        "reading repository file '" + f + "'",
        [&] { return transport_->read(f); });
    slot.retries = static_cast<std::size_t>(file_retry.last_run().retries);
    if (!text.is_ok()) {
      slot.status = std::move(text).status();
      return;
    }
    slot.read_ok = true;
    slot.key = cache::content_key(f, *text);
    // Tiny descriptors re-parse faster than their snapshot restores
    // (second open + the same tree rebuild); bypass the cache for them.
    const bool snapshot_pays = !snapshots.below_threshold(text->size());
    if (snapshot_pays) {
      if (auto snap = snapshots.load(cache::Kind::kDescriptor, slot.key)) {
        slot.root = std::move(snap->root);
        slot.warnings = std::move(snap->warnings);
        slot.from_cache = true;
        return;
      }
    }
    slot.status = parse_and_validate(f, *text, slot.root, slot.warnings);
    if (slot.status.is_ok() && snapshot_pays) {
      // Only clean parses are snapshotted; their warnings ride along so
      // a warm run replays identical diagnostics.
      snapshots.store(cache::Kind::kDescriptor, slot.key, *slot.root,
                      slot.warnings);
    }
  });

  // Phase 3 (serial): register in listing order. Warnings, quarantine
  // entries, duplicate/shadowing decisions and strict-mode first-error
  // semantics all replay exactly as the serial scan produced them.
  for (const Event& ev : events) {
    if (!ev.is_file) {
      report.quarantined.push_back(std::move(root_failures[ev.index]));
      continue;
    }
    FileTask& task = tasks[ev.index];
    Parsed& slot = slots[ev.index];
    report.transport_retries += slot.retries;
    if (slot.read_ok) {
      if (slot.from_cache) {
        ++report.cache_hits;
      } else {
        ++report.cache_misses;
      }
    }
    std::uint64_t key = slot.key;
    for (std::string& w : slot.warnings) warnings_.push_back(std::move(w));
    Status st = slot.status.is_ok()
                    ? register_parsed(task.path,
                                      search_path_[task.root_index],
                                      std::move(slot))
                    : std::move(slot.status);
    if (!st.is_ok()) {
      st.with_context("indexing repository file '" + task.path + "'");
      if (options.strict) {
        digest_valid_ = false;
        return st;
      }
      XPDL_OBS_COUNT("repo.scan.files_quarantined", 1);
      report.quarantined.push_back(
          ScanReport::Quarantined{task.path, std::move(st)});
    } else {
      // Registered (or shadowed): the file's content shaped the index,
      // so it enters the repository content digest. Quarantined files
      // contribute nothing to the index and stay out of the digest,
      // keeping it a pure function of what the index actually holds.
      fold_digest(task.path, key);
    }
  }
  scanned_ = true;
  report.indexed = entries_.size();
  XPDL_OBS_COUNT("repo.scan.descriptors_indexed", entries_.size());
  if (span.active()) {
    span.arg("descriptors", std::uint64_t{entries_.size()});
    span.arg("quarantined", std::uint64_t{report.quarantined.size()});
  }
  return report;
}

Status Repository::scan() {
  ScanOptions options;
  options.strict = true;
  XPDL_ASSIGN_OR_RETURN(ScanReport report, scan(options));
  (void)report;
  return Status::ok();
}

bool Repository::contains(std::string_view ref) const noexcept {
  return entries_.find(ref) != entries_.end();
}

Result<const xml::Element*> Repository::lookup(std::string_view ref) {
  auto it = entries_.find(ref);
  if (it == entries_.end()) {
    XPDL_OBS_COUNT("repo.lookup.misses", 1);
    return Status(ErrorCode::kUnresolvedRef,
                  "no descriptor named '" + std::string(ref) +
                      "' in the model repository (" +
                      std::to_string(entries_.size()) + " descriptors, " +
                      std::to_string(search_path_.size()) +
                      " search path root(s))");
  }
  XPDL_OBS_COUNT("repo.lookup.hits", 1);
  return it->second.root.get();
}

Result<const xml::Element*> Repository::load_file(const std::string& path) {
  if (auto memo = loaded_files_.find(path); memo != loaded_files_.end()) {
    if (auto it = entries_.find(memo->second); it != entries_.end()) {
      XPDL_OBS_COUNT("repo.load_file.memo_hits", 1);
      return it->second.root.get();
    }
  }
  XPDL_ASSIGN_OR_RETURN(std::string text, io::read_file(path));
  std::uint64_t key = cache::content_key(path, text);
  cache::SnapshotCache snapshots(cache_anchor(), cache_options_);

  std::unique_ptr<xml::Element> root;
  std::vector<std::string> file_warnings;
  const bool snapshot_pays = !snapshots.below_threshold(text.size());
  std::optional<cache::Snapshot> snap;
  if (snapshot_pays) snap = snapshots.load(cache::Kind::kDescriptor, key);
  if (snap) {
    root = std::move(snap->root);
    file_warnings = std::move(snap->warnings);
  } else {
    Status st = parse_and_validate(path, text, root, file_warnings);
    if (!st.is_ok()) {
      for (std::string& w : file_warnings) warnings_.push_back(std::move(w));
      return st;
    }
    if (snapshot_pays) {
      snapshots.store(cache::Kind::kDescriptor, key, *root, file_warnings);
    }
  }
  for (std::string& w : file_warnings) warnings_.push_back(std::move(w));

  // add_descriptor pessimistically invalidates the content digest (it
  // normally injects in-memory definitions); a descriptor loaded from a
  // file is still on-disk content, so fold it back in instead.
  bool digest_was_valid = digest_valid_;
  std::uint64_t digest_before = content_digest_;
  auto registered = add_descriptor(std::move(root));
  if (registered.is_ok()) {
    loaded_files_.insert_or_assign(
        path, model::identity_of(**registered).reference_name());
    digest_valid_ = digest_was_valid;
    content_digest_ = digest_before;
    fold_digest(path, key);
  }
  return registered;
}

Result<const xml::Element*> Repository::add_descriptor(
    std::unique_ptr<xml::Element> root) {
  model::Identity ident = model::identity_of(*root);
  const std::string& ref = ident.reference_name();
  if (ref.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "descriptor root <" + root->tag() +
                      "> has neither 'name' nor 'id'",
                  root->location());
  }
  XPDL_OBS_COUNT("repo.descriptors_injected", 1);
  digest_valid_ = false;  // index no longer derivable from disk content
  Entry entry;
  entry.info = DescriptorInfo{ref, root->tag(), "<memory>", ident.is_meta()};
  entry.root = std::move(root);
  auto [it, inserted] = entries_.insert_or_assign(ref, std::move(entry));
  if (!inserted) {
    warnings_.push_back("descriptor '" + ref +
                        "' replaced by an injected definition");
    // Any memoized load_file whose descriptor was just replaced must
    // re-parse next time rather than serve the replacement.
    for (auto memo = loaded_files_.begin(); memo != loaded_files_.end();) {
      memo = memo->second == ref ? loaded_files_.erase(memo)
                                 : std::next(memo);
    }
  }
  return it->second.root.get();
}

std::vector<DescriptorInfo> Repository::descriptors() const {
  std::vector<DescriptorInfo> out;
  out.reserve(entries_.size());
  for (const auto& [ref, entry] : entries_) out.push_back(entry.info);
  return out;
}

Result<std::unique_ptr<Repository>> open_repository(
    std::vector<std::string> roots) {
  ScanOptions options;
  options.strict = true;
  return open_repository(std::move(roots), options);
}

Result<std::unique_ptr<Repository>> open_repository(
    std::vector<std::string> roots, const ScanOptions& options,
    ScanReport* report) {
  auto repo = std::make_unique<Repository>(std::move(roots));
  XPDL_ASSIGN_OR_RETURN(ScanReport scan_report, repo->scan(options));
  if (report != nullptr) *report = std::move(scan_report);
  return repo;
}

}  // namespace xpdl::repository
