#include "xpdl/repository/repository.h"

#include <algorithm>

#include "xpdl/model/ir.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"

namespace xpdl::repository {

Repository::Repository(std::vector<std::string> search_path)
    : search_path_(std::move(search_path)),
      transport_(make_default_transport()) {}

void Repository::add_root(std::string directory) {
  search_path_.push_back(std::move(directory));
  scanned_ = false;
}

void Repository::set_transport(std::unique_ptr<Transport> transport) {
  transport_ = std::move(transport);
  scanned_ = false;
}

std::vector<std::string> ScanReport::to_warnings() const {
  std::vector<std::string> out;
  out.reserve(quarantined.size());
  for (const Quarantined& q : quarantined) {
    out.push_back("quarantined '" + q.path + "': " + q.reason.to_string());
  }
  return out;
}

Status Repository::index_text(const std::string& path, std::string_view text,
                              const std::string& root_dir) {
  // Index cheaply: parse the text now (descriptors are small); the parsed
  // tree doubles as the cache entry.
  XPDL_ASSIGN_OR_RETURN(xml::Document doc, xml::parse(text, path));
  for (std::string& w : doc.warnings) warnings_.push_back(std::move(w));

  schema::ValidationReport report =
      schema::Schema::core().validate(*doc.root);
  for (std::string& w : report.warnings) warnings_.push_back(std::move(w));
  if (!report.ok()) {
    return report.status();
  }

  model::Identity ident = model::identity_of(*doc.root);
  const std::string& ref = ident.reference_name();
  if (ref.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "descriptor root <" + doc.root->tag() +
                      "> has neither 'name' nor 'id'; it cannot be "
                      "referenced from other models",
                  doc.root->location());
  }

  auto it = entries_.find(ref);
  if (it != entries_.end()) {
    // Shadowing across roots is allowed with a warning (earlier search
    // path roots win); duplicates inside the same root are hard errors.
    if (it->second.info.path.rfind(root_dir, 0) == 0) {
      return Status(ErrorCode::kSchemaViolation,
                    "duplicate descriptor name '" + ref + "' in '" + path +
                        "' (already defined in '" + it->second.info.path +
                        "')",
                    doc.root->location());
    }
    warnings_.push_back("descriptor '" + ref + "' from '" + path +
                        "' is shadowed by '" + it->second.info.path + "'");
    return Status::ok();
  }

  Entry entry;
  entry.info = DescriptorInfo{ref, doc.root->tag(), path, ident.is_meta()};
  entry.root = std::move(doc.root);
  entries_.emplace(ref, std::move(entry));
  return Status::ok();
}

Result<ScanReport> Repository::scan(const ScanOptions& options) {
  obs::Span span("repo.scan");
  entries_.clear();
  warnings_.clear();
  ScanReport report;
  resilience::RetryPolicy retry(options.retry);

  for (const std::string& root : search_path_) {
    XPDL_OBS_COUNT("repo.scan.search_path_probes", 1);
    auto files = retry.run_result(
        "listing repository root '" + root + "'",
        [&] { return transport_->list(root); });
    report.transport_retries +=
        static_cast<std::size_t>(retry.last_run().retries);
    if (!files.is_ok()) {
      // A whole root failing to list is a configuration-level fault; in
      // degraded mode it is quarantined like a file so the remaining
      // roots still serve.
      if (options.strict) return std::move(files).status();
      report.quarantined.push_back(
          ScanReport::Quarantined{root, std::move(files).status()});
      continue;
    }
    report.files_seen += files->size();
    XPDL_OBS_COUNT("repo.scan.files_probed", files->size());

    for (const std::string& f : *files) {
      auto text = retry.run_result(
          "reading repository file '" + f + "'",
          [&] { return transport_->read(f); });
      report.transport_retries +=
          static_cast<std::size_t>(retry.last_run().retries);
      Status st = text.is_ok()
                      ? index_text(f, *text, root)
                      : std::move(text).status();
      if (!st.is_ok()) {
        st.with_context("indexing repository file '" + f + "'");
        if (options.strict) return st;
        XPDL_OBS_COUNT("repo.scan.files_quarantined", 1);
        report.quarantined.push_back(
            ScanReport::Quarantined{f, std::move(st)});
      }
    }
  }
  scanned_ = true;
  report.indexed = entries_.size();
  XPDL_OBS_COUNT("repo.scan.descriptors_indexed", entries_.size());
  if (span.active()) {
    span.arg("descriptors", std::uint64_t{entries_.size()});
    span.arg("quarantined", std::uint64_t{report.quarantined.size()});
  }
  return report;
}

Status Repository::scan() {
  ScanOptions options;
  options.strict = true;
  XPDL_ASSIGN_OR_RETURN(ScanReport report, scan(options));
  (void)report;
  return Status::ok();
}

bool Repository::contains(std::string_view ref) const noexcept {
  return entries_.find(ref) != entries_.end();
}

Result<const xml::Element*> Repository::lookup(std::string_view ref) {
  auto it = entries_.find(ref);
  if (it == entries_.end()) {
    XPDL_OBS_COUNT("repo.lookup.misses", 1);
    return Status(ErrorCode::kUnresolvedRef,
                  "no descriptor named '" + std::string(ref) +
                      "' in the model repository (" +
                      std::to_string(entries_.size()) + " descriptors, " +
                      std::to_string(search_path_.size()) +
                      " search path root(s))");
  }
  XPDL_OBS_COUNT("repo.lookup.hits", 1);
  return it->second.root.get();
}

Result<const xml::Element*> Repository::load_file(const std::string& path) {
  XPDL_ASSIGN_OR_RETURN(xml::Document doc, xml::parse_file(path));
  for (std::string& w : doc.warnings) warnings_.push_back(std::move(w));
  schema::ValidationReport report =
      schema::Schema::core().validate(*doc.root);
  for (std::string& w : report.warnings) warnings_.push_back(std::move(w));
  if (!report.ok()) return report.status();
  return add_descriptor(std::move(doc.root));
}

Result<const xml::Element*> Repository::add_descriptor(
    std::unique_ptr<xml::Element> root) {
  model::Identity ident = model::identity_of(*root);
  const std::string& ref = ident.reference_name();
  if (ref.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "descriptor root <" + root->tag() +
                      "> has neither 'name' nor 'id'",
                  root->location());
  }
  XPDL_OBS_COUNT("repo.descriptors_injected", 1);
  Entry entry;
  entry.info = DescriptorInfo{ref, root->tag(), "<memory>", ident.is_meta()};
  entry.root = std::move(root);
  auto [it, inserted] = entries_.insert_or_assign(ref, std::move(entry));
  if (!inserted) {
    warnings_.push_back("descriptor '" + ref +
                        "' replaced by an injected definition");
  }
  return it->second.root.get();
}

std::vector<DescriptorInfo> Repository::descriptors() const {
  std::vector<DescriptorInfo> out;
  out.reserve(entries_.size());
  for (const auto& [ref, entry] : entries_) out.push_back(entry.info);
  return out;
}

Result<std::unique_ptr<Repository>> open_repository(
    std::vector<std::string> roots) {
  ScanOptions options;
  options.strict = true;
  return open_repository(std::move(roots), options);
}

Result<std::unique_ptr<Repository>> open_repository(
    std::vector<std::string> roots, const ScanOptions& options,
    ScanReport* report) {
  auto repo = std::make_unique<Repository>(std::move(roots));
  XPDL_ASSIGN_OR_RETURN(ScanReport scan_report, repo->scan(options));
  if (report != nullptr) *report = std::move(scan_report);
  return repo;
}

}  // namespace xpdl::repository
