#include "xpdl/repository/repository.h"

#include <algorithm>
#include <filesystem>

#include "xpdl/model/ir.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"

namespace xpdl::repository {

namespace fs = std::filesystem;

Repository::Repository(std::vector<std::string> search_path)
    : search_path_(std::move(search_path)) {}

void Repository::add_root(std::string directory) {
  search_path_.push_back(std::move(directory));
  scanned_ = false;
}

Status Repository::index_file(const std::string& path,
                              const std::string& root_dir) {
  // Index cheaply: parse the file now (descriptors are small); the parsed
  // tree doubles as the cache entry.
  XPDL_ASSIGN_OR_RETURN(xml::Document doc, xml::parse_file(path));
  for (std::string& w : doc.warnings) warnings_.push_back(std::move(w));

  schema::ValidationReport report =
      schema::Schema::core().validate(*doc.root);
  for (std::string& w : report.warnings) warnings_.push_back(std::move(w));
  if (!report.ok()) {
    return report.status();
  }

  model::Identity ident = model::identity_of(*doc.root);
  const std::string& ref = ident.reference_name();
  if (ref.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "descriptor root <" + doc.root->tag() +
                      "> has neither 'name' nor 'id'; it cannot be "
                      "referenced from other models",
                  doc.root->location());
  }

  auto it = entries_.find(ref);
  if (it != entries_.end()) {
    // Shadowing across roots is allowed with a warning (earlier search
    // path roots win); duplicates inside the same root are hard errors.
    if (it->second.info.path.rfind(root_dir, 0) == 0) {
      return Status(ErrorCode::kSchemaViolation,
                    "duplicate descriptor name '" + ref + "' in '" + path +
                        "' (already defined in '" + it->second.info.path +
                        "')",
                    doc.root->location());
    }
    warnings_.push_back("descriptor '" + ref + "' from '" + path +
                        "' is shadowed by '" + it->second.info.path + "'");
    return Status::ok();
  }

  Entry entry;
  entry.info = DescriptorInfo{ref, doc.root->tag(), path, ident.is_meta()};
  entry.root = std::move(doc.root);
  entries_.emplace(ref, std::move(entry));
  return Status::ok();
}

Status Repository::scan() {
  obs::Span span("repo.scan");
  entries_.clear();
  warnings_.clear();
  for (const std::string& root : search_path_) {
    XPDL_OBS_COUNT("repo.scan.search_path_probes", 1);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      return Status(ErrorCode::kIoError,
                    "model search path entry is not a directory",
                    SourceLocation{root, 0, 0});
    }
    // Deterministic order: collect and sort paths first.
    std::vector<std::string> files;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) {
        return Status(ErrorCode::kIoError,
                      "error walking repository: " + ec.message(),
                      SourceLocation{root, 0, 0});
      }
      if (it->is_regular_file() && it->path().extension() == ".xpdl") {
        files.push_back(it->path().string());
      }
    }
    std::sort(files.begin(), files.end());
    XPDL_OBS_COUNT("repo.scan.files_probed", files.size());
    for (const std::string& f : files) {
      XPDL_RETURN_IF_ERROR(index_file(f, root).with_context(
          "indexing repository file '" + f + "'"));
    }
  }
  scanned_ = true;
  XPDL_OBS_COUNT("repo.scan.descriptors_indexed", entries_.size());
  if (span.active()) span.arg("descriptors", std::uint64_t{entries_.size()});
  return Status::ok();
}

bool Repository::contains(std::string_view ref) const noexcept {
  return entries_.find(ref) != entries_.end();
}

Result<const xml::Element*> Repository::lookup(std::string_view ref) {
  auto it = entries_.find(ref);
  if (it == entries_.end()) {
    XPDL_OBS_COUNT("repo.lookup.misses", 1);
    return Status(ErrorCode::kUnresolvedRef,
                  "no descriptor named '" + std::string(ref) +
                      "' in the model repository (" +
                      std::to_string(entries_.size()) + " descriptors, " +
                      std::to_string(search_path_.size()) +
                      " search path root(s))");
  }
  XPDL_OBS_COUNT("repo.lookup.hits", 1);
  return it->second.root.get();
}

Result<const xml::Element*> Repository::load_file(const std::string& path) {
  XPDL_ASSIGN_OR_RETURN(xml::Document doc, xml::parse_file(path));
  for (std::string& w : doc.warnings) warnings_.push_back(std::move(w));
  schema::ValidationReport report =
      schema::Schema::core().validate(*doc.root);
  for (std::string& w : report.warnings) warnings_.push_back(std::move(w));
  if (!report.ok()) return report.status();
  return add_descriptor(std::move(doc.root));
}

Result<const xml::Element*> Repository::add_descriptor(
    std::unique_ptr<xml::Element> root) {
  model::Identity ident = model::identity_of(*root);
  const std::string& ref = ident.reference_name();
  if (ref.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "descriptor root <" + root->tag() +
                      "> has neither 'name' nor 'id'",
                  root->location());
  }
  XPDL_OBS_COUNT("repo.descriptors_injected", 1);
  Entry entry;
  entry.info = DescriptorInfo{ref, root->tag(), "<memory>", ident.is_meta()};
  entry.root = std::move(root);
  auto [it, inserted] = entries_.insert_or_assign(ref, std::move(entry));
  if (!inserted) {
    warnings_.push_back("descriptor '" + ref +
                        "' replaced by an injected definition");
  }
  return it->second.root.get();
}

std::vector<DescriptorInfo> Repository::descriptors() const {
  std::vector<DescriptorInfo> out;
  out.reserve(entries_.size());
  for (const auto& [ref, entry] : entries_) out.push_back(entry.info);
  return out;
}

Result<std::unique_ptr<Repository>> open_repository(
    std::vector<std::string> roots) {
  auto repo = std::make_unique<Repository>(std::move(roots));
  XPDL_RETURN_IF_ERROR(repo->scan());
  return repo;
}

}  // namespace xpdl::repository
