#include "xpdl/schema/schema.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "xpdl/util/expr.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::schema {
namespace {

using strings::is_identifier;
using strings::is_placeholder;

/// Attributes every component kind may carry (Sec. III-A): `name` declares
/// a meta-model, `id` a concrete model element, `type` references a
/// meta-model, `extends` lists supertypes, `role` an optional control role
/// (master/worker/hybrid — kept from PDL as a secondary aspect).
std::vector<AttributeSpec> component_attrs(
    std::initializer_list<AttributeSpec> extra = {}) {
  std::vector<AttributeSpec> attrs = {
      {"name", AttrType::kIdentifier, false, "meta-model name"},
      {"id", AttrType::kIdentifier, false, "concrete model element id"},
      {"type", AttrType::kIdentifier, false, "referenced meta-model"},
      {"extends", AttrType::kIdentifierList, false,
       "supertypes for (multiple) inheritance"},
      {"role", AttrType::kString, false,
       "optional control role: master / worker / hybrid"},
      {"resolved", AttrType::kBool, false,
       "set by the composer once the type reference has been merged"},
  };
  attrs.insert(attrs.end(), extra.begin(), extra.end());
  return attrs;
}

constexpr std::string_view kComponentTags[] = {
    "cpu",    "core",   "cache",  "memory",       "socket",
    "node",   "cluster", "system", "device",      "gpu",
    "interconnect", "channel",  "hostOS",  "installed",
};

}  // namespace

std::string_view to_string(AttrType t) noexcept {
  switch (t) {
    case AttrType::kString: return "string";
    case AttrType::kIdentifier: return "identifier";
    case AttrType::kIdentifierList: return "identifier-list";
    case AttrType::kUInt: return "uint";
    case AttrType::kNumber: return "number";
    case AttrType::kBool: return "bool";
    case AttrType::kMetric: return "metric";
    case AttrType::kUnitSymbol: return "unit";
    case AttrType::kExpression: return "expression";
    case AttrType::kPath: return "path";
  }
  return "unknown";
}

bool is_component_tag(std::string_view tag) noexcept {
  return std::find(std::begin(kComponentTags), std::end(kComponentTags),
                   tag) != std::end(kComponentTags);
}

const AttributeSpec* ElementSpec::find_attribute(
    std::string_view name) const noexcept {
  for (const AttributeSpec& a : attributes) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

bool ElementSpec::allows_child(std::string_view tag) const noexcept {
  if (allow_any_children) return true;
  return std::find(child_tags.begin(), child_tags.end(), tag) !=
         child_tags.end();
}

Status ValidationReport::status() const {
  if (errors.empty()) return Status::ok();
  if (errors.size() == 1) return errors.front();
  Status first = errors.front();
  return Status(first.code(),
                first.message() + " (and " +
                    std::to_string(errors.size() - 1) + " more error(s))",
                first.location());
}

const Schema& Schema::core() {
  static const Schema* schema = [] {
    auto* s = new Schema();
    auto add = [&](ElementSpec spec) {
      Status st = s->add_element(std::move(spec));
      assert(st.is_ok());
      (void)st;
    };

    // Child sets reused across the structural kinds. Hardware containers
    // may nest groups, parameters and power modeling anywhere the paper's
    // listings do.
    const std::vector<std::string> cpu_children = {
        "group", "core",  "cache",      "memory",     "power_model",
        "const", "param", "constraints", "properties",
    };
    const std::vector<std::string> node_children = {
        "group",  "socket", "cpu",        "memory",     "device", "gpu",
        "cache",  "interconnects", "power_model", "const", "param",
        "constraints", "properties",
    };
    const std::vector<std::string> device_children = {
        "group", "socket", "cpu",  "core",  "cache", "memory",
        "const", "param",  "constraints", "power_model",
        "programming_model", "properties", "interconnects",
    };

    add({.tag = "system",
         .documentation =
             "Top-level concrete model of a complete computer system "
             "(single-node or multi-node), Listing 4/7/11.",
         .attributes = component_attrs(),
         .child_tags = {"cluster", "node", "socket", "cpu", "device", "gpu",
                        "memory", "group", "interconnects", "software",
                        "properties", "power_model", "const", "param",
                        "constraints"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "cluster",
         .documentation = "Multi-node aggregate connected by a network "
                          "(Listing 11).",
         .attributes = component_attrs(),
         .child_tags = {"group", "node", "interconnects", "properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "node",
         .documentation = "One compute node of a cluster.",
         .attributes = component_attrs(),
         .child_tags = node_children,
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "socket",
         .documentation = "A CPU socket holding one processor.",
         .attributes = component_attrs(),
         .child_tags = {"cpu", "properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "cpu",
         .documentation =
             "A processor: cores, caches, on-chip memories, power model "
             "(Listings 1 and 6).",
         .attributes = component_attrs(
             {{"frequency", AttrType::kMetric, false, "nominal clock"},
              {"frequency_unit", AttrType::kUnitSymbol, false, ""},
              {"endian", AttrType::kString, false, "BE / LE"}}),
         .child_tags = cpu_children,
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "core",
         .documentation = "One processor core (Listing 1/6).",
         .attributes = component_attrs(
             {{"frequency", AttrType::kMetric, false, "core clock"},
              {"frequency_unit", AttrType::kUnitSymbol, false, ""},
              {"endian", AttrType::kString, false, "BE / LE"}}),
         .child_tags = {"cache", "properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "cache",
         .documentation =
             "A cache; sharing is expressed by hierarchical scoping "
             "(Sec. III-B).",
         .attributes = component_attrs(
             {{"size", AttrType::kMetric, false, "capacity"},
              {"unit", AttrType::kUnitSymbol, false,
               "unit of size (the paper's exception rule)"},
              {"sets", AttrType::kUInt, false, "associativity sets"},
              {"replacement", AttrType::kString, false, "e.g. LRU"},
              {"write_policy", AttrType::kString, false,
               "writethrough / copyback"},
              {"level", AttrType::kUInt, false, "cache level"}}),
         .child_tags = {"properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "memory",
         .documentation = "A memory module / region (Listing 2).",
         .attributes = component_attrs(
             {{"size", AttrType::kMetric, false, "capacity"},
              {"unit", AttrType::kUnitSymbol, false, ""},
              {"slices", AttrType::kUInt, false, "banked slices (CMX)"},
              {"endian", AttrType::kString, false, "BE / LE"}}),
         .child_tags = {"properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "device",
         .documentation =
             "An accelerator device: GPU, DSP board, ... (Listings 5, 8-10).",
         .attributes = component_attrs(
             {{"compute_capability", AttrType::kNumber, false,
               "CUDA compute capability"}}),
         .child_tags = device_children,
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "gpu",
         .documentation = "Alias kind for GPU devices (Sec. III-D).",
         .attributes = component_attrs(
             {{"compute_capability", AttrType::kNumber, false, ""}}),
         .child_tags = device_children,
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "group",
         .documentation =
             "Groups elements; with `quantity` the group is homogeneous and "
             "`prefix` auto-assigns member ids prefix0..prefixN-1 "
             "(Sec. III-A).",
         .attributes = component_attrs(
             {{"prefix", AttrType::kIdentifier, false, "member id prefix"},
              {"quantity", AttrType::kUInt, false,
               "member count; literal or parameter reference"},
              {"expanded", AttrType::kBool, false,
               "set by the composer once the group has been expanded"}}),
         .child_tags = {"group", "core", "cpu", "cache", "memory", "socket",
                        "node", "device", "gpu", "interconnects",
                        "power_domain", "properties"},
         .allow_metric_attributes = true,
         .is_component = false});

    add({.tag = "interconnects",
         .documentation = "Container for interconnect instances.",
         .attributes = {},
         .child_tags = {"interconnect", "group"}});

    add({.tag = "interconnect",
         .documentation =
             "An interconnect (PCIe, QPI, Infiniband, SPI...); instances "
             "carry head/tail endpoints (Listings 3, 4, 11).",
         .attributes = component_attrs(
             {{"head", AttrType::kIdentifier, false, "source endpoint id"},
              {"tail", AttrType::kIdentifier, false, "sink endpoint id"}}),
         .child_tags = {"channel", "properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    add({.tag = "channel",
         .documentation =
             "One directed channel of an interconnect, with bandwidth and "
             "per-message/per-byte time and energy costs (Listing 3).",
         .attributes = component_attrs(),
         .child_tags = {"properties"},
         .allow_metric_attributes = true,
         .is_component = true});

    // --- power modeling (Sec. III-C) -----------------------------------
    add({.tag = "power_model",
         .documentation =
             "A processor's power model: power domains, their power state "
             "machines, and microbenchmark deployment info.",
         .attributes = component_attrs(),
         .child_tags = {"power_domains", "power_state_machine",
                        "instructions", "microbenchmarks", "properties"},
         .allow_metric_attributes = true,
         .is_component = false});

    add({.tag = "power_domains",
         .documentation = "Set of power domains / islands (Listing 12).",
         .attributes = {{"name", AttrType::kIdentifier, false, ""}},
         .child_tags = {"power_domain", "group"}});

    add({.tag = "power_domain",
         .documentation =
             "A power island: components switched together in power state "
             "transitions (Listing 12).",
         .attributes = {{"name", AttrType::kIdentifier, false, ""},
                        {"enableSwitchOff", AttrType::kBool, false,
                         "false for the main/default domain"},
                        {"switchoffCondition", AttrType::kString, false,
                         "e.g. 'Shave_pds off'"}},
         .child_tags = {"core", "cpu", "memory", "cache", "device", "gpu",
                        "group"}});

    add({.tag = "power_state_machine",
         .documentation =
             "Finite state machine of DVFS/sleep states for a power domain "
             "(Listing 13).",
         .attributes = {{"name", AttrType::kIdentifier, false, ""},
                        {"power_domain", AttrType::kIdentifier, false,
                         "the governed domain"}},
         .child_tags = {"power_states", "transitions"}});

    add({.tag = "power_states",
         .documentation = "Container for power states.",
         .attributes = {},
         .child_tags = {"power_state"}});

    add({.tag = "power_state",
         .documentation =
             "One P/C-state with its frequency and static power level.",
         .attributes = {{"name", AttrType::kIdentifier, true, ""}},
         .allow_metric_attributes = true});

    add({.tag = "transitions",
         .documentation = "Container for power state transitions.",
         .attributes = {},
         .child_tags = {"transition"}});

    add({.tag = "transition",
         .documentation =
             "A programmer-initiable switching between power states with "
             "time and energy overheads (Listing 13).",
         .attributes = {{"head", AttrType::kIdentifier, true, "from state"},
                        {"tail", AttrType::kIdentifier, true, "to state"}},
         .allow_metric_attributes = true});

    add({.tag = "instructions",
         .documentation =
             "Instruction set with per-instruction dynamic energy, possibly "
             "frequency-dependent (Listing 14).",
         .attributes = {{"name", AttrType::kIdentifier, true, "ISA name"},
                        {"mb", AttrType::kIdentifier, false,
                         "default microbenchmark suite"}},
         .child_tags = {"inst"}});

    add({.tag = "inst",
         .documentation =
             "One instruction; energy is a constant, a frequency table "
             "(child <data>), or '?' derived by microbenchmarking.",
         .attributes = {{"name", AttrType::kIdentifier, true, "mnemonic"},
                        {"mb", AttrType::kIdentifier, false,
                         "microbenchmark id"}},
         .child_tags = {"data"},
         .allow_metric_attributes = true});

    add({.tag = "data",
         .documentation = "One (frequency, energy) sample of an instruction "
                          "energy table (Listing 14).",
         .attributes = {},
         .allow_metric_attributes = true});

    add({.tag = "microbenchmarks",
         .documentation =
             "Microbenchmark suite with build/run deployment information "
             "(Listing 15).",
         .attributes = {{"id", AttrType::kIdentifier, true, ""},
                        {"instruction_set", AttrType::kIdentifier, false, ""},
                        {"path", AttrType::kPath, false, "source directory"},
                        {"command", AttrType::kString, false,
                         "build-and-run script"}},
         .child_tags = {"microbenchmark"}});

    add({.tag = "microbenchmark",
         .documentation = "One microbenchmark source with build flags.",
         .attributes = {{"id", AttrType::kIdentifier, true, ""},
                        {"type", AttrType::kIdentifier, false,
                         "instruction / effect measured"},
                        {"file", AttrType::kPath, false, ""},
                        {"cflags", AttrType::kString, false, ""},
                        {"lflags", AttrType::kString, false, ""}}});

    // --- software (Sec. III-A, Listing 11) ------------------------------
    add({.tag = "software",
         .documentation = "Installed system software of a system.",
         .attributes = {},
         .child_tags = {"hostOS", "installed", "properties"}});

    add({.tag = "hostOS",
         .documentation = "The node's operating system.",
         .attributes = component_attrs(
             {{"version", AttrType::kString, false, ""}}),
         .child_tags = {"properties"},
         .is_component = true});

    add({.tag = "installed",
         .documentation =
             "One installed software package (library, compiler, runtime), "
             "referencing its own descriptor by type.",
         .attributes = component_attrs(
             {{"path", AttrType::kPath, false, "install prefix"},
              {"version", AttrType::kString, false, ""}}),
         .child_tags = {"properties"},
         .is_component = true});

    add({.tag = "properties",
         .documentation =
             "Escape hatch: ad-hoc key-value properties not modeled by own "
             "descriptors (Sec. III-A).",
         .attributes = {},
         .child_tags = {"property"}});

    add({.tag = "property",
         .documentation = "One free-form property.",
         .attributes = {{"name", AttrType::kIdentifier, true, ""},
                        {"value", AttrType::kString, false, ""},
                        {"type", AttrType::kString, false, ""},
                        {"command", AttrType::kString, false, ""}},
         .allow_unknown_attributes = true});

    // --- parameterization (Listing 8) -----------------------------------
    add({.tag = "const",
         .documentation = "A named constant of a meta-model.",
         .attributes = {{"name", AttrType::kIdentifier, true, ""},
                        {"value", AttrType::kMetric, false, ""}},
         .allow_metric_attributes = true});

    add({.tag = "param",
         .documentation =
             "A formal parameter; `configurable` parameters range over "
             "`range` and are fixed by concrete models (Listings 8-10).",
         .attributes = {{"name", AttrType::kIdentifier, true, ""},
                        {"configurable", AttrType::kBool, false, ""},
                        {"type", AttrType::kIdentifier, false,
                         "msize / integer / frequency / ..."},
                        {"range", AttrType::kString, false,
                         "comma-separated admissible values"},
                        {"value", AttrType::kMetric, false, ""}},
         .allow_metric_attributes = true});

    add({.tag = "constraints",
         .documentation = "Container for constraints.",
         .attributes = {},
         .child_tags = {"constraint"}});

    add({.tag = "constraint",
         .documentation =
             "Boolean expression over consts/params that every valid "
             "configuration must satisfy (Listing 8).",
         .attributes = {{"expr", AttrType::kExpression, true, ""}}});

    add({.tag = "programming_model",
         .documentation =
             "Programming models a device supports (Listing 8).",
         .attributes = {{"type", AttrType::kIdentifierList, true,
                         "e.g. cuda6.0,opencl"}}});

    return s;
  }();
  return *schema;
}

Status Schema::add_element(ElementSpec spec) {
  if (find(spec.tag) != nullptr) {
    return Status(ErrorCode::kInvalidArgument,
                  "element kind '" + spec.tag + "' already registered");
  }
  elements_.push_back(std::move(spec));
  return Status::ok();
}

const ElementSpec* Schema::find(std::string_view tag) const noexcept {
  for (const ElementSpec& e : elements_) {
    if (e.tag == tag) return &e;
  }
  return nullptr;
}

ValidationReport Schema::validate(const xml::Element& root) const {
  ValidationReport report;
  validate_element(root, report);
  return report;
}

void Schema::validate_attribute_value(const xml::Element& e,
                                      const AttributeSpec& spec,
                                      std::string_view value,
                                      ValidationReport& report) const {
  auto err = [&](std::string msg) {
    report.errors.emplace_back(ErrorCode::kSchemaViolation,
                               "<" + e.tag() + "> attribute '" + spec.name +
                                   "': " + std::move(msg),
                               e.location());
  };
  switch (spec.type) {
    case AttrType::kString:
    case AttrType::kPath:
      break;
    case AttrType::kIdentifier:
      if (!is_identifier(value)) {
        err("'" + std::string(value) + "' is not a valid identifier");
      }
      break;
    case AttrType::kIdentifierList: {
      for (const std::string& part : strings::split(value, ',')) {
        if (!is_identifier(part)) {
          err("'" + part + "' is not a valid identifier");
        }
      }
      break;
    }
    case AttrType::kUInt:
      // Group quantities may reference a parameter (Listing 8:
      // quantity="num_SM"); the composer checks the binding.
      if (!strings::parse_uint(value).is_ok() && !is_identifier(value)) {
        err("'" + std::string(value) +
            "' is neither a non-negative integer nor a parameter reference");
      }
      break;
    case AttrType::kNumber:
      if (!strings::parse_double(value).is_ok() && !is_identifier(value)) {
        err("'" + std::string(value) +
            "' is neither a number nor a parameter reference");
      }
      break;
    case AttrType::kBool:
      if (!strings::parse_bool(value).is_ok()) {
        err("'" + std::string(value) + "' is not a boolean");
      }
      break;
    case AttrType::kMetric:
      if (!is_placeholder(value) && !strings::parse_double(value).is_ok() &&
          !is_identifier(value)) {
        err("'" + std::string(value) +
            "' is not a number, parameter reference or '?' placeholder");
      }
      break;
    case AttrType::kUnitSymbol:
      if (!units::parse_unit(value).is_ok()) {
        err("unknown unit '" + std::string(value) + "'");
      }
      break;
    case AttrType::kExpression:
      if (auto parsed = expr::Expression::parse(value); !parsed.is_ok()) {
        err(parsed.status().message());
      }
      break;
  }
}

void Schema::validate_element(const xml::Element& e,
                              ValidationReport& report) const {
  const ElementSpec* spec = find(e.tag());
  if (spec == nullptr) {
    report.errors.emplace_back(
        ErrorCode::kSchemaViolation,
        "unknown XPDL element <" + e.tag() + ">", e.location());
    return;
  }

  // Required attributes.
  for (const AttributeSpec& a : spec->attributes) {
    if (a.required && !e.has_attribute(a.name)) {
      report.errors.emplace_back(
          ErrorCode::kSchemaViolation,
          "<" + e.tag() + "> is missing required attribute '" + a.name + "'",
          e.location());
    }
  }

  // Attribute values. Undeclared attributes are accepted as metric/unit
  // pairs where the element kind allows them.
  for (const xml::Attribute& attr : e.attributes()) {
    if (const AttributeSpec* a = spec->find_attribute(attr.name.view())) {
      validate_attribute_value(e, *a, attr.value, report);
      continue;
    }
    if (spec->allow_unknown_attributes) continue;
    if (spec->allow_metric_attributes) {
      // `X_unit` (and the bare `unit` for size) must name a known unit
      // whose dimension matches metric X where the dimension is known.
      std::string_view name = attr.name.view();
      bool is_unit_attr =
          name == "unit" ||
          (name.size() > 5 && name.substr(name.size() - 5) == "_unit");
      if (is_unit_attr) {
        std::string metric =
            name == "unit" ? "size"
                           : std::string(name.substr(0, name.size() - 5));
        auto unit = units::parse_unit(attr.value);
        if (!unit.is_ok()) {
          report.errors.emplace_back(
              ErrorCode::kSchemaViolation,
              "<" + e.tag() + "> attribute '" + attr.name.str() +
                  "': unknown unit '" + attr.value + "'",
              attr.location);
        } else {
          units::Dimension want = units::metric_dimension(metric);
          if (want != units::Dimension::kDimensionless &&
              unit.value().dimension != want) {
            report.errors.emplace_back(
                ErrorCode::kSchemaViolation,
                "<" + e.tag() + "> unit '" + attr.value + "' for metric '" +
                    metric + "' has dimension " +
                    std::string(units::to_string(unit.value().dimension)) +
                    ", expected " + std::string(units::to_string(want)),
                attr.location);
          }
        }
        continue;
      }
      // The metric value itself: number, parameter reference, or '?'.
      if (!is_placeholder(attr.value) &&
          !strings::parse_double(attr.value).is_ok() &&
          !is_identifier(attr.value)) {
        report.errors.emplace_back(
            ErrorCode::kSchemaViolation,
            "<" + e.tag() + "> metric attribute '" + attr.name.str() + "': '" +
                attr.value +
                "' is not a number, parameter reference or '?'",
            attr.location);
        continue;
      }
      // Lint: numeric dimensional metric without a unit attribute.
      if (strings::parse_double(attr.value).is_ok() &&
          units::metric_dimension(attr.name.view()) !=
              units::Dimension::kDimensionless &&
          !e.has_attribute(units::unit_attribute_name(attr.name.view()))) {
        report.warnings.push_back(
            attr.location.to_string() + ": <" + e.tag() + "> metric '" +
            attr.name.str() + "' is numeric but has no '" +
            units::unit_attribute_name(attr.name.view()) + "' attribute");
      }
      continue;
    }
    report.errors.emplace_back(
        ErrorCode::kSchemaViolation,
        "<" + e.tag() + "> does not allow attribute '" + attr.name.str() + "'",
        attr.location);
  }

  // Children.
  for (const auto& child : e.children()) {
    if (!spec->allows_child(child->tag())) {
      report.errors.emplace_back(
          ErrorCode::kSchemaViolation,
          "<" + e.tag() + "> does not allow child <" + child->tag() + ">",
          child->location());
      // Still validate the subtree to surface all problems in one run.
    }
    validate_element(*child, report);
  }
}

std::string Schema::to_xml() const {
  xml::Element root("xpdl_schema");
  root.set_attribute("version", "1.0");
  for (const ElementSpec& e : elements_) {
    xml::Element& el = root.add_child("element");
    el.set_attribute("tag", e.tag);
    if (!e.documentation.empty()) el.set_attribute("doc", e.documentation);
    if (e.allow_any_children) el.set_attribute("any_children", "true");
    if (e.allow_metric_attributes) el.set_attribute("metrics", "true");
    if (e.allow_unknown_attributes) el.set_attribute("open", "true");
    if (e.is_component) el.set_attribute("component", "true");
    for (const AttributeSpec& a : e.attributes) {
      xml::Element& at = el.add_child("attribute");
      at.set_attribute("name", a.name);
      at.set_attribute("type", std::string(to_string(a.type)));
      if (a.required) at.set_attribute("required", "true");
      if (!a.documentation.empty()) at.set_attribute("doc", a.documentation);
    }
    for (const std::string& c : e.child_tags) {
      xml::Element& ch = el.add_child("child");
      ch.set_attribute("tag", c);
    }
  }
  return xml::write(root);
}

Result<Schema> Schema::from_xml(const xml::Element& root) {
  if (root.tag() != "xpdl_schema") {
    return Status(ErrorCode::kFormatError,
                  "expected <xpdl_schema> root, found <" + root.tag() + ">",
                  root.location());
  }
  Schema schema;
  for (const auto& el : root.children()) {
    if (el->tag() != "element") {
      return Status(ErrorCode::kFormatError,
                    "expected <element>, found <" + el->tag() + ">",
                    el->location());
    }
    ElementSpec spec;
    XPDL_ASSIGN_OR_RETURN(spec.tag, el->require_attribute("tag"));
    spec.documentation = std::string(el->attribute_or("doc", ""));
    spec.allow_any_children =
        el->attribute_or("any_children", "false") == "true";
    spec.allow_metric_attributes = el->attribute_or("metrics", "false") == "true";
    spec.allow_unknown_attributes = el->attribute_or("open", "false") == "true";
    spec.is_component = el->attribute_or("component", "false") == "true";
    for (const auto& child : el->children()) {
      if (child->tag() == "attribute") {
        AttributeSpec a;
        XPDL_ASSIGN_OR_RETURN(a.name, child->require_attribute("name"));
        std::string_view type = child->attribute_or("type", "string");
        bool matched = false;
        for (AttrType t :
             {AttrType::kString, AttrType::kIdentifier,
              AttrType::kIdentifierList, AttrType::kUInt, AttrType::kNumber,
              AttrType::kBool, AttrType::kMetric, AttrType::kUnitSymbol,
              AttrType::kExpression, AttrType::kPath}) {
          if (to_string(t) == type) {
            a.type = t;
            matched = true;
            break;
          }
        }
        if (!matched) {
          return Status(ErrorCode::kFormatError,
                        "unknown attribute type '" + std::string(type) + "'",
                        child->location());
        }
        a.required = child->attribute_or("required", "false") == "true";
        a.documentation = std::string(child->attribute_or("doc", ""));
        spec.attributes.push_back(std::move(a));
      } else if (child->tag() == "child") {
        XPDL_ASSIGN_OR_RETURN(std::string tag,
                              child->require_attribute("tag"));
        spec.child_tags.push_back(std::move(tag));
      } else {
        return Status(ErrorCode::kFormatError,
                      "unexpected <" + child->tag() + "> inside <element>",
                      child->location());
      }
    }
    XPDL_RETURN_IF_ERROR(schema.add_element(std::move(spec)));
  }
  return schema;
}

}  // namespace xpdl::schema
