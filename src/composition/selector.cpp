#include "xpdl/composition/selector.h"

#include <limits>

#include "xpdl/query/query.h"

namespace xpdl::composition {

Status Selector::add(VariantInfo variant) {
  for (const VariantInfo& v : variants_) {
    if (v.name == variant.name) {
      return Status(ErrorCode::kInvalidArgument,
                    "variant '" + variant.name + "' already registered");
    }
  }
  variants_.push_back(std::move(variant));
  return Status::ok();
}

expr::VariableResolver Selector::resolver(const CallContext& ctx) const {
  // Capture by value where cheap; the platform reference outlives calls.
  const runtime::Model* model = &platform_;
  // Copy the context map: the resolver may outlive the CallContext in
  // caller code (it is only a map of doubles).
  auto values = ctx.values;
  return [model, values = std::move(values)](
             std::string_view name) -> Result<double> {
    if (auto it = values.find(name); it != values.end()) return it->second;
    if (name == "num_cores") {
      return static_cast<double>(model->count_cores());
    }
    if (name == "num_host_cores") {
      return static_cast<double>(model->count_host_cores());
    }
    if (name == "num_devices") {
      return static_cast<double>(model->count_devices());
    }
    if (name == "num_cuda_devices") {
      return static_cast<double>(model->count_cuda_devices());
    }
    if (name == "total_static_power_w") {
      return model->total_static_power_w();
    }
    return Status(ErrorCode::kUnresolvedRef,
                  "selection variable '" + std::string(name) +
                      "' is neither a context value nor a platform "
                      "introspection variable");
  };
}

std::vector<std::string> Selector::admissible(const CallContext& ctx) const {
  std::vector<std::string> out;
  expr::VariableResolver vars = resolver(ctx);
  for (const VariantInfo& v : variants_) {
    bool software_ok = true;
    for (const std::string& req : v.required_installed) {
      if (!platform_.has_installed(req)) {
        software_ok = false;
        break;
      }
    }
    if (!software_ok) continue;
    bool structure_ok = true;
    for (const std::string& q : v.required_queries) {
      auto found = query::exists(platform_, q);
      if (!found.is_ok() || !found.value()) {
        structure_ok = false;
        break;
      }
    }
    if (!structure_ok) continue;
    if (v.guard.has_value()) {
      auto holds = v.guard->evaluate_bool(vars);
      if (!holds.is_ok() || !holds.value()) continue;
    }
    out.push_back(v.name);
  }
  return out;
}

Result<SelectionReport> Selector::select(const CallContext& ctx) const {
  if (variants_.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "selector has no registered variants");
  }
  SelectionReport report;
  expr::VariableResolver vars = resolver(ctx);

  const VariantInfo* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  const VariantInfo* first_admissible_without_cost = nullptr;

  for (const VariantInfo& v : variants_) {
    std::string rejection;
    for (const std::string& req : v.required_installed) {
      if (!platform_.has_installed(req)) {
        rejection = "missing installed software '" + req + "'";
        break;
      }
    }
    if (rejection.empty()) {
      for (const std::string& q : v.required_queries) {
        auto found = query::exists(platform_, q);
        if (!found.is_ok()) {
          rejection = "requirement query error: " +
                      found.status().message();
          break;
        }
        if (!found.value()) {
          rejection = "platform requirement '" + q + "' not met";
          break;
        }
      }
    }
    if (rejection.empty() && v.guard.has_value()) {
      auto holds = v.guard->evaluate_bool(vars);
      if (!holds.is_ok()) {
        rejection = "guard error: " + holds.status().message();
      } else if (!holds.value()) {
        rejection = "guard '" + v.guard->source() + "' is false";
      }
    }
    if (!rejection.empty()) {
      report.rejected.emplace_back(v.name, std::move(rejection));
      continue;
    }
    if (!v.predicted_cost) {
      if (first_admissible_without_cost == nullptr) {
        first_admissible_without_cost = &v;
      }
      continue;
    }
    XPDL_ASSIGN_OR_RETURN(double cost, v.predicted_cost(vars));
    report.considered.emplace_back(v.name, cost);
    if (cost < best_cost) {
      best_cost = cost;
      best = &v;
    }
  }

  if (best == nullptr && first_admissible_without_cost != nullptr) {
    report.selected = first_admissible_without_cost->name;
    report.predicted_cost_s = 0.0;
    return report;
  }
  if (best == nullptr) {
    return Status(ErrorCode::kConstraintViolation,
                  "no admissible variant for this call on this platform");
  }
  report.selected = best->name;
  report.predicted_cost_s = best_cost;
  return report;
}

}  // namespace xpdl::composition
