#include "xpdl/composition/spmv.h"

#include <algorithm>
#include <limits>
#include <chrono>
#include <cmath>
#include <thread>

#include "xpdl/util/strings.h"

namespace xpdl::composition {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

// ===========================================================================
// Matrix + kernels

CsrMatrix CsrMatrix::random(std::size_t rows, std::size_t cols,
                            double density, std::uint64_t seed) {
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  std::uint64_t state = seed ? seed : 1;
  double clamped = std::clamp(density, 0.0, 1.0);
  auto per_row =
      static_cast<std::size_t>(std::llround(clamped * static_cast<double>(cols)));
  per_row = std::max<std::size_t>(per_row, 1);
  per_row = std::min(per_row, cols);
  std::vector<std::uint32_t> row_cols;
  for (std::size_t r = 0; r < rows; ++r) {
    // Sample distinct columns: dense rows take a strided pattern (cheap
    // and uniform), sparse rows rejection-sample.
    row_cols.clear();
    if (per_row * 2 >= cols) {
      for (std::size_t c = 0; c < per_row; ++c) {
        row_cols.push_back(static_cast<std::uint32_t>(c * cols / per_row));
      }
    } else {
      while (row_cols.size() < per_row) {
        auto c = static_cast<std::uint32_t>(xorshift(state) % cols);
        if (std::find(row_cols.begin(), row_cols.end(), c) == row_cols.end()) {
          row_cols.push_back(c);
        }
      }
      std::sort(row_cols.begin(), row_cols.end());
    }
    for (std::uint32_t c : row_cols) {
      m.col_index.push_back(c);
      // Values in [0.5, 1.5): stable dot products, no cancellation.
      m.values.push_back(
          0.5 + static_cast<double>(xorshift(state) % 1000) / 1000.0);
    }
    m.row_ptr.push_back(m.values.size());
  }
  return m;
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> dense(rows * cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      dense[r * cols + col_index[k]] = values[k];
    }
  }
  return dense;
}

void spmv_csr_serial(const CsrMatrix& a, const std::vector<double>& x,
                     std::vector<double>& y) {
  y.assign(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      acc += a.values[k] * x[a.col_index[k]];
    }
    y[r] = acc;
  }
}

void spmv_csr_parallel(const CsrMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, unsigned threads) {
  y.assign(a.rows, 0.0);
  if (threads <= 1 || a.rows < threads) {
    spmv_csr_serial(a, x, y);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::size_t chunk = (a.rows + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    std::size_t begin = t * chunk;
    std::size_t end = std::min(a.rows, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      for (std::size_t r = begin; r < end; ++r) {
        double acc = 0.0;
        for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
          acc += a.values[k] * x[a.col_index[k]];
        }
        y[r] = acc;
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

void gemv_dense_serial(const std::vector<double>& dense, std::size_t rows,
                       std::size_t cols, const std::vector<double>& x,
                       std::vector<double>& y) {
  y.assign(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = dense.data() + r * cols;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      acc += row[c] * x[c];
    }
    y[r] = acc;
  }
}

// ===========================================================================
// Component

Result<SpmvComponent> SpmvComponent::create(const runtime::Model& platform) {
  SpmvComponent comp(platform);
  XPDL_RETURN_IF_ERROR(comp.calibrate());
  XPDL_RETURN_IF_ERROR(comp.register_variants());
  return comp;
}

Status SpmvComponent::calibrate() {
  // Deployment-time micro-probes: a small CSR and a small dense GEMV.
  // The minimum over several timed blocks is the standard robust
  // estimator against scheduler noise on shared machines.
  // The CSR probe runs at density 1.0: the csr-vs-dense decision only
  // matters in the dense regime, where both kernels stream the full
  // matrix and CSR additionally pays a 4-byte column index per element.
  // A sparse probe would measure the cache-resident regime instead and
  // make CSR look cheaper per nonzero than it is where it competes.
  constexpr std::size_t kN = 512;
  constexpr int kBlocks = 5;
  constexpr int kRepsPerBlock = 8;
  CsrMatrix probe = CsrMatrix::random(kN, kN, 1.0, 42);
  std::vector<double> x(kN, 1.0), y;
  spmv_csr_serial(probe, x, y);  // warm-up

  double csr_best = std::numeric_limits<double>::infinity();
  for (int b = 0; b < kBlocks; ++b) {
    double t0 = now_seconds();
    for (int i = 0; i < kRepsPerBlock; ++i) spmv_csr_serial(probe, x, y);
    csr_best = std::min(csr_best, now_seconds() - t0);
  }
  csr_cost_per_nnz_ = csr_best / (static_cast<double>(kRepsPerBlock) *
                                  static_cast<double>(probe.nnz()));

  std::vector<double> dense = probe.to_dense();
  gemv_dense_serial(dense, kN, kN, x, y);  // warm-up
  double dense_best = std::numeric_limits<double>::infinity();
  for (int b = 0; b < kBlocks; ++b) {
    double t0 = now_seconds();
    for (int i = 0; i < kRepsPerBlock; ++i) {
      gemv_dense_serial(dense, kN, kN, x, y);
    }
    dense_best = std::min(dense_best, now_seconds() - t0);
  }
  dense_cost_per_element_ =
      dense_best / (static_cast<double>(kRepsPerBlock) *
                    static_cast<double>(kN) * static_cast<double>(kN));

  if (csr_cost_per_nnz_ <= 0 || dense_cost_per_element_ <= 0) {
    return Status(ErrorCode::kInternal, "SpMV calibration produced "
                                        "non-positive per-element costs");
  }
  return Status::ok();
}

SpmvComponent::GpuModel SpmvComponent::gpu_model() const {
  GpuModel gpu;
  if (platform_.count_cuda_devices() == 0) return gpu;
  // Find the first CUDA device and pull its analytic peak out of the
  // composed model: num_SM * coresperSM * cfrq * 2 (FMA).
  for (const runtime::Node& dev : platform_.find_all("device")) {
    bool cuda = false;
    for (const runtime::Node& pm : dev.children("programming_model")) {
      for (const std::string& p :
           strings::split(pm.attribute_or("type", ""), ',')) {
        if (p.rfind("cuda", 0) == 0) cuda = true;
      }
    }
    if (!cuda) continue;
    double num_sm = 0, cores_per_sm = 0, freq = 0;
    for (const runtime::Node& param : dev.children("param")) {
      std::string_view name = param.attribute_or("name", "");
      auto read = [&]() -> double {
        for (std::string_view attr : {"value", "frequency", "size"}) {
          if (auto v = param.attribute(attr)) {
            if (auto q = param.quantity(attr); q.is_ok()) return q->si();
          }
        }
        return 0.0;
      };
      if (name == "num_SM") num_sm = read();
      else if (name == "coresperSM") cores_per_sm = read();
      else if (name == "cfrq") freq = read();
    }
    if (num_sm <= 0 || cores_per_sm <= 0 || freq <= 0) continue;
    gpu.available = true;
    gpu.flops = num_sm * cores_per_sm * freq * 2.0;
    // SpMV is memory-bound; a fixed efficiency factor keeps the model
    // honest relative to peak.
    gpu.flops *= 0.08;
    // PCIe bandwidth: composed effective bandwidth of the interconnect
    // whose tail is this device, else 6 GiB/s default (Listing 3).
    gpu.pcie_bandwidth_bps = 6.0 * 1024 * 1024 * 1024;
    std::string_view dev_id = dev.id();
    for (const runtime::Node& ic : platform_.find_all("interconnect")) {
      if (ic.attribute_or("tail", "") != dev_id) continue;
      if (auto q = ic.quantity("effective_bandwidth"); q.is_ok()) {
        gpu.pcie_bandwidth_bps = q->si();
      }
    }
    return gpu;
  }
  return gpu;
}

CallContext SpmvComponent::context_for(const CsrMatrix& a) const {
  CallContext ctx;
  ctx.values["rows"] = static_cast<double>(a.rows);
  ctx.values["cols"] = static_cast<double>(a.cols);
  ctx.values["nnz"] = static_cast<double>(a.nnz());
  ctx.values["density"] = a.density();
  return ctx;
}

std::vector<std::string> SpmvComponent::variant_names() {
  return {"csr_serial", "csr_parallel", "dense_serial", "gpu_offload"};
}

Status SpmvComponent::register_variants() {
  const double csr_c = csr_cost_per_nnz_;
  const double dense_c = dense_cost_per_element_;
  const double spawn_c = thread_spawn_cost_s_;
  const double cores = static_cast<double>(
      std::max<std::size_t>(platform_.count_host_cores(), 1));
  const GpuModel gpu = gpu_model();

  XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
      .name = "csr_serial",
      .required_installed = {},
      .guard = std::nullopt,
      .predicted_cost =
          [csr_c](const expr::VariableResolver& vars) -> Result<double> {
        XPDL_ASSIGN_OR_RETURN(double nnz, vars("nnz"));
        return csr_c * nnz;
      }}));

  {
    XPDL_ASSIGN_OR_RETURN(auto guard,
                          expr::Expression::parse("num_host_cores > 1"));
    XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
        .name = "csr_parallel",
        .required_installed = {},
        .guard = std::move(guard),
        .predicted_cost =
            [csr_c, spawn_c, cores](
                const expr::VariableResolver& vars) -> Result<double> {
          XPDL_ASSIGN_OR_RETURN(double nnz, vars("nnz"));
          double threads = std::max(cores, 1.0);
          return csr_c * nnz / threads + spawn_c * threads;
        }}));
  }

  XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
      .name = "dense_serial",
      .required_installed = {},
      .guard = std::nullopt,
      .predicted_cost =
          [dense_c](const expr::VariableResolver& vars) -> Result<double> {
        XPDL_ASSIGN_OR_RETURN(double rows, vars("rows"));
        XPDL_ASSIGN_OR_RETURN(double cols, vars("cols"));
        return dense_c * rows * cols;
      }}));

  if (gpu.available) {
    XPDL_ASSIGN_OR_RETURN(auto guard,
                          expr::Expression::parse("num_cuda_devices > 0"));
    XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
        .name = "gpu_offload",
        .required_installed = {"CUDA", "CUBLAS"},
        .guard = std::move(guard),
        .predicted_cost =
            [gpu](const expr::VariableResolver& vars) -> Result<double> {
          XPDL_ASSIGN_OR_RETURN(double nnz, vars("nnz"));
          XPDL_ASSIGN_OR_RETURN(double rows, vars("rows"));
          XPDL_ASSIGN_OR_RETURN(double cols, vars("cols"));
          // Transfer CSR (values + indices + row ptr) + x down, y up.
          double bytes = nnz * (8 + 4) + (rows + 1) * 8 + cols * 8 + rows * 8;
          double transfer = gpu.transfer_offset_s +
                            bytes / gpu.pcie_bandwidth_bps;
          double kernel = 2.0 * nnz / gpu.flops;
          return transfer + kernel;
        }}));
  }
  return Status::ok();
}

Result<SelectionReport> SpmvComponent::select(const CsrMatrix& a) const {
  return selector_.select(context_for(a));
}

Result<SpmvResult> SpmvComponent::run_variant(std::string_view variant,
                                              const CsrMatrix& a,
                                              const std::vector<double>& x) {
  if (x.size() != a.cols) {
    return Status(ErrorCode::kInvalidArgument,
                  "input vector length does not match matrix columns");
  }
  SpmvResult result;
  result.variant = std::string(variant);
  if (variant == "csr_serial") {
    double t0 = now_seconds();
    spmv_csr_serial(a, x, result.y);
    result.seconds = now_seconds() - t0;
  } else if (variant == "csr_parallel") {
    auto threads = static_cast<unsigned>(
        std::max<std::size_t>(platform_.count_host_cores(), 1));
    double t0 = now_seconds();
    spmv_csr_parallel(a, x, result.y, threads);
    result.seconds = now_seconds() - t0;
  } else if (variant == "dense_serial") {
    std::vector<double> dense = a.to_dense();
    double t0 = now_seconds();
    gemv_dense_serial(dense, a.rows, a.cols, x, result.y);
    result.seconds = now_seconds() - t0;
  } else if (variant == "gpu_offload") {
    GpuModel gpu = gpu_model();
    if (!gpu.available) {
      return Status(ErrorCode::kConstraintViolation,
                    "no CUDA device in the platform model");
    }
    // Hardware substitution (DESIGN.md): numerics on the host, timing
    // from the platform-model cost analytics.
    spmv_csr_serial(a, x, result.y);
    double bytes = static_cast<double>(a.nnz()) * 12 +
                   static_cast<double>(a.rows + 1) * 8 +
                   static_cast<double>(a.cols) * 8 +
                   static_cast<double>(a.rows) * 8;
    result.seconds = gpu.transfer_offset_s + bytes / gpu.pcie_bandwidth_bps +
                     2.0 * static_cast<double>(a.nnz()) / gpu.flops;
    result.simulated = true;
  } else {
    return Status(ErrorCode::kNotFound,
                  "unknown SpMV variant '" + std::string(variant) + "'");
  }
  return result;
}

Result<SpmvResult> SpmvComponent::run_tuned(const CsrMatrix& a,
                                            const std::vector<double>& x) {
  XPDL_ASSIGN_OR_RETURN(SelectionReport report, select(a));
  return run_variant(report.selected, a, x);
}

}  // namespace xpdl::composition
