#include "xpdl/composition/stencil.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "xpdl/model/power.h"

namespace xpdl::composition {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One Jacobi sweep source -> dest over the interior.
void sweep(const Grid& src, Grid& dst, std::size_t r0, std::size_t r1) {
  for (std::size_t r = std::max<std::size_t>(r0, 1);
       r < std::min(r1, src.rows - 1); ++r) {
    for (std::size_t c = 1; c < src.cols - 1; ++c) {
      dst.cells[r * src.cols + c] =
          0.25 * (src.at(r - 1, c) + src.at(r + 1, c) + src.at(r, c - 1) +
                  src.at(r, c + 1));
    }
  }
}

/// Finds the first power state machine in the platform model, if any.
std::optional<model::PowerStateMachine> find_psm(
    const runtime::Model& platform) {
  // Rebuild the FSM from the runtime nodes.
  for (const runtime::Node& n : platform.find_all("power_state_machine")) {
    model::PowerStateMachine fsm;
    fsm.name = std::string(n.attribute_or("name", ""));
    fsm.power_domain = std::string(n.attribute_or("power_domain", ""));
    if (auto states = n.first("power_states")) {
      for (const runtime::Node& s : states->children("power_state")) {
        model::PowerState ps;
        ps.name = std::string(s.attribute_or("name", ""));
        if (auto f = s.quantity("frequency"); f.is_ok()) {
          ps.frequency_hz = f->si();
        }
        if (auto p = s.quantity("power"); p.is_ok()) ps.power_w = p->si();
        fsm.states.push_back(std::move(ps));
      }
    }
    if (auto transitions = n.first("transitions")) {
      for (const runtime::Node& t : transitions->children("transition")) {
        model::PowerTransition tr;
        tr.from = std::string(t.attribute_or("head", ""));
        tr.to = std::string(t.attribute_or("tail", ""));
        if (auto q = t.quantity("time"); q.is_ok()) tr.time_s = q->si();
        if (auto q = t.quantity("energy"); q.is_ok()) tr.energy_j = q->si();
        fsm.transitions.push_back(std::move(tr));
      }
    }
    if (fsm.validate().is_ok() && !fsm.states.empty()) return fsm;
  }
  return std::nullopt;
}

}  // namespace

// ===========================================================================
// Grid + kernels

Grid Grid::random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Grid g;
  g.rows = rows;
  g.cols = cols;
  g.cells.resize(rows * cols);
  std::uint64_t state = seed ? seed : 1;
  for (double& v : g.cells) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000) / 1000.0;
  }
  return g;
}

void jacobi_naive(Grid& g, int sweeps) {
  Grid other = g;
  Grid* src = &g;
  Grid* dst = &other;
  for (int s = 0; s < sweeps; ++s) {
    sweep(*src, *dst, 0, src->rows);
    std::swap(src, dst);
  }
  if (src != &g) g = *src;
}

void jacobi_blocked(Grid& g, int sweeps, std::size_t block) {
  Grid other = g;
  Grid* src = &g;
  Grid* dst = &other;
  block = std::max<std::size_t>(block, 8);
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t r0 = 1; r0 < src->rows - 1; r0 += block) {
      std::size_t r1 = std::min(r0 + block, src->rows - 1);
      for (std::size_t c0 = 1; c0 < src->cols - 1; c0 += block) {
        std::size_t c1 = std::min(c0 + block, src->cols - 1);
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t c = c0; c < c1; ++c) {
            dst->cells[r * src->cols + c] =
                0.25 * (src->at(r - 1, c) + src->at(r + 1, c) +
                        src->at(r, c - 1) + src->at(r, c + 1));
          }
        }
      }
    }
    std::swap(src, dst);
  }
  if (src != &g) g = *src;
}

void jacobi_parallel(Grid& g, int sweeps, unsigned threads) {
  if (threads <= 1 || g.rows < threads * 4) {
    jacobi_naive(g, sweeps);
    return;
  }
  Grid other = g;
  Grid* src = &g;
  Grid* dst = &other;
  std::size_t chunk = (g.rows + threads - 1) / threads;
  for (int s = 0; s < sweeps; ++s) {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      std::size_t r0 = t * chunk;
      std::size_t r1 = std::min(g.rows, r0 + chunk);
      if (r0 >= r1) break;
      pool.emplace_back([&, r0, r1] { sweep(*src, *dst, r0, r1); });
    }
    for (std::thread& th : pool) th.join();
    std::swap(src, dst);
  }
  if (src != &g) g = *src;
}

// ===========================================================================
// Component

Result<StencilComponent> StencilComponent::create(
    const runtime::Model& platform) {
  StencilComponent comp(platform);
  // Calibrate the per-cell cost with a short probe.
  Grid probe = Grid::random(128, 128, 3);
  jacobi_naive(probe, 2);  // warm-up
  double t0 = now_seconds();
  constexpr int kReps = 10;
  jacobi_naive(probe, kReps);
  double elapsed = now_seconds() - t0;
  comp.cost_per_cell_s_ =
      elapsed / (kReps * 126.0 * 126.0);
  XPDL_RETURN_IF_ERROR(comp.register_variants());
  return comp;
}

double StencilComponent::work_cycles(const Grid& g, int sweeps) {
  double interior = static_cast<double>(g.rows > 2 ? g.rows - 2 : 0) *
                    static_cast<double>(g.cols > 2 ? g.cols - 2 : 0);
  return interior * 5.0 * sweeps;  // 3 adds + 1 mul + 1 store per cell
}

CallContext StencilComponent::context_for(const Grid& g, int sweeps) const {
  CallContext ctx;
  ctx.values["rows"] = static_cast<double>(g.rows);
  ctx.values["cols"] = static_cast<double>(g.cols);
  ctx.values["cells"] = static_cast<double>(g.rows * g.cols);
  ctx.values["sweeps"] = sweeps;
  return ctx;
}

std::vector<std::string> StencilComponent::variant_names() {
  return {"jacobi_naive", "jacobi_blocked", "jacobi_parallel"};
}

Status StencilComponent::register_variants() {
  const double cell_c = cost_per_cell_s_;
  const double host_cores = static_cast<double>(
      std::max<std::size_t>(platform_.count_host_cores(), 1));

  XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
      .name = "jacobi_naive",
      .predicted_cost =
          [cell_c](const expr::VariableResolver& vars) -> Result<double> {
        XPDL_ASSIGN_OR_RETURN(double cells, vars("cells"));
        XPDL_ASSIGN_OR_RETURN(double sweeps, vars("sweeps"));
        return cell_c * cells * sweeps;
      }}));

  // Blocked variant: profitable when the working set spills the last
  // level cache; requires the platform to *have* a large shared cache
  // (structural requirement in the query language).
  XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
      .name = "jacobi_blocked",
      .required_queries = {"//cache[@size>=4MiB]"},
      .predicted_cost =
          [cell_c](const expr::VariableResolver& vars) -> Result<double> {
        XPDL_ASSIGN_OR_RETURN(double cells, vars("cells"));
        XPDL_ASSIGN_OR_RETURN(double sweeps, vars("sweeps"));
        // Blocking pays a small loop overhead but saves on big grids
        // (modeled as 15% improvement beyond 4M cells).
        double factor = cells > 4e6 ? 0.85 : 1.08;
        return cell_c * cells * sweeps * factor;
      }}));

  {
    XPDL_ASSIGN_OR_RETURN(auto guard,
                          expr::Expression::parse("num_host_cores > 1"));
    XPDL_RETURN_IF_ERROR(selector_.add(VariantInfo{
        .name = "jacobi_parallel",
        .guard = std::move(guard),
        .predicted_cost =
            [cell_c, host_cores](
                const expr::VariableResolver& vars) -> Result<double> {
          XPDL_ASSIGN_OR_RETURN(double cells, vars("cells"));
          XPDL_ASSIGN_OR_RETURN(double sweeps, vars("sweeps"));
          return cell_c * cells * sweeps / host_cores +
                 sweeps * host_cores * 4e-5;  // per-sweep join barrier
        }}));
  }
  return Status::ok();
}

Result<SelectionReport> StencilComponent::select(const Grid& input,
                                                 int sweeps) const {
  return selector_.select(context_for(input, sweeps));
}

Result<StencilResult> StencilComponent::run_variant(std::string_view variant,
                                                    const Grid& input,
                                                    int sweeps) {
  if (input.rows < 3 || input.cols < 3) {
    return Status(ErrorCode::kInvalidArgument,
                  "stencil grids need at least 3x3 cells");
  }
  if (sweeps < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative sweep count");
  }
  StencilResult result;
  result.variant = std::string(variant);
  result.grid = input;
  double t0 = now_seconds();
  if (variant == "jacobi_naive") {
    jacobi_naive(result.grid, sweeps);
  } else if (variant == "jacobi_blocked") {
    jacobi_blocked(result.grid, sweeps, 64);
  } else if (variant == "jacobi_parallel") {
    jacobi_parallel(result.grid, sweeps,
                    static_cast<unsigned>(std::max<std::size_t>(
                        platform_.count_host_cores(), 1)));
  } else {
    return Status(ErrorCode::kNotFound,
                  "unknown stencil variant '" + std::string(variant) + "'");
  }
  result.seconds = now_seconds() - t0;
  return result;
}

Result<StencilResult> StencilComponent::run_tuned(const Grid& input,
                                                  int sweeps,
                                                  double deadline_s) {
  XPDL_ASSIGN_OR_RETURN(SelectionReport report,
                        select(input, sweeps));
  XPDL_ASSIGN_OR_RETURN(StencilResult result,
                        run_variant(report.selected, input, sweeps));

  // System-setting recommendation: the energy-minimal DVFS state for
  // this call's work under the deadline, from the platform's PSM.
  if (auto fsm = find_psm(platform_); fsm.has_value()) {
    energy::DvfsPlanner planner(*fsm);
    energy::Workload w;
    w.cycles = work_cycles(input, sweeps);
    w.deadline_s = deadline_s;
    // Idle power: the lowest-power state of the machine.
    w.idle_power_w = fsm->states.front().power_w;
    for (const model::PowerState& s : fsm->states) {
      w.idle_power_w = std::min(w.idle_power_w, s.power_w);
    }
    auto best = planner.best_single_state(w);
    if (best.is_ok() && !best->legs.empty()) {
      result.recommended_state = best->legs.front().state;
      result.predicted_energy_j = best->energy_j;
    }
  }
  return result;
}

}  // namespace xpdl::composition
