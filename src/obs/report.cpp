#include "xpdl/obs/report.h"

#include <cstdio>
#include <cstdlib>

#include "xpdl/util/strings.h"

namespace xpdl::obs {

namespace {

std::string duration_text(std::uint64_t ns) {
  double ms = static_cast<double>(ns) / 1e6;
  if (ms >= 1000.0) return strings::format("%.2f s", ms / 1000.0);
  if (ms >= 1.0) return strings::format("%.2f ms", ms);
  return strings::format("%.1f us", static_cast<double>(ns) / 1e3);
}

void format_phase(const PhaseStats& node, int depth, std::uint64_t parent_ns,
                  std::string& out) {
  if (depth >= 0) {
    std::string label(static_cast<std::size_t>(depth) * 2, ' ');
    label += node.name;
    double share = parent_ns > 0 ? 100.0 * static_cast<double>(node.total_ns) /
                                       static_cast<double>(parent_ns)
                                 : 100.0;
    out += strings::format("  %-40s %8llu x %12s  %5.1f%%\n", label.c_str(),
                           static_cast<unsigned long long>(node.count),
                           duration_text(node.total_ns).c_str(), share);
  }
  for (const PhaseStats& child : node.children) {
    format_phase(child, depth + 1, depth >= 0 ? node.total_ns : 0, out);
  }
}

}  // namespace

std::string format_phase_tree() {
  PhaseStats root = Tracer::instance().phase_tree();
  if (root.children.empty()) return "";
  std::string out;
  out += "phase                                        count        total"
         "   %par\n";
  format_phase(root, -1, 0, out);
  return out;
}

std::string format_metrics(const ReportOptions& options) {
  std::string counters, gauges, histograms;
  for (const MetricInfo& m : Registry::instance().metrics()) {
    switch (m.type) {
      case MetricInfo::Type::kCounter: {
        std::uint64_t v = m.counter->value();
        if (v == 0 && options.skip_zero) break;
        counters += strings::format(
            "  %-40s %14llu\n", m.name.c_str(),
            static_cast<unsigned long long>(v));
        break;
      }
      case MetricInfo::Type::kGauge: {
        double v = m.gauge->value();
        if (v == 0.0 && options.skip_zero) break;
        gauges += strings::format("  %-40s %14.6g\n", m.name.c_str(), v);
        break;
      }
      case MetricInfo::Type::kHistogram: {
        const Histogram& h = *m.histogram;
        if (h.count() == 0 && options.skip_zero) break;
        // p50/p95/p99: the same percentile triple every other exposition
        // surface reports (/metrics JSON, bench JSON), so numbers line up
        // across reports. A single-sample histogram renders like any
        // other: all three percentiles collapse onto that sample's
        // bucket.
        histograms += strings::format(
            "  %-40s n=%-8llu mean=%-10.1f p50=%-8llu p95=%-8llu "
            "p99=%-8llu max=%llu\n",
            m.name.c_str(), static_cast<unsigned long long>(h.count()),
            h.mean(), static_cast<unsigned long long>(h.percentile(0.50)),
            static_cast<unsigned long long>(h.percentile(0.95)),
            static_cast<unsigned long long>(h.percentile(0.99)),
            static_cast<unsigned long long>(h.max()));
        break;
      }
    }
  }
  std::string out;
  if (options.include_counters && !counters.empty()) {
    out += "counters\n" + counters;
  }
  if (options.include_gauges && !gauges.empty()) {
    out += "gauges\n" + gauges;
  }
  if (options.include_histograms && !histograms.empty()) {
    out += "histograms\n" + histograms;
  }
  return out;
}

std::string format_report(const ReportOptions& options) {
  std::string out;
  if (options.include_phases) {
    std::string phases = format_phase_tree();
    if (!phases.empty()) {
      out += "== phase timing "
             "==================================================\n";
      out += phases;
    }
  }
  std::string metrics = format_metrics(options);
  if (!metrics.empty()) {
    out += "== metrics "
           "=======================================================\n";
    out += metrics;
  }
  return out;
}

// ===========================================================================
// ToolSession

ToolSession::ToolSession(std::string tool_name)
    : tool_name_(std::move(tool_name)) {
  if (const char* path = std::getenv("XPDL_TRACE");
      path != nullptr && path[0] != '\0') {
    trace_path_ = path;
  }
  if (const char* stats = std::getenv("XPDL_STATS");
      stats != nullptr && stats[0] != '\0' &&
      std::string_view(stats) != "0") {
    stats_ = true;
  }
}

ToolSession::~ToolSession() {
  if (auto st = finish(); !st.is_ok()) {
    std::fprintf(stderr, "%s: warning: %s\n", tool_name_.c_str(),
                 st.to_string().c_str());
  }
}

bool ToolSession::parse_flag(int argc, char** argv, int& i) {
  std::string_view a = argv[i];
  if (a == "--stats") {
    stats_ = true;
    return true;
  }
  if (a == "--trace") {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: --trace requires a FILE.json argument\n",
                   tool_name_.c_str());
      std::exit(2);
    }
    trace_path_ = argv[++i];
    return true;
  }
  return false;
}

void ToolSession::set_trace_path(std::string path) {
  trace_path_ = std::move(path);
}

void ToolSession::begin() {
  begun_ = true;
  if (!trace_path_.empty()) {
    Tracer::instance().start(tool_name_);
  } else if (stats_) {
    set_timing_enabled(true);
  }
}

Status ToolSession::finish() {
  if (finished_) return Status::ok();
  finished_ = true;
  if (!begun_) return Status::ok();
  Status result = Status::ok();
  if (!trace_path_.empty()) {
    Tracer& tracer = Tracer::instance();
    tracer.stop();
    result = tracer.write_chrome_trace(trace_path_);
    if (result.is_ok()) {
      std::fprintf(stderr,
                   "%s: wrote trace to %s (open in chrome://tracing or "
                   "https://ui.perfetto.dev)\n",
                   tool_name_.c_str(), trace_path_.c_str());
    }
  }
  if (stats_) {
    std::string report = format_report();
    if (report.empty()) report = "(no observations recorded)\n";
    std::printf("== %s run statistics "
                "=============================================\n%s",
                tool_name_.c_str(), report.c_str());
  }
  return result;
}

}  // namespace xpdl::obs
