#include "xpdl/obs/trace.h"

#include <chrono>
#include <map>
#include <mutex>

#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"

namespace xpdl::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Per-thread span state: a sequential thread id for the trace, and the
/// stack of open span names (string_views into the live Span objects;
/// children always end before their parent, so the views stay valid).
struct ThreadState {
  std::uint32_t tid;
  std::vector<std::string_view> stack;
};

[[maybe_unused]] ThreadState& thread_state() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local ThreadState state{
      next_tid.fetch_add(1, std::memory_order_relaxed), {}};
  return state;
}

/// One node of the internal phase aggregation tree.
struct PhaseNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, PhaseNode, std::less<>> children;
};

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mutex;
  bool collecting = false;
  std::string process_name = "xpdl";
  std::uint64_t base_ns = 0;
  std::vector<TraceEvent> events;
  PhaseNode phase_root;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl impl;
  return impl;
}

void Tracer::start(std::string process_name) {
  Impl& i = impl();
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    i.collecting = true;
    i.process_name = std::move(process_name);
    if (i.base_ns == 0) i.base_ns = now_ns();
  }
  set_timing_enabled(true);
}

void Tracer::stop() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.collecting = false;
}

bool Tracer::collecting() const noexcept {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.collecting;
}

std::vector<TraceEvent> Tracer::events() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.events;
}

void Tracer::record(TraceEvent event,
                    const std::vector<std::string_view>& path) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  PhaseNode* node = &i.phase_root;
  for (std::string_view segment : path) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      it = node->children.emplace(std::string(segment), PhaseNode{}).first;
    }
    node = &it->second;
  }
  node->count += 1;
  node->total_ns += event.duration_ns;
  if (i.collecting) {
    event.start_ns =
        event.start_ns > i.base_ns ? event.start_ns - i.base_ns : 0;
    i.events.push_back(std::move(event));
  }
}

namespace {

PhaseStats to_stats(std::string name, const PhaseNode& node) {
  PhaseStats out;
  out.name = std::move(name);
  out.count = node.count;
  out.total_ns = node.total_ns;
  out.children.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    out.children.push_back(to_stats(child_name, child));
  }
  return out;
}

}  // namespace

PhaseStats Tracer::phase_tree() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return to_stats("<root>", i.phase_root);
}

json::Value Tracer::to_chrome_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  json::Array events;
  events.reserve(i.events.size() + 1);
  {
    // Process metadata: names the process in the trace viewer.
    json::Value meta;
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = 0;
    meta["args"]["name"] = i.process_name;
    events.push_back(std::move(meta));
  }
  for (const TraceEvent& e : i.events) {
    json::Value ev;
    ev["name"] = e.name;
    ev["cat"] = "xpdl";
    ev["ph"] = "X";
    ev["ts"] = static_cast<double>(e.start_ns) / 1000.0;
    ev["dur"] = static_cast<double>(e.duration_ns) / 1000.0;
    ev["pid"] = 1;
    ev["tid"] = static_cast<std::uint64_t>(e.tid);
    if (!e.args.empty()) {
      json::Value& args = ev["args"];
      for (const auto& [key, value] : e.args) args[key] = value;
    }
    events.push_back(std::move(ev));
  }
  json::Value doc;
  doc["traceEvents"] = json::Value(std::move(events));
  doc["displayTimeUnit"] = "ms";
  return doc;
}

Status Tracer::write_chrome_trace(const std::string& path) const {
  return io::write_file(path, json::write(to_chrome_json(), 1));
}

void Tracer::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.events.clear();
  i.phase_root = PhaseNode{};
  i.base_ns = 0;
}

// ===========================================================================
// Span

#if XPDL_OBS_ENABLED

void Span::begin(std::string_view name) {
  active_ = true;
  name_ = std::string(name);
  thread_state().stack.push_back(name_);
  start_ns_ = now_ns();
}

void Span::end() {
  std::uint64_t end_ns = now_ns();
  std::uint64_t duration = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  ThreadState& state = thread_state();

  TraceEvent event;
  event.name = name_;
  event.tid = state.tid;
  event.start_ns = start_ns_;
  event.duration_ns = duration;
  event.args = std::move(args_);
  Tracer::instance().record(std::move(event), state.stack);

  // Duration histogram per span name, in microseconds.
  histogram(name_ + ".duration_us").record(duration / 1000);

  if (!state.stack.empty()) state.stack.pop_back();
  active_ = false;
}

#endif  // XPDL_OBS_ENABLED

}  // namespace xpdl::obs
