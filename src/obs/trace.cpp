#include "xpdl/obs/trace.h"

#include <chrono>
#include <map>
#include <mutex>

#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"

namespace xpdl::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Per-thread span state: a sequential thread id for the trace, the
/// stack of open span names (string_views into the live Span objects;
/// children always end before their parent, so the views stay valid),
/// and the parallel stack of their span ids (for parent links and
/// cross-process context propagation).
struct ThreadState {
  std::uint32_t tid;
  std::vector<std::string_view> stack;
  std::vector<std::uint64_t> span_ids;
};

[[maybe_unused]] ThreadState& thread_state() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local ThreadState state{
      next_tid.fetch_add(1, std::memory_order_relaxed), {}};
  return state;
}

/// One node of the internal phase aggregation tree.
struct PhaseNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, PhaseNode, std::less<>> children;
};

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mutex;
  bool collecting = false;
  std::string process_name = "xpdl";
  std::uint64_t base_ns = 0;
  std::uint64_t base_unix_us = 0;  ///< wall clock at start(), for merging
  std::vector<TraceEvent> events;
  PhaseNode phase_root;
};

namespace {

/// The per-process trace id: stable for the process lifetime, random.
const TraceContext& process_trace_context() {
  static const TraceContext ctx = make_trace_context();
  return ctx;
}

}  // namespace

TraceContext Tracer::process_context() const { return process_trace_context(); }

TraceContext current_context() {
  ThreadState& state = thread_state();
  TraceContext remote = remote_parent_context();
  if (!state.span_ids.empty()) {
    TraceContext ctx = remote.valid() ? remote : process_trace_context();
    ctx.span_id = state.span_ids.back();
    return ctx;
  }
  if (remote.valid()) return remote;
  // No trace position at all: mint a one-off context so callers can
  // still correlate an outgoing request with server-side logs.
  return make_trace_context();
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl impl;
  return impl;
}

void Tracer::start(std::string process_name) {
  Impl& i = impl();
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    i.collecting = true;
    i.process_name = std::move(process_name);
    if (i.base_ns == 0) {
      i.base_ns = now_ns();
      i.base_unix_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
    }
  }
  set_timing_enabled(true);
}

void Tracer::stop() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.collecting = false;
}

bool Tracer::collecting() const noexcept {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.collecting;
}

std::vector<TraceEvent> Tracer::events() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.events;
}

void Tracer::record(TraceEvent event,
                    const std::vector<std::string_view>& path) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  PhaseNode* node = &i.phase_root;
  for (std::string_view segment : path) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      it = node->children.emplace(std::string(segment), PhaseNode{}).first;
    }
    node = &it->second;
  }
  node->count += 1;
  node->total_ns += event.duration_ns;
  if (i.collecting) {
    event.start_ns =
        event.start_ns > i.base_ns ? event.start_ns - i.base_ns : 0;
    i.events.push_back(std::move(event));
  }
}

namespace {

PhaseStats to_stats(std::string name, const PhaseNode& node) {
  PhaseStats out;
  out.name = std::move(name);
  out.count = node.count;
  out.total_ns = node.total_ns;
  out.children.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    out.children.push_back(to_stats(child_name, child));
  }
  return out;
}

}  // namespace

PhaseStats Tracer::phase_tree() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return to_stats("<root>", i.phase_root);
}

json::Value Tracer::to_chrome_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  json::Array events;
  events.reserve(i.events.size() + 1);
  {
    // Process metadata: names the process in the trace viewer.
    json::Value meta;
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = 0;
    meta["args"]["name"] = i.process_name;
    events.push_back(std::move(meta));
  }
  auto hex_id = [](std::uint64_t v) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  for (const TraceEvent& e : i.events) {
    double ts = static_cast<double>(e.start_ns) / 1000.0;
    json::Value ev;
    ev["name"] = e.name;
    ev["cat"] = "xpdl";
    ev["ph"] = "X";
    ev["ts"] = ts;
    ev["dur"] = static_cast<double>(e.duration_ns) / 1000.0;
    ev["pid"] = 1;
    ev["tid"] = static_cast<std::uint64_t>(e.tid);
    json::Value& args = ev["args"];
    args["span_id"] = hex_id(e.span_id);
    if (e.parent_span_id != 0) {
      args["parent_span_id"] = hex_id(e.parent_span_id);
    }
    for (const auto& [key, value] : e.args) args[key] = value;
    events.push_back(std::move(ev));

    // Cross-process propagation edges as Chrome flow events: the
    // injecting span starts a flow under its own id; a span whose parent
    // was adopted from a remote traceparent finishes the flow under the
    // *parent's* id. After xpdl-trace merge the ids match up and the
    // viewer draws an arrow from client fetch to server handling.
    if (e.flow_out) {
      json::Value flow;
      flow["name"] = e.name;
      flow["cat"] = "xpdl.flow";
      flow["ph"] = "s";
      flow["id"] = hex_id(e.span_id);
      flow["ts"] = ts;
      flow["pid"] = 1;
      flow["tid"] = static_cast<std::uint64_t>(e.tid);
      events.push_back(std::move(flow));
    }
    if (e.remote_parent) {
      json::Value flow;
      flow["name"] = e.name;
      flow["cat"] = "xpdl.flow";
      flow["ph"] = "f";
      flow["bp"] = "e";
      flow["id"] = hex_id(e.parent_span_id);
      flow["ts"] = ts;
      flow["pid"] = 1;
      flow["tid"] = static_cast<std::uint64_t>(e.tid);
      events.push_back(std::move(flow));
    }
  }
  json::Value doc;
  doc["traceEvents"] = json::Value(std::move(events));
  doc["displayTimeUnit"] = "ms";
  // Extension keys (ignored by the Chrome viewer): the wall-clock base
  // lets xpdl-trace merge align two processes' relative timestamps; the
  // process's root trace id and name label the file for correlation.
  doc["xpdlBaseUnixUs"] = i.base_unix_us;
  doc["xpdlTraceId"] = process_trace_context().trace_id_hex();
  doc["xpdlProcessName"] = i.process_name;
  return doc;
}

Status Tracer::write_chrome_trace(const std::string& path) const {
  return io::write_file(path, json::write(to_chrome_json(), 1));
}

void Tracer::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.events.clear();
  i.phase_root = PhaseNode{};
  i.base_ns = 0;
  i.base_unix_us = 0;
}

// ===========================================================================
// Span

#if XPDL_OBS_ENABLED

void Span::begin(std::string_view name) {
  active_ = true;
  timing_ = timing_enabled();
  name_ = std::string(name);
  span_id_ = next_span_id();
  if (timing_) {
    // Parent link: the innermost open span on this thread; at top level,
    // an adopted remote caller (see context.h). Root spans with no
    // remote context are tagged with the process trace id.
    ThreadState& state = thread_state();
    TraceContext remote = remote_parent_context();
    if (!state.span_ids.empty()) {
      parent_span_id_ = state.span_ids.back();
      remote_parent_ = false;
    } else if (remote.valid()) {
      parent_span_id_ = remote.span_id;
      remote_parent_ = true;
    } else {
      parent_span_id_ = 0;
      remote_parent_ = false;
    }
    const TraceContext& trace =
        remote.valid() ? remote : Tracer::instance().process_context();
    trace_id_hi_ = trace.trace_id_hi;
    trace_id_lo_ = trace.trace_id_lo;
    state.stack.push_back(name_);
    state.span_ids.push_back(span_id_);
  }
  start_ns_ = now_ns();
}

void Span::end() {
  std::uint64_t end_ns = now_ns();
  std::uint64_t duration = end_ns > start_ns_ ? end_ns - start_ns_ : 0;

  if (timing_) {
    ThreadState& state = thread_state();
    TraceEvent event;
    event.name = name_;
    event.tid = state.tid;
    event.start_ns = start_ns_;
    event.duration_ns = duration;
    event.span_id = span_id_;
    event.parent_span_id = parent_span_id_;
    event.trace_id_hi = trace_id_hi_;
    event.trace_id_lo = trace_id_lo_;
    event.remote_parent = remote_parent_;
    event.flow_out = flow_out_;
    event.args = std::move(args_);
    Tracer::instance().record(std::move(event), state.stack);

    // Duration histogram per span name, in microseconds.
    histogram(name_ + ".duration_us").record(duration / 1000);

    if (!state.stack.empty()) state.stack.pop_back();
    if (!state.span_ids.empty()) state.span_ids.pop_back();
  }

  // The flight ring sees every span, timed or not: in an un-observed
  // daemon it is the only record of what ran right before a crash.
  if (flight_enabled()) {
    FlightRecorder::instance().record(FlightRecorder::Kind::kSpan, name_,
                                      duration / 1000);
  }
  active_ = false;
}

TraceContext Span::context() const noexcept {
  if (!active_) return {};
  TraceContext ctx;
  if (timing_) {
    ctx.trace_id_hi = trace_id_hi_;
    ctx.trace_id_lo = trace_id_lo_;
  } else {
    TraceContext remote = remote_parent_context();
    const TraceContext& trace =
        remote.valid() ? remote : process_trace_context();
    ctx.trace_id_hi = trace.trace_id_hi;
    ctx.trace_id_lo = trace.trace_id_lo;
  }
  ctx.span_id = span_id_;
  return ctx;
}

#endif  // XPDL_OBS_ENABLED

}  // namespace xpdl::obs
