#include "xpdl/obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace xpdl::obs {

std::uint64_t Histogram::percentile(double p) const noexcept {
  std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the p-th sample (1-based, ceil).
  auto rank = static_cast<std::uint64_t>(p * static_cast<double>(n));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b <= kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) {
      // Clamp the bucket's upper bound by the exact max for the tail.
      return b + 1 > kBuckets || bucket_max(b) > max() ? max()
                                                       : bucket_max(b);
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ===========================================================================
// Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: element addresses are stable across insertions, so
  // references handed out to instrumentation sites never dangle.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricInfo> Registry::metrics() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<MetricInfo> out;
  out.reserve(i.counters.size() + i.gauges.size() + i.histograms.size());
  for (const auto& [name, c] : i.counters) {
    out.push_back({name, MetricInfo::Type::kCounter, c.get(), nullptr,
                   nullptr});
  }
  for (const auto& [name, g] : i.gauges) {
    out.push_back({name, MetricInfo::Type::kGauge, nullptr, g.get(),
                   nullptr});
  }
  for (const auto& [name, h] : i.histograms) {
    out.push_back(
        {name, MetricInfo::Type::kHistogram, nullptr, nullptr, h.get()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricInfo& a, const MetricInfo& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset_values() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

// ===========================================================================
// Timing switch

namespace {
std::atomic<bool> g_timing_enabled{false};
}  // namespace

void set_timing_enabled(bool enabled) noexcept {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool timing_enabled() noexcept {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

}  // namespace xpdl::obs
