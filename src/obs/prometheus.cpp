#include "xpdl/obs/prometheus.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace xpdl::obs {

namespace {

/// Formats a gauge value: integral values without a fractional part
/// (Prometheus parses both), everything else with enough digits to
/// round-trip a double.
[[nodiscard]] std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  double integral = 0.0;
  if (std::modf(v, &integral) == 0.0 && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[nodiscard]] std::string format_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// Escapes a HELP text: per the exposition format, backslash and
/// newline must be escaped in HELP lines.
[[nodiscard]] std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_family_header(std::string& out, const std::string& prom_name,
                          std::string_view original, const char* type) {
  out += "# HELP ";
  out += prom_name;
  out += " xpdl metric ";
  out += escape_help(original);
  out += '\n';
  out += "# TYPE ";
  out += prom_name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_histogram(std::string& out, const std::string& prom_name,
                      std::string_view original, const Histogram& h) {
  append_family_header(out, prom_name, original, "histogram");
  // Cumulative buckets over the fixed log2 grid: emit up to the highest
  // occupied bucket so an idle histogram is just {+Inf, sum, count}.
  std::size_t highest = 0;
  bool any = false;
  for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
    if (h.bucket(i) != 0) {
      highest = i;
      any = true;
    }
  }
  std::uint64_t cumulative = 0;
  if (any) {
    for (std::size_t i = 0; i <= highest && i < Histogram::kBuckets; ++i) {
      cumulative += h.bucket(i);
      out += prom_name;
      out += "_bucket{le=\"";
      out += format_u64(Histogram::bucket_max(i));
      out += "\"} ";
      out += format_u64(cumulative);
      out += '\n';
    }
  }
  std::uint64_t count = h.count();
  out += prom_name;
  out += "_bucket{le=\"+Inf\"} ";
  out += format_u64(count);
  out += '\n';
  out += prom_name;
  out += "_sum ";
  out += format_u64(h.sum());
  out += '\n';
  out += prom_name;
  out += "_count ";
  out += format_u64(count);
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "xpdl_";
  out.reserve(name.size() + 5);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(const std::vector<MetricInfo>& metrics) {
  std::vector<const MetricInfo*> sorted;
  sorted.reserve(metrics.size());
  for (const MetricInfo& m : metrics) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricInfo* a, const MetricInfo* b) {
              return a->name < b->name;
            });

  std::string out;
  for (const MetricInfo* m : sorted) {
    switch (m->type) {
      case MetricInfo::Type::kCounter: {
        if (m->counter == nullptr) break;
        std::string prom = prometheus_name(m->name);
        // Counters get the conventional _total suffix — once: a source
        // name that already ends in _total (net.server.shed_total) must
        // not become _total_total.
        constexpr std::string_view kSuffix = "_total";
        if (prom.size() < kSuffix.size() ||
            prom.compare(prom.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0) {
          prom += kSuffix;
        }
        append_family_header(out, prom, m->name, "counter");
        out += prom;
        out += ' ';
        out += format_u64(m->counter->value());
        out += '\n';
        break;
      }
      case MetricInfo::Type::kGauge: {
        if (m->gauge == nullptr) break;
        std::string prom = prometheus_name(m->name);
        append_family_header(out, prom, m->name, "gauge");
        out += prom;
        out += ' ';
        out += format_value(m->gauge->value());
        out += '\n';
        break;
      }
      case MetricInfo::Type::kHistogram: {
        if (m->histogram == nullptr) break;
        append_histogram(out, prometheus_name(m->name), m->name,
                         *m->histogram);
        break;
      }
    }
  }
  return out;
}

std::string prometheus_text() {
  return to_prometheus_text(Registry::instance().metrics());
}

}  // namespace xpdl::obs
