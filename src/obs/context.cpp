#include "xpdl/obs/context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>

namespace xpdl::obs {

namespace {

/// splitmix64: tiny, well-mixed generator used to derive unique ids from
/// an atomic counter without coordination between threads.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t process_seed() {
  static const std::uint64_t seed = [] {
    std::random_device rd;
    std::uint64_t s = (std::uint64_t{rd()} << 32) ^ rd();
    s ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return splitmix64(s);
  }();
  return seed;
}

[[nodiscard]] std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{1};
  std::uint64_t id = splitmix64(
      process_seed() ^ counter.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;  // ids of 0 mean "absent" throughout
}

void hex16(std::uint64_t v, char* out) noexcept {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xF];
    v >>= 4;
  }
}

[[nodiscard]] bool parse_hex(std::string_view text, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;  // upper-case hex is invalid per the W3C spec
    }
  }
  out = v;
  return true;
}

/// The thread's adopted remote context; span_id == 0 means "none".
thread_local TraceContext t_remote_parent{0, 0, 0, 0x01};

}  // namespace

std::string TraceContext::trace_id_hex() const {
  char buf[33];
  hex16(trace_id_hi, buf);
  hex16(trace_id_lo, buf + 16);
  buf[32] = '\0';
  return std::string(buf, 32);
}

std::string format_traceparent(const TraceContext& ctx) {
  // 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
  char buf[56];
  buf[0] = '0';
  buf[1] = '0';
  buf[2] = '-';
  hex16(ctx.trace_id_hi, buf + 3);
  hex16(ctx.trace_id_lo, buf + 19);
  buf[35] = '-';
  hex16(ctx.span_id, buf + 36);
  buf[52] = '-';
  static constexpr char kDigits[] = "0123456789abcdef";
  buf[53] = kDigits[(ctx.flags >> 4) & 0xF];
  buf[54] = kDigits[ctx.flags & 0xF];
  buf[55] = '\0';
  return std::string(buf, 55);
}

bool parse_traceparent(std::string_view header, TraceContext& out) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2); a version
  // other than 00 may carry a suffix, which we ignore per spec.
  if (header.size() < 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return false;
  }
  std::uint64_t version = 0;
  if (!parse_hex(header.substr(0, 2), version)) return false;
  if (version == 0xFF) return false;  // forbidden version value
  if (version == 0 && header.size() != 55) return false;
  if (header.size() > 55 && header[55] != '-') return false;
  TraceContext ctx;
  std::uint64_t flags = 0;
  if (!parse_hex(header.substr(3, 16), ctx.trace_id_hi) ||
      !parse_hex(header.substr(19, 16), ctx.trace_id_lo) ||
      !parse_hex(header.substr(36, 16), ctx.span_id) ||
      !parse_hex(header.substr(53, 2), flags)) {
    return false;
  }
  ctx.flags = static_cast<std::uint8_t>(flags);
  if (!ctx.valid()) return false;  // all-zero ids are invalid
  out = ctx;
  return true;
}

TraceContext make_trace_context() {
  TraceContext ctx;
  ctx.trace_id_hi = next_id();
  ctx.trace_id_lo = next_id();
  ctx.span_id = next_id();
  ctx.flags = 0x01;
  return ctx;
}

std::uint64_t next_span_id() { return next_id(); }

std::string current_traceparent() {
  return format_traceparent(current_context());
}

ScopedRemoteParent::ScopedRemoteParent(const TraceContext& remote) {
  had_previous_ = t_remote_parent.valid();
  if (had_previous_) previous_ = t_remote_parent;
  t_remote_parent = remote;
}

ScopedRemoteParent::~ScopedRemoteParent() {
  t_remote_parent = had_previous_ ? previous_ : TraceContext{0, 0, 0, 0x01};
}

TraceContext remote_parent_context() { return t_remote_parent; }

}  // namespace xpdl::obs
