#include "xpdl/obs/flight.h"

#include <algorithm>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "xpdl/obs/trace.h"
#include "xpdl/util/io.h"

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace xpdl::obs {

namespace {

std::atomic<bool> g_flight_enabled{false};

[[nodiscard]] std::uint32_t os_thread_id() noexcept {
#if defined(__linux__)
  thread_local std::uint32_t tid =
      static_cast<std::uint32_t>(::syscall(SYS_gettid));
  return tid;
#else
  thread_local std::uint32_t tid = [] {
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }();
  return tid;
#endif
}

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// --- async-signal-safe formatting helpers --------------------------------

/// Appends `v` in decimal to `buf` at `pos` (buf must be large enough).
void append_u64(char* buf, std::size_t& pos, std::uint64_t v) noexcept {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) buf[pos++] = digits[--n];
}

void append_str(char* buf, std::size_t& pos, const char* s) noexcept {
  while (*s != '\0') buf[pos++] = *s++;
}

/// Appends a JSON-safe rendering of `name`: printable ASCII minus quote
/// and backslash; everything else becomes '.'.
void append_name(char* buf, std::size_t& pos, const char* name) noexcept {
  for (std::size_t i = 0; i < FlightRecorder::kNameBytes && name[i] != '\0';
       ++i) {
    char c = name[i];
    buf[pos++] = (c >= 0x20 && c < 0x7F && c != '"' && c != '\\') ? c : '.';
  }
}

[[nodiscard]] const char* kind_name(std::uint8_t kind) noexcept {
  switch (static_cast<FlightRecorder::Kind>(kind)) {
    case FlightRecorder::Kind::kSpan: return "span";
    case FlightRecorder::Kind::kEvent: return "event";
    case FlightRecorder::Kind::kRequest: return "request";
  }
  return "unknown";
}

// --- crash handler state --------------------------------------------------

char g_crash_dump_path[512] = {};
char g_crash_cleanup_path[512] = {};
struct sigaction g_previous_actions[32];

void crash_handler(int signo) {
  // Restore default disposition first so a second fault cannot recurse.
  std::signal(signo, SIG_DFL);
  if (g_crash_dump_path[0] != '\0') {
    int fd = ::open(g_crash_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::instance().dump_signal_safe(fd);
      ::close(fd);
    }
  }
  if (g_crash_cleanup_path[0] != '\0') {
    ::unlink(g_crash_cleanup_path);  // async-signal-safe
  }
  ::raise(signo);
}

}  // namespace

bool flight_enabled() noexcept {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(std::size_t capacity) {
  if (ring_.load(std::memory_order_acquire) == nullptr) {
    if (capacity == 0) capacity = 4096;
    std::size_t cap = round_up_pow2(capacity);
    // The ring leaks on purpose: the crash handler may read it at any
    // point of process teardown, so it must never be freed.
    Entry* ring = new Entry[cap]();
    mask_.store(cap - 1, std::memory_order_relaxed);
    ring_.store(ring, std::memory_order_release);
  }
  enabled_.store(true, std::memory_order_relaxed);
  g_flight_enabled.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
  g_flight_enabled.store(false, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const noexcept {
  return enabled_.load(std::memory_order_relaxed);
}

std::size_t FlightRecorder::capacity() const noexcept {
  return ring_.load(std::memory_order_acquire) == nullptr
             ? 0
             : mask_.load(std::memory_order_relaxed) + 1;
}

void FlightRecorder::record(Kind kind, std::string_view name,
                            std::uint64_t value,
                            std::uint16_t status) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Entry* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Entry& slot = ring[seq & mask_.load(std::memory_order_relaxed)];
  // Mark the slot as in-flight so a concurrent snapshot skips it, then
  // publish the sequence number last.
  slot.seq = 0;
  slot.ts_ns = now_ns();
  slot.value = value;
  slot.tid = os_thread_id();
  slot.status = status;
  slot.kind = static_cast<std::uint8_t>(kind);
  std::size_t n = std::min(name.size(), kNameBytes);
  std::memcpy(slot.name, name.data(), n);
  slot.name[n] = '\0';
  std::atomic_ref<std::uint64_t>(slot.seq).store(seq,
                                                 std::memory_order_release);
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::vector<Entry> out;
  const Entry* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) return out;
  std::size_t cap = mask_.load(std::memory_order_relaxed) + 1;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    Entry e = ring[i];
    if (e.seq != 0) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  return out;
}

json::Value FlightRecorder::to_json() const {
  json::Value doc;
  json::Array entries;
  for (const Entry& e : snapshot()) {
    json::Value entry;
    entry["seq"] = e.seq;
    entry["ts_ns"] = e.ts_ns;
    entry["kind"] = kind_name(e.kind);
    entry["name"] = std::string(e.name);
    entry["tid"] = std::uint64_t{e.tid};
    entry["value"] = e.value;
    if (e.status != 0) entry["status"] = std::uint64_t{e.status};
    entries.push_back(std::move(entry));
  }
  doc["recorded"] = recorded();
  doc["capacity"] = std::uint64_t{capacity()};
  doc["entries"] = std::move(entries);
  return doc;
}

Status FlightRecorder::dump(const std::string& path) const {
  return io::write_file(path, json::write(to_json(), 1) + "\n");
}

void FlightRecorder::dump_signal_safe(int fd) const noexcept {
  const Entry* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  std::size_t cap = mask_.load(std::memory_order_relaxed) + 1;
  // One JSONL record per entry, formatted on the stack. Ordering is left
  // to the reader (entries carry seq): no sort, no allocation here.
  for (std::size_t i = 0; i < cap; ++i) {
    const Entry& e = ring[i];
    if (e.seq == 0) continue;
    char line[256];
    std::size_t pos = 0;
    append_str(line, pos, "{\"seq\":");
    append_u64(line, pos, e.seq);
    append_str(line, pos, ",\"ts_ns\":");
    append_u64(line, pos, e.ts_ns);
    append_str(line, pos, ",\"kind\":\"");
    append_str(line, pos, kind_name(e.kind));
    append_str(line, pos, "\",\"name\":\"");
    append_name(line, pos, e.name);
    append_str(line, pos, "\",\"tid\":");
    append_u64(line, pos, e.tid);
    append_str(line, pos, ",\"value\":");
    append_u64(line, pos, e.value);
    append_str(line, pos, ",\"status\":");
    append_u64(line, pos, e.status);
    append_str(line, pos, "}\n");
    ssize_t written = ::write(fd, line, pos);
    (void)written;  // best effort: a failed write cannot be reported here
  }
}

void FlightRecorder::install_crash_handlers(const std::string& path) {
  std::size_t n = std::min(path.size(), sizeof(g_crash_dump_path) - 1);
  std::memcpy(g_crash_dump_path, path.data(), n);
  g_crash_dump_path[n] = '\0';
  struct sigaction action = {};
  action.sa_handler = crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(signo, &action,
                signo < 32 ? &g_previous_actions[signo] : nullptr);
  }
}

void FlightRecorder::set_crash_cleanup_path(const std::string& path) {
  std::size_t n = std::min(path.size(), sizeof(g_crash_cleanup_path) - 1);
  std::memcpy(g_crash_cleanup_path, path.data(), n);
  g_crash_cleanup_path[n] = '\0';
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return next_seq_.load(std::memory_order_relaxed) - 1;
}

void FlightRecorder::clear() noexcept {
  Entry* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  std::size_t cap = mask_.load(std::memory_order_relaxed) + 1;
  for (std::size_t i = 0; i < cap; ++i) ring[i].seq = 0;
}

}  // namespace xpdl::obs
