#include "xpdl/obs/eventlog.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

#include "xpdl/util/json.h"
#include "xpdl/util/strings.h"

namespace xpdl::obs {

namespace {

[[nodiscard]] std::uint64_t wall_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

Status EventLog::open(const std::string& path, std::uint64_t sample_every) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  strings::format("event log: cannot open %s", path.c_str()));
  }
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
  int previous = fd_.exchange(fd, std::memory_order_acq_rel);
  if (previous >= 0) ::close(previous);
  return Status::ok();
}

void EventLog::close() noexcept {
  int previous = fd_.exchange(-1, std::memory_order_acq_rel);
  if (previous >= 0) ::close(previous);
}

bool EventLog::enabled() const noexcept {
  return fd_.load(std::memory_order_relaxed) >= 0;
}

void EventLog::log_request(const Request& r) noexcept {
  if (!enabled()) return;
  // Format outside the sampling gate would waste work; gate first.
  std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % every != 0) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  char prefix[96];
  int n = std::snprintf(prefix, sizeof prefix, "{\"ts_us\":%" PRIu64,
                        wall_us());
  std::string line(prefix, static_cast<std::size_t>(n > 0 ? n : 0));
  line += ",\"method\":\"";
  line += json::escape(r.method);
  line += "\",\"path\":\"";
  line += json::escape(r.path);
  line += "\"";
  char fields[160];
  n = std::snprintf(fields, sizeof fields,
                    ",\"status\":%d,\"bytes\":%" PRIu64
                    ",\"duration_us\":%" PRIu64,
                    r.status, r.bytes, r.duration_us);
  line.append(fields, static_cast<std::size_t>(n > 0 ? n : 0));
  if (!r.trace_id.empty()) {
    line += ",\"trace_id\":\"";
    line += json::escape(r.trace_id);
    line += "\"";
  }
  if (r.faults_injected != 0) {
    n = std::snprintf(fields, sizeof fields, ",\"faults_injected\":%" PRIu64,
                      r.faults_injected);
    line.append(fields, static_cast<std::size_t>(n > 0 ? n : 0));
  }
  line += "}\n";
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  ssize_t written = ::write(fd, line.data(), line.size());
  (void)written;  // best effort; an access log must never fail a request
  written_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::log_line(std::string_view json_object) noexcept {
  if (!enabled()) return;
  std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % every != 0) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::string line(json_object);
  line += '\n';
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  ssize_t written = ::write(fd, line.data(), line.size());
  (void)written;
  written_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t EventLog::written() const noexcept {
  return written_.load(std::memory_order_relaxed);
}

std::uint64_t EventLog::sampled_out() const noexcept {
  return sampled_out_.load(std::memory_order_relaxed);
}

}  // namespace xpdl::obs
