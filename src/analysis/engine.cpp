// The pass manager: preloads descriptors, fans the descriptor-scope
// passes out over the work-stealing pool into per-descriptor result
// slots, then runs the repository- and model-scope passes serially.
// The canonical final sort makes serial and parallel runs byte-identical.
#include "xpdl/analysis/analysis.h"

#include <utility>

#include "xpdl/analysis/pool.h"
#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"

namespace xpdl::analysis {
namespace {

std::vector<const AnalysisRule*> enabled_rules(const RuleConfig& config,
                                               RuleScope scope) {
  std::vector<const AnalysisRule*> out;
  for (const AnalysisRule* rule : Registry::instance().rules(scope)) {
    if (config.enabled(rule->info().id)) out.push_back(rule);
  }
  return out;
}

void fill_file(std::vector<Finding>& findings, const std::string& path) {
  for (Finding& f : findings) {
    if (f.location.file.empty()) f.location.file = path;
  }
}

}  // namespace

Engine::Engine(Options options) : options_(std::move(options)) {}

std::vector<Finding> Engine::analyze_descriptor(const xml::Element& root,
                                                std::string_view path) const {
  std::vector<Finding> out;
  Sink sink(options_.rules, out);
  DescriptorContext ctx{root, std::string(path)};
  for (const AnalysisRule* rule :
       enabled_rules(options_.rules, RuleScope::kDescriptor)) {
    rule->analyze_descriptor(ctx, sink);
  }
  fill_file(out, ctx.path);
  return out;
}

std::vector<Finding> Engine::analyze_model(const compose::ComposedModel& model,
                                           std::string_view ref,
                                           std::string_view path) const {
  std::vector<Finding> out;
  Sink sink(options_.rules, out);
  ModelContext ctx{model, std::string(ref), std::string(path)};
  for (const AnalysisRule* rule :
       enabled_rules(options_.rules, RuleScope::kModel)) {
    rule->analyze_model(ctx, sink);
  }
  fill_file(out, ctx.path);
  return out;
}

Result<Report> Engine::analyze_repository(repository::Repository& repo) const {
  Report report;
  std::vector<repository::DescriptorInfo> infos = repo.descriptors();
  report.descriptors = infos.size();

  // Repository::lookup caches lazily and is not thread-safe; load every
  // descriptor once, serially, before the parallel fan-out.
  std::vector<const xml::Element*> roots;
  roots.reserve(infos.size());
  {
    obs::Span span("analysis.preload");
    for (const auto& info : infos) {
      XPDL_ASSIGN_OR_RETURN(const xml::Element* root,
                            repo.lookup(info.reference_name));
      roots.push_back(root);
    }
  }

  // Descriptor passes, one task per descriptor, one result slot per task:
  // no task ever touches another task's slot, and the slot order is the
  // (deterministic) descriptor index order.
  {
    obs::Span span("analysis.descriptor_passes");
    std::vector<const AnalysisRule*> rules =
        enabled_rules(options_.rules, RuleScope::kDescriptor);
    std::vector<std::vector<Finding>> slots(infos.size());
    std::size_t threads = options_.threads == 0 ? pool::default_threads()
                                                : options_.threads;
    pool::parallel_for(threads, infos.size(), [&](std::size_t i) {
      Sink sink(options_.rules, slots[i]);
      DescriptorContext ctx{*roots[i], infos[i].path};
      for (const AnalysisRule* rule : rules) {
        rule->analyze_descriptor(ctx, sink);
      }
      fill_file(slots[i], infos[i].path);
      XPDL_OBS_COUNT("analysis.descriptors_analyzed", 1);
    });
    for (std::vector<Finding>& slot : slots) {
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(slot.begin()),
                             std::make_move_iterator(slot.end()));
    }
  }

  {
    obs::Span span("analysis.repository_passes");
    Sink sink(options_.rules, report.findings);
    RepositoryContext ctx{repo, infos};
    for (const AnalysisRule* rule :
         enabled_rules(options_.rules, RuleScope::kRepository)) {
      XPDL_RETURN_IF_ERROR(rule->analyze_repository(ctx, sink));
    }
  }

  if (options_.analyze_models) {
    obs::Span span("analysis.model_passes");
    const AnalysisRule* compose_error =
        Registry::instance().find("compose-error");
    compose::Composer composer(repo);
    for (std::size_t i = 0; i < infos.size(); ++i) {
      const auto& info = infos[i];
      if (info.is_meta || info.tag != "system") continue;
      auto model = composer.compose(info.reference_name);
      if (!model.is_ok()) {
        if (compose_error != nullptr &&
            options_.rules.enabled(compose_error->info().id)) {
          Sink sink(options_.rules, report.findings);
          sink.report(compose_error->info(),
                      "system '" + info.reference_name +
                          "' fails to compose: " + model.status().message(),
                      SourceLocation{info.path, 0, 0});
        }
        continue;
      }
      ++report.models_composed;
      XPDL_OBS_COUNT("analysis.models_composed", 1);
      std::vector<Finding> findings =
          analyze_model(*model, info.reference_name, info.path);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(findings.begin()),
                             std::make_move_iterator(findings.end()));
    }
  }

  XPDL_OBS_COUNT("analysis.findings", report.findings.size());
  report.sort();
  return report;
}

}  // namespace xpdl::analysis
