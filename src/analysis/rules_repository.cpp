// Repository-scope passes: cross-descriptor reference and inheritance
// analysis (extends= cycles, diamond conflicts, unit conflicts across the
// inheritance chain) plus the migrated unresolved-type / unreferenced-meta
// lint rules.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "xpdl/model/ir.h"
#include "xpdl/schema/schema.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"
#include "rules_internal.h"

namespace xpdl::analysis {
namespace {

void walk(const xml::Element& e,
          const std::function<void(const xml::Element&)>& fn) {
  fn(e);
  for (const auto& c : e.children()) walk(*c, fn);
}

/// Root element of each indexed descriptor, by reference name. The engine
/// pre-loads every descriptor before the repository passes run, so lookup
/// never fails here; descriptors that cannot load are simply absent.
std::map<std::string, const xml::Element*> load_roots(
    const RepositoryContext& ctx) {
  std::map<std::string, const xml::Element*> roots;
  for (const auto& info : ctx.infos) {
    auto root = ctx.repo.lookup(info.reference_name);
    if (root.is_ok()) roots.emplace(info.reference_name, *root);
  }
  return roots;
}

std::vector<std::string> extends_of(const xml::Element& root) {
  return model::identity_of(root).extends;
}

// --- unresolved-type ----------------------------------------------------

class UnresolvedTypeRule final : public internal::RuleBase {
 public:
  UnresolvedTypeRule()
      : RuleBase("unresolved-type", RuleScope::kRepository,
                 Severity::kWarning,
                 "type= reference that no repository descriptor defines "
                 "(kind string or typo)") {}

  Status analyze_repository(const RepositoryContext& ctx,
                            Sink& sink) const override {
    for (const auto& desc : ctx.infos) {
      XPDL_ASSIGN_OR_RETURN(const xml::Element* root,
                            ctx.repo.lookup(desc.reference_name));
      walk(*root, [&](const xml::Element& e) {
        if (!schema::is_component_tag(e.tag()) && e.tag() != "power_model") {
          return;
        }
        if (e.parent() != nullptr && e.parent()->tag() == "power_domain") {
          return;  // intra-model references (Listing 12)
        }
        auto type = e.attribute("type");
        if (!type.has_value() || ctx.repo.contains(*type)) return;
        sink.report(info(),
                    "<" + e.tag() + "> references type '" +
                        std::string(*type) +
                        "' which no repository descriptor defines (kind "
                        "string or typo?)",
                    e.location());
      });
    }
    return Status::ok();
  }
};

// --- unreferenced-meta --------------------------------------------------

class UnreferencedMetaRule final : public internal::RuleBase {
 public:
  UnreferencedMetaRule()
      : RuleBase("unreferenced-meta", RuleScope::kRepository, Severity::kNote,
                 "meta-model no other descriptor references (dead "
                 "descriptor or repository split)") {}

  Status analyze_repository(const RepositoryContext& ctx,
                            Sink& sink) const override {
    std::set<std::string> referenced;
    for (const auto& info : ctx.infos) {
      XPDL_ASSIGN_OR_RETURN(const xml::Element* root,
                            ctx.repo.lookup(info.reference_name));
      walk(*root, [&](const xml::Element& e) {
        if (auto type = e.attribute("type")) {
          // A root's type reference counts unless it names itself.
          if (*type != info.reference_name) referenced.emplace(*type);
        }
        if (auto ext = e.attribute("extends")) {
          for (const std::string& base : strings::split(*ext, ',')) {
            referenced.insert(base);
          }
        }
      });
    }
    for (const auto& info : ctx.infos) {
      if (info.is_meta && info.tag != "system" &&
          referenced.find(info.reference_name) == referenced.end()) {
        sink.report(this->info(),
                    "meta-model '" + info.reference_name +
                        "' is not referenced by any other descriptor in "
                        "the repository",
                    SourceLocation{info.path, 0, 0});
      }
    }
    return Status::ok();
  }
};

// --- extends-cycle ------------------------------------------------------

class ExtendsCycleRule final : public internal::RuleBase {
 public:
  ExtendsCycleRule()
      : RuleBase("extends-cycle", RuleScope::kRepository, Severity::kError,
                 "extends= inheritance chain that loops back on itself "
                 "(composition of any involved model must fail)") {}

  Status analyze_repository(const RepositoryContext& ctx,
                            Sink& sink) const override {
    std::map<std::string, const xml::Element*> roots = load_roots(ctx);
    // Iterative DFS with tricolor marking; each cycle is reported once,
    // anchored at its lexicographically smallest member.
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::set<std::string> reported;
    for (const auto& [name, root] : roots) {
      (void)root;
      if (color[name] != 0) continue;
      std::vector<std::string> stack;
      dfs(name, roots, color, stack, reported, sink);
    }
    return Status::ok();
  }

 private:
  void dfs(const std::string& name,
           const std::map<std::string, const xml::Element*>& roots,
           std::map<std::string, int>& color,
           std::vector<std::string>& stack, std::set<std::string>& reported,
           Sink& sink) const {
    color[name] = 1;
    stack.push_back(name);
    auto it = roots.find(name);
    if (it != roots.end()) {
      for (const std::string& base : extends_of(*it->second)) {
        auto bit = roots.find(base);
        if (bit == roots.end()) continue;  // unresolved-type's business
        int c = color[base];
        if (c == 0) {
          dfs(base, roots, color, stack, reported, sink);
        } else if (c == 1) {
          report_cycle(base, stack, roots, reported, sink);
        }
      }
    }
    stack.pop_back();
    color[name] = 2;
  }

  void report_cycle(const std::string& entry,
                    const std::vector<std::string>& stack,
                    const std::map<std::string, const xml::Element*>& roots,
                    std::set<std::string>& reported, Sink& sink) const {
    auto start = std::find(stack.begin(), stack.end(), entry);
    std::vector<std::string> cycle(start, stack.end());
    const std::string& anchor =
        *std::min_element(cycle.begin(), cycle.end());
    if (!reported.insert(anchor).second) return;
    std::string path;
    // Rotate so the anchor leads: stable message regardless of DFS entry.
    auto pivot = std::find(cycle.begin(), cycle.end(), anchor);
    std::rotate(cycle.begin(), pivot, cycle.end());
    for (const std::string& n : cycle) path += n + " -> ";
    path += cycle.front();
    auto it = roots.find(anchor);
    sink.report(info(),
                "extends chain forms a cycle: " + path +
                    "; inheritance flattening cannot terminate",
                it != roots.end() ? it->second->location()
                                  : SourceLocation{});
  }
};

// --- extends-diamond ----------------------------------------------------

/// Attributes that identify an element rather than describe it; these are
/// expected to differ between supertypes and are not diamond conflicts.
bool is_identity_attribute(std::string_view name) {
  return name == "name" || name == "id" || name == "type" ||
         name == "extends" || name == "doc" || name == "expanded" ||
         name == "resolved";
}

class ExtendsDiamondRule final : public internal::RuleBase {
 public:
  ExtendsDiamondRule()
      : RuleBase("extends-diamond", RuleScope::kRepository,
                 Severity::kWarning,
                 "multiple inheritance where two supertypes give the same "
                 "attribute different values and the child does not "
                 "override it (flattening order decides silently)") {}

  Status analyze_repository(const RepositoryContext& ctx,
                            Sink& sink) const override {
    std::map<std::string, const xml::Element*> roots = load_roots(ctx);
    for (const auto& [name, root] : roots) {
      std::vector<std::string> bases = extends_of(*root);
      if (bases.size() < 2) continue;
      // attribute -> (supertype, value) seen in an earlier base's chain.
      // Each base contributes its *flattened* view (the most-derived
      // definition inside one chain wins), so overriding within a single
      // chain is not mistaken for a diamond.
      std::map<std::string, std::pair<std::string, std::string>> seen;
      for (const std::string& base : bases) {
        std::map<std::string, std::pair<std::string, std::string>> flat;
        std::set<std::string> visited;
        flatten(base, roots, visited, flat);
        for (const auto& [attr, def] : flat) {
          if (root->has_attribute(attr)) continue;  // child overrides
          auto [it, inserted] = seen.emplace(attr, def);
          if (!inserted && it->second.second != def.second) {
            sink.report(info(),
                        "'" + name + "' inherits attribute '" + attr +
                            "' from both '" + it->second.first + "' (" +
                            it->second.second + ") and '" + def.first +
                            "' (" + def.second +
                            ") with different values and does not "
                            "override it; the flattening order decides",
                        root->location());
            it->second = def;  // report each conflicting pair once
          }
        }
      }
    }
    return Status::ok();
  }

 private:
  /// Pre-order DFS over one supertype chain; the first (most-derived)
  /// definition of each attribute wins, mirroring the composer.
  void flatten(
      const std::string& name,
      const std::map<std::string, const xml::Element*>& roots,
      std::set<std::string>& visited,
      std::map<std::string, std::pair<std::string, std::string>>& flat)
      const {
    if (!visited.insert(name).second) return;  // cycle-safe
    auto it = roots.find(name);
    if (it == roots.end()) return;
    for (const xml::Attribute& a : it->second->attributes()) {
      if (is_identity_attribute(a.name.view())) continue;
      flat.emplace(a.name, std::make_pair(name, a.value));
    }
    for (const std::string& base : extends_of(*it->second)) {
      flatten(base, roots, visited, flat);
    }
  }
};

// --- extends-unit-conflict ----------------------------------------------

class ExtendsUnitConflictRule final : public internal::RuleBase {
 public:
  ExtendsUnitConflictRule()
      : RuleBase("extends-unit-conflict", RuleScope::kRepository,
                 Severity::kError,
                 "descriptor redeclares an inherited metric with a unit of "
                 "a different physical dimension") {}

  Status analyze_repository(const RepositoryContext& ctx,
                            Sink& sink) const override {
    std::map<std::string, const xml::Element*> roots = load_roots(ctx);
    for (const auto& [name, root] : roots) {
      std::map<std::string, units::Unit> own = units_of(*root);
      if (own.empty()) continue;
      std::set<std::string> visited{name};
      for (const std::string& base : extends_of(*root)) {
        check_against(name, *root, own, base, roots, visited, sink);
      }
    }
    return Status::ok();
  }

 private:
  static std::map<std::string, units::Unit> units_of(const xml::Element& e) {
    std::map<std::string, units::Unit> out;
    for (const xml::Attribute& a : e.attributes()) {
      bool is_unit = a.name == "unit" ||
                     (a.name.size() > 5 &&
                      a.name.view().substr(a.name.size() - 5) == "_unit");
      if (!is_unit) continue;
      std::string metric =
          a.name == "unit"
              ? std::string("size")
              : std::string(a.name.view().substr(0, a.name.size() - 5));
      auto unit = units::parse_unit(a.value);
      if (unit.is_ok()) out.emplace(metric, *unit);
    }
    return out;
  }

  void check_against(const std::string& child_name,
                     const xml::Element& child,
                     const std::map<std::string, units::Unit>& own,
                     const std::string& base,
                     const std::map<std::string, const xml::Element*>& roots,
                     std::set<std::string>& visited, Sink& sink) const {
    if (!visited.insert(base).second) return;  // cycle-safe
    auto it = roots.find(base);
    if (it == roots.end()) return;
    for (const auto& [metric, base_unit] : units_of(*it->second)) {
      auto oit = own.find(metric);
      if (oit == own.end()) continue;
      if (oit->second.dimension != base_unit.dimension) {
        sink.report(
            info(),
            "'" + child_name + "' declares metric '" + metric +
                "' in unit '" + oit->second.symbol + "' (" +
                std::string(units::to_string(oit->second.dimension)) +
                ") but inherits it from '" + base + "' in unit '" +
                base_unit.symbol + "' (" +
                std::string(units::to_string(base_unit.dimension)) +
                "); the dimensions are incompatible",
            child.location());
      }
    }
    for (const std::string& next : extends_of(*it->second)) {
      check_against(child_name, child, own, next, roots, visited, sink);
    }
  }
};

// --- quarantined-file ---------------------------------------------------

/// The scan itself quarantines unloadable files before any rule runs, so
/// this rule's work happens in the driver (which holds the ScanReport);
/// the registration provides the stable id, severity, documentation and
/// SARIF rule entry.
class QuarantinedFileRule final : public internal::RuleBase {
 public:
  QuarantinedFileRule()
      : RuleBase("quarantined-file", RuleScope::kRepository, Severity::kError,
                 "descriptor file the repository scan could not load "
                 "(parse or schema failure); it is excluded from analysis") {
  }
};

}  // namespace

namespace internal {

void register_repository_rules(Registry& registry) {
  auto add = [&](std::unique_ptr<AnalysisRule> rule) {
    Status st = registry.register_rule(std::move(rule));
    (void)st;
  };
  add(std::make_unique<UnresolvedTypeRule>());
  add(std::make_unique<UnreferencedMetaRule>());
  add(std::make_unique<ExtendsCycleRule>());
  add(std::make_unique<ExtendsDiamondRule>());
  add(std::make_unique<ExtendsUnitConflictRule>());
  add(std::make_unique<QuarantinedFileRule>());
}

}  // namespace internal
}  // namespace xpdl::analysis
