// SARIF 2.1.0 and plain-JSON renderers for analysis reports.
//
// The SARIF log embeds the full registered rule table in the tool driver
// (results reference it through ruleIndex), emits one result per finding
// with a physical location, and relativizes URIs against
// SarifOptions::base_dir for stable golden output. json::Object is a
// sorted map, so serialization is deterministic.
#include "xpdl/analysis/sarif.h"

#include <map>

namespace xpdl::analysis {
namespace {

constexpr std::string_view kSarifSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json";

/// SARIF `level` values happen to match our severity names exactly.
std::string_view sarif_level(Severity s) noexcept { return to_string(s); }

std::string relative_uri(const std::string& file,
                         const std::string& base_dir) {
  if (!base_dir.empty()) {
    std::string prefix = base_dir;
    if (prefix.back() != '/') prefix += '/';
    if (file.size() > prefix.size() &&
        file.compare(0, prefix.size(), prefix) == 0) {
      return file.substr(prefix.size());
    }
  }
  return file;
}

}  // namespace

json::Value to_sarif(const Report& report, const SarifOptions& options) {
  // Tool driver with the complete rule table; ruleIndex refers into it.
  json::Array rules;
  std::map<std::string, std::size_t> rule_index;
  for (const AnalysisRule* rule : Registry::instance().rules()) {
    const RuleInfo& info = rule->info();
    rule_index.emplace(info.id, rules.size());
    rules.push_back(json::Object{
        {"id", info.id},
        {"shortDescription", json::Object{{"text", info.summary}}},
        {"defaultConfiguration",
         json::Object{
             {"level", std::string(sarif_level(info.default_severity))}}},
        {"properties",
         json::Object{{"scope", std::string(to_string(info.scope))}}},
    });
  }

  json::Array results;
  for (const Finding& f : report.findings) {
    json::Object result{
        {"ruleId", f.rule},
        {"level", std::string(sarif_level(f.severity))},
        {"message", json::Object{{"text", f.message}}},
    };
    if (auto it = rule_index.find(f.rule); it != rule_index.end()) {
      result.emplace("ruleIndex",
                     static_cast<std::uint64_t>(it->second));
    }
    if (!f.location.file.empty()) {
      json::Object physical{
          {"artifactLocation",
           json::Object{
               {"uri", relative_uri(f.location.file, options.base_dir)}}},
      };
      if (f.location.line != 0) {
        json::Object region{
            {"startLine", static_cast<std::uint64_t>(f.location.line)}};
        if (f.location.column != 0) {
          region.emplace("startColumn",
                         static_cast<std::uint64_t>(f.location.column));
        }
        physical.emplace("region", std::move(region));
      }
      result.emplace(
          "locations",
          json::Array{json::Object{
              {"physicalLocation", std::move(physical)}}});
    }
    results.push_back(std::move(result));
  }

  json::Object run{
      {"tool",
       json::Object{{"driver",
                     json::Object{
                         {"name", options.tool_name},
                         {"version", options.tool_version},
                         {"informationUri", options.information_uri},
                         {"rules", std::move(rules)},
                     }}}},
      {"results", std::move(results)},
      {"columnKind", "utf16CodeUnits"},
  };

  return json::Object{
      {"$schema", std::string(kSarifSchema)},
      {"version", "2.1.0"},
      {"runs", json::Array{std::move(run)}},
  };
}

json::Value to_json(const Report& report) {
  json::Array findings;
  for (const Finding& f : report.findings) {
    findings.push_back(json::Object{
        {"severity", std::string(to_string(f.severity))},
        {"rule", f.rule},
        {"message", f.message},
        {"file", f.location.file.str()},
        {"line", static_cast<std::uint64_t>(f.location.line)},
        {"column", static_cast<std::uint64_t>(f.location.column)},
    });
  }
  return json::Object{
      {"findings", std::move(findings)},
      {"summary",
       json::Object{
           {"errors", static_cast<std::uint64_t>(
                          report.count(Severity::kError))},
           {"warnings", static_cast<std::uint64_t>(
                            report.count(Severity::kWarning))},
           {"notes", static_cast<std::uint64_t>(
                         report.count(Severity::kNote))},
           {"suppressed", static_cast<std::uint64_t>(report.suppressed)},
           {"descriptors", static_cast<std::uint64_t>(report.descriptors)},
           {"models_composed",
            static_cast<std::uint64_t>(report.models_composed)},
       }},
  };
}

std::string write_sarif(const Report& report, const SarifOptions& options) {
  return json::write(to_sarif(report, options), 2) + "\n";
}

}  // namespace xpdl::analysis
