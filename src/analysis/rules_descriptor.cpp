// Descriptor-scope passes: the rules migrated from the old xpdl::lint
// monolith plus the unit-algebra, constraint-satisfiability and
// power-model sanity passes over a single parsed descriptor.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "xpdl/model/ir.h"
#include "xpdl/model/power.h"
#include "xpdl/schema/schema.h"
#include "xpdl/util/expr.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"
#include "rules_internal.h"

namespace xpdl::analysis {
namespace {

void walk(const xml::Element& e,
          const std::function<void(const xml::Element&)>& fn) {
  fn(e);
  for (const auto& c : e.children()) walk(*c, fn);
}

// --- missing-unit -------------------------------------------------------

class MissingUnitRule final : public internal::RuleBase {
 public:
  MissingUnitRule()
      : RuleBase("missing-unit", RuleScope::kDescriptor, Severity::kWarning,
                 "numeric dimensional metric without a unit attribute "
                 "(portability hazard, Sec. III-A)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      const schema::ElementSpec* spec = schema::Schema::core().find(e.tag());
      if (spec == nullptr || !spec->allow_metric_attributes) return;
      for (const xml::Attribute& a : e.attributes()) {
        if (model::is_structural_attribute(a.name.view())) continue;
        if (a.name == "unit" ||
            (a.name.size() > 5 &&
             a.name.view().substr(a.name.size() - 5) == "_unit")) {
          continue;
        }
        if (!strings::parse_double(a.value).is_ok()) continue;
        units::Dimension dim = units::metric_dimension(a.name.view());
        if (dim == units::Dimension::kDimensionless) continue;
        if (!e.has_attribute(units::unit_attribute_name(a.name.view()))) {
          sink.report(info(),
                      "<" + e.tag() + "> metric '" + a.name.str() +
                          "' is numeric and dimensional (" +
                          std::string(units::to_string(dim)) +
                          ") but carries no '" +
                          units::unit_attribute_name(a.name.view()) + "' attribute",
                      e.location());
        }
      }
    });
  }
};

// --- unit-dimension-mismatch --------------------------------------------

class UnitDimensionMismatchRule final : public internal::RuleBase {
 public:
  UnitDimensionMismatchRule()
      : RuleBase("unit-dimension-mismatch", RuleScope::kDescriptor,
                 Severity::kError,
                 "metric carries a unit of the wrong physical dimension "
                 "or an unknown unit symbol") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      for (const xml::Attribute& a : e.attributes()) {
        bool is_unit_attr =
            a.name == "unit" ||
            (a.name.size() > 5 &&
             a.name.view().substr(a.name.size() - 5) == "_unit");
        if (!is_unit_attr) continue;
        std::string metric =
            a.name == "unit"
                ? "size"
                : std::string(a.name.view().substr(0, a.name.size() - 5));
        auto unit = units::parse_unit(a.value);
        if (!unit.is_ok()) {
          sink.report(info(),
                      "<" + e.tag() + "> metric '" + metric +
                          "' uses unknown unit '" + a.value + "'",
                      a.location);
          continue;
        }
        units::Dimension want = units::metric_dimension(metric);
        if (want != units::Dimension::kDimensionless &&
            unit->dimension != want) {
          sink.report(
              info(),
              "<" + e.tag() + "> metric '" + metric + "' uses unit '" +
                  a.value + "' of dimension " +
                  std::string(units::to_string(unit->dimension)) +
                  " where " + std::string(units::to_string(want)) +
                  " is required",
              a.location);
        }
      }
    });
  }
};

// --- placeholder-without-mb ---------------------------------------------

class PlaceholderWithoutMbRule final : public internal::RuleBase {
 public:
  PlaceholderWithoutMbRule()
      : RuleBase("placeholder-without-mb", RuleScope::kDescriptor,
                 Severity::kError,
                 "'?' energy entry with no microbenchmark to derive it "
                 "(deployment-time bootstrapping would fail, Listing 14)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "instructions") return;
      auto isa = model::InstructionSet::parse(e);
      if (!isa.is_ok()) return;  // schema/validation reports parse problems
      for (const auto& inst : isa->instructions) {
        if (inst.placeholder && inst.microbenchmark.empty() &&
            isa->microbenchmark_suite.empty()) {
          sink.report(info(),
                      "instruction '" + inst.name +
                          "' has energy '?' but neither an mb reference "
                          "nor a suite default; deployment-time "
                          "bootstrapping cannot derive it",
                      inst.location);
        }
      }
    });
  }
};

// --- fsm-not-strongly-connected / fsm-domain-unknown --------------------

class FsmConnectivityRule final : public internal::RuleBase {
 public:
  FsmConnectivityRule()
      : RuleBase("fsm-not-strongly-connected", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "a power state the programmer cannot reach or leave "
                 "(Listing 13 contract)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "power_model") return;
      auto pm = model::PowerModel::parse(e);
      if (!pm.is_ok()) return;
      for (const auto& fsm : pm->state_machines) {
        if (!fsm.strongly_connected()) {
          sink.report(info(),
                      "power state machine '" + fsm.name +
                          "' has states that cannot be reached or left "
                          "through the modeled transitions",
                      e.location());
        }
      }
    });
  }
};

class FsmDomainUnknownRule final : public internal::RuleBase {
 public:
  FsmDomainUnknownRule()
      : RuleBase("fsm-domain-unknown", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "state machine governs a domain its power model never "
                 "declares") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "power_model") return;
      auto pm = model::PowerModel::parse(e);
      if (!pm.is_ok()) return;
      std::set<std::string> domains;
      if (pm->domains.has_value()) {
        for (const auto& d : pm->domains->expanded()) domains.insert(d.name);
        for (const auto& d : pm->domains->domains) domains.insert(d.name);
        for (const auto& g : pm->domains->groups) {
          domains.insert(g.prototype.name);
          domains.insert(g.name);
        }
      }
      for (const auto& fsm : pm->state_machines) {
        if (!fsm.power_domain.empty() && pm->domains.has_value() &&
            domains.find(fsm.power_domain) == domains.end()) {
          sink.report(info(),
                      "power state machine '" + fsm.name +
                          "' governs domain '" + fsm.power_domain +
                          "' which the power model's domain set does not "
                          "declare",
                      e.location());
        }
      }
    });
  }
};

// --- power-sanity -------------------------------------------------------

class PowerSanityRule final : public internal::RuleBase {
 public:
  PowerSanityRule()
      : RuleBase("power-sanity", RuleScope::kDescriptor, Severity::kError,
                 "negative power, energy or time in power states, "
                 "transitions or instruction energy tables") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "power_model") return;
      auto pm = model::PowerModel::parse(e);
      if (!pm.is_ok()) return;
      for (const auto& fsm : pm->state_machines) {
        for (const auto& s : fsm.states) {
          if (s.power_w < 0.0) {
            sink.report(info(),
                        "power state '" + s.name + "' of machine '" +
                            fsm.name + "' draws negative power (" +
                            units::watts(s.power_w).to_string() + ")",
                        s.location);
          }
          if (s.frequency_hz < 0.0) {
            sink.report(info(),
                        "power state '" + s.name + "' of machine '" +
                            fsm.name + "' has a negative frequency",
                        s.location);
          }
        }
        for (const auto& t : fsm.transitions) {
          if (t.time_s < 0.0 || t.energy_j < 0.0) {
            sink.report(info(),
                        "transition '" + t.from + "' -> '" + t.to +
                            "' of machine '" + fsm.name +
                            "' has a negative time or energy cost",
                        t.location);
          }
        }
      }
      for (const auto& isa : pm->instruction_sets) {
        for (const auto& inst : isa.instructions) {
          if (inst.energy_j.has_value() && *inst.energy_j < 0.0) {
            sink.report(info(),
                        "instruction '" + inst.name +
                            "' has negative energy",
                        inst.location);
          }
          for (const auto& [freq, energy] : inst.table) {
            if (energy < 0.0) {
              sink.report(info(),
                          "instruction '" + inst.name +
                              "' has a negative energy table entry at " +
                              units::hertz(freq).to_string(),
                          inst.location);
            }
          }
        }
      }
    });
  }
};

// --- energy-table-non-monotone ------------------------------------------

class EnergyTableMonotonicityRule final : public internal::RuleBase {
 public:
  EnergyTableMonotonicityRule()
      : RuleBase("energy-table-non-monotone", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "per-instruction frequency->energy table decreases with "
                 "rising frequency (suspicious measurement, Listing 14)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "instructions") return;
      auto isa = model::InstructionSet::parse(e);
      if (!isa.is_ok()) return;
      for (const auto& inst : isa->instructions) {
        for (std::size_t i = 1; i < inst.table.size(); ++i) {
          if (inst.table[i].second < inst.table[i - 1].second) {
            sink.report(
                info(),
                "instruction '" + inst.name + "' energy at " +
                    units::hertz(inst.table[i].first).to_string() + " (" +
                    units::joules(inst.table[i].second).to_string() +
                    ") is below the energy at " +
                    units::hertz(inst.table[i - 1].first).to_string() +
                    " (" +
                    units::joules(inst.table[i - 1].second).to_string() +
                    "); dynamic energy per operation normally rises with "
                    "frequency",
                inst.location);
            break;  // one finding per instruction table
          }
        }
      }
    });
  }
};

// --- duplicate-sibling-id -----------------------------------------------

class DuplicateSiblingIdRule final : public internal::RuleBase {
 public:
  DuplicateSiblingIdRule()
      : RuleBase("duplicate-sibling-id", RuleScope::kDescriptor,
                 Severity::kError, "two siblings share the same id") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      std::map<std::string_view, const xml::Element*> seen;
      for (const auto& c : e.children()) {
        auto id = c->attribute("id");
        if (!id.has_value() || id->empty()) continue;
        auto [it, inserted] = seen.emplace(*id, c.get());
        (void)it;
        if (!inserted) {
          sink.report(info(),
                      "siblings share id '" + std::string(*id) +
                          "' under <" + e.tag() + ">",
                      c->location());
        }
      }
    });
  }
};

// --- group-without-prefix -----------------------------------------------

class GroupWithoutPrefixRule final : public internal::RuleBase {
 public:
  GroupWithoutPrefixRule()
      : RuleBase("group-without-prefix", RuleScope::kDescriptor,
                 Severity::kNote,
                 "homogeneous group whose anonymous members can never be "
                 "referenced (Sec. III-A)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "group" || !e.has_attribute("quantity")) return;
      if (e.has_attribute("prefix") ||
          e.attribute_or("expanded", "") == "true") {
        return;
      }
      bool has_anonymous_component = false;
      for (const auto& c : e.children()) {
        if ((schema::is_component_tag(c->tag()) || c->tag() == "group") &&
            !c->has_attribute("id") && !c->has_attribute("name")) {
          has_anonymous_component = true;
        }
      }
      if (has_anonymous_component) {
        sink.report(info(),
                    "homogeneous group has anonymous members and no "
                    "'prefix'; the expanded members will not be "
                    "referenceable by id",
                    e.location());
      }
    });
  }
};

// --- unknown-role -------------------------------------------------------

class UnknownRoleRule final : public internal::RuleBase {
 public:
  UnknownRoleRule()
      : RuleBase("unknown-role", RuleScope::kDescriptor, Severity::kWarning,
                 "role other than the PDL control roles "
                 "master/worker/hybrid") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto role = e.attribute("role");
      if (!role.has_value()) return;
      // Roles are matched case-insensitively ("Master" is fine).
      if (strings::iequals(*role, "master") ||
          strings::iequals(*role, "worker") ||
          strings::iequals(*role, "hybrid")) {
        return;
      }
      sink.report(info(),
                  "<" + e.tag() + "> has unknown role '" +
                      std::string(*role) +
                      "'; allowed roles are master, worker and hybrid "
                      "(case-insensitive; XPDL keeps PDL's control roles "
                      "as an optional secondary aspect)",
                  e.location());
    });
  }
};

// --- constraint satisfiability ------------------------------------------

/// Outcome of enumerating one constraint over the declared ranges of its
/// free parameters.
struct ConstraintVerdict {
  const model::Constraint* constraint = nullptr;
  std::vector<std::string> variables;
  std::size_t configurations = 0;  ///< points enumerated
  std::size_t satisfied = 0;
  bool has_choice = false;  ///< at least one variable had > 1 value
  bool decidable = false;   ///< every variable had a value or a range
};

/// Enumerates the cross product of the declared parameter domains and
/// counts satisfying assignments. Constraints referencing parameters the
/// scope does not bind (e.g. inherited ones) are reported undecidable and
/// skipped by both rules.
std::vector<ConstraintVerdict> evaluate_scope(const model::ParamScope& scope) {
  constexpr std::size_t kMaxConfigurations = 1u << 16;
  std::vector<ConstraintVerdict> verdicts;
  for (const model::Constraint& c : scope.constraints) {
    ConstraintVerdict v;
    v.constraint = &c;
    v.variables = c.expression.variables();
    std::vector<std::vector<double>> domains;
    v.decidable = true;
    for (const std::string& name : v.variables) {
      const model::Param* p = scope.find(name);
      if (p == nullptr) {
        v.decidable = false;
        break;
      }
      if (p->is_bound()) {
        domains.push_back({*p->value_si});
      } else if (!p->range_si.empty()) {
        domains.push_back(p->range_si);
        if (p->range_si.size() > 1) v.has_choice = true;
      } else {
        v.decidable = false;
        break;
      }
    }
    if (v.decidable) {
      std::size_t total = 1;
      for (const auto& d : domains) {
        if (total > kMaxConfigurations / std::max<std::size_t>(d.size(), 1)) {
          total = kMaxConfigurations + 1;
          break;
        }
        total *= d.size();
      }
      if (total > kMaxConfigurations) {
        v.decidable = false;  // space too large to enumerate statically
      } else {
        std::map<std::string, double, std::less<>> binding;
        std::vector<std::size_t> idx(domains.size(), 0);
        for (std::size_t point = 0; point < total; ++point) {
          std::size_t rest = point;
          for (std::size_t d = 0; d < domains.size(); ++d) {
            binding[v.variables[d]] = domains[d][rest % domains[d].size()];
            rest /= domains[d].size();
          }
          auto ok = c.expression.evaluate_bool(
              [&](std::string_view name) -> Result<double> {
                auto it = binding.find(name);
                if (it == binding.end()) {
                  return Status(ErrorCode::kNotFound,
                                "unbound variable " + std::string(name));
                }
                return it->second;
              });
          ++v.configurations;
          if (ok.is_ok() && *ok) ++v.satisfied;
        }
      }
    }
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

std::string join_variables(const std::vector<std::string>& vars) {
  std::string out;
  for (const std::string& v : vars) {
    if (!out.empty()) out += ", ";
    out += v;
  }
  return out;
}

class ConstraintUnsatisfiableRule final : public internal::RuleBase {
 public:
  ConstraintUnsatisfiableRule()
      : RuleBase("constraint-unsatisfiable", RuleScope::kDescriptor,
                 Severity::kError,
                 "constraint holds for no point of the declared parameter "
                 "ranges (the configuration space is empty, Listing 8)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.empty()) return;
      for (const ConstraintVerdict& v : evaluate_scope(*scope)) {
        if (!v.decidable || v.satisfied > 0) continue;
        sink.report(info(),
                    "constraint '" + v.constraint->expression.source() +
                        "' is satisfied by none of the " +
                        std::to_string(v.configurations) +
                        " configuration(s) of {" +
                        join_variables(v.variables) +
                        "}; no valid configuration exists",
                    v.constraint->location);
      }
    });
  }
};

class ConstraintVacuousRule final : public internal::RuleBase {
 public:
  ConstraintVacuousRule()
      : RuleBase("constraint-vacuous", RuleScope::kDescriptor,
                 Severity::kNote,
                 "constraint holds for every point of the declared "
                 "parameter ranges (it constrains nothing)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.empty()) return;
      for (const ConstraintVerdict& v : evaluate_scope(*scope)) {
        if (!v.decidable || !v.has_choice ||
            v.satisfied != v.configurations || v.configurations == 0) {
          continue;
        }
        sink.report(info(),
                    "constraint '" + v.constraint->expression.source() +
                        "' holds for all " +
                        std::to_string(v.configurations) +
                        " configuration(s) of {" +
                        join_variables(v.variables) +
                        "}; it does not restrict the configuration space",
                    v.constraint->location);
      }
    });
  }
};

}  // namespace

namespace internal {

void register_descriptor_rules(Registry& registry) {
  auto add = [&](std::unique_ptr<AnalysisRule> rule) {
    Status st = registry.register_rule(std::move(rule));
    (void)st;  // duplicate registration is impossible for built-ins
  };
  add(std::make_unique<MissingUnitRule>());
  add(std::make_unique<UnitDimensionMismatchRule>());
  add(std::make_unique<PlaceholderWithoutMbRule>());
  add(std::make_unique<FsmConnectivityRule>());
  add(std::make_unique<FsmDomainUnknownRule>());
  add(std::make_unique<PowerSanityRule>());
  add(std::make_unique<EnergyTableMonotonicityRule>());
  add(std::make_unique<DuplicateSiblingIdRule>());
  add(std::make_unique<GroupWithoutPrefixRule>());
  add(std::make_unique<UnknownRoleRule>());
  add(std::make_unique<ConstraintUnsatisfiableRule>());
  add(std::make_unique<ConstraintVacuousRule>());
}

}  // namespace internal
}  // namespace xpdl::analysis
