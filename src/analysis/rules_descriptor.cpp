// Descriptor-scope passes: the rules migrated from the old xpdl::lint
// monolith plus the unit-algebra, constraint-satisfiability and
// power-model sanity passes over a single parsed descriptor.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "xpdl/model/ir.h"
#include "xpdl/model/power.h"
#include "xpdl/schema/schema.h"
#include "xpdl/solve/solve.h"
#include "xpdl/util/expr.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"
#include "rules_internal.h"

namespace xpdl::analysis {
namespace {

void walk(const xml::Element& e,
          const std::function<void(const xml::Element&)>& fn) {
  fn(e);
  for (const auto& c : e.children()) walk(*c, fn);
}

// --- missing-unit -------------------------------------------------------

class MissingUnitRule final : public internal::RuleBase {
 public:
  MissingUnitRule()
      : RuleBase("missing-unit", RuleScope::kDescriptor, Severity::kWarning,
                 "numeric dimensional metric without a unit attribute "
                 "(portability hazard, Sec. III-A)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      const schema::ElementSpec* spec = schema::Schema::core().find(e.tag());
      if (spec == nullptr || !spec->allow_metric_attributes) return;
      for (const xml::Attribute& a : e.attributes()) {
        if (model::is_structural_attribute(a.name.view())) continue;
        if (a.name == "unit" ||
            (a.name.size() > 5 &&
             a.name.view().substr(a.name.size() - 5) == "_unit")) {
          continue;
        }
        if (!strings::parse_double(a.value).is_ok()) continue;
        units::Dimension dim = units::metric_dimension(a.name.view());
        if (dim == units::Dimension::kDimensionless) continue;
        if (!e.has_attribute(units::unit_attribute_name(a.name.view()))) {
          sink.report(info(),
                      "<" + e.tag() + "> metric '" + a.name.str() +
                          "' is numeric and dimensional (" +
                          std::string(units::to_string(dim)) +
                          ") but carries no '" +
                          units::unit_attribute_name(a.name.view()) + "' attribute",
                      e.location());
        }
      }
    });
  }
};

// --- unit-dimension-mismatch --------------------------------------------

class UnitDimensionMismatchRule final : public internal::RuleBase {
 public:
  UnitDimensionMismatchRule()
      : RuleBase("unit-dimension-mismatch", RuleScope::kDescriptor,
                 Severity::kError,
                 "metric carries a unit of the wrong physical dimension "
                 "or an unknown unit symbol") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      for (const xml::Attribute& a : e.attributes()) {
        bool is_unit_attr =
            a.name == "unit" ||
            (a.name.size() > 5 &&
             a.name.view().substr(a.name.size() - 5) == "_unit");
        if (!is_unit_attr) continue;
        std::string metric =
            a.name == "unit"
                ? "size"
                : std::string(a.name.view().substr(0, a.name.size() - 5));
        auto unit = units::parse_unit(a.value);
        if (!unit.is_ok()) {
          sink.report(info(),
                      "<" + e.tag() + "> metric '" + metric +
                          "' uses unknown unit '" + a.value + "'",
                      a.location);
          continue;
        }
        units::Dimension want = units::metric_dimension(metric);
        if (want != units::Dimension::kDimensionless &&
            unit->dimension != want) {
          sink.report(
              info(),
              "<" + e.tag() + "> metric '" + metric + "' uses unit '" +
                  a.value + "' of dimension " +
                  std::string(units::to_string(unit->dimension)) +
                  " where " + std::string(units::to_string(want)) +
                  " is required",
              a.location);
        }
      }
    });
  }
};

// --- placeholder-without-mb ---------------------------------------------

class PlaceholderWithoutMbRule final : public internal::RuleBase {
 public:
  PlaceholderWithoutMbRule()
      : RuleBase("placeholder-without-mb", RuleScope::kDescriptor,
                 Severity::kError,
                 "'?' energy entry with no microbenchmark to derive it "
                 "(deployment-time bootstrapping would fail, Listing 14)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "instructions") return;
      auto isa = model::InstructionSet::parse(e);
      if (!isa.is_ok()) return;  // schema/validation reports parse problems
      for (const auto& inst : isa->instructions) {
        if (inst.placeholder && inst.microbenchmark.empty() &&
            isa->microbenchmark_suite.empty()) {
          sink.report(info(),
                      "instruction '" + inst.name +
                          "' has energy '?' but neither an mb reference "
                          "nor a suite default; deployment-time "
                          "bootstrapping cannot derive it",
                      inst.location);
        }
      }
    });
  }
};

// --- fsm-not-strongly-connected / fsm-domain-unknown --------------------

class FsmConnectivityRule final : public internal::RuleBase {
 public:
  FsmConnectivityRule()
      : RuleBase("fsm-not-strongly-connected", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "a power state the programmer cannot reach or leave "
                 "(Listing 13 contract)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "power_model") return;
      auto pm = model::PowerModel::parse(e);
      if (!pm.is_ok()) return;
      for (const auto& fsm : pm->state_machines) {
        if (!fsm.strongly_connected()) {
          sink.report(info(),
                      "power state machine '" + fsm.name +
                          "' has states that cannot be reached or left "
                          "through the modeled transitions",
                      e.location());
        }
      }
    });
  }
};

class FsmDomainUnknownRule final : public internal::RuleBase {
 public:
  FsmDomainUnknownRule()
      : RuleBase("fsm-domain-unknown", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "state machine governs a domain its power model never "
                 "declares") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "power_model") return;
      auto pm = model::PowerModel::parse(e);
      if (!pm.is_ok()) return;
      std::set<std::string> domains;
      if (pm->domains.has_value()) {
        for (const auto& d : pm->domains->expanded()) domains.insert(d.name);
        for (const auto& d : pm->domains->domains) domains.insert(d.name);
        for (const auto& g : pm->domains->groups) {
          domains.insert(g.prototype.name);
          domains.insert(g.name);
        }
      }
      for (const auto& fsm : pm->state_machines) {
        if (!fsm.power_domain.empty() && pm->domains.has_value() &&
            domains.find(fsm.power_domain) == domains.end()) {
          sink.report(info(),
                      "power state machine '" + fsm.name +
                          "' governs domain '" + fsm.power_domain +
                          "' which the power model's domain set does not "
                          "declare",
                      e.location());
        }
      }
    });
  }
};

// --- power-sanity -------------------------------------------------------

class PowerSanityRule final : public internal::RuleBase {
 public:
  PowerSanityRule()
      : RuleBase("power-sanity", RuleScope::kDescriptor, Severity::kError,
                 "negative power, energy or time in power states, "
                 "transitions or instruction energy tables") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "power_model") return;
      auto pm = model::PowerModel::parse(e);
      if (!pm.is_ok()) return;
      for (const auto& fsm : pm->state_machines) {
        for (const auto& s : fsm.states) {
          if (s.power_w < 0.0) {
            sink.report(info(),
                        "power state '" + s.name + "' of machine '" +
                            fsm.name + "' draws negative power (" +
                            units::watts(s.power_w).to_string() + ")",
                        s.location);
          }
          if (s.frequency_hz < 0.0) {
            sink.report(info(),
                        "power state '" + s.name + "' of machine '" +
                            fsm.name + "' has a negative frequency",
                        s.location);
          }
        }
        for (const auto& t : fsm.transitions) {
          if (t.time_s < 0.0 || t.energy_j < 0.0) {
            sink.report(info(),
                        "transition '" + t.from + "' -> '" + t.to +
                            "' of machine '" + fsm.name +
                            "' has a negative time or energy cost",
                        t.location);
          }
        }
      }
      for (const auto& isa : pm->instruction_sets) {
        for (const auto& inst : isa.instructions) {
          if (inst.energy_j.has_value() && *inst.energy_j < 0.0) {
            sink.report(info(),
                        "instruction '" + inst.name +
                            "' has negative energy",
                        inst.location);
          }
          for (const auto& [freq, energy] : inst.table) {
            if (energy < 0.0) {
              sink.report(info(),
                          "instruction '" + inst.name +
                              "' has a negative energy table entry at " +
                              units::hertz(freq).to_string(),
                          inst.location);
            }
          }
        }
      }
    });
  }
};

// --- energy-table-non-monotone ------------------------------------------

class EnergyTableMonotonicityRule final : public internal::RuleBase {
 public:
  EnergyTableMonotonicityRule()
      : RuleBase("energy-table-non-monotone", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "per-instruction frequency->energy table decreases with "
                 "rising frequency (suspicious measurement, Listing 14)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "instructions") return;
      auto isa = model::InstructionSet::parse(e);
      if (!isa.is_ok()) return;
      for (const auto& inst : isa->instructions) {
        for (std::size_t i = 1; i < inst.table.size(); ++i) {
          if (inst.table[i].second < inst.table[i - 1].second) {
            sink.report(
                info(),
                "instruction '" + inst.name + "' energy at " +
                    units::hertz(inst.table[i].first).to_string() + " (" +
                    units::joules(inst.table[i].second).to_string() +
                    ") is below the energy at " +
                    units::hertz(inst.table[i - 1].first).to_string() +
                    " (" +
                    units::joules(inst.table[i - 1].second).to_string() +
                    "); dynamic energy per operation normally rises with "
                    "frequency",
                inst.location);
            break;  // one finding per instruction table
          }
        }
      }
    });
  }
};

// --- duplicate-sibling-id -----------------------------------------------

class DuplicateSiblingIdRule final : public internal::RuleBase {
 public:
  DuplicateSiblingIdRule()
      : RuleBase("duplicate-sibling-id", RuleScope::kDescriptor,
                 Severity::kError, "two siblings share the same id") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      std::map<std::string_view, const xml::Element*> seen;
      for (const auto& c : e.children()) {
        auto id = c->attribute("id");
        if (!id.has_value() || id->empty()) continue;
        auto [it, inserted] = seen.emplace(*id, c.get());
        (void)it;
        if (!inserted) {
          sink.report(info(),
                      "siblings share id '" + std::string(*id) +
                          "' under <" + e.tag() + ">",
                      c->location());
        }
      }
    });
  }
};

// --- group-without-prefix -----------------------------------------------

class GroupWithoutPrefixRule final : public internal::RuleBase {
 public:
  GroupWithoutPrefixRule()
      : RuleBase("group-without-prefix", RuleScope::kDescriptor,
                 Severity::kNote,
                 "homogeneous group whose anonymous members can never be "
                 "referenced (Sec. III-A)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      if (e.tag() != "group" || !e.has_attribute("quantity")) return;
      if (e.has_attribute("prefix") ||
          e.attribute_or("expanded", "") == "true") {
        return;
      }
      bool has_anonymous_component = false;
      for (const auto& c : e.children()) {
        if ((schema::is_component_tag(c->tag()) || c->tag() == "group") &&
            !c->has_attribute("id") && !c->has_attribute("name")) {
          has_anonymous_component = true;
        }
      }
      if (has_anonymous_component) {
        sink.report(info(),
                    "homogeneous group has anonymous members and no "
                    "'prefix'; the expanded members will not be "
                    "referenceable by id",
                    e.location());
      }
    });
  }
};

// --- unknown-role -------------------------------------------------------

class UnknownRoleRule final : public internal::RuleBase {
 public:
  UnknownRoleRule()
      : RuleBase("unknown-role", RuleScope::kDescriptor, Severity::kWarning,
                 "role other than the PDL control roles "
                 "master/worker/hybrid") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto role = e.attribute("role");
      if (!role.has_value()) return;
      // Roles are matched case-insensitively ("Master" is fine).
      if (strings::iequals(*role, "master") ||
          strings::iequals(*role, "worker") ||
          strings::iequals(*role, "hybrid")) {
        return;
      }
      sink.report(info(),
                  "<" + e.tag() + "> has unknown role '" +
                      std::string(*role) +
                      "'; allowed roles are master, worker and hybrid "
                      "(case-insensitive; XPDL keeps PDL's control roles "
                      "as an optional secondary aspect)",
                  e.location());
    });
  }
};

// --- constraint satisfiability ------------------------------------------

/// Solver verdicts for one constraint over the declared ranges of its
/// free parameters.
struct ConstraintVerdict {
  const model::Constraint* constraint = nullptr;
  std::vector<std::string> variables;
  /// Size of the declared cross product (range entries counted as
  /// written, duplicates included) — saturating; used for diagnostics.
  std::uint64_t configurations = 0;
  bool has_choice = false;  ///< at least one variable had > 1 value
  bool decidable = false;   ///< every variable had a value or a range
  solve::Verdict satisfiable = solve::Verdict::kUnknown;
  solve::Verdict vacuous = solve::Verdict::kUnknown;
  solve::Outcome error;  ///< evaluation-error search result
};

/// Decides each constraint with interval propagation + search
/// (xpdl::solve) instead of enumerating the cross product; the seed
/// implementation bailed out above 2^16 points, the solver handles
/// arbitrarily large declared spaces. Constraints referencing parameters
/// the scope does not bind (e.g. inherited ones) stay undecidable and
/// are skipped by every rule.
std::vector<ConstraintVerdict> evaluate_scope(const model::ParamScope& scope) {
  std::vector<ConstraintVerdict> verdicts;
  solve::Solver solver;
  for (const model::Constraint& c : scope.constraints) {
    ConstraintVerdict v;
    v.constraint = &c;
    v.variables = c.expression.variables();
    solve::Problem problem;
    v.decidable = true;
    v.configurations = 1;
    for (const std::string& name : v.variables) {
      const model::Param* p = scope.find(name);
      std::uint64_t declared = 1;
      if (p == nullptr) {
        v.decidable = false;
        break;
      }
      if (p->is_bound()) {
        problem.add_variable(name, solve::Domain::singleton(*p->value_si));
      } else if (!p->range_si.empty()) {
        problem.add_variable(name, solve::Domain::values(p->range_si));
        declared = p->range_si.size();
        if (p->range_si.size() > 1) v.has_choice = true;
      } else {
        v.decidable = false;
        break;
      }
      v.configurations = v.configurations > UINT64_MAX / declared
                             ? UINT64_MAX
                             : v.configurations * declared;
    }
    if (v.decidable) {
      problem.add_constraint(c.expression);
      v.satisfiable = solver.satisfiable(problem).verdict;
      v.vacuous = solver.implied(problem, 0).verdict;
      v.error = solver.find_evaluation_error(problem, 0);
    }
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

/// "a = 0, b = 2" for a solver witness.
std::string format_point(
    const std::vector<std::pair<std::string, double>>& point) {
  std::string out;
  for (const auto& [name, value] : point) {
    if (!out.empty()) out += ", ";
    out += name + " = " + strings::format("%g", value);
  }
  return out;
}

std::string join_variables(const std::vector<std::string>& vars) {
  std::string out;
  for (const std::string& v : vars) {
    if (!out.empty()) out += ", ";
    out += v;
  }
  return out;
}

class ConstraintUnsatisfiableRule final : public internal::RuleBase {
 public:
  ConstraintUnsatisfiableRule()
      : RuleBase("constraint-unsatisfiable", RuleScope::kDescriptor,
                 Severity::kError,
                 "constraint holds for no point of the declared parameter "
                 "ranges (the configuration space is empty, Listing 8)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.empty()) return;
      for (const ConstraintVerdict& v : evaluate_scope(*scope)) {
        if (!v.decidable || v.satisfiable != solve::Verdict::kUnsat) continue;
        sink.report(info(),
                    "constraint '" + v.constraint->expression.source() +
                        "' is satisfied by none of the " +
                        std::to_string(v.configurations) +
                        " configuration(s) of {" +
                        join_variables(v.variables) +
                        "}; no valid configuration exists",
                    v.constraint->location);
      }
    });
  }
};

class ConstraintVacuousRule final : public internal::RuleBase {
 public:
  ConstraintVacuousRule()
      : RuleBase("constraint-vacuous", RuleScope::kDescriptor,
                 Severity::kNote,
                 "constraint holds for every point of the declared "
                 "parameter ranges (it constrains nothing)") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.empty()) return;
      for (const ConstraintVerdict& v : evaluate_scope(*scope)) {
        if (!v.decidable || !v.has_choice ||
            v.vacuous != solve::Verdict::kValid) {
          continue;
        }
        sink.report(info(),
                    "constraint '" + v.constraint->expression.source() +
                        "' holds for all " +
                        std::to_string(v.configurations) +
                        " configuration(s) of {" +
                        join_variables(v.variables) +
                        "}; it does not restrict the configuration space",
                    v.constraint->location);
      }
    });
  }
};

class ConstraintEvaluationErrorRule final : public internal::RuleBase {
 public:
  ConstraintEvaluationErrorRule()
      : RuleBase("constraint-evaluation-error", RuleScope::kDescriptor,
                 Severity::kNote,
                 "constraint fails to evaluate (division by zero, ...) at "
                 "some point of the declared parameter ranges; such points "
                 "never satisfy it") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.empty()) return;
      for (const ConstraintVerdict& v : evaluate_scope(*scope)) {
        if (!v.decidable || v.error.verdict != solve::Verdict::kSat) continue;
        sink.report(info(),
                    "constraint '" + v.constraint->expression.source() +
                        "' fails to evaluate at {" +
                        format_point(v.error.witness) + "}: " +
                        v.error.witness_error +
                        "; points where evaluation fails never satisfy the "
                        "constraint",
                    v.constraint->location);
      }
    });
  }
};

class ConstraintRedundantRule final : public internal::RuleBase {
 public:
  ConstraintRedundantRule()
      : RuleBase("constraint-redundant", RuleScope::kDescriptor,
                 Severity::kNote,
                 "constraint is implied by the other constraints of its "
                 "scope; removing it leaves the configuration space "
                 "unchanged") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.size() < 2) return;
      auto problem = solve::Problem::from_scope(*scope);
      if (!problem.is_ok()) return;  // undecidable (unbound parameter)
      // Verdict-only queries: no caller reads the conflict core here.
      solve::Solver solver(solve::Solver::Options{.minimize_core = false});
      // In an unsatisfiable scope every constraint is (vacuously) implied
      // by the rest; constraint-unsatisfiable reports that louder.
      if (solver.satisfiable(*problem).verdict != solve::Verdict::kSat) return;
      for (std::size_t i = 0; i < problem->constraint_count(); ++i) {
        if (solver.implied(*problem, i).verdict != solve::Verdict::kValid) {
          continue;
        }
        // A constraint that already holds over the raw declared domains
        // is vacuous, not redundant; constraint-vacuous covers it.
        solve::Problem alone;
        for (const solve::SolveVariable& var : problem->variables()) {
          alone.add_variable(var.name, var.domain);
        }
        alone.add_constraint(scope->constraints[i].expression);
        if (solver.implied(alone, 0).verdict == solve::Verdict::kValid) {
          continue;
        }
        sink.report(info(),
                    "constraint '" + problem->constraint_source(i) +
                        "' is implied by the other constraint(s) of this "
                        "scope; removing it leaves the configuration space "
                        "unchanged",
                    scope->constraints[i].location);
      }
    });
  }
};

class ParamRangeUnreachableRule final : public internal::RuleBase {
 public:
  ParamRangeUnreachableRule()
      : RuleBase("param-range-unreachable", RuleScope::kDescriptor,
                 Severity::kWarning,
                 "declared range value can appear in no configuration "
                 "satisfying the scope's constraints") {}

  void analyze_descriptor(const DescriptorContext& ctx,
                          Sink& sink) const override {
    walk(ctx.root, [&](const xml::Element& e) {
      auto scope = model::parse_param_scope(e);
      if (!scope.is_ok() || scope->constraints.empty()) return;
      auto problem = solve::Problem::from_scope(*scope);
      if (!problem.is_ok()) return;  // undecidable (unbound parameter)
      // Verdict-only queries: core minimization would re-solve each
      // UNSAT sub-space once per constraint for a core nobody reads.
      solve::Solver solver(solve::Solver::Options{.minimize_core = false});
      // If the whole space is unsatisfiable every value is "unreachable";
      // constraint-unsatisfiable already reports that louder.
      if (solver.satisfiable(*problem).verdict != solve::Verdict::kSat) return;
      for (std::size_t var = 0; var < problem->variables().size(); ++var) {
        const solve::Domain full = problem->domain(var);
        if (!full.is_finite() || full.size() < 2) continue;
        const model::Param* p =
            scope->find(problem->variables()[var].name);
        if (p == nullptr || p->is_bound()) continue;
        std::vector<double> unreachable;
        for (double value : full.finite_values()) {
          problem->set_domain(var, solve::Domain::singleton(value));
          if (solver.satisfiable(*problem).verdict ==
              solve::Verdict::kUnsat) {
            unreachable.push_back(value);
          }
        }
        problem->set_domain(var, full);
        if (unreachable.empty()) continue;
        constexpr std::size_t kMaxListed = 8;
        std::string values;
        for (std::size_t i = 0;
             i < unreachable.size() && i < kMaxListed; ++i) {
          if (!values.empty()) values += ", ";
          values += strings::format("%g", unreachable[i]);
        }
        if (unreachable.size() > kMaxListed) {
          values += strings::format(
              ", ... %zu more", unreachable.size() - kMaxListed);
        }
        sink.report(info(),
                    "parameter '" + p->name + "' range value(s) {" + values +
                        "} can appear in no configuration satisfying the "
                        "constraints; the range can be tightened",
                    p->location);
      }
    });
  }
};

}  // namespace

namespace internal {

void register_descriptor_rules(Registry& registry) {
  auto add = [&](std::unique_ptr<AnalysisRule> rule) {
    Status st = registry.register_rule(std::move(rule));
    (void)st;  // duplicate registration is impossible for built-ins
  };
  add(std::make_unique<MissingUnitRule>());
  add(std::make_unique<UnitDimensionMismatchRule>());
  add(std::make_unique<PlaceholderWithoutMbRule>());
  add(std::make_unique<FsmConnectivityRule>());
  add(std::make_unique<FsmDomainUnknownRule>());
  add(std::make_unique<PowerSanityRule>());
  add(std::make_unique<EnergyTableMonotonicityRule>());
  add(std::make_unique<DuplicateSiblingIdRule>());
  add(std::make_unique<GroupWithoutPrefixRule>());
  add(std::make_unique<UnknownRoleRule>());
  add(std::make_unique<ConstraintUnsatisfiableRule>());
  add(std::make_unique<ConstraintVacuousRule>());
  add(std::make_unique<ConstraintEvaluationErrorRule>());
  add(std::make_unique<ConstraintRedundantRule>());
  add(std::make_unique<ParamRangeUnreachableRule>());
}

}  // namespace internal
}  // namespace xpdl::analysis
