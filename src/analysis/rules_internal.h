// Internal: registration entry points for the built-in rule packs.
//
// The rules live in separate translation units inside a static library;
// relying on static-initializer self-registration would let the linker
// drop them. Registry::instance() calls these once instead; external
// rules still go through Registry::register_rule().
#pragma once

#include <string>
#include <utility>

#include "xpdl/analysis/analysis.h"

namespace xpdl::analysis {

namespace internal {

/// Convenience base carrying the static RuleInfo.
class RuleBase : public AnalysisRule {
 public:
  RuleBase(std::string id, RuleScope scope, Severity severity,
           std::string summary)
      : info_{std::move(id), scope, severity, std::move(summary)} {}

  [[nodiscard]] const RuleInfo& info() const noexcept override {
    return info_;
  }

 private:
  RuleInfo info_;
};

void register_descriptor_rules(Registry& registry);
void register_repository_rules(Registry& registry);
void register_model_rules(Registry& registry);

}  // namespace internal
}  // namespace xpdl::analysis
