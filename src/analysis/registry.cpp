// Core types of the analysis engine: severities, findings, the rule
// registry, per-run rule configuration and the baseline suppression file.
#include "xpdl/analysis/analysis.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"
#include "rules_internal.h"

namespace xpdl::analysis {

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Result<Severity> parse_severity(std::string_view text) {
  if (text == "note") return Severity::kNote;
  if (text == "warning") return Severity::kWarning;
  if (text == "error") return Severity::kError;
  return Status(ErrorCode::kInvalidArgument,
                "unknown severity '" + std::string(text) +
                    "' (expected note, warning or error)");
}

std::string_view to_string(RuleScope s) noexcept {
  switch (s) {
    case RuleScope::kDescriptor: return "descriptor";
    case RuleScope::kRepository: return "repository";
    case RuleScope::kModel: return "model";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::string out = location.to_string();
  if (!out.empty()) out += ": ";
  out += std::string(analysis::to_string(severity));
  out += " [" + rule + "]: " + message;
  return out;
}

Severity max_severity(const std::vector<Finding>& findings) {
  Severity max = Severity::kNote;
  for (const Finding& f : findings) {
    if (static_cast<int>(f.severity) > static_cast<int>(max)) {
      max = f.severity;
    }
  }
  return max;
}

Severity RuleConfig::effective(std::string_view rule,
                               Severity default_severity) const {
  Severity s = default_severity;
  if (auto it = overrides.find(rule); it != overrides.end()) s = it->second;
  if (warnings_as_errors && s == Severity::kWarning) s = Severity::kError;
  return s;
}

void Sink::report(const RuleInfo& rule, std::string message,
                  SourceLocation location) {
  out_.push_back(Finding{config_.effective(rule.id, rule.default_severity),
                         rule.id, std::move(message), std::move(location)});
}

void AnalysisRule::analyze_descriptor(const DescriptorContext&,
                                      Sink&) const {}

Status AnalysisRule::analyze_repository(const RepositoryContext&,
                                        Sink&) const {
  return Status::ok();
}

void AnalysisRule::analyze_model(const ModelContext&, Sink&) const {}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    internal::register_descriptor_rules(*r);
    internal::register_repository_rules(*r);
    internal::register_model_rules(*r);
    return r;
  }();
  return *registry;
}

Status Registry::register_rule(std::unique_ptr<AnalysisRule> rule) {
  const std::string& id = rule->info().id;
  if (id.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "analysis rule with empty id");
  }
  auto [it, inserted] = rules_.emplace(id, std::move(rule));
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kInvalidArgument,
                  "analysis rule '" + id + "' registered twice");
  }
  return Status::ok();
}

const AnalysisRule* Registry::find(std::string_view id) const noexcept {
  auto it = rules_.find(id);
  return it == rules_.end() ? nullptr : it->second.get();
}

std::vector<const AnalysisRule*> Registry::rules() const {
  std::vector<const AnalysisRule*> out;
  out.reserve(rules_.size());
  for (const auto& [id, rule] : rules_) out.push_back(rule.get());
  return out;  // map iteration order == sorted by id
}

std::vector<const AnalysisRule*> Registry::rules(RuleScope scope) const {
  std::vector<const AnalysisRule*> out;
  for (const auto& [id, rule] : rules_) {
    if (rule->info().scope == scope) out.push_back(rule.get());
  }
  return out;
}

// --- baseline -----------------------------------------------------------

std::string Baseline::fingerprint(const Finding& finding) {
  std::string base = finding.location.file.empty()
                         ? std::string()
                         : std::filesystem::path(finding.location.file.str())
                               .filename()
                               .string();
  return finding.rule + "|" + base + "|" + finding.message;
}

Result<Baseline> Baseline::load(const std::string& path) {
  XPDL_ASSIGN_OR_RETURN(std::string text, io::read_file(path));
  Baseline b;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = strings::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    b.fingerprints_.emplace(trimmed);
  }
  return b;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) b.fingerprints_.insert(fingerprint(f));
  return b;
}

bool Baseline::contains(const Finding& finding) const {
  return fingerprints_.find(fingerprint(finding)) != fingerprints_.end();
}

std::string Baseline::serialize() const {
  std::string out =
      "# xpdl-lint baseline: one suppressed finding per line\n"
      "# (fingerprint: rule|file-basename|message)\n";
  for (const std::string& fp : fingerprints_) {
    out += fp;
    out += '\n';
  }
  return out;
}

// --- report -------------------------------------------------------------

std::size_t Report::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity == s) ++n;
  }
  return n;
}

void Report::sort() {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.location.file != b.location.file) {
                       return a.location.file < b.location.file;
                     }
                     if (a.location.line != b.location.line) {
                       return a.location.line < b.location.line;
                     }
                     if (a.location.column != b.location.column) {
                       return a.location.column < b.location.column;
                     }
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.message < b.message;
                   });
}

std::size_t Report::apply_baseline(const Baseline& baseline) {
  std::size_t before = findings.size();
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return baseline.contains(f);
                                }),
                 findings.end());
  std::size_t removed = before - findings.size();
  suppressed += removed;
  return removed;
}

std::string Report::summary() const {
  return strings::format("%zu error(s), %zu warning(s), %zu note(s)",
                         count(Severity::kError), count(Severity::kWarning),
                         count(Severity::kNote));
}

}  // namespace xpdl::analysis
