// Model-scope passes over a fully composed system: the Sec. IV
// bandwidth-downgrade invariant ("effective bandwidth should be
// determined by the slowest hardware components involved").
#include <cmath>
#include <functional>

#include "xpdl/compose/compose.h"
#include "xpdl/model/ir.h"
#include "xpdl/util/units.h"
#include "rules_internal.h"

namespace xpdl::analysis {
namespace {

void walk(const xml::Element& e,
          const std::function<void(const xml::Element&)>& fn) {
  fn(e);
  for (const auto& c : e.children()) walk(*c, fn);
}

std::optional<double> metric_si(const xml::Element& e,
                                std::string_view name) {
  auto m = model::metric_of(e, name);
  if (!m.is_ok() || !m.value().has_value() || !m.value()->is_number()) {
    return std::nullopt;
  }
  return m.value()->value_si;
}

// --- bandwidth-downgrade ------------------------------------------------

class BandwidthDowngradeRule final : public internal::RuleBase {
 public:
  BandwidthDowngradeRule()
      : RuleBase("bandwidth-downgrade", RuleScope::kModel, Severity::kWarning,
                 "interconnect declares an aggregate bandwidth above the "
                 "slowest link component; the effective bandwidth is "
                 "downgraded (Sec. IV)") {}

  void analyze_model(const ModelContext& ctx, Sink& sink) const override {
    walk(ctx.model.root(), [&](const xml::Element& e) {
      if (e.tag() != "interconnect") return;
      auto declared = metric_si(e, "max_bandwidth");
      auto effective = metric_si(e, compose::kEffectiveBandwidthAttr);
      if (!declared.has_value() || !effective.has_value()) return;
      // Tolerate rounding from the composer's number formatting.
      if (*declared <= *effective * (1.0 + 1e-9)) return;
      sink.report(
          info(),
          "interconnect '" + std::string(e.attribute_or("id", e.tag())) +
              "' declares " +
              units::Quantity(*declared, units::Dimension::kBandwidth)
                  .to_string() +
              " but the slowest channel or endpoint sustains only " +
              units::Quantity(*effective, units::Dimension::kBandwidth)
                  .to_string() +
              "; the aggregate claim can never be met end-to-end",
          e.location());
    });
  }
};

// --- compose-error ------------------------------------------------------

/// Composition failures are detected by the engine (Composer::compose
/// returning an error); this registration provides the stable id,
/// severity and documentation under which the engine reports them.
class ComposeErrorRule final : public internal::RuleBase {
 public:
  ComposeErrorRule()
      : RuleBase("compose-error", RuleScope::kModel, Severity::kError,
                 "concrete <system> descriptor that fails to compose "
                 "(unresolved references, unsatisfied constraints, "
                 "inheritance cycles, ...)") {}
};

}  // namespace

namespace internal {

void register_model_rules(Registry& registry) {
  auto add = [&](std::unique_ptr<AnalysisRule> rule) {
    Status st = registry.register_rule(std::move(rule));
    (void)st;
  };
  add(std::make_unique<BandwidthDowngradeRule>());
  add(std::make_unique<ComposeErrorRule>());
}

}  // namespace internal
}  // namespace xpdl::analysis
