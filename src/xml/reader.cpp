#include <cstdlib>
#include <cstring>

#include "xpdl/intern/intern.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"
#include "xpdl/xml/xml.h"

namespace xpdl::xml {
namespace {

constexpr bool is_name_start(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
constexpr bool is_name_char(char c) noexcept {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// Slice-oriented XML scanner producing the Element tree.
///
/// The scanner works on whole runs (names, attribute values, text, CDATA,
/// comments) found with std::string_view::find / memchr instead of a
/// byte-at-a-time loop; line/column bookkeeping is paid once per consumed
/// slice (newlines located with memchr), so large text or CDATA runs cost
/// O(length), not O(length x column-updates). Tags and attribute names are
/// interned, and the source path is interned once per document, so building
/// a node costs no per-node string allocations.
class Reader {
 public:
  Reader(std::string_view text, std::string_view source, ParseOptions options)
      : text_(text), source_(source), options_(options) {}

  Result<Document> run() {
    Document doc;
    skip_misc();
    if (at_end()) {
      return fail("document contains no root element");
    }
    XPDL_ASSIGN_OR_RETURN(auto root, parse_element(0));
    doc.root = std::move(root);
    // Only comments/whitespace may follow the root element.
    skip_misc();
    if (!at_end()) {
      return fail("content after root element");
    }
    doc.warnings = std::move(warnings_);
    return doc;
  }

 private:
  static constexpr std::size_t npos = std::string_view::npos;

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Consumes `n` bytes, updating the line/column state in one pass over
  /// the slice (newlines located with memchr).
  void consume(std::size_t n) noexcept {
    const char* base = text_.data();
    const char* p = base + pos_;
    const char* limit = p + n;
    while (p < limit) {
      const void* nl =
          std::memchr(p, '\n', static_cast<std::size_t>(limit - p));
      if (nl == nullptr) break;
      ++line_;
      p = static_cast<const char*>(nl) + 1;
      line_start_ = static_cast<std::size_t>(p - base);
    }
    pos_ += n;
  }

  /// Consumes up to (but not including) absolute offset `end`; npos means
  /// "to the end of input".
  void consume_to(std::size_t end) noexcept {
    if (end == npos) end = text_.size();
    consume(end - pos_);
  }

  [[nodiscard]] bool starts_with(std::string_view s) const noexcept {
    return text_.substr(pos_, s.size()) == s;
  }

  [[nodiscard]] SourceLocation here() const {
    return SourceLocation{
        source_, line_,
        static_cast<std::uint32_t>(pos_ - line_start_ + 1)};
  }

  [[nodiscard]] Status fail(std::string_view what) const {
    return Status(ErrorCode::kParseError, std::string(what), here());
  }

  void skip_ws() {
    std::size_t end = text_.find_first_not_of(" \t\r\n\f\v", pos_);
    consume_to(end);
  }

  /// Skips comments, PIs and whitespace between markup.
  Status skip_misc_once(bool& progressed) {
    std::size_t before = pos_;
    skip_ws();
    if (starts_with("<!--")) {
      std::size_t end = text_.find("-->", pos_ + 4);
      if (end == npos) {
        consume_to(npos);
        progressed = true;
        return fail("unterminated comment");
      }
      consume_to(end + 3);
    } else if (starts_with("<?")) {
      std::size_t end = text_.find("?>", pos_ + 2);
      if (end == npos) {
        consume_to(npos);
        progressed = true;
        return fail("unterminated processing instruction");
      }
      consume_to(end + 2);
    } else if (starts_with("<!DOCTYPE")) {
      // Skip a (non-nested-subset) DOCTYPE declaration.
      std::size_t end = text_.find('>', pos_);
      if (end == npos) {
        consume_to(npos);
        progressed = true;
        return fail("unterminated DOCTYPE");
      }
      consume_to(end + 1);
    }
    progressed = pos_ != before;
    return Status::ok();
  }

  void skip_misc() {
    bool progressed = true;
    while (progressed) {
      if (!skip_misc_once(progressed).is_ok()) return;
    }
  }

  Result<std::string_view> parse_name() {
    if (at_end() || !is_name_start(text_[pos_])) {
      return fail("expected a name");
    }
    std::size_t p = pos_ + 1;
    while (p < text_.size() && is_name_char(text_[p])) ++p;
    std::string_view name = text_.substr(pos_, p - pos_);
    pos_ = p;  // names never contain newlines, so no line bookkeeping
    return name;
  }

  /// Decodes entity and character references in `raw`. Callers go through
  /// decode_or_copy, so this only runs when a '&' is actually present.
  Result<std::string> decode_text(std::string_view raw,
                                  const SourceLocation& loc) {
    std::string out;
    out.reserve(raw.size());
    std::size_t i = 0;
    while (i < raw.size()) {
      std::size_t amp = raw.find('&', i);
      if (amp == npos) {
        out.append(raw.substr(i));
        break;
      }
      out.append(raw.substr(i, amp - i));
      std::size_t semi = raw.find(';', amp + 1);
      if (semi == npos) {
        return Status(ErrorCode::kParseError, "unterminated entity reference",
                      loc);
      }
      std::string_view ent = raw.substr(amp + 1, semi - amp - 1);
      if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "amp") out += '&';
      else if (ent == "apos") out += '\'';
      else if (ent == "quot") out += '"';
      else if (!ent.empty() && ent[0] == '#') {
        std::string_view num = ent.substr(1);
        int base = 10;
        if (!num.empty() && (num[0] == 'x' || num[0] == 'X')) {
          base = 16;
          num = num.substr(1);
        }
        char* end = nullptr;
        std::string buf(num);
        unsigned long cp = std::strtoul(buf.c_str(), &end, base);
        if (end != buf.c_str() + buf.size() || cp == 0 || cp > 0x10FFFF) {
          return Status(ErrorCode::kParseError,
                        "invalid character reference '&" + std::string(ent) +
                            ";'",
                        loc);
        }
        // Encode as UTF-8.
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
      } else {
        return Status(ErrorCode::kParseError,
                      "unknown entity '&" + std::string(ent) + ";'", loc);
      }
      i = semi + 1;
    }
    return out;
  }

  /// Single-allocation copy when `raw` contains no references.
  Result<std::string> decode_or_copy(std::string_view raw,
                                     const SourceLocation& loc) {
    if (raw.find('&') == npos) return std::string(raw);
    return decode_text(raw, loc);
  }

  Result<Attribute> parse_attribute() {
    SourceLocation loc = here();
    XPDL_ASSIGN_OR_RETURN(std::string_view name, parse_name());
    skip_ws();
    if (peek() != '=') {
      return Status(ErrorCode::kParseError,
                    "expected '=' after attribute name '" + std::string(name) +
                        "'",
                    loc);
    }
    consume(1);
    skip_ws();
    char quote = peek();
    std::string_view raw;
    if (quote == '"' || quote == '\'') {
      consume(1);
      std::size_t end = text_.find(quote, pos_);
      if (end == npos) {
        consume_to(npos);
        return Status(ErrorCode::kParseError,
                      "unterminated attribute value for '" + std::string(name) +
                          "'",
                      loc);
      }
      raw = text_.substr(pos_, end - pos_);
      consume_to(end + 1);  // value + closing quote
    } else {
      if (!options_.allow_unquoted_attributes) {
        return Status(ErrorCode::kParseError,
                      "unquoted value for attribute '" + std::string(name) +
                          "'",
                      loc);
      }
      // Lenient mode (paper Listing 1 writes quantity=2): read up to
      // whitespace or tag end.
      std::size_t p = pos_;
      while (p < text_.size() && !strings::is_space(text_[p]) &&
             text_[p] != '>' &&
             !(text_[p] == '/' && p + 1 < text_.size() &&
               text_[p + 1] == '>')) {
        ++p;
      }
      raw = text_.substr(pos_, p - pos_);
      if (raw.empty()) {
        return Status(ErrorCode::kParseError,
                      "empty unquoted value for attribute '" +
                          std::string(name) + "'",
                      loc);
      }
      pos_ = p;  // stops at whitespace, so the slice has no newlines
      warnings_.push_back(loc.to_string() + ": unquoted attribute value '" +
                          std::string(name) + "=" + std::string(raw) +
                          "' accepted (lenient mode)");
    }
    XPDL_ASSIGN_OR_RETURN(std::string value, decode_or_copy(raw, loc));
    return Attribute{intern::Atom(name), std::move(value), std::move(loc)};
  }

  Result<std::unique_ptr<Element>> parse_element(std::size_t depth) {
    if (depth > options_.max_depth) {
      return fail("maximum element nesting depth exceeded");
    }
    SourceLocation open_loc = here();
    if (peek() != '<') return fail("expected '<'");
    consume(1);
    XPDL_ASSIGN_OR_RETURN(std::string_view tag, parse_name());
    auto element = std::make_unique<Element>(intern::Atom(tag));
    element->set_location(open_loc);
    ++element_count_;

    // Attributes.
    while (true) {
      skip_ws();
      if (at_end()) {
        return fail("unterminated start tag <" + std::string(tag) + ">");
      }
      char c = peek();
      if (c == '/') {
        consume(1);
        if (peek() != '>') return fail("expected '>' after '/'");
        consume(1);
        return element;  // self-closing
      }
      if (c == '>') {
        consume(1);
        break;
      }
      XPDL_ASSIGN_OR_RETURN(Attribute attr, parse_attribute());
      if (element->has_attribute(attr.name.view())) {
        return Status(ErrorCode::kParseError,
                      "duplicate attribute '" + attr.name.str() + "' on <" +
                          std::string(tag) + ">",
                      attr.location);
      }
      element->set_attribute(attr.name.view(), attr.value);
    }

    // Content.
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      std::string_view trimmed = strings::trim(pending_text);
      if (!trimmed.empty()) {
        XPDL_ASSIGN_OR_RETURN(std::string decoded,
                              decode_or_copy(trimmed, open_loc));
        element->append_text(decoded);
      }
      pending_text.clear();
      return Status::ok();
    };

    while (true) {
      if (at_end()) {
        return Status(ErrorCode::kParseError,
                      "unterminated element <" + std::string(tag) + ">",
                      open_loc);
      }
      if (text_[pos_] != '<') {
        // Character-data run up to the next markup (or end of input).
        std::size_t lt = text_.find('<', pos_);
        if (lt == npos) lt = text_.size();
        pending_text.append(text_.substr(pos_, lt - pos_));
        consume(lt - pos_);
        continue;
      }
      if (starts_with("</")) {
        XPDL_RETURN_IF_ERROR(flush_text());
        consume(2);
        SourceLocation close_loc = here();
        XPDL_ASSIGN_OR_RETURN(std::string_view close_tag, parse_name());
        skip_ws();
        if (peek() != '>') {
          return Status(ErrorCode::kParseError,
                        "expected '>' in closing tag", close_loc);
        }
        consume(1);
        if (close_tag != tag) {
          return Status(ErrorCode::kParseError,
                        "mismatched closing tag </" + std::string(close_tag) +
                            "> for element <" + std::string(tag) + ">",
                        close_loc);
        }
        return element;
      }
      if (starts_with("<!--")) {
        std::size_t end = text_.find("-->", pos_ + 4);
        if (end == npos) {
          consume_to(npos);
          return fail("unterminated comment");
        }
        consume_to(end + 3);
        continue;
      }
      if (starts_with("<![CDATA[")) {
        consume(9);
        std::size_t end = text_.find("]]>", pos_);
        if (end == npos) {
          consume_to(npos);
          return fail("unterminated CDATA section");
        }
        element->append_text(text_.substr(pos_, end - pos_));
        consume_to(end + 3);
        continue;
      }
      if (starts_with("<?")) {
        std::size_t end = text_.find("?>", pos_ + 2);
        if (end == npos) {
          consume_to(npos);
          return fail("unterminated processing instruction");
        }
        consume_to(end + 2);
        continue;
      }
      // Child element.
      XPDL_RETURN_IF_ERROR(flush_text());
      XPDL_ASSIGN_OR_RETURN(auto child, parse_element(depth + 1));
      element->add_child(std::move(child));
    }
  }

 public:
  [[nodiscard]] std::size_t element_count() const noexcept {
    return element_count_;
  }

 private:
  std::string_view text_;
  intern::Atom source_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::size_t line_start_ = 0;
  std::size_t element_count_ = 0;
  std::vector<std::string> warnings_;
};

}  // namespace

Result<Document> parse(std::string_view text, std::string source_name,
                       const ParseOptions& options) {
  obs::Span span("xml.parse");
  if (span.active()) span.arg("source", source_name);
  Reader reader(text, source_name, options);
  auto result = reader.run();
  XPDL_OBS_COUNT("xml.parse.documents", 1);
  XPDL_OBS_COUNT("xml.parse.bytes", text.size());
  XPDL_OBS_COUNT("xml.parse.elements", reader.element_count());
  if (!result.is_ok()) XPDL_OBS_COUNT("xml.parse.errors", 1);
  return result;
}

Result<Document> parse_file(const std::string& path,
                            const ParseOptions& options) {
  XPDL_ASSIGN_OR_RETURN(std::string text, io::read_file(path));
  return parse(text, path, options);
}

}  // namespace xpdl::xml
