#include <cctype>
#include <cstdlib>

#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/io.h"
#include "xpdl/util/strings.h"
#include "xpdl/xml/xml.h"

namespace xpdl::xml {
namespace {

/// Single-pass, line/column-tracking XML scanner producing the Element tree.
class Reader {
 public:
  Reader(std::string_view text, std::string source, ParseOptions options)
      : text_(text), source_(std::move(source)), options_(options) {}

  Result<Document> run() {
    Document doc;
    skip_prolog_and_misc();
    if (at_end()) {
      return fail("document contains no root element");
    }
    XPDL_ASSIGN_OR_RETURN(auto root, parse_element(0));
    doc.root = std::move(root);
    // Only comments/whitespace may follow the root element.
    skip_misc();
    if (!at_end()) {
      return fail("content after root element");
    }
    doc.warnings = std::move(warnings_);
    return doc;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  [[nodiscard]] char peek_at(std::size_t off) const noexcept {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }

  char advance() noexcept {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void advance_by(std::size_t n) noexcept {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  [[nodiscard]] bool starts_with(std::string_view s) const noexcept {
    return text_.substr(pos_, s.size()) == s;
  }

  [[nodiscard]] SourceLocation here() const {
    return SourceLocation{source_, line_, column_};
  }

  [[nodiscard]] Status fail(std::string_view what) const {
    return Status(ErrorCode::kParseError, std::string(what), here());
  }

  void skip_ws() {
    while (!at_end() && strings::is_space(peek())) advance();
  }

  /// Skips comments, PIs and whitespace between markup.
  Status skip_misc_once(bool& progressed) {
    progressed = false;
    std::size_t before = pos_;
    skip_ws();
    if (starts_with("<!--")) {
      advance_by(4);
      while (!at_end() && !starts_with("-->")) advance();
      if (at_end()) return fail("unterminated comment");
      advance_by(3);
    } else if (starts_with("<?")) {
      advance_by(2);
      while (!at_end() && !starts_with("?>")) advance();
      if (at_end()) return fail("unterminated processing instruction");
      advance_by(2);
    } else if (starts_with("<!DOCTYPE")) {
      // Skip a (non-nested-subset) DOCTYPE declaration.
      while (!at_end() && peek() != '>') advance();
      if (at_end()) return fail("unterminated DOCTYPE");
      advance();
    }
    progressed = pos_ != before;
    return Status::ok();
  }

  void skip_misc() {
    bool progressed = true;
    while (progressed) {
      if (!skip_misc_once(progressed).is_ok()) return;
    }
  }

  void skip_prolog_and_misc() { skip_misc(); }

  static bool is_name_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) {
      return fail("expected a name");
    }
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  /// Decodes entity and character references in `raw`.
  Result<std::string> decode_text(std::string_view raw,
                                  const SourceLocation& loc) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      if (c != '&') {
        out += c;
        continue;
      }
      std::size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Status(ErrorCode::kParseError, "unterminated entity reference",
                      loc);
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "amp") out += '&';
      else if (ent == "apos") out += '\'';
      else if (ent == "quot") out += '"';
      else if (!ent.empty() && ent[0] == '#') {
        std::string_view num = ent.substr(1);
        int base = 10;
        if (!num.empty() && (num[0] == 'x' || num[0] == 'X')) {
          base = 16;
          num = num.substr(1);
        }
        char* end = nullptr;
        std::string buf(num);
        unsigned long cp = std::strtoul(buf.c_str(), &end, base);
        if (end != buf.c_str() + buf.size() || cp == 0 || cp > 0x10FFFF) {
          return Status(ErrorCode::kParseError,
                        "invalid character reference '&" + std::string(ent) +
                            ";'",
                        loc);
        }
        // Encode as UTF-8.
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
      } else {
        return Status(ErrorCode::kParseError,
                      "unknown entity '&" + std::string(ent) + ";'", loc);
      }
      i = semi;
    }
    return out;
  }

  Result<Attribute> parse_attribute() {
    SourceLocation loc = here();
    XPDL_ASSIGN_OR_RETURN(std::string name, parse_name());
    skip_ws();
    if (peek() != '=') {
      return Status(ErrorCode::kParseError,
                    "expected '=' after attribute name '" + name + "'", loc);
    }
    advance();
    skip_ws();
    char quote = peek();
    std::string raw;
    if (quote == '"' || quote == '\'') {
      advance();
      while (!at_end() && peek() != quote) raw += advance();
      if (at_end()) {
        return Status(ErrorCode::kParseError,
                      "unterminated attribute value for '" + name + "'", loc);
      }
      advance();  // closing quote
    } else {
      if (!options_.allow_unquoted_attributes) {
        return Status(ErrorCode::kParseError,
                      "unquoted value for attribute '" + name + "'", loc);
      }
      // Lenient mode (paper Listing 1 writes quantity=2): read up to
      // whitespace or tag end.
      while (!at_end() && !strings::is_space(peek()) && peek() != '>' &&
             !(peek() == '/' && peek_at(1) == '>')) {
        raw += advance();
      }
      if (raw.empty()) {
        return Status(ErrorCode::kParseError,
                      "empty unquoted value for attribute '" + name + "'",
                      loc);
      }
      warnings_.push_back(loc.to_string() + ": unquoted attribute value '" +
                          name + "=" + raw + "' accepted (lenient mode)");
    }
    XPDL_ASSIGN_OR_RETURN(std::string value, decode_text(raw, loc));
    return Attribute{std::move(name), std::move(value), std::move(loc)};
  }

  Result<std::unique_ptr<Element>> parse_element(std::size_t depth) {
    if (depth > options_.max_depth) {
      return fail("maximum element nesting depth exceeded");
    }
    SourceLocation open_loc = here();
    if (peek() != '<') return fail("expected '<'");
    advance();
    XPDL_ASSIGN_OR_RETURN(std::string tag, parse_name());
    auto element = std::make_unique<Element>(tag);
    element->set_location(open_loc);
    ++element_count_;

    // Attributes.
    while (true) {
      skip_ws();
      if (at_end()) return fail("unterminated start tag <" + tag + ">");
      char c = peek();
      if (c == '/') {
        advance();
        if (peek() != '>') return fail("expected '>' after '/'");
        advance();
        return element;  // self-closing
      }
      if (c == '>') {
        advance();
        break;
      }
      XPDL_ASSIGN_OR_RETURN(Attribute attr, parse_attribute());
      if (element->has_attribute(attr.name)) {
        return Status(ErrorCode::kParseError,
                      "duplicate attribute '" + attr.name + "' on <" + tag +
                          ">",
                      attr.location);
      }
      element->set_attribute(attr.name, attr.value);
    }

    // Content.
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      std::string_view trimmed = strings::trim(pending_text);
      if (!trimmed.empty()) {
        XPDL_ASSIGN_OR_RETURN(std::string decoded,
                              decode_text(trimmed, open_loc));
        element->append_text(decoded);
      }
      pending_text.clear();
      return Status::ok();
    };

    while (true) {
      if (at_end()) {
        return Status(ErrorCode::kParseError,
                      "unterminated element <" + tag + ">", open_loc);
      }
      if (starts_with("</")) {
        XPDL_RETURN_IF_ERROR(flush_text());
        advance_by(2);
        SourceLocation close_loc = here();
        XPDL_ASSIGN_OR_RETURN(std::string close_tag, parse_name());
        skip_ws();
        if (peek() != '>') {
          return Status(ErrorCode::kParseError,
                        "expected '>' in closing tag", close_loc);
        }
        advance();
        if (close_tag != tag) {
          return Status(ErrorCode::kParseError,
                        "mismatched closing tag </" + close_tag +
                            "> for element <" + tag + ">",
                        close_loc);
        }
        return element;
      }
      if (starts_with("<!--")) {
        advance_by(4);
        while (!at_end() && !starts_with("-->")) advance();
        if (at_end()) return fail("unterminated comment");
        advance_by(3);
        continue;
      }
      if (starts_with("<![CDATA[")) {
        advance_by(9);
        std::string cdata;
        while (!at_end() && !starts_with("]]>")) cdata += advance();
        if (at_end()) return fail("unterminated CDATA section");
        advance_by(3);
        element->append_text(cdata);
        continue;
      }
      if (starts_with("<?")) {
        advance_by(2);
        while (!at_end() && !starts_with("?>")) advance();
        if (at_end()) return fail("unterminated processing instruction");
        advance_by(2);
        continue;
      }
      if (peek() == '<') {
        XPDL_RETURN_IF_ERROR(flush_text());
        XPDL_ASSIGN_OR_RETURN(auto child, parse_element(depth + 1));
        element->add_child(std::move(child));
        continue;
      }
      pending_text += advance();
    }
  }

 public:
  [[nodiscard]] std::size_t element_count() const noexcept {
    return element_count_;
  }

 private:
  std::string_view text_;
  std::string source_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
  std::size_t element_count_ = 0;
  std::vector<std::string> warnings_;
};

}  // namespace

Result<Document> parse(std::string_view text, std::string source_name,
                       const ParseOptions& options) {
  obs::Span span("xml.parse");
  if (span.active()) span.arg("source", source_name);
  Reader reader(text, std::move(source_name), options);
  auto result = reader.run();
  XPDL_OBS_COUNT("xml.parse.documents", 1);
  XPDL_OBS_COUNT("xml.parse.bytes", text.size());
  XPDL_OBS_COUNT("xml.parse.elements", reader.element_count());
  if (!result.is_ok()) XPDL_OBS_COUNT("xml.parse.errors", 1);
  return result;
}

Result<Document> parse_file(const std::string& path,
                            const ParseOptions& options) {
  XPDL_ASSIGN_OR_RETURN(std::string text, io::read_file(path));
  return parse(text, path, options);
}

}  // namespace xpdl::xml
