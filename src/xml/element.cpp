#include "xpdl/xml/xml.h"

namespace xpdl::xml {

std::optional<std::string_view> Element::attribute(
    std::string_view name) const noexcept {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return std::string_view(a.value);
  }
  return std::nullopt;
}

std::string_view Element::attribute_or(std::string_view name,
                                       std::string_view fallback) const noexcept {
  auto v = attribute(name);
  return v.has_value() ? *v : fallback;
}

Result<std::string> Element::require_attribute(std::string_view name) const {
  auto v = attribute(name);
  if (!v.has_value()) {
    return Status(ErrorCode::kSchemaViolation,
                  "element <" + tag_.str() + "> is missing required attribute '" +
                      std::string(name) + "'",
                  location_);
  }
  return std::string(*v);
}

void Element::set_attribute(std::string_view name, std::string_view value) {
  for (Attribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::string(value);
      return;
    }
  }
  attributes_.push_back(
      Attribute{intern::Atom(name), std::string(value), {}});
}

bool Element::remove_attribute(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

Element& Element::add_child(std::unique_ptr<Element> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::add_child(intern::Atom tag) {
  return add_child(std::make_unique<Element>(tag));
}

const Element* Element::first_child(std::string_view tag) const noexcept {
  for (const auto& c : children_) {
    if (c->tag_ == tag) return c.get();
  }
  return nullptr;
}

Element* Element::first_child(std::string_view tag) noexcept {
  for (auto& c : children_) {
    if (c->tag_ == tag) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view tag) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->tag_ == tag) out.push_back(c.get());
  }
  return out;
}

std::unique_ptr<Element> Element::clone() const {
  auto out = std::make_unique<Element>(tag_);
  out->attributes_ = attributes_;
  out->text_ = text_;
  out->location_ = location_;
  for (const auto& c : children_) {
    out->add_child(c->clone());
  }
  return out;
}

std::size_t Element::subtree_size() const noexcept {
  std::size_t n = 1;
  for (const auto& c : children_) n += c->subtree_size();
  return n;
}

}  // namespace xpdl::xml
