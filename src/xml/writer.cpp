#include <sstream>

#include "xpdl/obs/metrics.h"
#include "xpdl/xml/xml.h"

namespace xpdl::xml {
namespace {

void write_element(const Element& e, std::ostream& os, int depth,
                   const WriteOptions& options) {
  std::string indent(static_cast<std::size_t>(depth * options.indent), ' ');
  os << indent << '<' << e.tag();
  for (const Attribute& a : e.attributes()) {
    os << ' ' << a.name << "=\"" << escape(a.value) << '"';
  }
  const bool has_children = e.child_count() > 0;
  const bool has_text = !e.text().empty();
  if (!has_children && !has_text) {
    os << " />\n";
    return;
  }
  os << '>';
  if (has_text) os << escape(e.text());
  if (has_children) {
    os << '\n';
    for (const auto& c : e.children()) {
      write_element(*c, os, depth + 1, options);
    }
    os << indent;
  }
  os << "</" << e.tag() << ">\n";
}

}  // namespace

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string write(const Element& root, const WriteOptions& options) {
  std::ostringstream os;
  if (options.xml_declaration) {
    os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  }
  write_element(root, os, 0, options);
  std::string out = os.str();
  XPDL_OBS_COUNT("xml.write.documents", 1);
  XPDL_OBS_COUNT("xml.write.bytes", out.size());
  return out;
}

}  // namespace xpdl::xml
