#include "xpdl/query/query.h"

#include <algorithm>
#include <cctype>

#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::query {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<std::vector<Step>> run() {
    std::vector<Step> steps;
    skip_ws();
    if (at_end()) return error("empty query");
    while (!at_end()) {
      XPDL_ASSIGN_OR_RETURN(Step step, parse_step());
      steps.push_back(std::move(step));
      skip_ws();
    }
    return steps;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept {
    return at_end() ? '\0' : text_[pos_];
  }
  void skip_ws() {
    while (!at_end() && strings::is_space(text_[pos_])) ++pos_;
  }

  Status error(std::string_view what) const {
    return Status(ErrorCode::kParseError,
                  "query error at offset " + std::to_string(pos_) + " in '" +
                      std::string(text_) + "': " + std::string(what));
  }

  Result<Step> parse_step() {
    Step step;
    if (peek() != '/') return error("expected '/'");
    ++pos_;
    if (peek() == '/') {
      step.descendant = true;
      ++pos_;
    }
    if (peek() == '*') {
      step.tag = "*";
      ++pos_;
    } else {
      std::size_t start = pos_;
      while (!at_end() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return error("expected an element kind or '*'");
      step.tag = std::string(text_.substr(start, pos_ - start));
    }
    skip_ws();
    while (peek() == '[') {
      XPDL_ASSIGN_OR_RETURN(Predicate pred, parse_predicate());
      step.predicates.push_back(std::move(pred));
      skip_ws();
    }
    return step;
  }

  Result<Predicate> parse_predicate() {
    Predicate pred;
    ++pos_;  // '['
    skip_ws();
    if (peek() != '@') return error("expected '@' in predicate");
    ++pos_;
    std::size_t start = pos_;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected an attribute name");
    pred.attribute = std::string(text_.substr(start, pos_ - start));
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      pred.op = Op::kExists;
      return pred;
    }
    // Operator.
    if (text_.substr(pos_, 2) == "!=") {
      pred.op = Op::kNe;
      pos_ += 2;
    } else if (text_.substr(pos_, 2) == "<=") {
      pred.op = Op::kLe;
      pos_ += 2;
    } else if (text_.substr(pos_, 2) == ">=") {
      pred.op = Op::kGe;
      pos_ += 2;
    } else if (peek() == '=') {
      pred.op = Op::kEq;
      ++pos_;
    } else if (peek() == '<') {
      pred.op = Op::kLt;
      ++pos_;
    } else if (peek() == '>') {
      pred.op = Op::kGt;
      ++pos_;
    } else {
      return error("expected a comparison operator or ']'");
    }
    skip_ws();
    XPDL_RETURN_IF_ERROR(parse_value(pred));
    skip_ws();
    if (peek() != ']') return error("expected ']'");
    ++pos_;
    return pred;
  }

  Status parse_value(Predicate& pred) {
    if (peek() == '"' || peek() == '\'') {
      char quote = text_[pos_++];
      std::size_t start = pos_;
      while (!at_end() && text_[pos_] != quote) ++pos_;
      if (at_end()) return error("unterminated string value");
      pred.text_value = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      pred.is_numeric = false;
      return Status::ok();
    }
    // Number with optional unit suffix: 32KiB, 2.4GHz, 15.
    std::size_t start = pos_;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      // 'e' might begin a unit ("eV"?) — accept exponent only when
      // followed by digit/sign; here keep it simple: consume and let the
      // number parse decide via backtracking below.
      ++pos_;
    }
    // Backtrack trailing non-numeric characters until the prefix parses.
    std::size_t end = pos_;
    while (end > start) {
      auto parsed = strings::parse_double(text_.substr(start, end - start));
      if (parsed.is_ok()) {
        pred.numeric_si = parsed.value();
        break;
      }
      --end;
    }
    if (end == start) return error("expected a value");
    pos_ = end;
    // Optional unit suffix (letters and '/').
    std::size_t unit_start = pos_;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '/' || text_[pos_] == '%')) {
      ++pos_;
    }
    std::string_view unit_text = text_.substr(unit_start, pos_ - unit_start);
    pred.is_numeric = true;
    if (!unit_text.empty()) {
      XPDL_ASSIGN_OR_RETURN(units::Unit unit, units::parse_unit(unit_text));
      pred.numeric_si = unit.to_si(pred.numeric_si);
      pred.has_unit = true;
    }
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool compare(Op op, int cmp) {
  switch (op) {
    case Op::kEq: return cmp == 0;
    case Op::kNe: return cmp != 0;
    case Op::kLt: return cmp < 0;
    case Op::kLe: return cmp <= 0;
    case Op::kGt: return cmp > 0;
    case Op::kGe: return cmp >= 0;
    case Op::kExists: return true;
  }
  return false;
}

bool matches(const runtime::Node& node, const Predicate& pred) {
  auto raw = node.attribute(pred.attribute);
  if (!raw.has_value()) return false;
  if (pred.op == Op::kExists) return true;
  if (pred.is_numeric) {
    double lhs;
    if (pred.has_unit) {
      // Unit-aware: resolve the node's metric through its own unit.
      auto q = node.quantity(pred.attribute);
      if (!q.is_ok()) return false;
      lhs = q->si();
    } else {
      auto v = strings::parse_double(*raw);
      if (!v.is_ok()) return false;
      lhs = v.value();
    }
    int cmp = lhs < pred.numeric_si ? -1 : (lhs > pred.numeric_si ? 1 : 0);
    return compare(pred.op, cmp);
  }
  int cmp = std::string_view(*raw).compare(pred.text_value);
  return compare(pred.op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0));
}

bool matches(const runtime::Node& node, const Step& step) {
  if (step.tag != "*" && node.tag() != step.tag) return false;
  for (const Predicate& p : step.predicates) {
    if (!matches(node, p)) return false;
  }
  return true;
}

}  // namespace

Result<Query> Query::parse(std::string_view text) {
  XPDL_OBS_COUNT("query.parses", 1);
  Parser parser(text);
  XPDL_ASSIGN_OR_RETURN(std::vector<Step> steps, parser.run());
  return Query(std::move(steps), std::string(text));
}

std::vector<runtime::Node> Query::evaluate(runtime::Node root) const {
  XPDL_OBS_COUNT("query.evaluations", 1);
  // Current frontier; the first step applies to the root itself for '//'
  // and to the root's own matching for '/' (XPath-like with the root as
  // the implicit context node's document).
  const runtime::Model& model = root.model();
  std::vector<runtime::Node> frontier = {root};
  bool first = true;
  for (const Step& step : steps_) {
    std::vector<runtime::Node> next;
    for (const runtime::Node& node : frontier) {
      std::vector<runtime::Node> candidates;
      if (step.descendant) {
        // Descendant-or-self, in document order, off the model's
        // structure index: a concrete tag narrows to the rank-sorted
        // tag bucket instead of walking the whole subtree.
        candidates = step.tag == "*"
                         ? model.subtree(node)
                         : model.subtree_with_tag(node, step.tag);
      } else if (first) {
        // Leading '/tag' addresses the root element itself.
        candidates.push_back(node);
      } else {
        for (std::size_t i = 0; i < node.child_count(); ++i) {
          candidates.push_back(node.child(i));
        }
      }
      for (const runtime::Node& c : candidates) {
        if (matches(c, step)) next.push_back(c);
      }
    }
    // Deduplicate (descendant steps can reach a node repeatedly) while
    // preserving order; a seen-bitset over node indices keeps this
    // linear.
    std::vector<runtime::Node> dedup;
    std::vector<bool> seen(model.node_count(), false);
    for (const runtime::Node& n : next) {
      if (!seen[n.index()]) {
        seen[n.index()] = true;
        dedup.push_back(n);
      }
    }
    frontier = std::move(dedup);
    first = false;
    if (frontier.empty()) break;
  }
  XPDL_OBS_COUNT("query.matches", frontier.size());
  return frontier;
}

std::vector<runtime::Node> Query::evaluate(
    const runtime::Model& model) const {
  return evaluate(model.root());
}

Result<std::vector<runtime::Node>> select(const runtime::Model& model,
                                          std::string_view query) {
  obs::Span span("query.select");
  if (span.active()) span.arg("query", std::string(query));
  XPDL_ASSIGN_OR_RETURN(Query q, Query::parse(query));
  return q.evaluate(model);
}

Result<bool> exists(const runtime::Model& model, std::string_view query) {
  XPDL_ASSIGN_OR_RETURN(auto nodes, select(model, query));
  return !nodes.empty();
}

}  // namespace xpdl::query
