// Binary (de)serialization of the runtime model file (Sec. IV: the
// composed model "is finally written into a file" and loaded by the
// application at startup).
//
// Format XPDLRT01 (little-endian):
//   magic[8]  "XPDLRT01"
//   u32 string_count { u32 len, bytes }*
//   u32 node_count   { u32 tag, parent, first_child, child_count,
//                      attr_start, attr_count }*
//   u32 attr_count   { u32 key, u32 value }*
//   u32 checksum     (FNV-1a over everything after the magic)
#include <cstring>

#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/runtime/model.h"
#include "xpdl/util/io.h"

namespace xpdl::runtime {
namespace {

constexpr char kMagic[8] = {'X', 'P', 'D', 'L', 'R', 'T', '0', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Result<std::uint32_t> u32() {
    if (pos_ + 4 > data_.size()) {
      return Status(ErrorCode::kFormatError,
                    "runtime model file truncated at offset " +
                        std::to_string(pos_));
    }
    std::uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<std::string_view> bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      return Status(ErrorCode::kFormatError,
                    "runtime model file truncated at offset " +
                        std::to_string(pos_));
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

std::uint32_t fnv1a(std::string_view data) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

std::string Model::serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  std::string body;
  put_u32(body, static_cast<std::uint32_t>(strings_.size()));
  for (const std::string& s : strings_) {
    put_u32(body, static_cast<std::uint32_t>(s.size()));
    body.append(s);
  }
  put_u32(body, static_cast<std::uint32_t>(nodes_.size()));
  for (const NodeData& n : nodes_) {
    put_u32(body, n.tag);
    put_u32(body, n.parent);
    put_u32(body, n.first_child);
    put_u32(body, n.child_count);
    put_u32(body, n.attr_start);
    put_u32(body, n.attr_count);
  }
  put_u32(body, static_cast<std::uint32_t>(attrs_.size()));
  for (const AttrData& a : attrs_) {
    put_u32(body, a.key);
    put_u32(body, a.value);
  }
  out += body;
  put_u32(out, fnv1a(body));
  XPDL_OBS_COUNT("runtime.serialize.calls", 1);
  XPDL_OBS_COUNT("runtime.serialize.bytes", out.size());
  return out;
}

Result<Model> Model::deserialize(std::string_view bytes) {
  XPDL_OBS_COUNT("runtime.deserialize.calls", 1);
  XPDL_OBS_COUNT("runtime.deserialize.bytes", bytes.size());
  if (bytes.size() < sizeof(kMagic) + 4 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status(ErrorCode::kFormatError,
                  "not an XPDL runtime model file (bad magic)");
  }
  std::string_view body =
      bytes.substr(sizeof(kMagic), bytes.size() - sizeof(kMagic) - 4);
  std::uint32_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + bytes.size() - 4, 4);
  if (fnv1a(body) != stored_checksum) {
    return Status(ErrorCode::kFormatError,
                  "runtime model file checksum mismatch (corrupt file)");
  }

  Cursor cur(body);
  Model m;
  XPDL_ASSIGN_OR_RETURN(std::uint32_t string_count, cur.u32());
  m.strings_.reserve(string_count);
  for (std::uint32_t i = 0; i < string_count; ++i) {
    XPDL_ASSIGN_OR_RETURN(std::uint32_t len, cur.u32());
    XPDL_ASSIGN_OR_RETURN(std::string_view s, cur.bytes(len));
    m.strings_.emplace_back(s);
  }
  XPDL_ASSIGN_OR_RETURN(std::uint32_t node_count, cur.u32());
  if (node_count == 0) {
    return Status(ErrorCode::kFormatError, "runtime model has no nodes");
  }
  m.nodes_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    NodeData n;
    XPDL_ASSIGN_OR_RETURN(n.tag, cur.u32());
    XPDL_ASSIGN_OR_RETURN(n.parent, cur.u32());
    XPDL_ASSIGN_OR_RETURN(n.first_child, cur.u32());
    XPDL_ASSIGN_OR_RETURN(n.child_count, cur.u32());
    XPDL_ASSIGN_OR_RETURN(n.attr_start, cur.u32());
    XPDL_ASSIGN_OR_RETURN(n.attr_count, cur.u32());
    m.nodes_.push_back(n);
  }
  XPDL_ASSIGN_OR_RETURN(std::uint32_t attr_count, cur.u32());
  m.attrs_.reserve(attr_count);
  for (std::uint32_t i = 0; i < attr_count; ++i) {
    AttrData a;
    XPDL_ASSIGN_OR_RETURN(a.key, cur.u32());
    XPDL_ASSIGN_OR_RETURN(a.value, cur.u32());
    m.attrs_.push_back(a);
  }
  if (!cur.exhausted()) {
    return Status(ErrorCode::kFormatError,
                  "trailing bytes in runtime model file");
  }

  // Referential integrity: every index must be in range. A malformed
  // file must never produce out-of-bounds access later.
  auto check_str = [&](std::uint32_t idx) {
    return idx < m.strings_.size();
  };
  for (const NodeData& n : m.nodes_) {
    if (!check_str(n.tag) ||
        (n.parent != kNoNode && n.parent >= m.nodes_.size()) ||
        (n.child_count > 0 &&
         (n.first_child >= m.nodes_.size() ||
          n.first_child + n.child_count > m.nodes_.size())) ||
        n.attr_start + n.attr_count > m.attrs_.size()) {
      return Status(ErrorCode::kFormatError,
                    "runtime model file has out-of-range indices");
    }
  }
  for (const AttrData& a : m.attrs_) {
    if (!check_str(a.key) || !check_str(a.value)) {
      return Status(ErrorCode::kFormatError,
                    "runtime model file has out-of-range string indices");
    }
  }
  for (std::uint32_t i = 0; i < m.strings_.size(); ++i) {
    m.intern_index_.emplace(m.strings_[i], i);
  }
  m.build_id_index();
  return m;
}

Status Model::save(const std::string& path) const {
  obs::Span span("runtime.save");
  if (span.active()) span.arg("path", path);
  return io::write_file(path, serialize());
}

Result<Model> Model::load(const std::string& path) {
  obs::Span span("runtime.load");
  if (span.active()) span.arg("path", path);
  XPDL_ASSIGN_OR_RETURN(std::string bytes, io::read_file(path));
  return deserialize(bytes);
}

}  // namespace xpdl::runtime
