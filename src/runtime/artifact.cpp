// Composer::compose_runtime -- the cached end-to-end fast path.
//
// Defined here (not in compose.cpp) because it builds a runtime::Model
// and xpdl_runtime already links against xpdl_compose; the reverse edge
// would make the two static libraries circular. Callers link
// xpdl_runtime to use it.
#include "xpdl/cache/cache.h"
#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/runtime/model.h"

namespace xpdl::compose {

Result<RuntimeArtifact> Composer::compose_runtime(std::string_view ref) {
  const bool cacheable =
      repo_.content_digest_valid() && repo_.cache_options().enabled;
  if (cacheable) {
    // Same key as the composed-model snapshot (digest + ref + options);
    // the kind byte keeps the two from colliding on disk.
    std::uint64_t key = snapshot_key(ref);
    cache::SnapshotCache snapshots(repo_.cache_anchor(),
                                   repo_.cache_options());
    if (auto blob = snapshots.load_blob(cache::Kind::kRuntime, key);
        blob.has_value() && blob->stats.size() == 3) {
      XPDL_OBS_COUNT("compose.runtime_cache_hits", 1);
      RuntimeArtifact out;
      out.bytes = std::move(blob->bytes);
      out.warnings = std::move(blob->warnings);
      out.element_count = static_cast<std::size_t>(blob->stats[0]);
      out.id_count = static_cast<std::size_t>(blob->stats[1]);
      out.node_count = static_cast<std::size_t>(blob->stats[2]);
      out.cache_hit = true;
      return out;
    }
  }

  XPDL_ASSIGN_OR_RETURN(ComposedModel composed, compose(ref));
  XPDL_ASSIGN_OR_RETURN(runtime::Model model,
                        runtime::Model::from_composed(composed));
  RuntimeArtifact out;
  out.bytes = model.serialize();
  out.warnings = composed.warnings();
  out.element_count = composed.root().subtree_size();
  out.id_count = composed.ids().size();
  out.node_count = model.node_count();

  if (cacheable) {
    cache::BlobSnapshot blob;
    blob.bytes = out.bytes;
    blob.warnings = out.warnings;
    blob.stats = {out.element_count, out.id_count, out.node_count};
    cache::SnapshotCache snapshots(repo_.cache_anchor(),
                                   repo_.cache_options());
    snapshots.store_blob(cache::Kind::kRuntime, snapshot_key(ref), blob);
  }
  return out;
}

}  // namespace xpdl::compose
