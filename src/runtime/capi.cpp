#include "xpdl/runtime/capi.h"

#include <memory>
#include <mutex>
#include <optional>

#include "xpdl/runtime/model.h"

namespace {

// The process-wide model behind the C API. Guarded for concurrent init;
// queries after a successful init are lock-free reads of an immutable
// structure.
std::mutex g_mutex;
std::unique_ptr<xpdl::runtime::Model> g_model;

const xpdl::runtime::Model* model() noexcept { return g_model.get(); }

std::optional<xpdl::runtime::Node> to_node(xpdl_node_t handle) noexcept {
  const auto* m = model();
  if (m == nullptr || handle == 0 || handle > m->node_count()) {
    return std::nullopt;
  }
  return xpdl::runtime::Node(m, handle - 1);
}

xpdl_node_t to_handle(const xpdl::runtime::Node& node) noexcept {
  return node.index() + 1;
}

/// Validates a subtree handle: 0 selects the whole model; an invalid
/// nonzero handle is reported so callers can fail closed instead of
/// silently widening the query to the whole model.
bool subtree_arg(xpdl_node_t handle,
                 std::optional<xpdl::runtime::Node>& out) noexcept {
  if (handle == 0) {
    out = std::nullopt;  // whole model
    return true;
  }
  out = to_node(handle);
  return out.has_value();
}

}  // namespace

extern "C" {

int xpdl_init(const char* filename) {
  if (filename == nullptr) return 1;
  auto loaded = xpdl::runtime::Model::load(filename);
  if (!loaded.is_ok()) return 2;
  std::lock_guard<std::mutex> lock(g_mutex);
  g_model = std::make_unique<xpdl::runtime::Model>(std::move(loaded).value());
  return 0;
}

void xpdl_shutdown(void) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_model.reset();
}

int xpdl_is_initialized(void) { return model() != nullptr ? 1 : 0; }

xpdl_node_t xpdl_root(void) {
  return model() != nullptr ? to_handle(model()->root()) : 0;
}

xpdl_node_t xpdl_find_by_id(const char* id) {
  if (model() == nullptr || id == nullptr) return 0;
  auto node = model()->find_by_id(id);
  return node.has_value() ? to_handle(*node) : 0;
}

const char* xpdl_tag(xpdl_node_t handle) {
  auto node = to_node(handle);
  return node.has_value() ? node->tag().data() : nullptr;
}

const char* xpdl_get_attribute(xpdl_node_t handle, const char* name) {
  auto node = to_node(handle);
  if (!node.has_value() || name == nullptr) return nullptr;
  auto value = node->attribute(name);
  // Interned strings are NUL-terminated std::strings; .data() is safe.
  return value.has_value() ? value->data() : nullptr;
}

unsigned xpdl_num_children(xpdl_node_t handle) {
  auto node = to_node(handle);
  return node.has_value() ? static_cast<unsigned>(node->child_count()) : 0;
}

xpdl_node_t xpdl_child_at(xpdl_node_t handle, unsigned index) {
  auto node = to_node(handle);
  if (!node.has_value() || index >= node->child_count()) return 0;
  return to_handle(node->child(index));
}

xpdl_node_t xpdl_parent(xpdl_node_t handle) {
  auto node = to_node(handle);
  if (!node.has_value()) return 0;
  auto parent = node->parent();
  return parent.has_value() ? to_handle(*parent) : 0;
}

unsigned xpdl_count_tag(const char* tag, xpdl_node_t subtree) {
  std::optional<xpdl::runtime::Node> within;
  if (model() == nullptr || tag == nullptr || !subtree_arg(subtree, within)) {
    return 0;
  }
  return static_cast<unsigned>(model()->count(tag, within));
}

unsigned xpdl_count_cores(xpdl_node_t subtree) {
  std::optional<xpdl::runtime::Node> within;
  if (model() == nullptr || !subtree_arg(subtree, within)) return 0;
  return static_cast<unsigned>(model()->count_cores(within));
}

unsigned xpdl_count_cuda_devices(xpdl_node_t subtree) {
  std::optional<xpdl::runtime::Node> within;
  if (model() == nullptr || !subtree_arg(subtree, within)) return 0;
  return static_cast<unsigned>(model()->count_cuda_devices(within));
}

double xpdl_total_static_power(xpdl_node_t subtree) {
  std::optional<xpdl::runtime::Node> within;
  if (model() == nullptr || !subtree_arg(subtree, within)) return 0.0;
  return model()->total_static_power_w(within);
}

int xpdl_has_installed(const char* prefix) {
  if (model() == nullptr || prefix == nullptr) return 0;
  return model()->has_installed(prefix) ? 1 : 0;
}

}  // extern "C"
