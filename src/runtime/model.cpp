#include "xpdl/runtime/model.h"

#include <deque>

#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/strings.h"

namespace xpdl::runtime {

// ===========================================================================
// Node

std::string_view Node::tag() const noexcept {
  return model_->str(model_->nodes_[index_].tag);
}

std::optional<std::string_view> Node::attribute(
    std::string_view name) const noexcept {
  const Model::NodeData& n = model_->nodes_[index_];
  for (std::uint32_t i = 0; i < n.attr_count; ++i) {
    const Model::AttrData& a = model_->attrs_[n.attr_start + i];
    if (model_->str(a.key) == name) return model_->str(a.value);
  }
  return std::nullopt;
}

std::string_view Node::attribute_or(std::string_view name,
                                    std::string_view fallback) const noexcept {
  auto v = attribute(name);
  return v.has_value() ? *v : fallback;
}

std::string_view Node::id() const noexcept { return attribute_or("id", ""); }
std::string_view Node::name() const noexcept {
  return attribute_or("name", "");
}
std::string_view Node::type() const noexcept {
  return attribute_or("type", "");
}

Result<double> Node::number(std::string_view name) const {
  auto v = attribute(name);
  if (!v.has_value()) {
    return Status(ErrorCode::kNotFound,
                  "node <" + std::string(tag()) + "> has no attribute '" +
                      std::string(name) + "'");
  }
  return strings::parse_double(*v);
}

Result<units::Quantity> Node::quantity(std::string_view metric) const {
  auto v = attribute(metric);
  if (!v.has_value()) {
    return Status(ErrorCode::kNotFound,
                  "node <" + std::string(tag()) + "> has no metric '" +
                      std::string(metric) + "'");
  }
  std::string unit_attr = units::unit_attribute_name(metric);
  std::string_view unit = attribute_or(unit_attr, "");
  if (unit.empty()) {
    XPDL_ASSIGN_OR_RETURN(double num, strings::parse_double(*v));
    return units::Quantity(num, units::metric_dimension(metric));
  }
  return units::Quantity::parse(*v, unit, units::metric_dimension(metric));
}

std::size_t Node::child_count() const noexcept {
  return model_->nodes_[index_].child_count;
}

Node Node::child(std::size_t i) const noexcept {
  assert(i < child_count());
  return Node(model_, model_->nodes_[index_].first_child +
                          static_cast<std::uint32_t>(i));
}

std::optional<Node> Node::parent() const noexcept {
  std::uint32_t p = model_->nodes_[index_].parent;
  if (p == Model::kNoNode) return std::nullopt;
  return Node(model_, p);
}

std::optional<Node> Node::first(std::string_view tag) const noexcept {
  for (std::size_t i = 0; i < child_count(); ++i) {
    Node c = child(i);
    if (c.tag() == tag) return c;
  }
  return std::nullopt;
}

std::vector<Node> Node::children(std::string_view tag) const {
  std::vector<Node> out;
  for (std::size_t i = 0; i < child_count(); ++i) {
    Node c = child(i);
    if (c.tag() == tag) out.push_back(c);
  }
  return out;
}

// ===========================================================================
// Model construction

std::uint32_t Model::intern(std::string_view s) {
  if (auto it = intern_index_.find(s); it != intern_index_.end()) {
    return it->second;
  }
  auto idx = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  intern_index_.emplace(std::string(s), idx);
  return idx;
}

Result<Model> Model::from_xml(const xml::Element& root) {
  obs::Span span("runtime.build");
  Model m;
  // BFS layout: children of every node occupy one contiguous index range.
  std::deque<std::pair<const xml::Element*, std::uint32_t>> queue;
  queue.emplace_back(&root, kNoNode);
  while (!queue.empty()) {
    auto [elem, parent] = queue.front();
    queue.pop_front();
    auto index = static_cast<std::uint32_t>(m.nodes_.size());
    if (index == kNoNode) {
      return Status(ErrorCode::kInvalidArgument, "model too large");
    }
    NodeData node;
    node.tag = m.intern(elem->tag());
    node.parent = parent;
    node.attr_start = static_cast<std::uint32_t>(m.attrs_.size());
    node.attr_count = static_cast<std::uint32_t>(elem->attributes().size());
    for (const xml::Attribute& a : elem->attributes()) {
      m.attrs_.push_back(AttrData{m.intern(a.name), m.intern(a.value)});
    }
    m.nodes_.push_back(node);
    if (parent != kNoNode) {
      NodeData& p = m.nodes_[parent];
      if (p.child_count == 0) p.first_child = index;
      ++p.child_count;
    }
    for (const auto& c : elem->children()) {
      queue.emplace_back(c.get(), index);
    }
  }
  // The BFS above assigns child indices only after all earlier levels,
  // but first_child is set when the first child is *popped*; since
  // children are pushed in order and popped contiguously, the range is
  // correct. Rebuild the id index last.
  m.build_id_index();
  XPDL_OBS_COUNT("runtime.nodes_built", m.nodes_.size());
  if (span.active()) span.arg("nodes", std::uint64_t{m.nodes_.size()});
  return m;
}

Result<Model> Model::from_composed(const compose::ComposedModel& composed) {
  return from_xml(composed.root());
}

void Model::build_id_index() {
  id_index_.clear();
  // Qualified dotted path from ids/names along the ancestry; bare unique
  // ids are indexed directly, ambiguous ones removed (fail closed).
  std::map<std::string, std::uint32_t, std::less<>> local;
  std::map<std::string, int, std::less<>> local_count;
  std::vector<std::string> paths(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node n(this, i);
    std::string_view ident = n.id();
    if (ident.empty()) ident = n.name();
    std::string path =
        nodes_[i].parent == kNoNode ? "" : paths[nodes_[i].parent];
    if (!ident.empty()) {
      if (!path.empty()) path += '.';
      path += ident;
      ++local_count[std::string(ident)];
      local.emplace(std::string(ident), i);
      id_index_.emplace(path, i);
    }
    paths[i] = std::move(path);
  }
  for (const auto& [ident, count] : local_count) {
    if (count == 1 && id_index_.find(ident) == id_index_.end()) {
      id_index_.emplace(ident, local[ident]);
    }
  }
}

Model::MemoryStats Model::memory_stats() const noexcept {
  MemoryStats stats;
  stats.node_bytes = nodes_.size() * sizeof(NodeData);
  stats.attribute_bytes = attrs_.size() * sizeof(AttrData);
  stats.string_count = strings_.size();
  for (const std::string& s : strings_) {
    stats.string_bytes += s.size() + 1;
  }
  return stats;
}

std::optional<Node> Model::find_by_id(std::string_view id) const {
  auto it = id_index_.find(id);
  if (it == id_index_.end()) return std::nullopt;
  return Node(this, it->second);
}

std::vector<Node> Model::find_all(std::string_view tag) const {
  std::vector<Node> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (str(nodes_[i].tag) == tag) out.emplace_back(this, i);
  }
  return out;
}

template <typename F>
void Model::for_each_in_subtree(std::uint32_t start, F&& fn) const {
  std::vector<std::uint32_t> stack = {start};
  while (!stack.empty()) {
    std::uint32_t cur = stack.back();
    stack.pop_back();
    fn(cur);
    const NodeData& n = nodes_[cur];
    for (std::uint32_t i = 0; i < n.child_count; ++i) {
      stack.push_back(n.first_child + i);
    }
  }
}

// ===========================================================================
// Analysis functions (API category 4) — hand-written per the paper; the
// attribute getters are generated, these are not.

std::size_t Model::count(std::string_view tag,
                         std::optional<Node> within) const {
  std::size_t n = 0;
  for_each_in_subtree(within.has_value() ? within->index() : 0,
                      [&](std::uint32_t i) {
                        if (str(nodes_[i].tag) != tag) return;
                        // Elements inside a <power_domain> are references
                        // to hardware, not hardware (Listing 12); they
                        // must not inflate structural counts.
                        for (std::uint32_t p = nodes_[i].parent;
                             p != kNoNode; p = nodes_[p].parent) {
                          if (str(nodes_[p].tag) == "power_domain") return;
                        }
                        ++n;
                      });
  return n;
}

std::size_t Model::count_cores(std::optional<Node> within) const {
  return count("core", within);
}

std::size_t Model::count_host_cores(std::optional<Node> within) const {
  std::size_t n = 0;
  for_each_in_subtree(within.has_value() ? within->index() : 0,
                      [&](std::uint32_t i) {
                        if (str(nodes_[i].tag) != "core") return;
                        for (std::uint32_t p = nodes_[i].parent;
                             p != kNoNode; p = nodes_[p].parent) {
                          std::string_view tag = str(nodes_[p].tag);
                          if (tag == "device" || tag == "gpu" ||
                              tag == "power_domain") {
                            return;
                          }
                        }
                        ++n;
                      });
  return n;
}

std::size_t Model::count_devices(std::optional<Node> within) const {
  return count("device", within) + count("gpu", within);
}

std::size_t Model::count_cuda_devices(std::optional<Node> within) const {
  std::size_t n = 0;
  for_each_in_subtree(
      within.has_value() ? within->index() : 0, [&](std::uint32_t i) {
        std::string_view tag = str(nodes_[i].tag);
        if (tag != "device" && tag != "gpu") return;
        Node dev(this, i);
        for (std::size_t c = 0; c < dev.child_count(); ++c) {
          Node child = dev.child(c);
          if (child.tag() != "programming_model") continue;
          for (const std::string& pm :
               strings::split(child.attribute_or("type", ""), ',')) {
            if (pm.rfind("cuda", 0) == 0) {
              ++n;
              return;
            }
          }
        }
      });
  return n;
}

double Model::total_static_power_w(std::optional<Node> within) const {
  std::uint32_t start = within.has_value() ? within->index() : 0;
  // Prefer the composer's synthesized attribute on the subtree root.
  Node root_node(this, start);
  if (auto total = root_node.attribute(compose::kStaticPowerTotalAttr)) {
    if (auto v = strings::parse_double(*total); v.is_ok()) return v.value();
  }
  double sum = 0.0;
  for_each_in_subtree(start, [&](std::uint32_t i) {
    Node n(this, i);
    if (auto q = n.quantity("static_power"); q.is_ok()) {
      sum += q->si();
    }
  });
  return sum;
}

bool Model::has_installed(std::string_view type_prefix) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (str(nodes_[i].tag) != "installed") continue;
    Node n(this, i);
    if (n.type().rfind(type_prefix, 0) == 0) return true;
    // Also match the referenced descriptor's meta name after composition.
    if (n.name().rfind(type_prefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace xpdl::runtime
