#include "xpdl/runtime/model.h"

#include <algorithm>
#include <deque>

#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/strings.h"

namespace xpdl::runtime {

// ===========================================================================
// Node

std::string_view Node::tag() const noexcept {
  return model_->str(model_->nodes_[index_].tag);
}

std::optional<std::string_view> Node::attribute(
    std::string_view name) const noexcept {
  const Model::NodeData& n = model_->nodes_[index_];
  for (std::uint32_t i = 0; i < n.attr_count; ++i) {
    const Model::AttrData& a = model_->attrs_[n.attr_start + i];
    if (model_->str(a.key) == name) return model_->str(a.value);
  }
  return std::nullopt;
}

std::string_view Node::attribute_or(std::string_view name,
                                    std::string_view fallback) const noexcept {
  auto v = attribute(name);
  return v.has_value() ? *v : fallback;
}

std::string_view Node::id() const noexcept { return attribute_or("id", ""); }
std::string_view Node::name() const noexcept {
  return attribute_or("name", "");
}
std::string_view Node::type() const noexcept {
  return attribute_or("type", "");
}

Result<double> Node::number(std::string_view name) const {
  auto v = attribute(name);
  if (!v.has_value()) {
    return Status(ErrorCode::kNotFound,
                  "node <" + std::string(tag()) + "> has no attribute '" +
                      std::string(name) + "'");
  }
  return strings::parse_double(*v);
}

Result<units::Quantity> Node::quantity(std::string_view metric) const {
  auto v = attribute(metric);
  if (!v.has_value()) {
    return Status(ErrorCode::kNotFound,
                  "node <" + std::string(tag()) + "> has no metric '" +
                      std::string(metric) + "'");
  }
  std::string unit_attr = units::unit_attribute_name(metric);
  std::string_view unit = attribute_or(unit_attr, "");
  if (unit.empty()) {
    XPDL_ASSIGN_OR_RETURN(double num, strings::parse_double(*v));
    return units::Quantity(num, units::metric_dimension(metric));
  }
  return units::Quantity::parse(*v, unit, units::metric_dimension(metric));
}

std::size_t Node::child_count() const noexcept {
  return model_->nodes_[index_].child_count;
}

Node Node::child(std::size_t i) const noexcept {
  assert(i < child_count());
  return Node(model_, model_->nodes_[index_].first_child +
                          static_cast<std::uint32_t>(i));
}

std::optional<Node> Node::parent() const noexcept {
  std::uint32_t p = model_->nodes_[index_].parent;
  if (p == Model::kNoNode) return std::nullopt;
  return Node(model_, p);
}

std::optional<Node> Node::first(std::string_view tag) const noexcept {
  for (std::size_t i = 0; i < child_count(); ++i) {
    Node c = child(i);
    if (c.tag() == tag) return c;
  }
  return std::nullopt;
}

std::vector<Node> Node::children(std::string_view tag) const {
  std::vector<Node> out;
  for (std::size_t i = 0; i < child_count(); ++i) {
    Node c = child(i);
    if (c.tag() == tag) out.push_back(c);
  }
  return out;
}

// ===========================================================================
// Model construction

std::uint32_t Model::intern(std::string_view s) {
  if (auto it = intern_index_.find(s); it != intern_index_.end()) {
    return it->second;
  }
  auto idx = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  intern_index_.emplace(std::string(s), idx);
  return idx;
}

Result<Model> Model::from_xml(const xml::Element& root) {
  obs::Span span("runtime.build");
  Model m;
  // BFS layout: children of every node occupy one contiguous index range.
  std::deque<std::pair<const xml::Element*, std::uint32_t>> queue;
  queue.emplace_back(&root, kNoNode);
  while (!queue.empty()) {
    auto [elem, parent] = queue.front();
    queue.pop_front();
    auto index = static_cast<std::uint32_t>(m.nodes_.size());
    if (index == kNoNode) {
      return Status(ErrorCode::kInvalidArgument, "model too large");
    }
    NodeData node;
    node.tag = m.intern(elem->tag());
    node.parent = parent;
    node.attr_start = static_cast<std::uint32_t>(m.attrs_.size());
    node.attr_count = static_cast<std::uint32_t>(elem->attributes().size());
    for (const xml::Attribute& a : elem->attributes()) {
      m.attrs_.push_back(AttrData{m.intern(a.name.view()), m.intern(a.value)});
    }
    m.nodes_.push_back(node);
    if (parent != kNoNode) {
      NodeData& p = m.nodes_[parent];
      if (p.child_count == 0) p.first_child = index;
      ++p.child_count;
    }
    for (const auto& c : elem->children()) {
      queue.emplace_back(c.get(), index);
    }
  }
  // The BFS above assigns child indices only after all earlier levels,
  // but first_child is set when the first child is *popped*; since
  // children are pushed in order and popped contiguously, the range is
  // correct. Rebuild the id index last.
  m.build_id_index();
  XPDL_OBS_COUNT("runtime.nodes_built", m.nodes_.size());
  if (span.active()) span.arg("nodes", std::uint64_t{m.nodes_.size()});
  return m;
}

Result<Model> Model::from_composed(const compose::ComposedModel& composed) {
  return from_xml(composed.root());
}

void Model::build_id_index() {
  id_index_.clear();
  // Qualified dotted path from ids/names along the ancestry; bare unique
  // ids are indexed directly, ambiguous ones removed (fail closed).
  std::map<std::string, std::uint32_t, std::less<>> local;
  std::map<std::string, int, std::less<>> local_count;
  std::vector<std::string> paths(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node n(this, i);
    std::string_view ident = n.id();
    if (ident.empty()) ident = n.name();
    std::string path =
        nodes_[i].parent == kNoNode ? "" : paths[nodes_[i].parent];
    if (!ident.empty()) {
      if (!path.empty()) path += '.';
      path += ident;
      ++local_count[std::string(ident)];
      local.emplace(std::string(ident), i);
      id_index_.emplace(path, i);
    }
    paths[i] = std::move(path);
  }
  for (const auto& [ident, count] : local_count) {
    if (count == 1 && id_index_.find(ident) == id_index_.end()) {
      id_index_.emplace(ident, local[ident]);
    }
  }
  build_structure_index();
}

void Model::build_structure_index() {
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  preorder_nodes_.assign(n, 0);
  rank_of_.assign(n, 0);
  extent_.assign(n, 1);
  context_flags_.assign(n, 0);
  tag_index_.clear();
  if (n == 0) return;

  // Preorder (document-order) permutation. Children of a node occupy a
  // contiguous index range, pushed reversed so they pop in order.
  std::vector<std::uint32_t> stack = {0};
  std::uint32_t rank = 0;
  while (!stack.empty()) {
    std::uint32_t cur = stack.back();
    stack.pop_back();
    rank_of_[cur] = rank;
    preorder_nodes_[rank] = cur;
    ++rank;
    const NodeData& nd = nodes_[cur];
    for (std::uint32_t i = nd.child_count; i > 0; --i) {
      stack.push_back(nd.first_child + i - 1);
    }
  }

  // Subtree extents: every node's rank precedes its descendants', so a
  // reverse-rank sweep accumulates child extents before the parent is
  // folded into *its* parent. A subtree is then the contiguous rank
  // range [rank, rank + extent).
  for (std::uint32_t r = n; r > 0; --r) {
    std::uint32_t idx = preorder_nodes_[r - 1];
    std::uint32_t p = nodes_[idx].parent;
    if (p != kNoNode) extent_[p] += extent_[idx];
  }

  // Ancestor-context flags: in the BFS arena every parent index is
  // smaller than its children's, so one ascending pass propagates them.
  for (std::uint32_t i = 1; i < n; ++i) {
    std::uint32_t p = nodes_[i].parent;
    std::uint8_t flags = context_flags_[p];
    std::string_view ptag = str(nodes_[p].tag);
    if (ptag == "power_domain") flags |= kUnderPowerDomain;
    if (ptag == "device" || ptag == "gpu") flags |= kUnderAccelerator;
    context_flags_[i] = flags;
  }

  // Per-tag buckets, rank-sorted so a subtree's members form one
  // binary-searchable slice.
  for (std::uint32_t i = 0; i < n; ++i) {
    tag_index_[nodes_[i].tag].push_back(i);
  }
  for (auto& [tag, bucket] : tag_index_) {
    std::sort(bucket.begin(), bucket.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return rank_of_[a] < rank_of_[b];
              });
  }
}

const std::vector<std::uint32_t>* Model::tag_bucket(
    std::string_view tag) const noexcept {
  auto sid = intern_index_.find(tag);
  if (sid == intern_index_.end()) return nullptr;
  auto bucket = tag_index_.find(sid->second);
  return bucket == tag_index_.end() ? nullptr : &bucket->second;
}

Model::MemoryStats Model::memory_stats() const noexcept {
  MemoryStats stats;
  stats.node_bytes = nodes_.size() * sizeof(NodeData);
  stats.attribute_bytes = attrs_.size() * sizeof(AttrData);
  stats.string_count = strings_.size();
  for (const std::string& s : strings_) {
    stats.string_bytes += s.size() + 1;
  }
  return stats;
}

std::optional<Node> Model::find_by_id(std::string_view id) const {
  auto it = id_index_.find(id);
  if (it == id_index_.end()) return std::nullopt;
  return Node(this, it->second);
}

std::vector<Node> Model::find_all(std::string_view tag) const {
  std::vector<Node> out;
  const std::vector<std::uint32_t>* bucket = tag_bucket(tag);
  if (bucket == nullptr) return out;
  // Buckets are rank-sorted for subtree slicing; BFS order is ascending
  // node index, so re-sort the (typically short) match list.
  std::vector<std::uint32_t> indices = *bucket;
  std::sort(indices.begin(), indices.end());
  out.reserve(indices.size());
  for (std::uint32_t i : indices) out.emplace_back(this, i);
  return out;
}

std::vector<Node> Model::subtree(Node within) const {
  std::uint32_t r0 = rank_of_[within.index()];
  std::uint32_t r1 = r0 + extent_[within.index()];
  std::vector<Node> out;
  out.reserve(r1 - r0);
  for (std::uint32_t r = r0; r < r1; ++r) {
    out.emplace_back(this, preorder_nodes_[r]);
  }
  return out;
}

std::vector<Node> Model::subtree_with_tag(Node within,
                                              std::string_view tag) const {
  std::vector<Node> out;
  const std::vector<std::uint32_t>* bucket = tag_bucket(tag);
  if (bucket == nullptr) return out;
  std::uint32_t r0 = rank_of_[within.index()];
  std::uint32_t r1 = r0 + extent_[within.index()];
  auto lo = std::lower_bound(bucket->begin(), bucket->end(), r0,
                             [&](std::uint32_t idx, std::uint32_t r) {
                               return rank_of_[idx] < r;
                             });
  for (auto it = lo; it != bucket->end() && rank_of_[*it] < r1; ++it) {
    out.emplace_back(this, *it);
  }
  return out;
}

template <typename F>
void Model::for_each_in_subtree(std::uint32_t start, F&& fn) const {
  std::vector<std::uint32_t> stack = {start};
  while (!stack.empty()) {
    std::uint32_t cur = stack.back();
    stack.pop_back();
    fn(cur);
    const NodeData& n = nodes_[cur];
    for (std::uint32_t i = 0; i < n.child_count; ++i) {
      stack.push_back(n.first_child + i);
    }
  }
}

// ===========================================================================
// Analysis functions (API category 4) — hand-written per the paper; the
// attribute getters are generated, these are not.

std::size_t Model::count(std::string_view tag,
                         std::optional<Node> within) const {
  // Elements inside a <power_domain> are references to hardware, not
  // hardware (Listing 12); they must not inflate structural counts.
  const std::vector<std::uint32_t>* bucket = tag_bucket(tag);
  if (bucket == nullptr) return 0;
  std::uint32_t start = within.has_value() ? within->index() : 0;
  std::uint32_t r0 = rank_of_[start];
  std::uint32_t r1 = r0 + extent_[start];
  std::size_t n = 0;
  for (std::uint32_t idx : *bucket) {
    std::uint32_t r = rank_of_[idx];
    if (r < r0 || r >= r1) continue;
    if ((context_flags_[idx] & kUnderPowerDomain) != 0) continue;
    ++n;
  }
  return n;
}

std::size_t Model::count_cores(std::optional<Node> within) const {
  return count("core", within);
}

std::size_t Model::count_host_cores(std::optional<Node> within) const {
  const std::vector<std::uint32_t>* bucket = tag_bucket("core");
  if (bucket == nullptr) return 0;
  std::uint32_t start = within.has_value() ? within->index() : 0;
  std::uint32_t r0 = rank_of_[start];
  std::uint32_t r1 = r0 + extent_[start];
  constexpr std::uint8_t kExcluded = kUnderPowerDomain | kUnderAccelerator;
  std::size_t n = 0;
  for (std::uint32_t idx : *bucket) {
    std::uint32_t r = rank_of_[idx];
    if (r < r0 || r >= r1) continue;
    if ((context_flags_[idx] & kExcluded) != 0) continue;
    ++n;
  }
  return n;
}

std::size_t Model::count_devices(std::optional<Node> within) const {
  return count("device", within) + count("gpu", within);
}

std::size_t Model::count_cuda_devices(std::optional<Node> within) const {
  std::uint32_t start = within.has_value() ? within->index() : 0;
  std::uint32_t r0 = rank_of_[start];
  std::uint32_t r1 = r0 + extent_[start];
  std::size_t n = 0;
  auto count_bucket = [&](std::string_view tag) {
    const std::vector<std::uint32_t>* bucket = tag_bucket(tag);
    if (bucket == nullptr) return;
    for (std::uint32_t idx : *bucket) {
      std::uint32_t r = rank_of_[idx];
      if (r < r0 || r >= r1) continue;
      Node dev(this, idx);
      bool cuda = false;
      for (std::size_t c = 0; c < dev.child_count() && !cuda; ++c) {
        Node child = dev.child(c);
        if (child.tag() != "programming_model") continue;
        for (const std::string& pm :
             strings::split(child.attribute_or("type", ""), ',')) {
          if (pm.rfind("cuda", 0) == 0) {
            cuda = true;
            break;
          }
        }
      }
      if (cuda) ++n;
    }
  };
  count_bucket("device");
  count_bucket("gpu");
  return n;
}

double Model::total_static_power_w(std::optional<Node> within) const {
  std::uint32_t start = within.has_value() ? within->index() : 0;
  // Prefer the composer's synthesized attribute on the subtree root.
  Node root_node(this, start);
  if (auto total = root_node.attribute(compose::kStaticPowerTotalAttr)) {
    if (auto v = strings::parse_double(*total); v.is_ok()) return v.value();
  }
  double sum = 0.0;
  for_each_in_subtree(start, [&](std::uint32_t i) {
    Node n(this, i);
    if (auto q = n.quantity("static_power"); q.is_ok()) {
      sum += q->si();
    }
  });
  return sum;
}

bool Model::has_installed(std::string_view type_prefix) const {
  const std::vector<std::uint32_t>* bucket = tag_bucket("installed");
  if (bucket == nullptr) return false;
  for (std::uint32_t i : *bucket) {
    Node n(this, i);
    if (n.type().rfind(type_prefix, 0) == 0) return true;
    // Also match the referenced descriptor's meta name after composition.
    if (n.name().rfind(type_prefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace xpdl::runtime
