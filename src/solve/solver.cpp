#include "xpdl/solve/solve.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "xpdl/obs/metrics.h"

namespace xpdl::solve {
namespace {

using internal::Op;
using internal::Tape;
using internal::TapeNode;

// --- domains --------------------------------------------------------------

std::vector<double> sorted_unique(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

Domain Domain::interval(double lo, double hi) {
  Domain d;
  d.finite_ = false;
  d.bounds_ = lo <= hi ? Interval{lo, hi} : Interval::empty();
  return d;
}

Domain Domain::values(std::vector<double> values) {
  Domain d;
  d.finite_ = true;
  d.values_ = sorted_unique(std::move(values));
  d.bounds_ = d.values_.empty()
                  ? Interval::empty()
                  : Interval{d.values_.front(), d.values_.back()};
  return d;
}

Domain Domain::singleton(double v) { return values({v}); }

bool Domain::is_empty() const noexcept {
  return finite_ ? values_.empty() : bounds_.is_empty();
}

bool Domain::is_singleton() const noexcept {
  return finite_ ? values_.size() == 1 : bounds_.is_singleton();
}

double Domain::value() const noexcept {
  return finite_ ? values_.front() : bounds_.lo;
}

bool Domain::contains(double v) const noexcept {
  if (!finite_) return bounds_.contains(v);
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool Domain::restrict_to(Interval iv) {
  if (!finite_) {
    Interval narrowed = intersect(bounds_, iv);
    if (narrowed == bounds_) return false;
    bounds_ = narrowed;
    return true;
  }
  auto first = std::lower_bound(values_.begin(), values_.end(), iv.lo);
  auto last = std::upper_bound(first, values_.end(), iv.hi);
  if (first == values_.begin() && last == values_.end()) return false;
  values_.assign(first, last);
  bounds_ = values_.empty() ? Interval::empty()
                            : Interval{values_.front(), values_.back()};
  return true;
}

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kSat: return "sat";
    case Verdict::kUnsat: return "unsat";
    case Verdict::kValid: return "valid";
    case Verdict::kUnknown: return "unknown";
  }
  return "unknown";
}

// --- tape compilation -----------------------------------------------------

namespace {

bool op_may_error(Op op) {
  switch (op) {
    case Op::kDiv:
    case Op::kMod:
    case Op::kSqrt:
    case Op::kLog2:
    case Op::kPow:
    case Op::kError:
      return true;
    default:
      return false;
  }
}

std::int32_t emit(Tape& tape, TapeNode node) {
  if (op_may_error(node.op)) tape.may_error = true;
  tape.nodes.push_back(std::move(node));
  return static_cast<std::int32_t>(tape.nodes.size() - 1);
}

std::int32_t emit_error(Tape& tape, std::string message) {
  TapeNode n;
  n.op = Op::kError;
  n.text = std::move(message);
  return emit(tape, std::move(n));
}

std::int32_t compile_node(const expr::Node& n,
                          const std::vector<SolveVariable>& vars, Tape& tape) {
  switch (n.kind) {
    case expr::NodeKind::kNumber: {
      TapeNode t;
      t.op = Op::kNumber;
      t.number = n.number;
      return emit(tape, std::move(t));
    }
    case expr::NodeKind::kVariable: {
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].name == n.symbol) {
          TapeNode t;
          t.op = Op::kVariable;
          t.var = static_cast<std::int32_t>(i);
          auto idx = static_cast<std::int32_t>(i);
          if (std::find(tape.vars.begin(), tape.vars.end(), idx) ==
              tape.vars.end()) {
            tape.vars.push_back(idx);
          }
          return emit(tape, std::move(t));
        }
      }
      return emit_error(tape, "unbound variable " + n.symbol);
    }
    case expr::NodeKind::kUnaryOp: {
      std::int32_t child = compile_node(*n.children[0], vars, tape);
      TapeNode t;
      t.op = n.symbol == "-" ? Op::kNegate : Op::kNot;
      t.kids = {child};
      return emit(tape, std::move(t));
    }
    case expr::NodeKind::kBinaryOp: {
      std::int32_t a = compile_node(*n.children[0], vars, tape);
      std::int32_t b = compile_node(*n.children[1], vars, tape);
      TapeNode t;
      t.kids = {a, b};
      if (n.symbol == "+") t.op = Op::kAdd;
      else if (n.symbol == "-") t.op = Op::kSub;
      else if (n.symbol == "*") t.op = Op::kMul;
      else if (n.symbol == "/") t.op = Op::kDiv;
      else if (n.symbol == "%") t.op = Op::kMod;
      else if (n.symbol == "==") t.op = Op::kEq;
      else if (n.symbol == "!=") t.op = Op::kNe;
      else if (n.symbol == "<") t.op = Op::kLt;
      else if (n.symbol == "<=") t.op = Op::kLe;
      else if (n.symbol == ">") t.op = Op::kGt;
      else if (n.symbol == ">=") t.op = Op::kGe;
      else if (n.symbol == "&&") t.op = Op::kAnd;
      else if (n.symbol == "||") t.op = Op::kOr;
      else return emit_error(tape, "unknown operator " + n.symbol);
      return emit(tape, std::move(t));
    }
    case expr::NodeKind::kCall: {
      const std::size_t argc = n.children.size();
      auto fixed_arity = [&](Op op, std::size_t want) -> std::int32_t {
        if (argc != want) {
          return emit_error(
              tape, "function '" + n.symbol + "' expects " +
                        std::to_string(want) + " argument(s), got " +
                        std::to_string(argc));
        }
        TapeNode t;
        t.op = op;
        for (const auto& c : n.children) {
          t.kids.push_back(compile_node(*c, vars, tape));
        }
        return emit(tape, std::move(t));
      };
      if (n.symbol == "min" || n.symbol == "max") {
        if (argc == 0) {
          return emit_error(tape,
                            n.symbol + "() requires at least one argument");
        }
        TapeNode t;
        t.op = n.symbol == "min" ? Op::kMin : Op::kMax;
        for (const auto& c : n.children) {
          t.kids.push_back(compile_node(*c, vars, tape));
        }
        return emit(tape, std::move(t));
      }
      if (n.symbol == "abs") return fixed_arity(Op::kAbs, 1);
      if (n.symbol == "floor") return fixed_arity(Op::kFloor, 1);
      if (n.symbol == "ceil") return fixed_arity(Op::kCeil, 1);
      if (n.symbol == "round") return fixed_arity(Op::kRound, 1);
      if (n.symbol == "sqrt") return fixed_arity(Op::kSqrt, 1);
      if (n.symbol == "log2") return fixed_arity(Op::kLog2, 1);
      if (n.symbol == "pow") return fixed_arity(Op::kPow, 2);
      return emit_error(tape, "unknown function '" + n.symbol + "'");
    }
  }
  return emit_error(tape, "corrupt expression node");
}

// --- exact evaluation (mirrors expr::eval) --------------------------------

Result<double> eval_exact(const Tape& tape, std::int32_t idx,
                          const std::vector<double>& values) {
  const TapeNode& n = tape.nodes[idx];
  switch (n.op) {
    case Op::kNumber:
      return n.number;
    case Op::kVariable:
      return values[n.var];
    case Op::kNegate: {
      XPDL_ASSIGN_OR_RETURN(double v, eval_exact(tape, n.kids[0], values));
      return -v;
    }
    case Op::kNot: {
      XPDL_ASSIGN_OR_RETURN(double v, eval_exact(tape, n.kids[0], values));
      return v == 0.0 ? 1.0 : 0.0;
    }
    case Op::kAnd: {
      XPDL_ASSIGN_OR_RETURN(double a, eval_exact(tape, n.kids[0], values));
      if (a == 0.0) return 0.0;
      XPDL_ASSIGN_OR_RETURN(double b, eval_exact(tape, n.kids[1], values));
      return b != 0.0 ? 1.0 : 0.0;
    }
    case Op::kOr: {
      XPDL_ASSIGN_OR_RETURN(double a, eval_exact(tape, n.kids[0], values));
      if (a != 0.0) return 1.0;
      XPDL_ASSIGN_OR_RETURN(double b, eval_exact(tape, n.kids[1], values));
      return b != 0.0 ? 1.0 : 0.0;
    }
    case Op::kError:
      return Status(n.text.find("unknown function") != std::string::npos
                        ? ErrorCode::kUnresolvedRef
                        : n.text.rfind("unbound variable", 0) == 0
                              ? ErrorCode::kNotFound
                              : ErrorCode::kParseError,
                    n.text);
    default:
      break;
  }
  // Strict operators: evaluate every child first.
  double args[2] = {0.0, 0.0};
  double acc = 0.0;
  if (n.op == Op::kMin || n.op == Op::kMax) {
    for (std::size_t i = 0; i < n.kids.size(); ++i) {
      XPDL_ASSIGN_OR_RETURN(double v, eval_exact(tape, n.kids[i], values));
      if (i == 0) acc = v;
      else acc = n.op == Op::kMin ? std::min(acc, v) : std::max(acc, v);
    }
    return acc;
  }
  for (std::size_t i = 0; i < n.kids.size(); ++i) {
    XPDL_ASSIGN_OR_RETURN(args[i], eval_exact(tape, n.kids[i], values));
  }
  const double a = args[0];
  const double b = args[1];
  switch (n.op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv:
      if (b == 0.0) {
        return Status(ErrorCode::kConstraintViolation,
                      "division by zero in expression");
      }
      return a / b;
    case Op::kMod:
      if (b == 0.0) {
        return Status(ErrorCode::kConstraintViolation,
                      "modulo by zero in expression");
      }
      return std::fmod(a, b);
    case Op::kEq: return a == b ? 1.0 : 0.0;
    case Op::kNe: return a != b ? 1.0 : 0.0;
    case Op::kLt: return a < b ? 1.0 : 0.0;
    case Op::kLe: return a <= b ? 1.0 : 0.0;
    case Op::kGt: return a > b ? 1.0 : 0.0;
    case Op::kGe: return a >= b ? 1.0 : 0.0;
    case Op::kAbs: return std::fabs(a);
    case Op::kFloor: return std::floor(a);
    case Op::kCeil: return std::ceil(a);
    case Op::kRound: return std::round(a);
    case Op::kSqrt:
      if (a < 0) {
        return Status(ErrorCode::kConstraintViolation,
                      "sqrt of negative value");
      }
      return std::sqrt(a);
    case Op::kLog2:
      if (a <= 0) {
        return Status(ErrorCode::kConstraintViolation,
                      "log2 of non-positive value");
      }
      return std::log2(a);
    case Op::kPow:
      return std::pow(a, b);
    default:
      return Status(ErrorCode::kInternal, "corrupt tape node");
  }
}

// --- forward interval evaluation ------------------------------------------

/// Interval value of a subexpression over a box, plus whether any point
/// of the box can make its exact evaluation fail.
struct FwdVal {
  Interval iv = Interval::empty();
  bool err = false;
};

bool definitely_true(const FwdVal& v) {
  return !v.err && !v.iv.is_empty() && !v.iv.contains(0.0);
}
bool definitely_false(const FwdVal& v) {
  return !v.err && v.iv == Interval::singleton(0.0);
}

/// Truth of the *defined* values only (error points tracked separately).
bool val_true(Interval iv) { return !iv.is_empty() && !iv.contains(0.0); }
bool val_false(Interval iv) { return iv == Interval::singleton(0.0); }

/// Truth interval from a known-boolean outcome.
Interval bool_iv(bool can_be_false, bool can_be_true) {
  if (can_be_false && can_be_true) return {0.0, 1.0};
  if (can_be_true) return Interval::singleton(1.0);
  if (can_be_false) return Interval::singleton(0.0);
  return Interval::empty();
}

void forward_eval(const Tape& tape, const std::vector<Interval>& box,
                  std::vector<FwdVal>& out) {
  out.resize(tape.nodes.size());
  // Children always precede their parent in the tape (post-order emit).
  for (std::size_t i = 0; i < tape.nodes.size(); ++i) {
    const TapeNode& n = tape.nodes[i];
    FwdVal r;
    auto kid = [&](std::size_t k) -> const FwdVal& { return out[n.kids[k]]; };
    switch (n.op) {
      case Op::kNumber:
        r.iv = Interval::singleton(n.number);
        break;
      case Op::kVariable:
        r.iv = box[n.var];
        break;
      case Op::kNegate:
        r.iv = neg(kid(0).iv);
        r.err = kid(0).err;
        break;
      case Op::kNot: {
        const FwdVal& c = kid(0);
        r.err = c.err;
        if (c.iv.is_empty()) r.iv = Interval::empty();
        else if (val_false(c.iv)) r.iv = Interval::singleton(1.0);
        else if (val_true(c.iv)) r.iv = Interval::singleton(0.0);
        else r.iv = {0.0, 1.0};
        break;
      }
      case Op::kAdd:
        r.iv = add(kid(0).iv, kid(1).iv);
        r.err = kid(0).err || kid(1).err;
        break;
      case Op::kSub:
        r.iv = sub(kid(0).iv, kid(1).iv);
        r.err = kid(0).err || kid(1).err;
        break;
      case Op::kMul:
        r.iv = mul(kid(0).iv, kid(1).iv);
        r.err = kid(0).err || kid(1).err;
        break;
      case Op::kDiv:
        r.iv = div(kid(0).iv, kid(1).iv);
        r.err = kid(0).err || kid(1).err || kid(1).iv.contains(0.0);
        break;
      case Op::kMod:
        r.iv = mod(kid(0).iv, kid(1).iv);
        r.err = kid(0).err || kid(1).err || kid(1).iv.contains(0.0);
        break;
      case Op::kEq: {
        Interval a = kid(0).iv;
        Interval b = kid(1).iv;
        r.err = kid(0).err || kid(1).err;
        if (a.is_empty() || b.is_empty()) r.iv = Interval::empty();
        else if (intersect(a, b).is_empty()) r.iv = Interval::singleton(0.0);
        else if (a.is_singleton() && b.is_singleton() && a.lo == b.lo)
          r.iv = Interval::singleton(1.0);
        else r.iv = {0.0, 1.0};
        break;
      }
      case Op::kNe: {
        Interval a = kid(0).iv;
        Interval b = kid(1).iv;
        r.err = kid(0).err || kid(1).err;
        if (a.is_empty() || b.is_empty()) r.iv = Interval::empty();
        else if (intersect(a, b).is_empty()) r.iv = Interval::singleton(1.0);
        else if (a.is_singleton() && b.is_singleton() && a.lo == b.lo)
          r.iv = Interval::singleton(0.0);
        else r.iv = {0.0, 1.0};
        break;
      }
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        Interval a = kid(0).iv;
        Interval b = kid(1).iv;
        if (n.op == Op::kGt || n.op == Op::kGe) std::swap(a, b);
        const bool strict = n.op == Op::kLt || n.op == Op::kGt;
        r.err = kid(0).err || kid(1).err;
        if (a.is_empty() || b.is_empty()) {
          r.iv = Interval::empty();
        } else {
          // Now deciding a < b (strict) or a <= b.
          const bool always = strict ? a.hi < b.lo : a.hi <= b.lo;
          const bool never = strict ? a.lo >= b.hi : a.lo > b.hi;
          r.iv = always ? Interval::singleton(1.0)
                        : never ? Interval::singleton(0.0)
                                : Interval{0.0, 1.0};
        }
        break;
      }
      case Op::kAnd: {
        // Short-circuit semantics: b runs only where a is defined and
        // truthy. An empty side means "always errors when evaluated".
        const FwdVal& a = kid(0);
        const FwdVal& b = kid(1);
        if (a.iv.is_empty()) {
          r.iv = Interval::empty();
          r.err = true;
        } else if (val_false(a.iv)) {
          r.iv = Interval::singleton(0.0);  // b never runs on defined points
          r.err = a.err;
        } else {
          const bool can_true = !b.iv.is_empty() && !val_false(b.iv);
          const bool can_false =
              a.iv.contains(0.0) || (!b.iv.is_empty() && b.iv.contains(0.0));
          r.err = a.err || b.err || b.iv.is_empty();
          r.iv = bool_iv(can_false, can_true);
        }
        break;
      }
      case Op::kOr: {
        const FwdVal& a = kid(0);
        const FwdVal& b = kid(1);
        if (a.iv.is_empty()) {
          r.iv = Interval::empty();
          r.err = true;
        } else if (val_true(a.iv)) {
          r.iv = Interval::singleton(1.0);  // b never runs on defined points
          r.err = a.err;
        } else {
          const bool can_true =
              !val_false(a.iv) || (!b.iv.is_empty() && !val_false(b.iv));
          const bool can_false =
              a.iv.contains(0.0) && !b.iv.is_empty() && b.iv.contains(0.0);
          r.err = a.err ||
                  (a.iv.contains(0.0) && (b.err || b.iv.is_empty()));
          r.iv = bool_iv(can_false, can_true);
        }
        break;
      }
      case Op::kMin:
      case Op::kMax: {
        r = kid(0);
        for (std::size_t k = 1; k < n.kids.size(); ++k) {
          r.iv = n.op == Op::kMin ? min(r.iv, kid(k).iv)
                                  : max(r.iv, kid(k).iv);
          r.err = r.err || kid(k).err;
        }
        break;
      }
      case Op::kAbs:
        r.iv = abs(kid(0).iv);
        r.err = kid(0).err;
        break;
      case Op::kFloor:
        r.iv = floor(kid(0).iv);
        r.err = kid(0).err;
        break;
      case Op::kCeil:
        r.iv = ceil(kid(0).iv);
        r.err = kid(0).err;
        break;
      case Op::kRound:
        r.iv = round(kid(0).iv);
        r.err = kid(0).err;
        break;
      case Op::kSqrt:
        r.iv = sqrt(kid(0).iv);
        r.err = kid(0).err || kid(0).iv.lo < 0.0;
        break;
      case Op::kLog2:
        r.iv = log2(kid(0).iv);
        r.err = kid(0).err || kid(0).iv.lo <= 0.0;
        break;
      case Op::kPow:
        r.iv = pow(kid(0).iv, kid(1).iv);
        r.err = kid(0).err || kid(1).err || kid(0).iv.lo < 0.0;
        break;
      case Op::kError:
        r.iv = Interval::whole();
        r.err = true;
        break;
    }
    // Invariant: an empty value set means evaluation cannot succeed there.
    if (r.iv.is_empty()) r.err = true;
    out[i] = r;
  }
}

// --- backward projection (HC4 revise) -------------------------------------
//
// Narrows the box so it keeps every point where the root's *value* meets
// the requirement. Error points carry no value, so backward projection
// may prune them; callers only run it in contexts where that is sound
// (an error point never satisfies a constraint).

struct Reviser {
  const Tape& tape;
  const std::vector<FwdVal>& fwd;
  std::vector<Interval>& box;
  bool conflict = false;

  /// Magnitude scale of an interval's finite bounds (0 when none).
  static double mag(Interval iv) noexcept {
    double m = 0.0;
    if (std::isfinite(iv.lo)) m = std::max(m, std::fabs(iv.lo));
    if (std::isfinite(iv.hi)) m = std::max(m, std::fabs(iv.hi));
    return m;
  }

  /// Outward widening of a backward-projected requirement. The forward
  /// tape evaluates in round-to-nearest doubles, so inverting it with
  /// the same arithmetic can miss the true preimage by a few ulps of
  /// the *intermediate* magnitudes (requiring x from `c - x = r`
  /// round-trips through |c|, which may dwarf |x|). Pruning may only
  /// drop points that definitely violate the constraint, so pad the
  /// requirement by a relative epsilon of every involved magnitude —
  /// the exact evaluator has the final word at any single point anyway.
  static Interval widen(Interval r, double scale) noexcept {
    if (r.is_empty()) return r;
    const double eps = 16.0 * std::numeric_limits<double>::epsilon() *
                           std::max(mag(r), scale) +
                       std::numeric_limits<double>::denorm_min();
    return {r.lo - eps, r.hi + eps};
  }

  void narrow_var(std::int32_t var, Interval req) {
    Interval n = intersect(box[var], req);
    if (n.is_empty()) conflict = true;
    box[var] = n;
  }

  /// Requires node `idx`'s value to lie in `req`.
  void narrow_num(std::int32_t idx, Interval req) {
    if (conflict) return;
    const TapeNode& n = tape.nodes[idx];
    Interval cur = intersect(fwd[idx].iv, req);
    if (cur.is_empty()) {
      // No defined value of this subtree meets the requirement. Without
      // possible error points that is a contradiction; with them, the
      // subtree can still "evaluate" to an error — not a value conflict
      // we can act on, but any surviving point fails the constraint
      // anyway, so pruning the box to empty stays sound here.
      conflict = true;
      return;
    }
    switch (n.op) {
      case Op::kVariable:
        narrow_var(n.var, cur);
        return;
      case Op::kNegate:
        narrow_num(n.kids[0], neg(cur));
        return;
      case Op::kAdd: {
        const Interval l = fwd[n.kids[0]].iv;
        const Interval r = fwd[n.kids[1]].iv;
        narrow_num(n.kids[0], widen(sub(cur, r), std::max(mag(cur), mag(r))));
        narrow_num(n.kids[1], widen(sub(cur, l), std::max(mag(cur), mag(l))));
        return;
      }
      case Op::kSub: {
        const Interval l = fwd[n.kids[0]].iv;
        const Interval r = fwd[n.kids[1]].iv;
        narrow_num(n.kids[0], widen(add(cur, r), std::max(mag(cur), mag(r))));
        narrow_num(n.kids[1], widen(sub(l, cur), std::max(mag(cur), mag(l))));
        return;
      }
      case Op::kMul: {
        Interval a = widen(div(cur, fwd[n.kids[1]].iv), 0.0);
        Interval b = widen(div(cur, fwd[n.kids[0]].iv), 0.0);
        // Extended division yields the whole line (no information) when
        // the divisor straddles zero; 0/0 additionally loses the zero
        // solution, so only narrow through a non-zero-straddling factor.
        if (!fwd[n.kids[1]].iv.contains(0.0)) narrow_num(n.kids[0], a);
        if (!fwd[n.kids[0]].iv.contains(0.0)) narrow_num(n.kids[1], b);
        return;
      }
      case Op::kDiv:
        narrow_num(n.kids[0], widen(mul(cur, fwd[n.kids[1]].iv), 0.0));
        if (!cur.contains(0.0)) {
          narrow_num(n.kids[1], widen(div(fwd[n.kids[0]].iv, cur), 0.0));
        }
        return;
      case Op::kAbs: {
        if (cur.hi < 0.0) {
          conflict = true;
          return;
        }
        Interval pos = intersect(cur, {0.0, cur.hi});
        narrow_num(n.kids[0], hull(pos, neg(pos)));
        return;
      }
      case Op::kSqrt: {
        Interval pos = intersect(cur, {0.0, cur.hi});
        if (pos.is_empty()) {
          conflict = true;
          return;
        }
        narrow_num(n.kids[0], widen({pos.lo * pos.lo, pos.hi * pos.hi}, 0.0));
        return;
      }
      case Op::kLog2:
        narrow_num(n.kids[0], widen({std::exp2(cur.lo), std::exp2(cur.hi)}, 0.0));
        return;
      case Op::kFloor:
        narrow_num(n.kids[0], {cur.lo, cur.hi + 1.0});
        return;
      case Op::kCeil:
        narrow_num(n.kids[0], {cur.lo - 1.0, cur.hi});
        return;
      case Op::kRound:
        narrow_num(n.kids[0], {cur.lo - 0.5, cur.hi + 0.5});
        return;
      case Op::kMin:
        for (std::int32_t k : n.kids) {
          narrow_num(k, {cur.lo, std::numeric_limits<double>::infinity()});
        }
        return;
      case Op::kMax:
        for (std::int32_t k : n.kids) {
          narrow_num(k, {-std::numeric_limits<double>::infinity(), cur.hi});
        }
        return;
      default:
        return;  // kNumber (already consistent), kMod, kPow, kError, bools
    }
  }

  /// Requires node `idx` to be truthy (`want` = true) or falsy.
  void require(std::int32_t idx, bool want) {
    if (conflict) return;
    const TapeNode& n = tape.nodes[idx];
    const FwdVal& v = fwd[idx];
    if (want ? definitely_false(v) : definitely_true(v)) {
      conflict = true;
      return;
    }
    switch (n.op) {
      case Op::kNot:
        require(n.kids[0], !want);
        return;
      case Op::kAnd:
        if (want) {
          require(n.kids[0], true);
          require(n.kids[1], true);
        } else {
          if (definitely_true(fwd[n.kids[0]])) require(n.kids[1], false);
          else if (definitely_true(fwd[n.kids[1]])) require(n.kids[0], false);
        }
        return;
      case Op::kOr:
        if (want) {
          if (definitely_false(fwd[n.kids[0]])) require(n.kids[1], true);
          else if (definitely_false(fwd[n.kids[1]])) require(n.kids[0], true);
        } else {
          require(n.kids[0], false);
          require(n.kids[1], false);
        }
        return;
      case Op::kEq:
      case Op::kNe: {
        const bool eq = (n.op == Op::kEq) == want;
        if (eq) {
          Interval m = intersect(fwd[n.kids[0]].iv, fwd[n.kids[1]].iv);
          if (m.is_empty()) {
            conflict = true;
            return;
          }
          narrow_num(n.kids[0], m);
          narrow_num(n.kids[1], m);
        }
        return;  // disequality: an interval cannot exclude one point
      }
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        std::int32_t a = n.kids[0];
        std::int32_t b = n.kids[1];
        bool le = n.op == Op::kLt || n.op == Op::kLe;  // a <(=) b form
        if (n.op == Op::kGt || n.op == Op::kGe) le = false;
        bool holds = want;
        // Normalize to: a <= b must `holds` (strictness is relaxed to the
        // closed form — sound, just slightly less tight).
        if (!le) {
          std::swap(a, b);
        }
        const double inf = std::numeric_limits<double>::infinity();
        if (holds) {
          narrow_num(a, {-inf, fwd[b].iv.hi});
          narrow_num(b, {fwd[a].iv.lo, inf});
        } else {  // a > b (relaxed: a >= b)
          narrow_num(a, {fwd[b].iv.lo, inf});
          narrow_num(b, {-inf, fwd[a].iv.hi});
        }
        return;
      }
      default:
        // Numeric node used as a boolean: falsy pins it to zero; truthy
        // cannot be represented as one interval (it would need a hole).
        if (!want) narrow_num(idx, Interval::singleton(0.0));
        return;
    }
  }
};

// --- search ---------------------------------------------------------------

constexpr std::size_t kMaxMaskVars = 64;
constexpr std::size_t kMaxNogoods = 4096;
constexpr int kMaxPropagationRounds = 64;

enum class Goal : std::uint8_t {
  kSatisfy,         ///< point where all active constraints hold
  kCounterexample,  ///< active constraints hold, target false or errors
  kFindError,       ///< point where target fails to evaluate
};

struct Search {
  const Problem& p;
  const Solver::Options& opt;
  Goal goal;
  std::vector<std::uint8_t> active;  ///< per-constraint: propagate + check
  std::int32_t target = -1;          ///< kCounterexample / kFindError
  bool target_error_free = false;    ///< target tape has no partial ops

  SolveStats stats;
  bool out_of_budget = false;
  bool inexact = false;  ///< a continuous box was abandoned unresolved
  bool found = false;
  std::vector<double> found_point;
  std::string found_error;

  /// Per-variable mask of the decision variables its current domain
  /// depends on (coarse CBJ explanations; only tracked for <= 64 vars).
  bool track_masks = false;
  std::vector<std::uint64_t> deps;

  struct Nogood {
    std::vector<std::pair<std::int32_t, double>> assignment;  // sorted by var
  };
  std::vector<Nogood> nogoods;
  std::vector<std::pair<std::int32_t, double>> trail;  ///< decisions, in order

  std::vector<FwdVal> fwd_scratch;

  explicit Search(const Problem& problem, const Solver::Options& options,
                  Goal g)
      : p(problem), opt(options), goal(g) {
    active.assign(p.constraint_count(), 1);
    track_masks = p.variables().size() <= kMaxMaskVars;
    deps.assign(p.variables().size(), 0);
  }

  std::uint64_t vars_mask(const std::vector<std::int32_t>& vars) const {
    std::uint64_t m = 0;
    if (!track_masks) return ~0ULL;
    for (std::int32_t v : vars) m |= deps[v];
    return m;
  }

  /// One HC4 revision of constraint `c` over `domains`. Returns false on
  /// conflict; sets `*narrowed` if any domain changed.
  bool revise(std::size_t c, std::vector<Domain>& domains, bool require_true,
              bool* narrowed) {
    const Tape& tape = p.tape(c);
    std::vector<Interval> box(domains.size());
    for (std::size_t i = 0; i < domains.size(); ++i) {
      box[i] = domains[i].bounds();
    }
    forward_eval(tape, box, fwd_scratch);
    ++stats.propagations;
    const FwdVal& root = fwd_scratch[tape.root];
    if (require_true) {
      // A point satisfies only with an exact, nonzero value: a root whose
      // defined values are all zero — or that has none — conflicts even
      // if some points error instead (errors never satisfy either).
      if (root.iv.is_empty() || root.iv == Interval::singleton(0.0)) {
        return false;
      }
    } else if (definitely_true(root)) {
      return false;
    }
    Reviser rev{tape, fwd_scratch, box};
    rev.require(tape.root, require_true);
    if (rev.conflict) return false;
    for (std::int32_t v : tape.vars) {
      if (domains[v].restrict_to(box[v])) {
        *narrowed = true;
        if (track_masks) {
          std::uint64_t m = deps[v];
          for (std::int32_t u : tape.vars) m |= deps[u];
          deps[v] = m;
        }
        if (domains[v].is_empty()) return false;
      }
    }
    return true;
  }

  /// Propagation fixpoint over all applicable constraints. Returns the
  /// conflict mask on failure, 0 on success (`*failed` distinguishes).
  std::uint64_t propagate(std::vector<Domain>& domains, bool* failed) {
    *failed = false;
    for (int round = 0; round < kMaxPropagationRounds; ++round) {
      bool narrowed = false;
      for (std::size_t c = 0; c < p.constraint_count(); ++c) {
        if (!active[c]) continue;
        if (!revise(c, domains, /*require_true=*/true, &narrowed)) {
          *failed = true;
          return vars_mask(p.constraint_variables(c)) |
                 (track_masks ? 0 : ~0ULL);
        }
      }
      if (goal == Goal::kCounterexample && target_error_free) {
        // The counterexample point must make the target false; narrowing
        // by value is sound only when the target cannot error.
        if (!revise(static_cast<std::size_t>(target), domains,
                    /*require_true=*/false, &narrowed)) {
          *failed = true;
          return vars_mask(p.constraint_variables(target));
        }
      }
      if (!narrowed) break;
    }
    return 0;
  }

  /// Box-level pruning tests specific to the goal. Returns true (and the
  /// mask) when the box provably contains no goal point.
  bool prune_box(std::vector<Domain>& domains, std::uint64_t* mask) {
    if (goal == Goal::kCounterexample || goal == Goal::kFindError) {
      const Tape& tape = p.tape(target);
      std::vector<Interval> box(domains.size());
      for (std::size_t i = 0; i < domains.size(); ++i) {
        box[i] = domains[i].bounds();
      }
      forward_eval(tape, box, fwd_scratch);
      const FwdVal& root = fwd_scratch[tape.root];
      if (goal == Goal::kCounterexample) {
        // Definitely true and error-free everywhere: no counterexample.
        if (definitely_true(root) && !root.err) {
          *mask = vars_mask(tape.vars);
          return true;
        }
      } else {
        if (!root.err) {  // no point of this box can fail to evaluate
          *mask = vars_mask(tape.vars);
          return true;
        }
      }
    }
    return false;
  }

  /// Checks the fully-assigned point. Returns true if it is a goal point
  /// (search stops); otherwise fills the conflict mask.
  bool check_leaf(const std::vector<Domain>& domains, std::uint64_t* mask,
                  bool* leaf_exact) {
    std::vector<double> point(domains.size());
    *leaf_exact = true;
    for (std::size_t i = 0; i < domains.size(); ++i) {
      point[i] = domains[i].is_finite() ? domains[i].value()
                                        : domains[i].bounds().midpoint();
      if (!domains[i].is_finite() && !domains[i].bounds().is_singleton()) {
        *leaf_exact = false;  // midpoint sample of a continuous interval
      }
    }
    auto fail_constraint = [&](std::size_t c) {
      *mask = vars_mask(p.constraint_variables(c));
    };
    if (goal == Goal::kFindError) {
      auto r = eval_exact(p.tape(target), p.tape(target).root, point);
      if (!r.is_ok()) {
        found = true;
        found_point = std::move(point);
        found_error = r.status().message();
        return true;
      }
      fail_constraint(target);
      return false;
    }
    for (std::size_t c = 0; c < p.constraint_count(); ++c) {
      if (!active[c]) continue;
      auto r = eval_exact(p.tape(c), p.tape(c).root, point);
      if (!r.is_ok() || *r == 0.0) {
        fail_constraint(c);
        return false;
      }
    }
    if (goal == Goal::kCounterexample) {
      auto r = eval_exact(p.tape(target), p.tape(target).root, point);
      if (r.is_ok() && *r != 0.0) {
        fail_constraint(target);
        return false;
      }
      found = true;
      found_point = std::move(point);
      if (!r.is_ok()) found_error = r.status().message();
      return true;
    }
    found = true;
    found_point = std::move(point);
    return true;
  }

  std::int32_t pick_branch_variable(const std::vector<Domain>& domains) {
    std::int32_t best = -1;
    std::size_t best_size = SIZE_MAX;
    for (std::size_t i = 0; i < domains.size(); ++i) {
      const Domain& d = domains[i];
      if (!d.is_finite() || d.size() <= 1) continue;
      if (d.size() < best_size) {
        best = static_cast<std::int32_t>(i);
        best_size = d.size();
      }
    }
    if (best >= 0) return best;
    double best_width = opt.epsilon;
    for (std::size_t i = 0; i < domains.size(); ++i) {
      const Domain& d = domains[i];
      if (d.is_finite()) continue;
      if (d.bounds().width() > best_width) {
        best = static_cast<std::int32_t>(i);
        best_width = d.bounds().width();
      }
    }
    return best;
  }

  /// Returns true when a stored nogood is a subset of the trail plus
  /// (var, value); `*mask_out` then holds the decision variables the
  /// refutation depends on — every variable of the matched nogood's
  /// assignment plus its dependency set — so the caller can charge the
  /// skipped value to the ancestors the nogood was learned from.
  bool matches_nogood(std::int32_t var, double value,
                      std::uint64_t* mask_out) {
    if (nogoods.empty()) return false;
    // The candidate assignment is the trail plus (var, value); a nogood
    // matches when it is a subset of that.
    auto assigned = [&](std::int32_t v, double* out) {
      if (v == var) {
        *out = value;
        return true;
      }
      for (const auto& [tv, tval] : trail) {
        if (tv == v) {
          *out = tval;
          return true;
        }
      }
      return false;
    };
    for (const Nogood& ng : nogoods) {
      bool subset = true;
      for (const auto& [v, val] : ng.assignment) {
        double cur = 0.0;
        if (!assigned(v, &cur) || cur != val) {
          subset = false;
          break;
        }
      }
      if (subset) {
        ++stats.nogood_hits;
        // Nogoods only exist when track_masks, so every assignment
        // variable fits in the mask and is on the trail (or is `var`).
        std::uint64_t m = 0;
        for (const auto& [v, val] : ng.assignment) {
          m |= (1ULL << v) | deps[v];
        }
        *mask_out = m;
        return true;
      }
    }
    return false;
  }

  void learn_nogood(std::uint64_t mask, std::int32_t branch_var) {
    if (!opt.learn_nogoods || !track_masks) return;
    if (nogoods.size() >= kMaxNogoods) return;
    Nogood ng;
    for (const auto& [v, val] : trail) {
      if (v != branch_var && (mask & (1ULL << v)) != 0) {
        ng.assignment.emplace_back(v, val);
      }
    }
    if (ng.assignment.empty()) return;
    ++stats.nogoods;
    nogoods.push_back(std::move(ng));
  }

  /// Branch-and-prune. Returns the conflict mask of the subtree (the
  /// decision variables the failure depends on); 0 with `found` set on
  /// success; anything with `out_of_budget` on abort.
  std::uint64_t search(std::vector<Domain> domains) {
    if (++stats.nodes > opt.max_nodes) {
      out_of_budget = true;
      return ~0ULL;
    }
    // An empty domain (possible only via Problem::add_variable with an
    // empty value set — propagation and branching never produce one) is
    // an immediate conflict; without this check pick_branch_variable
    // would treat it as assigned and check_leaf would read a value from
    // an empty vector.
    for (std::size_t i = 0; i < domains.size(); ++i) {
      if (domains[i].is_empty()) return track_masks ? deps[i] : ~0ULL;
    }
    bool failed = false;
    std::uint64_t mask = propagate(domains, &failed);
    if (failed) return mask;
    if (prune_box(domains, &mask)) return mask;
    const std::int32_t var = pick_branch_variable(domains);
    if (var < 0) {
      bool leaf_exact = true;
      if (check_leaf(domains, &mask, &leaf_exact)) return 0;
      if (!leaf_exact) inexact = true;
      return mask;
    }
    ++stats.splits;
    const Domain& d = domains[var];
    if (!d.is_finite()) {
      // Bisect a continuous interval; conflicts union, no value nogoods.
      Interval b = d.bounds();
      const double mid = b.midpoint();
      std::uint64_t acc = 0;
      const std::uint64_t saved = track_masks ? deps[var] : 0;
      for (int half = 0; half < 2; ++half) {
        std::vector<Domain> child = domains;
        child[var] = half == 0 ? Domain::interval(b.lo, mid)
                               : Domain::interval(mid, b.hi);
        if (track_masks) deps[var] = saved | (1ULL << var);
        std::uint64_t m = search(std::move(child));
        if (found || out_of_budget) return m;
        acc |= m;
      }
      if (track_masks) deps[var] = saved;
      return acc;
    }
    const std::vector<double> values = d.finite_values();
    std::uint64_t acc = 0;
    const std::uint64_t bit = track_masks ? 1ULL << var : ~0ULL;
    std::uint64_t saved_dep = track_masks ? deps[var] : 0;
    for (double value : values) {
      if (opt.learn_nogoods) {
        std::uint64_t skip_mask = 0;
        if (matches_nogood(var, value, &skip_mask)) {
          // The skip is a refutation that depends on the nogood's
          // ancestor decisions: without them in `acc` the backjump
          // below could leap past a decision this subtree relied on.
          acc |= skip_mask;
          continue;
        }
      }
      std::vector<Domain> child = domains;
      child[var] = Domain::singleton(value);
      if (track_masks) deps[var] = saved_dep | bit;
      trail.emplace_back(var, value);
      std::uint64_t m = search(std::move(child));
      trail.pop_back();
      if (found || out_of_budget) return m;
      if (track_masks && (m & bit) == 0) {
        // The conflict does not involve this decision: every sibling
        // value fails the same way — backjump past this variable.
        if (track_masks) deps[var] = saved_dep;
        return m;
      }
      acc |= m;
    }
    if (track_masks) deps[var] = saved_dep;
    acc &= ~bit;
    learn_nogood(acc | bit, var);
    return acc;
  }
};

std::vector<std::pair<std::string, double>> witness_of(
    const Problem& p, const std::vector<double>& point) {
  std::vector<std::pair<std::string, double>> w;
  w.reserve(point.size());
  for (std::size_t i = 0; i < point.size(); ++i) {
    w.emplace_back(p.variables()[i].name, point[i]);
  }
  return w;
}

void record_obs(const SolveStats& stats, Verdict verdict) {
  XPDL_OBS_COUNT("solve.queries", 1);
  XPDL_OBS_COUNT("solve.propagations",
                 static_cast<std::int64_t>(stats.propagations));
  XPDL_OBS_COUNT("solve.splits", static_cast<std::int64_t>(stats.splits));
  XPDL_OBS_COUNT("solve.nogoods", static_cast<std::int64_t>(stats.nogoods));
  XPDL_OBS_COUNT("solve.nogood_hits",
                 static_cast<std::int64_t>(stats.nogood_hits));
  switch (verdict) {
    case Verdict::kSat: XPDL_OBS_COUNT("solve.verdict.sat", 1); break;
    case Verdict::kUnsat: XPDL_OBS_COUNT("solve.verdict.unsat", 1); break;
    case Verdict::kValid: XPDL_OBS_COUNT("solve.verdict.valid", 1); break;
    case Verdict::kUnknown: XPDL_OBS_COUNT("solve.verdict.unknown", 1); break;
  }
}

std::vector<Domain> initial_domains(const Problem& p) {
  std::vector<Domain> domains;
  domains.reserve(p.variables().size());
  for (const SolveVariable& v : p.variables()) domains.push_back(v.domain);
  return domains;
}

/// One satisfiability run with a constraint activation mask.
Outcome run_satisfiable(const Problem& p, const Solver::Options& opt,
                        const std::vector<std::uint8_t>& active_mask) {
  Search s(p, opt, Goal::kSatisfy);
  s.active = active_mask;
  s.search(initial_domains(p));
  Outcome out;
  out.stats = s.stats;
  if (s.found) {
    out.verdict = Verdict::kSat;
    out.witness = witness_of(p, s.found_point);
  } else if (s.out_of_budget || s.inexact) {
    out.verdict = Verdict::kUnknown;
  } else {
    out.verdict = Verdict::kUnsat;
    for (std::size_t c = 0; c < p.constraint_count(); ++c) {
      if (active_mask[c]) out.conflict_core.push_back(c);
    }
  }
  return out;
}

}  // namespace

// --- Problem --------------------------------------------------------------

std::size_t Problem::add_variable(std::string name, Domain domain) {
  vars_.push_back(SolveVariable{std::move(name), std::move(domain)});
  return vars_.size() - 1;
}

std::int32_t Problem::find_variable(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

std::size_t Problem::add_constraint(const expr::Expression& expression) {
  Tape tape;
  tape.source = expression.source();
  tape.root = compile_node(expression.root(), vars_, tape);
  std::sort(tape.vars.begin(), tape.vars.end());
  tapes_.push_back(std::move(tape));
  return tapes_.size() - 1;
}

Result<bool> Problem::eval_constraint(std::size_t c,
                                      const std::vector<double>& values) const {
  XPDL_ASSIGN_OR_RETURN(double v,
                        eval_exact(tapes_[c], tapes_[c].root, values));
  return v != 0.0;
}

std::uint64_t Problem::space_size() const noexcept {
  std::uint64_t total = 1;
  for (const SolveVariable& v : vars_) {
    if (!v.domain.is_finite()) return kHugeSpace;
    const auto n = static_cast<std::uint64_t>(v.domain.size());
    if (n == 0) return 0;
    if (total > kHugeSpace / n) return kHugeSpace;
    total *= n;
  }
  return total;
}

Result<Problem> Problem::from_scope(const model::ParamScope& scope) {
  Problem p;
  for (const model::Param& param : scope.params) {
    if (p.find_variable(param.name) >= 0) continue;  // first one wins
    if (param.is_bound()) {
      p.add_variable(param.name, Domain::singleton(*param.value_si));
    } else if (!param.range_si.empty()) {
      p.add_variable(param.name, Domain::values(param.range_si));
    }
    // Params with neither a value nor a range stay out: constraints over
    // them are undecidable in this scope.
  }
  for (const model::Constraint& c : scope.constraints) {
    for (const std::string& name : c.expression.variables()) {
      if (p.find_variable(name) < 0) {
        return Status(ErrorCode::kUnresolvedRef,
                      "constraint '" + c.expression.source() +
                          "' references parameter '" + name +
                          "' which has no value or range in this scope");
      }
    }
    p.add_constraint(c.expression);
  }
  return p;
}

// --- Solver ---------------------------------------------------------------

Outcome Solver::satisfiable(const Problem& problem) const {
  std::vector<std::uint8_t> all(problem.constraint_count(), 1);
  Outcome out = run_satisfiable(problem, options_, all);
  if (out.verdict == Verdict::kUnsat && options_.minimize_core &&
      problem.constraint_count() > 1 &&
      problem.constraint_count() <= kMaxMaskVars) {
    // Deletion-based core minimization: drop each constraint in turn and
    // keep it dropped while the rest stays (provably) UNSAT.
    std::vector<std::uint8_t> mask = all;
    for (std::size_t c = 0; c < problem.constraint_count(); ++c) {
      mask[c] = 0;
      Outcome sub = run_satisfiable(problem, options_, mask);
      out.stats.propagations += sub.stats.propagations;
      out.stats.splits += sub.stats.splits;
      out.stats.nodes += sub.stats.nodes;
      if (sub.verdict != Verdict::kUnsat) mask[c] = 1;  // needed in the core
    }
    out.conflict_core.clear();
    for (std::size_t c = 0; c < problem.constraint_count(); ++c) {
      if (mask[c]) out.conflict_core.push_back(c);
    }
  }
  record_obs(out.stats, out.verdict);
  return out;
}

Outcome Solver::implied(const Problem& problem, std::size_t target) const {
  Search s(problem, options_, Goal::kCounterexample);
  s.active[target] = 0;
  s.target = static_cast<std::int32_t>(target);
  s.target_error_free = !problem.constraint_may_error(target);
  s.search(initial_domains(problem));
  Outcome out;
  out.stats = s.stats;
  if (s.found) {
    out.verdict = Verdict::kSat;
    out.witness = witness_of(problem, s.found_point);
    out.witness_error = s.found_error;
  } else if (s.out_of_budget || s.inexact) {
    out.verdict = Verdict::kUnknown;
  } else {
    out.verdict = Verdict::kValid;
  }
  record_obs(out.stats, out.verdict);
  return out;
}

Outcome Solver::find_evaluation_error(const Problem& problem,
                                      std::size_t target) const {
  Outcome out;
  if (!problem.constraint_may_error(target)) {
    out.verdict = Verdict::kUnsat;  // no partial operation anywhere
    record_obs(out.stats, out.verdict);
    return out;
  }
  Search s(problem, options_, Goal::kFindError);
  s.active.assign(problem.constraint_count(), 0);  // no assumptions
  s.target = static_cast<std::int32_t>(target);
  s.search(initial_domains(problem));
  out.stats = s.stats;
  if (s.found) {
    out.verdict = Verdict::kSat;
    out.witness = witness_of(problem, s.found_point);
    out.witness_error = s.found_error;
  } else if (s.out_of_budget || s.inexact) {
    out.verdict = Verdict::kUnknown;
  } else {
    out.verdict = Verdict::kUnsat;
  }
  record_obs(out.stats, out.verdict);
  return out;
}

bool Solver::prune(Problem& problem) const {
  Search s(problem, options_, Goal::kSatisfy);
  std::vector<Domain> domains = initial_domains(problem);
  bool failed = false;
  s.propagate(domains, &failed);
  for (std::size_t i = 0; i < domains.size(); ++i) {
    problem.set_domain(i, domains[i]);
  }
  XPDL_OBS_COUNT("solve.queries", 1);
  XPDL_OBS_COUNT("solve.propagations",
                 static_cast<std::int64_t>(s.stats.propagations));
  return !failed;
}

// --- brute force oracle ---------------------------------------------------

namespace {

BruteForceReport brute_force_impl(const Problem& p,
                                  const std::vector<std::size_t>& targets) {
  BruteForceReport report;
  const std::size_t n = p.variables().size();
  std::uint64_t total = 1;
  for (const SolveVariable& v : p.variables()) {
    if (!v.domain.is_finite() || v.domain.size() == 0) return report;
    total *= v.domain.size();
  }
  std::vector<double> point(n);
  for (std::uint64_t i = 0; i < total; ++i) {
    std::uint64_t rest = i;
    for (std::size_t d = 0; d < n; ++d) {
      const auto& values = p.variables()[d].domain.finite_values();
      point[d] = values[rest % values.size()];
      rest /= values.size();
    }
    ++report.points;
    bool all_true = true;
    bool errored = false;
    std::string error;
    for (std::size_t c : targets) {
      auto r = p.eval_constraint(c, point);
      if (!r.is_ok()) {
        errored = true;
        all_true = false;
        error = r.status().message();
        break;
      }
      if (!*r) {
        all_true = false;
        break;
      }
    }
    if (errored) {
      ++report.errored;
      if (report.first_error.empty()) {
        report.first_error = error;
        report.first_error_point = witness_of(p, point);
      }
    }
    if (all_true) ++report.satisfied;
  }
  return report;
}

}  // namespace

BruteForceReport brute_force(const Problem& problem) {
  std::vector<std::size_t> all(problem.constraint_count());
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = c;
  return brute_force_impl(problem, all);
}

BruteForceReport brute_force(const Problem& problem, std::size_t target) {
  return brute_force_impl(problem, {target});
}

}  // namespace xpdl::solve
