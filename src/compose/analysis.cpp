// Static analysis passes over a composed model (Sec. IV): the toolchain
// "performs static analysis of the model (for instance, downgrading
// bandwidth of interconnections where applicable as the effective
// bandwidth should be determined by the slowest hardware components
// involved in a communication link)".
#include <algorithm>
#include <cmath>
#include <limits>

#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::compose {
namespace {

std::string number_text(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return strings::format("%.15g", v);
}

/// Numeric SI value of a metric on `e`, if present and numeric.
std::optional<double> metric_si(const xml::Element& e,
                                std::string_view name) {
  auto m = model::metric_of(e, name);
  if (!m.is_ok() || !m.value().has_value() || !m.value()->is_number()) {
    return std::nullopt;
  }
  return m.value()->value_si;
}

/// Resolves an interconnect endpoint id against the nearest enclosing
/// scope: starting at the interconnect's grandparent (the element that
/// contains the <interconnects> list), search each ancestor's subtree for
/// a descendant with that local id; closest ancestor wins (Listing 11's
/// conn1 resolves cpu1/gpu1 inside the same node).
const xml::Element* resolve_endpoint(const xml::Element& interconnect,
                                     std::string_view id) {
  const xml::Element* scope = interconnect.parent();
  if (scope != nullptr && scope->tag() == "interconnects") {
    scope = scope->parent();
  }
  while (scope != nullptr) {
    // BFS over the subtree, excluding the interconnects themselves.
    std::vector<const xml::Element*> queue = {scope};
    while (!queue.empty()) {
      const xml::Element* cur = queue.back();
      queue.pop_back();
      if (cur->attribute_or("id", "") == id) return cur;
      for (const auto& c : cur->children()) queue.push_back(c.get());
    }
    scope = scope->parent();
  }
  return nullptr;
}

/// Pass 1: endpoint resolution + effective bandwidth downgrade.
Status analyze_interconnects(ComposedModel& model,
                             std::vector<std::string>& warnings) {
  std::vector<xml::Element*> stack = {&model.mutable_root()};
  while (!stack.empty()) {
    xml::Element* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "interconnect") continue;
    XPDL_OBS_COUNT("analysis.interconnects_resolved", 1);

    double min_bw = std::numeric_limits<double>::infinity();
    if (auto own = metric_si(*e, "max_bandwidth")) {
      min_bw = std::min(min_bw, *own);
    }
    for (const auto& ch : e->children()) {
      if (ch->tag() != "channel") continue;
      if (auto bw = metric_si(*ch, "max_bandwidth")) {
        min_bw = std::min(min_bw, *bw);
      }
    }

    for (std::string_view endpoint_attr : {"head", "tail"}) {
      auto id = e->attribute(endpoint_attr);
      if (!id.has_value()) continue;
      const xml::Element* endpoint = resolve_endpoint(*e, *id);
      if (endpoint == nullptr) {
        return Status(ErrorCode::kUnresolvedRef,
                      "interconnect endpoint '" + std::string(*id) +
                          "' (attribute '" + std::string(endpoint_attr) +
                          "') does not resolve to any component",
                      e->location());
      }
      // The endpoint itself may cap the link (slowest component rule).
      if (auto cap = metric_si(*endpoint, "max_bandwidth")) {
        if (*cap < min_bw) {
          warnings.push_back(
              e->location().to_string() + ": effective bandwidth of '" +
              std::string(e->attribute_or("id", e->tag())) +
              "' downgraded by endpoint '" + std::string(*id) + "'");
          min_bw = *cap;
        }
      }
    }

    if (std::isfinite(min_bw)) {
      e->set_attribute(kEffectiveBandwidthAttr, number_text(min_bw));
      e->set_attribute(std::string(kEffectiveBandwidthAttr) + "_unit", "B/s");
    }
  }
  return Status::ok();
}

/// Pass 2: bottom-up static power roll-up (Sec. III-D synthesized
/// attributes). Every hardware node's `static_power_total` is its own
/// static_power plus the sum over its children's totals.
double roll_up_static_power(xml::Element& e) {
  double total = 0.0;
  for (const auto& c : e.children()) {
    total += roll_up_static_power(*c);
  }
  if (auto own = metric_si(e, "static_power")) total += *own;
  if (model::is_hardware_tag(e.tag()) && total > 0.0) {
    e.set_attribute(kStaticPowerTotalAttr, number_text(total));
    e.set_attribute(std::string(kStaticPowerTotalAttr) + "_unit", "W");
  }
  return total;
}

}  // namespace

Status run_static_analyses(ComposedModel& model,
                           std::vector<std::string>& warnings) {
  obs::Span span("compose.analysis");
  XPDL_OBS_COUNT("analysis.runs", 1);
  XPDL_RETURN_IF_ERROR(analyze_interconnects(model, warnings));
  roll_up_static_power(model.mutable_root());
  return Status::ok();
}

}  // namespace xpdl::compose
