// Static analysis passes over a composed model (Sec. IV): the toolchain
// "performs static analysis of the model (for instance, downgrading
// bandwidth of interconnections where applicable as the effective
// bandwidth should be determined by the slowest hardware components
// involved in a communication link)".
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::compose {
namespace {

std::string number_text(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return strings::format("%.15g", v);
}

/// Numeric SI value of a metric on `e`, if present and numeric.
std::optional<double> metric_si(const xml::Element& e,
                                std::string_view name) {
  auto m = model::metric_of(e, name);
  if (!m.is_ok() || !m.value().has_value() || !m.value()->is_number()) {
    return std::nullopt;
  }
  return m.value()->value_si;
}

/// Resolves interconnect endpoint ids against the nearest enclosing
/// scope: starting at the interconnect's grandparent (the element that
/// contains the <interconnects> list), the closest ancestor whose
/// subtree contains that local id wins (Listing 11's conn1 resolves
/// cpu1/gpu1 inside the same node).
///
/// Built once per model: instead of re-walking each ancestor's subtree
/// per endpoint, every element gets a rank in the original traversal
/// order plus a subtree extent, and ids map to rank-sorted candidate
/// lists. "First hit in the old subtree walk" is then exactly "smallest
/// candidate rank inside the scope's contiguous rank range", found by
/// one binary search — identical answers, even for duplicate ids.
class EndpointIndex {
 public:
  explicit EndpointIndex(const xml::Element& root) {
    // Same stack order as the walk this replaces (children pushed in
    // order, popped from the back), so ranks reproduce its visit order.
    // Parenthood is tracked by traversal rank, not Element::parent():
    // subtrees grafted during composition can carry stale parent
    // pointers, while the children links walked here are authoritative.
    struct Item {
      const xml::Element* element;
      std::uint32_t parent_rank;
    };
    std::vector<Item> queue = {{&root, 0}};
    std::vector<const xml::Element*> order;
    std::vector<std::uint32_t> parent_rank;
    std::vector<std::uint32_t> extent;
    while (!queue.empty()) {
      Item item = queue.back();
      queue.pop_back();
      auto rank = static_cast<std::uint32_t>(order.size());
      order.push_back(item.element);
      parent_rank.push_back(item.parent_rank);
      extent.push_back(1);
      spans_.emplace(item.element, Span{rank, 1});
      by_id_[std::string(item.element->attribute_or("id", ""))].push_back(
          Candidate{rank, item.element});
      for (const auto& c : item.element->children()) {
        queue.push_back({c.get(), rank});
      }
    }
    // Any DFS gives contiguous subtree rank ranges; accumulate extents
    // children-before-parents by sweeping ranks in reverse (rank 0 is
    // the root, its recorded parent is itself and must not be folded).
    for (auto r = static_cast<std::uint32_t>(order.size()); r > 1; --r) {
      extent[parent_rank[r - 1]] += extent[r - 1];
    }
    for (std::size_t r = 0; r < order.size(); ++r) {
      spans_.find(order[r])->second.extent = extent[r];
    }
  }

  [[nodiscard]] const xml::Element* resolve(
      const xml::Element& interconnect, std::string_view id) const {
    auto candidates = by_id_.find(id);
    if (candidates == by_id_.end()) return nullptr;
    const xml::Element* scope = interconnect.parent();
    if (scope != nullptr && scope->tag() == "interconnects") {
      scope = scope->parent();
    }
    while (scope != nullptr) {
      auto span = spans_.find(scope);
      if (span != spans_.end()) {
        std::uint32_t r0 = span->second.rank;
        std::uint32_t r1 = r0 + span->second.extent;
        auto lo = std::lower_bound(
            candidates->second.begin(), candidates->second.end(), r0,
            [](const Candidate& c, std::uint32_t r) { return c.rank < r; });
        if (lo != candidates->second.end() && lo->rank < r1) {
          return lo->element;
        }
      }
      scope = scope->parent();
    }
    return nullptr;
  }

 private:
  struct Span {
    std::uint32_t rank;
    std::uint32_t extent;
  };
  struct Candidate {
    std::uint32_t rank;
    const xml::Element* element;
  };
  std::map<const xml::Element*, Span> spans_;
  std::map<std::string, std::vector<Candidate>, std::less<>> by_id_;
};

/// Pass 1: endpoint resolution + effective bandwidth downgrade.
Status analyze_interconnects(ComposedModel& model,
                             std::vector<std::string>& warnings) {
  // Attribute writes below never change structure or ids, so the index
  // stays valid for the whole pass.
  EndpointIndex endpoints(model.root());
  std::vector<xml::Element*> stack = {&model.mutable_root()};
  while (!stack.empty()) {
    xml::Element* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "interconnect") continue;
    XPDL_OBS_COUNT("analysis.interconnects_resolved", 1);

    double min_bw = std::numeric_limits<double>::infinity();
    if (auto own = metric_si(*e, "max_bandwidth")) {
      min_bw = std::min(min_bw, *own);
    }
    for (const auto& ch : e->children()) {
      if (ch->tag() != "channel") continue;
      if (auto bw = metric_si(*ch, "max_bandwidth")) {
        min_bw = std::min(min_bw, *bw);
      }
    }

    for (std::string_view endpoint_attr : {"head", "tail"}) {
      auto id = e->attribute(endpoint_attr);
      if (!id.has_value()) continue;
      const xml::Element* endpoint = endpoints.resolve(*e, *id);
      if (endpoint == nullptr) {
        return Status(ErrorCode::kUnresolvedRef,
                      "interconnect endpoint '" + std::string(*id) +
                          "' (attribute '" + std::string(endpoint_attr) +
                          "') does not resolve to any component",
                      e->location());
      }
      // The endpoint itself may cap the link (slowest component rule).
      if (auto cap = metric_si(*endpoint, "max_bandwidth")) {
        if (*cap < min_bw) {
          warnings.push_back(
              e->location().to_string() + ": effective bandwidth of '" +
              std::string(e->attribute_or("id", e->tag())) +
              "' downgraded by endpoint '" + std::string(*id) + "'");
          min_bw = *cap;
        }
      }
    }

    if (std::isfinite(min_bw)) {
      e->set_attribute(kEffectiveBandwidthAttr, number_text(min_bw));
      e->set_attribute(std::string(kEffectiveBandwidthAttr) + "_unit", "B/s");
    }
  }
  return Status::ok();
}

/// Pass 2: bottom-up static power roll-up (Sec. III-D synthesized
/// attributes). Every hardware node's `static_power_total` is its own
/// static_power plus the sum over its children's totals.
double roll_up_static_power(xml::Element& e) {
  double total = 0.0;
  for (const auto& c : e.children()) {
    total += roll_up_static_power(*c);
  }
  if (auto own = metric_si(e, "static_power")) total += *own;
  if (model::is_hardware_tag(e.tag()) && total > 0.0) {
    e.set_attribute(kStaticPowerTotalAttr, number_text(total));
    e.set_attribute(std::string(kStaticPowerTotalAttr) + "_unit", "W");
  }
  return total;
}

}  // namespace

Status run_static_analyses(ComposedModel& model,
                           std::vector<std::string>& warnings) {
  obs::Span span("compose.analysis");
  XPDL_OBS_COUNT("analysis.runs", 1);
  XPDL_RETURN_IF_ERROR(analyze_interconnects(model, warnings));
  roll_up_static_power(model.mutable_root());
  return Status::ok();
}

}  // namespace xpdl::compose
