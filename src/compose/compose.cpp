#include "xpdl/compose/compose.h"

#include <algorithm>
#include <cmath>

#include "xpdl/cache/cache.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/solve/solve.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::compose {

using model::Metric;
using model::MetricKind;
using model::Param;
using model::ParamScope;

namespace {

/// Formats a double as the shortest round-trippable-enough text.
std::string number_text(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return strings::format("%.15g", v);
}

/// Tags whose `type` attribute is a *reference* into the model repository
/// (as opposed to an abstract kind string like param's "msize").
bool type_is_reference(std::string_view tag) noexcept {
  return schema::is_component_tag(tag) || tag == "power_model";
}

bool is_software_tag(std::string_view tag) noexcept {
  return tag == "installed" || tag == "hostOS";
}

}  // namespace

// ===========================================================================
// ComposedModel

const xml::Element* ComposedModel::find_by_id(std::string_view id) const {
  if (auto it = qualified_index_.find(id); it != qualified_index_.end()) {
    return it->second;
  }
  if (auto it = local_index_.find(id); it != local_index_.end()) {
    return it->second;  // nullptr when the local id is ambiguous
  }
  return nullptr;
}

std::vector<std::string> ComposedModel::ids() const {
  std::vector<std::string> out;
  out.reserve(qualified_index_.size());
  for (const auto& [k, v] : qualified_index_) out.push_back(k);
  return out;
}

void ComposedModel::reindex() {
  qualified_index_.clear();
  local_index_.clear();
  // Qualified paths concatenate the ids (or meta names) of *named*
  // elements only — naming "is only necessary if there is a need to be
  // referenced" (Sec. III-A), so anonymous containers contribute no
  // segment. Local ids additionally index the element directly when
  // globally unique; ambiguous local ids map to nullptr so lookups fail
  // closed.
  struct Frame {
    const xml::Element* element;
    std::string path;
  };
  std::vector<Frame> stack;
  stack.push_back({root_.get(), ""});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const xml::Element& e = *f.element;

    std::string segment(e.attribute_or("id", ""));
    if (segment.empty()) segment = std::string(e.attribute_or("name", ""));
    std::string path = f.path;
    if (!segment.empty()) {
      if (!path.empty()) path += '.';
      path += segment;
      qualified_index_.emplace(path, &e);
      auto [it, inserted] = local_index_.emplace(segment, &e);
      if (!inserted && it->second != &e) it->second = nullptr;  // ambiguous
    }
    for (const auto& c : e.children()) {
      stack.push_back({c.get(), path});
    }
  }
}

// ===========================================================================
// Composer implementation

class Composer::Impl {
 public:
  Impl(repository::Repository& repo, const Options& options)
      : repo_(repo), options_(options) {}

  Result<ComposedModel> run(const xml::Element& root) {
    ComposedModel out;
    out.root_ = root.clone();
    ParamEnv env;
    XPDL_RETURN_IF_ERROR(elaborate(*out.root_, env, 0));
    out.reindex();
    if (options_.run_static_analysis) {
      XPDL_RETURN_IF_ERROR(analyze(out));
      out.reindex();  // analysis adds attributes only, but stay safe
    }
    out.warnings_ = std::move(warnings_);
    return out;
  }

 private:
  using ParamEnv = std::map<std::string, Param, std::less<>>;

  void warn(std::string message) { warnings_.push_back(std::move(message)); }

  // --- inheritance flattening -------------------------------------------

  /// Returns a deep copy of meta-model `type_name` with its `extends`
  /// chain flattened into it (derived definitions override base ones).
  Result<std::unique_ptr<xml::Element>> flatten_meta(
      std::string_view type_name, std::size_t depth) {
    if (depth > options_.max_type_depth) {
      return Status(ErrorCode::kCycle,
                    "meta-model chain deeper than " +
                        std::to_string(options_.max_type_depth) +
                        " while resolving '" + std::string(type_name) + "'");
    }
    for (const std::string& on_stack : type_stack_) {
      if (on_stack == type_name) {
        std::string cycle;
        for (const std::string& s : type_stack_) cycle += s + " -> ";
        cycle += std::string(type_name);
        return Status(ErrorCode::kCycle,
                      "cyclic meta-model inheritance: " + cycle);
      }
    }
    XPDL_ASSIGN_OR_RETURN(const xml::Element* meta, repo_.lookup(type_name));
    XPDL_OBS_COUNT("compose.inheritance_resolutions", 1);
    type_stack_.emplace_back(type_name);
    auto result = meta->clone();

    if (auto ext = result->attribute("extends")) {
      std::vector<std::string> bases = strings::split(*ext, ',');
      result->remove_attribute("extends");
      // Left-to-right base order; every later definition (and finally the
      // derived meta-model itself) overrides earlier ones, so bases are
      // merged *under* the current content.
      for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
        XPDL_ASSIGN_OR_RETURN(auto base, flatten_meta(*it, depth + 1));
        merge_under(*result, *base);
      }
    }
    type_stack_.pop_back();
    return result;
  }

  /// Merges `base` under `derived`: attributes of `base` are copied only
  /// when absent on `derived`; children of `base` are prepended (so that
  /// derived children come later and win in by-name deduplication).
  static void merge_under(xml::Element& derived, const xml::Element& base) {
    for (const xml::Attribute& a : base.attributes()) {
      if (a.name == "name" || a.name == "id") continue;
      if (!derived.has_attribute(a.name.view())) {
        derived.set_attribute(a.name.view(), a.value);
      }
    }
    // Prepend base children by rebuilding the child list.
    std::vector<std::unique_ptr<xml::Element>> merged;
    merged.reserve(base.children().size() + derived.children().size());
    for (const auto& c : base.children()) merged.push_back(c->clone());
    auto& dst = const_cast<std::vector<std::unique_ptr<xml::Element>>&>(
        derived.children());
    for (auto& c : dst) merged.push_back(std::move(c));
    dst = std::move(merged);
    dedupe_named(derived, "param");
    dedupe_named(derived, "const");
  }

  /// Collapses duplicate <param>/<const> children by name: the last
  /// occurrence (derived/instance) wins, inheriting any attributes the
  /// earlier declaration had and it lacks (configurable, range, type).
  static void dedupe_named(xml::Element& e, std::string_view tag) {
    auto& children = const_cast<std::vector<std::unique_ptr<xml::Element>>&>(
        e.children());
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (children[i]->tag() != tag) continue;
      auto name_i = children[i]->attribute("name");
      if (!name_i) continue;
      for (std::size_t j = i + 1; j < children.size(); ++j) {
        if (children[j]->tag() != tag) continue;
        auto name_j = children[j]->attribute("name");
        if (!name_j || *name_j != *name_i) continue;
        // j is the later (winning) declaration: inherit missing attrs.
        for (const xml::Attribute& a : children[i]->attributes()) {
          if (!children[j]->has_attribute(a.name.view())) {
            children[j]->set_attribute(a.name.view(), a.value);
          }
        }
        children.erase(children.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        break;
      }
    }
  }

  // --- parameter environment ---------------------------------------------

  static Result<double> resolve_in_env(const ParamEnv& env,
                                       std::string_view name) {
    auto it = env.find(name);
    if (it == env.end() || !it->second.is_bound()) {
      return Status(ErrorCode::kUnresolvedRef,
                    "parameter '" + std::string(name) + "' is not bound");
    }
    return *it->second.value_si;
  }

  /// Substitutes bound parameter references in the attribute values of
  /// `e` (metrics, group quantities, Listing 8's frequency="cfrq").
  Status substitute_attributes(xml::Element& e, const ParamEnv& env) {
    // Only element kinds that carry metric attributes participate in
    // parameter substitution; free-form kinds like <property> hold
    // arbitrary strings that must never be misread as parameter
    // references.
    const schema::ElementSpec* spec = schema::Schema::core().find(e.tag());
    const bool metrics_allowed =
        spec != nullptr && spec->allow_metric_attributes;
    // Collect replacements first; mutating while iterating invalidates.
    std::vector<std::pair<std::string, std::string>> updates;
    std::vector<std::pair<std::string, std::string>> unit_updates;
    for (const xml::Attribute& a : e.attributes()) {
      if (a.name == "quantity") {
        if (strings::parse_uint(a.value).is_ok()) continue;
        auto it = env.find(a.value);
        if (it == env.end() || !it->second.is_bound()) {
          if (options_.require_bound_params) {
            return Status(ErrorCode::kUnresolvedRef,
                          "group quantity references unbound parameter '" +
                              a.value + "'",
                          e.location());
          }
          warn(e.location().to_string() + ": unbound group quantity '" +
               a.value + "'");
          continue;
        }
        double v = *it->second.value_si;
        if (v < 0 || v != std::floor(v)) {
          return Status(ErrorCode::kConstraintViolation,
                        "group quantity parameter '" + a.value +
                            "' is not a non-negative integer",
                        e.location());
        }
        updates.emplace_back(a.name.str(), number_text(v));
        continue;
      }
      if (!metrics_allowed) continue;
      if (model::is_structural_attribute(a.name.view())) continue;
      if (a.name == "unit" ||
          (a.name.size() > 5 &&
           a.name.view().substr(a.name.size() - 5) == "_unit")) {
        continue;
      }
      // Metric attribute with an identifier value -> parameter reference.
      if (!strings::is_identifier(a.value) ||
          strings::parse_double(a.value).is_ok()) {
        continue;
      }
      auto it = env.find(a.value);
      if (it == env.end() || !it->second.is_bound()) {
        // Unbound references on <param> children are bindings handled
        // elsewhere; on metrics they are open configuration.
        if (options_.require_bound_params && e.tag() != "param") {
          return Status(ErrorCode::kUnresolvedRef,
                        "metric '" + a.name.str() +
                            "' references unbound parameter '" + a.value +
                            "'",
                        e.location());
        }
        continue;
      }
      const Param& p = it->second;
      double si = *p.value_si;
      if (!p.unit_symbol.empty()) {
        auto unit = units::parse_unit(p.unit_symbol);
        assert(unit.is_ok());
        updates.emplace_back(a.name.str(),
                             number_text(unit.value().from_si(si)));
        std::string unit_attr = units::unit_attribute_name(a.name.view());
        if (!e.has_attribute(unit_attr)) {
          unit_updates.emplace_back(unit_attr, p.unit_symbol);
        }
      } else {
        updates.emplace_back(a.name.str(), number_text(si));
      }
    }
    for (auto& [k, v] : updates) e.set_attribute(k, v);
    for (auto& [k, v] : unit_updates) e.set_attribute(k, v);
    return Status::ok();
  }

  /// Verifies constraints of `scope` under `env`. Fully bound constraints
  /// must hold; constraints with unbound configurable parameters must be
  /// satisfiable within the declared ranges.
  Status check_constraints(const xml::Element& e, const ParamScope& scope,
                           const ParamEnv& env) {
    XPDL_OBS_COUNT("compose.constraints_checked", scope.constraints.size());
    for (const model::Constraint& c : scope.constraints) {
      std::vector<std::string> vars = c.expression.variables();
      std::vector<const Param*> unbound;
      bool all_known = true;
      for (const std::string& v : vars) {
        auto it = env.find(v);
        if (it == env.end()) {
          return Status(ErrorCode::kUnresolvedRef,
                        "constraint '" + c.expression.source() +
                            "' references unknown parameter '" + v + "'",
                        c.location);
        }
        if (!it->second.is_bound()) {
          all_known = false;
          unbound.push_back(&it->second);
        }
      }
      if (all_known) {
        auto resolver = [&env](std::string_view name) {
          return resolve_in_env(env, name);
        };
        XPDL_ASSIGN_OR_RETURN(bool ok, c.expression.evaluate_bool(resolver));
        if (!ok) {
          return Status(ErrorCode::kConstraintViolation,
                        "constraint violated on <" + e.tag() +
                            ">: " + c.expression.source(),
                        c.location);
        }
        continue;
      }
      // Partially bound: require satisfiability over the configurable
      // ranges (the open Kepler configuration space of Listing 8).
      for (const Param* p : unbound) {
        if (!p->configurable || p->range_si.empty()) {
          if (options_.require_bound_params) {
            return Status(ErrorCode::kUnresolvedRef,
                          "constraint '" + c.expression.source() +
                              "' depends on unbound non-configurable "
                              "parameter '" +
                              p->name + "'",
                          c.location);
          }
          warn(c.location.to_string() + ": constraint '" +
               c.expression.source() + "' left open (unbound parameter '" +
               p->name + "')");
          return Status::ok();
        }
      }
      XPDL_ASSIGN_OR_RETURN(bool satisfiable,
                            satisfiable_over_ranges(c, unbound, env));
      if (!satisfiable) {
        return Status(ErrorCode::kConstraintViolation,
                      "constraint '" + c.expression.source() +
                          "' is unsatisfiable for every configuration",
                      c.location);
      }
    }
    return Status::ok();
  }

  Result<bool> satisfiable_over_ranges(const model::Constraint& c,
                                       const std::vector<const Param*>& open,
                                       const ParamEnv& env) {
    std::vector<std::size_t> idx(open.size(), 0);
    std::size_t tried = 0;
    while (true) {
      if (++tried > options_.max_configurations) {
        return Status(ErrorCode::kConstraintViolation,
                      "configuration space too large while checking '" +
                          c.expression.source() + "'");
      }
      auto resolver = [&](std::string_view name) -> Result<double> {
        for (std::size_t i = 0; i < open.size(); ++i) {
          if (open[i]->name == name) return open[i]->range_si[idx[i]];
        }
        return resolve_in_env(env, name);
      };
      XPDL_ASSIGN_OR_RETURN(bool ok, c.expression.evaluate_bool(resolver));
      if (ok) return true;
      // Advance the odometer.
      std::size_t k = 0;
      while (k < idx.size()) {
        if (++idx[k] < open[k]->range_si.size()) break;
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size()) return false;
    }
  }

  // --- group expansion -----------------------------------------------------

  /// Expands one homogeneous group in place: its body is replicated
  /// `quantity` times; member components without an id are assigned
  /// prefix<rank> (single-component bodies) or prefix<rank>_<tag><k>.
  Status expand_group(xml::Element& group) {
    XPDL_ASSIGN_OR_RETURN(model::GroupSpec spec, model::parse_group(group));
    if (!spec.homogeneous) return Status::ok();
    if (!spec.quantity.has_value()) {
      // Substitution happened before expansion; a remaining symbolic
      // quantity means the parameter is unbound (already warned).
      return Status::ok();
    }
    const std::uint64_t q = *spec.quantity;

    // Move the prototype body out.
    auto& children = const_cast<std::vector<std::unique_ptr<xml::Element>>&>(
        group.children());
    std::vector<std::unique_ptr<xml::Element>> body = std::move(children);
    children.clear();

    // Member-id assignment (Sec. III-A: prefix "core" + quantity 4 yields
    // core0..core3): the prefix<rank> id goes to body components that have
    // neither an id nor a meta name yet — named siblings (e.g. the private
    // L1 cache next to the core in Listing 1) are already identified.
    // With several unnamed components per member, ids are disambiguated as
    // prefix<rank>_<tag><index>.
    auto is_anonymous_component = [](const xml::Element& e) {
      return (schema::is_component_tag(e.tag()) || e.tag() == "group") &&
             !e.has_attribute("id") && !e.has_attribute("name");
    };
    std::size_t anonymous_count = 0;
    for (const auto& b : body) {
      if (is_anonymous_component(*b)) ++anonymous_count;
    }

    for (std::uint64_t r = 0; r < q; ++r) {
      std::size_t anon_index = 0;
      for (const auto& proto : body) {
        auto clone = proto->clone();
        if (!spec.prefix.empty() && is_anonymous_component(*clone)) {
          std::string id = strings::member_id(spec.prefix, r);
          if (anonymous_count > 1) {
            id += "_" + clone->tag() + std::to_string(anon_index);
          }
          clone->set_attribute("id", id);
          ++anon_index;
        }
        group.add_child(std::move(clone));
      }
    }
    group.set_attribute("expanded", "true");
    XPDL_OBS_COUNT("compose.groups_expanded", 1);
    XPDL_OBS_COUNT("compose.group_members_created", q);
    return Status::ok();
  }

  // --- main elaboration ----------------------------------------------------

  Status elaborate(xml::Element& e, ParamEnv env, std::size_t depth) {
    if (depth > options_.max_type_depth * 4) {
      return Status(ErrorCode::kCycle, "model tree too deep", e.location());
    }

    // Power-domain members reference hardware *within* the same model by
    // kind+type (Listing 12: <core type="Leon"/>); they are references,
    // not instances, and must not pull meta-models in.
    const bool inside_power_domain =
        e.parent() != nullptr && e.parent()->tag() == "power_domain";

    // 1. Resolve the meta-model reference, if this kind carries one.
    //    The `resolved` marker makes re-composition of an already
    //    elaborated tree a no-op (idempotence).
    if (auto type_ref = e.attribute("type");
        type_ref.has_value() && type_is_reference(e.tag()) &&
        !inside_power_domain &&
        e.attribute_or("resolved", "") != "true") {
      std::string type_name(*type_ref);
      if (repo_.contains(type_name)) {
        XPDL_OBS_COUNT("compose.type_resolutions", 1);
        XPDL_ASSIGN_OR_RETURN(auto meta, flatten_meta(type_name, 0));
        if (meta->tag() != e.tag() && e.tag() != "gpu" &&
            meta->tag() != "gpu") {
          return Status(ErrorCode::kSchemaViolation,
                        "<" + e.tag() + "> references meta-model '" +
                            type_name + "' of kind <" + meta->tag() + ">",
                        e.location());
        }
        merge_under(e, *meta);
        e.set_attribute("resolved", "true");
      } else if (is_software_tag(e.tag())) {
        if (!options_.tolerate_missing_software) {
          return Status(ErrorCode::kUnresolvedRef,
                        "software descriptor '" + type_name + "' not found",
                        e.location());
        }
        warn(e.location().to_string() + ": software descriptor '" +
             type_name + "' not in repository; keeping inline info");
      } else {
        // Kind strings like "DDR3" / "SRAM" are legitimate; record a note
        // so typos in real references remain discoverable.
        warn(e.location().to_string() + ": type '" + type_name + "' on <" +
             e.tag() + "> does not name a repository descriptor; treated "
             "as a plain kind string");
      }
    } else if (auto ext = e.attribute("extends");
               ext.has_value() && type_is_reference(e.tag())) {
      // A meta-model composed directly (rare but legal): flatten its own
      // inheritance chain in place.
      std::vector<std::string> bases = strings::split(*ext, ',');
      e.remove_attribute("extends");
      for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
        XPDL_ASSIGN_OR_RETURN(auto base, flatten_meta(*it, 0));
        merge_under(e, *base);
      }
    }

    // 2. Parameter scope of this element.
    XPDL_ASSIGN_OR_RETURN(ParamScope scope, model::parse_param_scope(e));
    for (const Param& p : scope.params) {
      // Range membership check for bound configurable parameters
      // (Listing 10 must pick one of 16/32/48 KB).
      if (p.is_bound() && !p.range_si.empty()) {
        bool in_range = std::any_of(
            p.range_si.begin(), p.range_si.end(), [&](double v) {
              return std::fabs(v - *p.value_si) <=
                     1e-9 * std::max(1.0, std::fabs(v));
            });
        if (!in_range) {
          return Status(ErrorCode::kConstraintViolation,
                        "parameter '" + p.name + "' value is outside its "
                        "declared range",
                        p.location);
        }
      }
      env.insert_or_assign(p.name, p);
    }

    // 3. Constraints.
    XPDL_RETURN_IF_ERROR(check_constraints(e, scope, env));

    // 4. Substitute bound parameter references in attributes.
    XPDL_RETURN_IF_ERROR(substitute_attributes(e, env));

    // 5. Recurse. The container scoping of Sec. III-B means children see
    //    this element's parameter environment.
    for (const auto& child : e.children()) {
      XPDL_RETURN_IF_ERROR(elaborate(*child, env, depth + 1));
    }

    // 6. Expand homogeneous groups among the children (after their own
    //    elaboration so nested groups are already expanded).
    for (const auto& child : e.children()) {
      if (child->tag() == "group" &&
          child->attribute_or("expanded", "") != "true") {
        XPDL_RETURN_IF_ERROR(expand_group(*child));
      }
    }
    return Status::ok();
  }

  // --- static analysis (implemented in analysis.cpp) ---------------------
  Status analyze(ComposedModel& model) {
    return run_static_analyses(model, warnings_);
  }

  repository::Repository& repo_;
  const Options& options_;
  std::vector<std::string> warnings_;
  std::vector<std::string> type_stack_;
};

// ===========================================================================

Composer::Composer(repository::Repository& repo, Options options)
    : repo_(repo), options_(options) {}

std::uint64_t Composer::snapshot_key(std::string_view ref) const {
  // The snapshot key pins everything a composition depends on: the full
  // repository content (digest), the entry point, and the composer
  // options. The schema fingerprint is checked by the snapshot codec.
  std::uint64_t key = repo_.content_digest();
  key = cache::fnv1a64(ref, key);
  key = cache::fnv1a64(std::string_view("\0", 1), key);
  std::string options_fp;
  options_fp += options_.run_static_analysis ? 'A' : 'a';
  options_fp += options_.require_bound_params ? 'B' : 'b';
  options_fp += options_.tolerate_missing_software ? 'S' : 's';
  options_fp += ':';
  options_fp += std::to_string(options_.max_type_depth);
  options_fp += ':';
  options_fp += std::to_string(options_.max_configurations);
  return cache::fnv1a64(options_fp, key);
}

Result<ComposedModel> Composer::compose(std::string_view ref) {
  XPDL_ASSIGN_OR_RETURN(const xml::Element* root, repo_.lookup(ref));
  if (!repo_.content_digest_valid() || !repo_.cache_options().enabled) {
    return compose(*root);
  }

  std::uint64_t key = snapshot_key(ref);
  cache::SnapshotCache snapshots(repo_.cache_anchor(), repo_.cache_options());
  if (auto snap = snapshots.load(cache::Kind::kModel, key)) {
    XPDL_OBS_COUNT("compose.model_cache_hits", 1);
    ComposedModel out;
    out.root_ = std::move(snap->root);
    out.warnings_ = std::move(snap->warnings);
    out.reindex();
    return out;
  }
  auto composed = compose(*root);
  if (composed.is_ok()) {
    snapshots.store(cache::Kind::kModel, key, composed->root(),
                    composed->warnings());
  }
  return composed;
}

Result<ComposedModel> Composer::compose(const xml::Element& root) {
  obs::Span span("compose");
  if (span.active()) {
    span.arg("model", std::string(root.attribute_or(
                          "id", root.attribute_or("name", root.tag()))));
  }
  XPDL_OBS_COUNT("compose.models_composed", 1);
  Impl impl(repo_, options_);
  return impl.run(root);
}

// ===========================================================================
// Configuration enumeration

namespace {

/// The configurable space of one meta-model, compiled for xpdl::solve:
/// bound params become singleton variables, open configurable ranges
/// become finite domains, constraints become tapes. Params with neither
/// a value nor a range stay out — constraints over them compile to error
/// nodes and never hold, matching the seed's unresolved-parameter path.
struct ConfigSpace {
  ParamScope scope;
  std::vector<std::size_t> open;       ///< indices into scope.params
  std::vector<std::int32_t> open_var;  ///< problem variable per open param
  solve::Problem problem;
  std::vector<double> point;           ///< eval template, fixed slots set
};

Result<ConfigSpace> build_config_space(const xml::Element& meta,
                                       repository::Repository* repo,
                                       const Options& options) {
  // Flatten inheritance if possible so inherited params/constraints count.
  std::unique_ptr<xml::Element> flattened;
  const xml::Element* source = &meta;
  if (repo != nullptr && meta.has_attribute("extends")) {
    Composer composer(*repo, [&] {
      Options o = options;
      o.require_bound_params = false;
      o.run_static_analysis = false;
      return o;
    }());
    XPDL_ASSIGN_OR_RETURN(ComposedModel composed, composer.compose(meta));
    // Steal the elaborated tree.
    flattened = composed.root().clone();
    source = flattened.get();
  }

  ConfigSpace cs;
  XPDL_ASSIGN_OR_RETURN(cs.scope, model::parse_param_scope(*source));
  for (std::size_t i = 0; i < cs.scope.params.size(); ++i) {
    const Param& p = cs.scope.params[i];
    if (cs.problem.find_variable(p.name) >= 0) continue;  // first one wins
    if (p.is_bound()) {
      cs.problem.add_variable(p.name, solve::Domain::singleton(*p.value_si));
    } else if (p.configurable && !p.range_si.empty()) {
      cs.open.push_back(i);
      cs.open_var.push_back(static_cast<std::int32_t>(
          cs.problem.add_variable(p.name, solve::Domain::values(p.range_si))));
    }
  }
  for (const model::Constraint& c : cs.scope.constraints) {
    cs.problem.add_constraint(c.expression);
  }
  cs.point.resize(cs.problem.variables().size(), 0.0);
  for (std::size_t v = 0; v < cs.problem.variables().size(); ++v) {
    const solve::Domain& d = cs.problem.domain(v);
    if (d.is_singleton()) cs.point[v] = d.value();
  }
  return cs;
}

}  // namespace

Result<std::vector<Configuration>> enumerate_configurations(
    const xml::Element& meta, repository::Repository* repo,
    const Options& options) {
  XPDL_ASSIGN_OR_RETURN(ConfigSpace cs,
                        build_config_space(meta, repo, options));

  // Narrow the declared domains by interval propagation before
  // enumerating: values no completion can make valid disappear up front,
  // so declared spaces far beyond `max_configurations` still enumerate
  // whenever their constrained core is small enough.
  solve::Solver solver;
  solve::Problem pruned = cs.problem;
  const bool feasible = solver.prune(pruned);

  std::vector<std::vector<double>> domains;  // surviving values, range order
  std::uint64_t total = feasible ? 1 : 0;
  for (std::size_t i = 0; i < cs.open.size(); ++i) {
    const Param& p = cs.scope.params[cs.open[i]];
    const solve::Domain& d =
        pruned.domain(static_cast<std::size_t>(cs.open_var[i]));
    std::vector<double> keep;
    for (double v : p.range_si) {
      if (d.contains(v)) keep.push_back(v);
    }
    if (total != 0) {
      total = keep.empty() ? 0
              : total > UINT64_MAX / keep.size() ? UINT64_MAX
                                                 : total * keep.size();
    }
    domains.push_back(std::move(keep));
  }
  if (total == 0) return std::vector<Configuration>{};
  if (total > options.max_configurations) {
    return Status(ErrorCode::kConstraintViolation,
                  "configuration space exceeds the enumeration limit");
  }

  std::vector<Configuration> result;
  std::vector<std::size_t> idx(domains.size(), 0);
  std::vector<double> point = cs.point;
  while (true) {
    for (std::size_t i = 0; i < domains.size(); ++i) {
      point[static_cast<std::size_t>(cs.open_var[i])] = domains[i][idx[i]];
    }
    bool ok = true;
    for (std::size_t c = 0; c < cs.problem.constraint_count(); ++c) {
      auto holds = cs.problem.eval_constraint(c, point);
      if (!holds.is_ok() || !holds.value()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      Configuration conf;
      for (std::size_t i = 0; i < domains.size(); ++i) {
        conf.values_si.emplace(cs.scope.params[cs.open[i]].name,
                               domains[i][idx[i]]);
      }
      result.push_back(std::move(conf));
    }
    std::size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < domains[k].size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
  }
  return result;
}

Result<std::optional<Configuration>> first_configuration(
    const xml::Element& meta, repository::Repository* repo,
    const Options& options) {
  XPDL_ASSIGN_OR_RETURN(ConfigSpace cs,
                        build_config_space(meta, repo, options));
  // Only the verdict/witness is consumed: skip deletion-based core
  // minimization, which re-solves the UNSAT space once per constraint.
  solve::Solver solver(solve::Solver::Options{.minimize_core = false});
  solve::Outcome out = solver.satisfiable(cs.problem);
  if (out.verdict == solve::Verdict::kUnsat) {
    return std::optional<Configuration>{};
  }
  if (out.verdict != solve::Verdict::kSat) {
    return Status(ErrorCode::kUnavailable,
                  "configuration search exceeded the solver budget");
  }
  Configuration conf;
  for (std::size_t i = 0; i < cs.open.size(); ++i) {
    conf.values_si.emplace(
        cs.scope.params[cs.open[i]].name,
        out.witness[static_cast<std::size_t>(cs.open_var[i])].second);
  }
  return std::optional<Configuration>(std::move(conf));
}

}  // namespace xpdl::compose
