#include "xpdl/pdl/pdl.h"

#include "xpdl/schema/schema.h"
#include "xpdl/util/strings.h"

namespace xpdl::pdl {
namespace {

void note(ImportReport* report, std::string message) {
  if (report != nullptr) report->notes.push_back(std::move(message));
}

/// Collects PDL <Property key=... value=.../> children of `src`:
/// well-known keys become XPDL metric attributes on `dst`, the rest go
/// into a <properties> escape hatch (exactly PDL's mechanism, which XPDL
/// keeps for ad-hoc extension).
void convert_properties(const xml::Element& src, xml::Element& dst,
                        ImportReport* report) {
  xml::Element* props = nullptr;
  for (const auto& child : src.children()) {
    if (child->tag() != "Property") continue;
    std::string key(child->attribute_or("key", ""));
    std::string value(child->attribute_or("value", ""));
    if (key.empty()) continue;

    if (key == "x86_MAX_CLOCK_FREQUENCY" &&
        strings::parse_double(value).is_ok()) {
      // The paper's own example of a property that should have been a
      // predefined attribute. PDL specified it in MHz.
      dst.set_attribute("frequency", value);
      dst.set_attribute("frequency_unit", "MHz");
      if (report != nullptr) ++report->promoted_properties;
      note(report, "promoted property '" + key + "' to frequency attribute");
      continue;
    }
    if (key == "MEMORY_SIZE" && strings::parse_double(value).is_ok()) {
      dst.set_attribute("size", value);
      dst.set_attribute("unit", "MB");
      if (report != nullptr) ++report->promoted_properties;
      note(report, "promoted property '" + key + "' to size attribute");
      continue;
    }
    if (key == "STATIC_POWER" && strings::parse_double(value).is_ok()) {
      dst.set_attribute("static_power", value);
      dst.set_attribute("static_power_unit", "W");
      if (report != nullptr) ++report->promoted_properties;
      note(report, "promoted property '" + key +
                       "' to static_power attribute");
      continue;
    }
    if (key == "NUM_CORES" && strings::parse_uint(value).is_ok()) {
      xml::Element& group = dst.add_child("group");
      group.set_attribute("prefix", "core");
      group.set_attribute("quantity", value);
      group.add_child("core");
      if (report != nullptr) ++report->promoted_properties;
      note(report, "promoted property '" + key + "' to a core group of " +
                       value);
      continue;
    }
    // Everything else stays a free-form property.
    if (props == nullptr) props = &dst.add_child("properties");
    xml::Element& p = props->add_child("property");
    // PDL keys are free-form strings; XPDL property names must be
    // identifiers. Sanitize conservatively.
    std::string name;
    for (char c : key) {
      name += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '.' || c == '-')
                  ? c
                  : '_';
    }
    if (name.empty() || !strings::is_identifier(name)) {
      name = "prop_" + std::to_string(p.location().line);
    }
    p.set_attribute("name", name);
    p.set_attribute("value", value);
    if (report != nullptr) ++report->kept_properties;
  }
}

/// Normalizes a PDL role string to the XPDL role attribute value.
Result<std::string> normalize_role(std::string_view role,
                                   const SourceLocation& loc) {
  if (strings::iequals(role, "Master")) return std::string("master");
  if (strings::iequals(role, "Hybrid")) return std::string("hybrid");
  if (strings::iequals(role, "Worker")) return std::string("worker");
  return Status(ErrorCode::kSchemaViolation,
                "PDL control role '" + std::string(role) +
                    "' is not Master/Hybrid/Worker",
                loc);
}

/// Reads the role of a PDL ProcessingUnit: either a role attribute or a
/// <ControlRelationship role=.../> child.
Result<std::string> role_of(const xml::Element& pu) {
  if (auto r = pu.attribute("role")) {
    return normalize_role(*r, pu.location());
  }
  if (const xml::Element* rel = pu.first_child("ControlRelationship")) {
    if (auto r = rel->attribute("role")) {
      return normalize_role(*r, rel->location());
    }
  }
  return Status(ErrorCode::kSchemaViolation,
                "PDL ProcessingUnit without a control role",
                pu.location());
}

}  // namespace

Result<std::unique_ptr<xml::Element>> import_platform(
    const xml::Element& pdl_root, ImportReport* report) {
  if (pdl_root.tag() != "Platform") {
    return Status(ErrorCode::kFormatError,
                  "expected PDL <Platform> root, found <" + pdl_root.tag() +
                      ">",
                  pdl_root.location());
  }
  auto system = std::make_unique<xml::Element>("system");
  std::string name(pdl_root.attribute_or(
      "name", pdl_root.attribute_or("id", "imported_platform")));
  system->set_attribute("id", name);

  std::size_t masters = 0;

  // Processing units: PDL groups them in <ProcessingUnits> or lists them
  // directly; both shapes are accepted.
  auto convert_pu = [&](const xml::Element& pu) -> Status {
    XPDL_ASSIGN_OR_RETURN(std::string role, role_of(pu));
    std::string id(pu.attribute_or("id", ""));
    if (role == "worker") {
      // Specialized PU that cannot launch computations: an accelerator
      // device in XPDL's hardware-structural view.
      xml::Element& dev = system->add_child("device");
      if (!id.empty()) dev.set_attribute("id", id);
      dev.set_attribute("role", "worker");
      if (auto type = pu.attribute("type")) {
        dev.set_attribute("type", *type);
      }
      convert_properties(pu, dev, report);
    } else {
      if (role == "master") ++masters;
      xml::Element& socket = system->add_child("socket");
      xml::Element& cpu = socket.add_child("cpu");
      if (!id.empty()) cpu.set_attribute("id", id);
      cpu.set_attribute("role", role);
      if (auto type = pu.attribute("type")) {
        cpu.set_attribute("type", *type);
      }
      convert_properties(pu, cpu, report);
    }
    if (report != nullptr) ++report->processing_units;
    return Status::ok();
  };

  auto convert_memory = [&](const xml::Element& mr) -> Status {
    xml::Element& mem = system->add_child("memory");
    if (auto id = mr.attribute("id")) mem.set_attribute("id", *id);
    if (auto type = mr.attribute("type")) {
      // PDL memory types like GLOBAL/SHARED are kind strings.
      mem.set_attribute("type", strings::to_lower(*type));
    }
    convert_properties(mr, mem, report);
    if (report != nullptr) ++report->memory_regions;
    return Status::ok();
  };

  xml::Element* interconnects = nullptr;
  auto convert_interconnect = [&](const xml::Element& ic) -> Status {
    if (interconnects == nullptr) {
      interconnects = &system->add_child("interconnects");
    }
    xml::Element& link = interconnects->add_child("interconnect");
    if (auto id = ic.attribute("id")) link.set_attribute("id", *id);
    // Endpoints: <From>/<To> children (xADML style) or attributes.
    std::string head(ic.attribute_or("from", ""));
    std::string tail(ic.attribute_or("to", ""));
    if (const xml::Element* from = ic.first_child("From")) {
      head = from->text();
    }
    if (const xml::Element* to = ic.first_child("To")) {
      tail = to->text();
    }
    if (head.empty() || tail.empty()) {
      return Status(ErrorCode::kSchemaViolation,
                    "PDL Interconnect without From/To endpoints",
                    ic.location());
    }
    link.set_attribute("head", head);
    link.set_attribute("tail", tail);
    convert_properties(ic, link, report);
    if (report != nullptr) ++report->interconnects;
    return Status::ok();
  };

  for (const auto& child : pdl_root.children()) {
    if (child->tag() == "ProcessingUnits") {
      for (const auto& pu : child->children()) {
        if (pu->tag() == "ProcessingUnit") {
          XPDL_RETURN_IF_ERROR(convert_pu(*pu));
        }
      }
    } else if (child->tag() == "ProcessingUnit") {
      XPDL_RETURN_IF_ERROR(convert_pu(*child));
    } else if (child->tag() == "MemoryRegions") {
      for (const auto& mr : child->children()) {
        if (mr->tag() == "MemoryRegion") {
          XPDL_RETURN_IF_ERROR(convert_memory(*mr));
        }
      }
    } else if (child->tag() == "MemoryRegion") {
      XPDL_RETURN_IF_ERROR(convert_memory(*child));
    } else if (child->tag() == "Interconnects") {
      for (const auto& ic : child->children()) {
        if (ic->tag() == "Interconnect") {
          XPDL_RETURN_IF_ERROR(convert_interconnect(*ic));
        }
      }
    } else if (child->tag() == "Interconnect") {
      XPDL_RETURN_IF_ERROR(convert_interconnect(*child));
    } else if (child->tag() == "Property") {
      // Platform-level properties attach to the system.
    } else {
      note(report, "dropped unmappable PDL element <" + child->tag() + ">");
    }
  }
  convert_properties(pdl_root, *system, report);

  // PDL requires exactly one Master; XPDL treats the control relation as
  // secondary, so a missing or duplicated master is only a note (the
  // paper questions "the specification of a unique, specific Master PU",
  // e.g. in a dual-CPU server).
  if (masters == 0) {
    note(report, "PDL platform has no Master PU; XPDL does not require one");
  } else if (masters > 1) {
    note(report,
         "PDL platform has " + std::to_string(masters) +
             " Master PUs; XPDL keeps all of them as role annotations");
  }

  // The result must be valid XPDL.
  auto validation = schema::Schema::core().validate(*system);
  if (!validation.ok()) {
    return validation.status();
  }
  return system;
}

Result<std::unique_ptr<xml::Element>> import_platform_text(
    std::string_view pdl_xml, ImportReport* report) {
  XPDL_ASSIGN_OR_RETURN(xml::Document doc,
                        xml::parse(pdl_xml, "<pdl>"));
  return import_platform(*doc.root, report);
}

}  // namespace xpdl::pdl
