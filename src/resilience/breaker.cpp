#include "xpdl/resilience/breaker.h"

#include <chrono>

#include "xpdl/obs/metrics.h"

namespace xpdl::resilience {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
    case CircuitBreaker::State::kOpen: return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string name,
                               CircuitBreakerOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (!options_.clock_ms) options_.clock_ms = steady_now_ms;
  // Register the state gauge up front: a breaker that never leaves
  // closed (state 0) must still be visible to /metrics, not appear only
  // after its first trip.
#if XPDL_OBS_ENABLED
  obs::gauge("resilience.breaker.state." + name_).set(0.0);
#endif
}

double CircuitBreaker::now_ms() const { return options_.clock_ms(); }

void CircuitBreaker::transition_locked(State next) {
  state_ = next;
#if XPDL_OBS_ENABLED
  obs::gauge("resilience.breaker.state." + name_)
      .set(static_cast<double>(static_cast<std::uint8_t>(next)));
#endif
}

Status CircuitBreaker::acquire() {
  std::lock_guard lock(mutex_);
  if (state_ == State::kOpen) {
    if (now_ms() - opened_at_ms_ >= options_.open_duration_ms) {
      half_open_successes_ = 0;
      transition_locked(State::kHalfOpen);
    } else {
      XPDL_OBS_COUNT("resilience.breaker.rejected", 1);
      return Status(ErrorCode::kUnavailable,
                    "circuit breaker '" + name_ +
                        "' is open (failing fast)");
    }
  }
  return Status::ok();
}

void CircuitBreaker::record(const Status& outcome) {
  std::lock_guard lock(mutex_);
  if (outcome.is_ok()) {
    if (state_ == State::kHalfOpen) {
      if (++half_open_successes_ >= options_.half_open_successes) {
        consecutive_failures_ = 0;
        transition_locked(State::kClosed);
      }
    } else {
      consecutive_failures_ = 0;
    }
    return;
  }
  if (state_ == State::kHalfOpen) {
    // A failed trial re-opens immediately.
    opened_at_ms_ = now_ms();
    ++trips_;
    XPDL_OBS_COUNT("resilience.breaker.trips", 1);
    transition_locked(State::kOpen);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    opened_at_ms_ = now_ms();
    ++trips_;
    XPDL_OBS_COUNT("resilience.breaker.trips", 1);
    transition_locked(State::kOpen);
  }
}

Status CircuitBreaker::run(const std::function<Status()>& fn) {
  XPDL_RETURN_IF_ERROR(acquire());
  Status outcome = fn();
  record(outcome);
  return outcome;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard lock(mutex_);
  return consecutive_failures_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard lock(mutex_);
  return trips_;
}

void CircuitBreaker::reset() {
  std::lock_guard lock(mutex_);
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  opened_at_ms_ = 0.0;
  transition_locked(State::kClosed);
}

}  // namespace xpdl::resilience
