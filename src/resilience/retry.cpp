#include "xpdl/resilience/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "xpdl/obs/metrics.h"

namespace xpdl::resilience {

bool default_retryable(const Status& status) noexcept {
  switch (status.code()) {
    case ErrorCode::kIoError:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

RetryPolicy::RetryPolicy(RetryOptions options)
    : options_(std::move(options)),
      classifier_(default_retryable),
      rng_state_(options_.seed == 0 ? 1 : options_.seed) {}

void RetryPolicy::set_classifier(Classifier classifier) {
  classifier_ = classifier ? std::move(classifier)
                           : Classifier(default_retryable);
}

void RetryPolicy::set_hint_provider(HintProvider provider) {
  hint_ = std::move(provider);
}

double RetryPolicy::nominal_backoff_ms(int retry_index) const noexcept {
  double backoff = options_.initial_backoff_ms;
  for (int i = 0; i < retry_index; ++i) {
    backoff *= options_.backoff_multiplier;
    if (backoff >= options_.max_backoff_ms) break;
  }
  return std::min(backoff, options_.max_backoff_ms);
}

double RetryPolicy::jittered_backoff_ms(int retry_index) {
  double nominal = nominal_backoff_ms(retry_index);
  double jitter = std::clamp(options_.jitter, 0.0, 1.0);
  if (jitter <= 0.0) return nominal;
  // xorshift64* -> uniform in [0,1); effective delay keeps at least
  // (1-jitter) of the nominal interval.
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  double u = static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) /
             9007199254740992.0;
  return nominal * (1.0 - jitter * u);
}

Status RetryPolicy::run(std::string_view op,
                        const std::function<Status()>& fn) {
  last_ = RunStats{};
  const int max_attempts = std::max(options_.max_attempts, 1);
  Status status;
  for (int attempt = 1;; ++attempt) {
    ++last_.attempts;
    XPDL_OBS_COUNT("resilience.retry.attempts", 1);
    status = fn();
    if (status.is_ok()) return status;
    if (!classifier_(status)) {
      XPDL_OBS_COUNT("resilience.retry.nonretryable", 1);
      return status;
    }
    if (attempt >= max_attempts) break;
    double backoff_ms = jittered_backoff_ms(attempt - 1);
    // A server backoff hint (Retry-After on the failure just observed)
    // stretches — never shrinks — the delay; the deadline check below
    // still applies, so a long hint ends the loop rather than overrun
    // the caller's budget.
    if (hint_) {
      double hint_ms = hint_();
      if (hint_ms > backoff_ms) {
        backoff_ms = hint_ms;
        ++last_.hinted;
        XPDL_OBS_COUNT("resilience.retry.hinted", 1);
      }
    }
    if (options_.deadline_ms > 0.0 &&
        last_.total_backoff_ms + backoff_ms > options_.deadline_ms) {
      break;
    }
    last_.total_backoff_ms += backoff_ms;
    ++last_.retries;
    XPDL_OBS_COUNT("resilience.retry.retries", 1);
#if XPDL_OBS_ENABLED
    obs::histogram("resilience.retry.backoff_us")
        .record(static_cast<std::uint64_t>(backoff_ms * 1000.0));
#endif
    if (options_.sleep && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  last_.exhausted = true;
  XPDL_OBS_COUNT("resilience.retry.exhausted", 1);
  return status.with_context("'" + std::string(op) + "' failed after " +
                             std::to_string(last_.attempts) +
                             " attempt(s)");
}

}  // namespace xpdl::resilience
