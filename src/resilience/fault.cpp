#include "xpdl/resilience/fault.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "xpdl/obs/metrics.h"
#include "xpdl/util/strings.h"

namespace xpdl::resilience {

namespace {

std::uint64_t next_u64(std::uint64_t& state) {
  // xorshift64* — the same generator the SimMachine uses for noise.
  std::uint64_t x = state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

double next_uniform(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) / 9007199254740992.0;
}

}  // namespace

Result<ErrorCode> parse_error_code(std::string_view name) {
  if (name == "io") return ErrorCode::kIoError;
  if (name == "unavailable") return ErrorCode::kUnavailable;
  if (name == "parse") return ErrorCode::kParseError;
  if (name == "format") return ErrorCode::kFormatError;
  if (name == "not-found") return ErrorCode::kNotFound;
  if (name == "internal") return ErrorCode::kInternal;
  return Status(ErrorCode::kInvalidArgument,
                "unknown fault error code '" + std::string(name) +
                    "' (expected io, unavailable, parse, format, "
                    "not-found or internal)");
}

struct FaultInjector::Impl {
  struct SiteState {
    FaultPlan plan;
    int failures_remaining = 0;  ///< fail_n budget left
    std::uint64_t rng = 1;
    std::uint64_t injected = 0;  ///< failures injected here
    std::uint64_t calls = 0;     ///< checks that matched this plan
  };

  mutable std::mutex mutex;
  /// Exact site keys, plus keys ending in '*' (prefix wildcards).
  std::map<std::string, SiteState, std::less<>> sites;
};

FaultInjector::FaultInjector() : impl_(std::make_unique<Impl>()) {}
FaultInjector::~FaultInjector() = default;

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::set_plan(std::string_view site, FaultPlan plan) {
  std::lock_guard lock(impl_->mutex);
  Impl::SiteState state;
  state.failures_remaining = plan.fail_n;
  state.rng = plan.seed == 0 ? 1 : plan.seed;
  state.plan = std::move(plan);
  impl_->sites.insert_or_assign(std::string(site), std::move(state));
  plan_count_.store(impl_->sites.size(), std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->sites.clear();
  plan_count_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::configure(std::string_view spec) {
  for (const std::string& entry : strings::split(spec, ';')) {
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "fault plan entry '" + entry +
                        "' is not of the form site=action[,action...]");
    }
    std::string site(strings::trim(entry.substr(0, eq)));
    FaultPlan plan;
    bool any_action = false;
    for (const std::string& action : strings::split(entry.substr(eq + 1), ',')) {
      std::vector<std::string> parts = strings::split(action, ':');
      if (parts.empty()) continue;
      const std::string& verb = parts[0];
      auto arg = [&](std::size_t i) -> std::string_view {
        return i < parts.size() ? std::string_view(parts[i])
                                : std::string_view();
      };
      if (verb == "fail" || verb == "prob") {
        if (parts.size() < 2 || parts.size() > 3) {
          return Status(ErrorCode::kInvalidArgument,
                        "fault action '" + action + "' wants " + verb +
                            ":VALUE[:code]");
        }
        if (parts.size() == 3) {
          XPDL_ASSIGN_OR_RETURN(plan.code, parse_error_code(arg(2)));
        }
        if (verb == "fail") {
          XPDL_ASSIGN_OR_RETURN(std::uint64_t n, strings::parse_uint(arg(1)));
          plan.fail_n = static_cast<int>(n);
        } else {
          XPDL_ASSIGN_OR_RETURN(plan.probability,
                                strings::parse_double(arg(1)));
          if (plan.probability < 0.0 || plan.probability > 1.0) {
            return Status(ErrorCode::kInvalidArgument,
                          "fault probability must be within [0,1] in '" +
                              action + "'");
          }
        }
      } else if (verb == "delay") {
        if (parts.size() != 2) {
          return Status(ErrorCode::kInvalidArgument,
                        "fault action '" + action + "' wants delay:MS");
        }
        XPDL_ASSIGN_OR_RETURN(plan.delay_ms, strings::parse_double(arg(1)));
        if (plan.delay_ms < 0.0) {
          return Status(ErrorCode::kInvalidArgument,
                        "fault delay must be non-negative in '" + action +
                            "'");
        }
      } else if (verb == "seed") {
        if (parts.size() != 2) {
          return Status(ErrorCode::kInvalidArgument,
                        "fault action '" + action + "' wants seed:N");
        }
        XPDL_ASSIGN_OR_RETURN(plan.seed, strings::parse_uint(arg(1)));
      } else {
        return Status(ErrorCode::kInvalidArgument,
                      "unknown fault action '" + verb +
                          "' (expected fail, prob, delay or seed)");
      }
      any_action = true;
    }
    if (!any_action) {
      return Status(ErrorCode::kInvalidArgument,
                    "fault plan entry '" + entry + "' has no actions");
    }
    set_plan(site, std::move(plan));
  }
  return Status::ok();
}

Status FaultInjector::check(std::string_view site) {
  if (empty()) return Status::ok();

  double delay_ms = 0.0;
  Status injected = Status::ok();
  {
    std::lock_guard lock(impl_->mutex);
    Impl::SiteState* state = nullptr;
    auto it = impl_->sites.find(site);
    if (it != impl_->sites.end()) {
      state = &it->second;
    } else {
      // Longest '*'-suffixed key whose prefix matches wins.
      std::size_t best_len = 0;
      for (auto& [key, candidate] : impl_->sites) {
        if (key.empty() || key.back() != '*') continue;
        std::string_view prefix(key.data(), key.size() - 1);
        if (site.substr(0, prefix.size()) == prefix &&
            prefix.size() >= best_len) {
          best_len = prefix.size();
          state = &candidate;
        }
      }
    }
    if (state == nullptr) return Status::ok();
    ++state->calls;
    delay_ms = state->plan.delay_ms;

    bool fire = false;
    if (state->failures_remaining > 0) {
      --state->failures_remaining;
      fire = true;
    } else if (state->plan.probability > 0.0 &&
               next_uniform(state->rng) < state->plan.probability) {
      fire = true;
    }
    if (fire) {
      ++state->injected;
      std::string msg = state->plan.message.empty()
                            ? "injected fault at site '" +
                                  std::string(site) + "'"
                            : state->plan.message;
      injected = Status(state->plan.code, std::move(msg));
    }
  }

  if (delay_ms > 0.0) {
    XPDL_OBS_COUNT("resilience.faults.delays", 1);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  if (!injected.is_ok()) XPDL_OBS_COUNT("resilience.faults.injected", 1);
  return injected;
}

std::uint64_t FaultInjector::injected(std::string_view site) const {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.injected;
}

std::uint64_t FaultInjector::calls(std::string_view site) const {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const auto& [key, state] : impl_->sites) total += state.injected;
  return total;
}

Status FaultInjector::install_from_env() {
  const char* spec = std::getenv("XPDL_FAULTS");
  if (spec == nullptr || *spec == '\0') return Status::ok();
  return instance().configure(spec).with_context(
      "parsing the XPDL_FAULTS environment variable");
}

}  // namespace xpdl::resilience
