#include "xpdl/energy/thermal.h"

#include <cmath>
#include <limits>

#include "xpdl/model/ir.h"

namespace xpdl::energy {

Result<ThermalParameters> thermal_of(const xml::Element& e) {
  ThermalParameters p;
  XPDL_ASSIGN_OR_RETURN(std::optional<model::Metric> r,
                        model::metric_of(e, "thermal_resistance"));
  if (!r.has_value() || !r->is_number()) {
    return Status(ErrorCode::kNotFound,
                  "<" + e.tag() +
                      "> declares no thermal_resistance metric; no thermal "
                      "model available",
                  e.location());
  }
  // thermal_resistance is dimensionally K/W, which the unit table does
  // not model as a compound; the convention is a bare number in K/W.
  p.resistance_k_per_w = r->value_si;
  if (p.resistance_k_per_w <= 0) {
    return Status(ErrorCode::kSchemaViolation,
                  "thermal_resistance must be positive", e.location());
  }
  XPDL_ASSIGN_OR_RETURN(std::optional<model::Metric> c,
                        model::metric_of(e, "thermal_capacitance"));
  if (c.has_value() && c->is_number()) {
    p.capacitance_j_per_k = c->value_si;
  }
  XPDL_ASSIGN_OR_RETURN(std::optional<model::Metric> cap,
                        model::metric_of(e, "max_temperature"));
  if (cap.has_value() && cap->is_number()) {
    p.max_junction_k = cap->value_si;  // unit attr converts C -> K
  }
  XPDL_ASSIGN_OR_RETURN(std::optional<model::Metric> amb,
                        model::metric_of(e, "ambient_temperature"));
  if (amb.has_value() && amb->is_number()) {
    p.ambient_k = amb->value_si;
  }
  if (p.max_junction_k <= p.ambient_k) {
    return Status(ErrorCode::kSchemaViolation,
                  "max_temperature must exceed the ambient temperature",
                  e.location());
  }
  return p;
}

double ThermalModel::temperature_after(double t0_k, double power_w,
                                       double duration_s) const noexcept {
  double t_inf = steady_state_k(power_w);
  double tau = p_.time_constant_s();
  if (tau <= 0 || duration_s <= 0) {
    return duration_s > 0 ? t_inf : t0_k;
  }
  return t_inf + (t0_k - t_inf) * std::exp(-duration_s / tau);
}

double ThermalModel::time_until_throttle_s(double t0_k,
                                           double power_w) const noexcept {
  if (t0_k >= p_.max_junction_k) return 0.0;
  double t_inf = steady_state_k(power_w);
  if (t_inf <= p_.max_junction_k) {
    return std::numeric_limits<double>::infinity();
  }
  double tau = p_.time_constant_s();
  if (tau <= 0) return 0.0;  // instantaneous response overshoots the cap
  // Solve T(t) = cap: t = tau * ln((T0 - Tinf) / (cap - Tinf)).
  return tau * std::log((t0_k - t_inf) / (p_.max_junction_k - t_inf));
}

double ThermalModel::sustainable_duty_cycle(
    double active_power_w, double idle_power_w) const noexcept {
  double p_max = max_sustainable_power_w();
  if (active_power_w <= p_max) return 1.0;
  if (idle_power_w >= p_max || active_power_w <= idle_power_w) return 0.0;
  return (p_max - idle_power_w) / (active_power_w - idle_power_w);
}

std::optional<const model::PowerState*>
ThermalModel::fastest_sustainable_state(
    const model::PowerStateMachine& fsm) const {
  const model::PowerState* best = nullptr;
  for (const model::PowerState& s : fsm.states) {
    if (s.frequency_hz <= 0) continue;  // sleep states do no work
    if (steady_state_k(s.power_w) > p_.max_junction_k) continue;
    if (best == nullptr || s.frequency_hz > best->frequency_hz) {
      best = &s;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best;
}

}  // namespace xpdl::energy
