#include "xpdl/energy/energy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "xpdl/compose/compose.h"
#include "xpdl/util/strings.h"

namespace xpdl::energy {

// ===========================================================================
// DvfsPlanner

DvfsPlanner::DvfsPlanner(const model::PowerStateMachine& fsm) : fsm_(fsm) {
  assert(fsm.validate().is_ok() && "planner requires a valid state machine");
}

std::vector<const model::PowerState*> DvfsPlanner::states_by_frequency()
    const {
  std::vector<const model::PowerState*> out;
  out.reserve(fsm_.states.size());
  for (const model::PowerState& s : fsm_.states) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const model::PowerState* a, const model::PowerState* b) {
              return a->frequency_hz > b->frequency_hz;
            });
  return out;
}

Result<Schedule> DvfsPlanner::single_state(std::string_view state,
                                           const Workload& w) const {
  const model::PowerState* s = fsm_.find_state(state);
  if (s == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "unknown power state '" + std::string(state) + "' in '" +
                      fsm_.name + "'");
  }
  if (s->frequency_hz <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "state '" + std::string(state) +
                      "' has zero frequency; cannot execute work in it");
  }
  Schedule sched;
  double run_t = w.cycles / s->frequency_hz;
  sched.legs.push_back(ScheduleLeg{s->name, run_t, w.cycles});
  sched.time_s = run_t;
  sched.energy_j = run_t * s->power_w;
  sched.feasible = w.deadline_s <= 0 || run_t <= w.deadline_s;
  // Race-to-idle accounting: if a deadline is given and we finish early,
  // the domain idles at idle_power until the deadline.
  if (w.deadline_s > 0 && run_t < w.deadline_s) {
    double idle_t = w.deadline_s - run_t;
    sched.legs.push_back(ScheduleLeg{"<idle>", idle_t, 0.0});
    sched.energy_j += idle_t * w.idle_power_w;
    sched.time_s = w.deadline_s;
  }
  return sched;
}

Result<Schedule> DvfsPlanner::best_single_state(const Workload& w) const {
  Schedule best;
  best.feasible = false;
  best.energy_j = std::numeric_limits<double>::infinity();
  for (const model::PowerState& s : fsm_.states) {
    if (s.frequency_hz <= 0) continue;
    XPDL_ASSIGN_OR_RETURN(Schedule cand, single_state(s.name, w));
    if (cand.feasible && cand.energy_j < best.energy_j) best = cand;
  }
  if (!best.feasible) {
    return Status(ErrorCode::kConstraintViolation,
                  "no state of '" + fsm_.name +
                      "' meets the deadline for this workload");
  }
  return best;
}

Result<Schedule> DvfsPlanner::best_two_state(const Workload& w,
                                             std::string_view from_state)
    const {
  if (fsm_.find_state(from_state) == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "unknown initial state '" + std::string(from_state) + "'");
  }
  // Candidate schedules: every ordered pair (A, B) of distinct runnable
  // states with a modeled A->B transition, splitting the work so the
  // deadline is met exactly (or as fast as possible), plus every single
  // state. The continuous split admits a closed form: with deadline T and
  // frequencies fa > fb, time in A is
  //   ta = (W - fb*(T - tx)) / (fa - fb),  clamped to [0, T - tx],
  // which uses the slow state as much as the deadline allows (slow states
  // draw less power under convex P(f)).
  Schedule best;
  best.feasible = false;
  best.energy_j = std::numeric_limits<double>::infinity();

  if (auto single = best_single_state(w); single.is_ok()) {
    best = std::move(single).value();
  }

  for (const model::PowerState& a : fsm_.states) {
    if (a.frequency_hz <= 0) continue;
    for (const model::PowerState& b : fsm_.states) {
      if (&a == &b || b.frequency_hz <= 0) continue;
      const model::PowerTransition* tr = fsm_.find_transition(a.name, b.name);
      if (tr == nullptr) continue;  // not programmer-initiable
      double fa = a.frequency_hz, fb = b.frequency_hz;
      if (fa == fb) continue;
      double T = w.deadline_s;
      if (T <= 0) T = w.cycles / std::min(fa, fb);  // unconstrained: any
      double avail = T - tr->time_s;
      if (avail <= 0) continue;
      // Work-conservation: ta*fa + tb*fb = W with ta + tb <= avail.
      double ta = (w.cycles - fb * avail) / (fa - fb);
      ta = std::clamp(ta, 0.0, avail);
      double remaining = w.cycles - ta * fa;
      double tb = remaining > 0 ? remaining / fb : 0.0;
      if (ta + tb > avail + 1e-12) continue;  // infeasible pair
      Schedule cand;
      cand.legs.push_back(ScheduleLeg{a.name, ta, ta * fa});
      cand.legs.push_back(ScheduleLeg{b.name, tb, tb * fb});
      cand.time_s = ta + tr->time_s + tb;
      cand.energy_j = ta * a.power_w + tr->energy_j + tb * b.power_w;
      cand.feasible = w.deadline_s <= 0 || cand.time_s <= w.deadline_s + 1e-12;
      if (w.deadline_s > 0 && cand.time_s < w.deadline_s) {
        double idle_t = w.deadline_s - cand.time_s;
        cand.legs.push_back(ScheduleLeg{"<idle>", idle_t, 0.0});
        cand.energy_j += idle_t * w.idle_power_w;
        cand.time_s = w.deadline_s;
      }
      if (cand.feasible && cand.energy_j < best.energy_j) {
        best = std::move(cand);
      }
    }
  }
  if (!best.feasible) {
    return Status(ErrorCode::kConstraintViolation,
                  "no feasible schedule under the deadline");
  }
  return best;
}

Result<double> DvfsPlanner::schedule_energy(
    const std::vector<ScheduleLeg>& legs,
    std::string_view initial_state) const {
  double energy = 0.0;
  std::string current(initial_state);
  for (const ScheduleLeg& leg : legs) {
    const model::PowerState* s = fsm_.find_state(leg.state);
    if (s == nullptr) {
      return Status(ErrorCode::kNotFound,
                    "schedule uses unknown state '" + leg.state + "'");
    }
    if (leg.state != current) {
      const model::PowerTransition* tr =
          fsm_.find_transition(current, leg.state);
      if (tr == nullptr) {
        return Status(ErrorCode::kConstraintViolation,
                      "no modeled transition " + current + " -> " +
                          leg.state + " in '" + fsm_.name + "'");
      }
      energy += tr->energy_j;
      current = leg.state;
    }
    if (leg.duration_s < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "negative leg duration in schedule");
    }
    energy += leg.duration_s * s->power_w;
  }
  return energy;
}

// ===========================================================================
// Channel cost

Result<ChannelCost> channel_cost(const xml::Element& channel,
                                 std::vector<std::string>* missing) {
  ChannelCost cost;
  struct Field {
    std::string_view metric;
    double ChannelCost::* member;
  };
  static constexpr Field kFields[] = {
      {"max_bandwidth", &ChannelCost::bandwidth_bps},
      {"time_offset_per_message", &ChannelCost::time_offset_s},
      {"energy_per_byte", &ChannelCost::energy_per_byte_j},
      {"energy_offset_per_message", &ChannelCost::energy_offset_j},
  };
  for (const Field& f : kFields) {
    XPDL_ASSIGN_OR_RETURN(std::optional<model::Metric> m,
                          model::metric_of(channel, f.metric));
    if (!m.has_value()) continue;
    if (m->kind == model::MetricKind::kNumber) {
      cost.*(f.member) = m->value_si;
    } else if (m->kind == model::MetricKind::kPlaceholder) {
      if (missing != nullptr) {
        missing->push_back(std::string(channel.attribute_or("name", "channel")) +
                           ": metric '" + std::string(f.metric) +
                           "' awaits microbenchmarking");
      }
    } else {
      return Status(ErrorCode::kUnresolvedRef,
                    "channel metric '" + std::string(f.metric) +
                        "' is an unbound parameter reference",
                    channel.location());
    }
  }
  // Fall back to the composed effective bandwidth on the parent
  // interconnect when the channel itself does not declare one.
  if (cost.bandwidth_bps == 0 && channel.parent() != nullptr) {
    if (auto eff = channel.parent()->attribute(
            compose::kEffectiveBandwidthAttr)) {
      if (auto v = strings::parse_double(*eff); v.is_ok()) {
        cost.bandwidth_bps = v.value();
      }
    }
  }
  return cost;
}

// ===========================================================================
// Hierarchical accounting

Result<double> static_power_of(const xml::Element& e) {
  // The composer's synthesized attribute is authoritative when present.
  if (auto total = e.attribute(compose::kStaticPowerTotalAttr)) {
    return strings::parse_double(*total);
  }
  double sum = 0.0;
  XPDL_ASSIGN_OR_RETURN(std::optional<model::Metric> own,
                        model::metric_of(e, "static_power"));
  if (own.has_value() && own->is_number()) sum += own->value_si;
  for (const auto& c : e.children()) {
    XPDL_ASSIGN_OR_RETURN(double child, static_power_of(*c));
    sum += child;
  }
  return sum;
}

Result<double> static_energy_of(const xml::Element& e, double duration_s) {
  if (duration_s < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative duration");
  }
  XPDL_ASSIGN_OR_RETURN(double p, static_power_of(e));
  return p * duration_s;
}

Result<double> dynamic_energy_of(const model::InstructionSet& isa,
                                 const InstructionMix& mix,
                                 double frequency_hz) {
  double total = 0.0;
  for (const auto& [name, count] : mix.counts) {
    const model::InstructionEnergy* inst = isa.find(name);
    if (inst == nullptr) {
      return Status(ErrorCode::kNotFound,
                    "instruction '" + name + "' not in ISA '" + isa.name +
                        "'");
    }
    XPDL_ASSIGN_OR_RETURN(double e, inst->energy_at(frequency_hz));
    total += e * count;
  }
  return total;
}

OffloadDecision evaluate_offload(const OffloadParameters& p,
                                 const ChannelCost& down,
                                 const ChannelCost& up) {
  OffloadDecision d;
  // Host-only execution.
  d.host_time_s = p.host_flops > 0 ? p.work_flops / p.host_flops : 0.0;
  d.host_energy_j = d.host_time_s * p.host_power_w;

  // Offloaded execution: transfer down, compute, transfer up. Energies:
  // link energy from the channel model, device energy while computing,
  // host idle power for the whole offloaded window.
  double t_down = down.transfer_time_s(p.bytes_to_device);
  double t_up = up.transfer_time_s(p.bytes_from_device);
  double t_kernel =
      p.device_flops > 0 ? p.work_flops / p.device_flops : 0.0;
  d.offload_time_s = t_down + t_kernel + t_up;
  d.offload_energy_j = down.transfer_energy_j(p.bytes_to_device) +
                       up.transfer_energy_j(p.bytes_from_device) +
                       t_kernel * p.device_power_w +
                       d.offload_time_s * p.host_idle_power_w;

  d.offload_faster = d.offload_time_s < d.host_time_s;
  d.offload_greener = d.offload_energy_j < d.host_energy_j;

  // Break-even work: W/h = t_down + W/d + t_up  =>
  // W (1/h - 1/d) = t_down + t_up.
  if (p.host_flops > 0 && p.device_flops > p.host_flops) {
    double transfer = t_down + t_up;
    d.breakeven_flops =
        transfer / (1.0 / p.host_flops - 1.0 / p.device_flops);
  } else {
    d.breakeven_flops = std::numeric_limits<double>::infinity();
  }
  return d;
}

Result<bool> may_switch_off(const model::PowerDomainSet& set,
                            std::string_view domain,
                            const std::vector<std::string>& off) {
  // Find the domain (group members are named <prototype-or-group><rank>).
  std::vector<model::PowerDomain> all = set.expanded();
  const model::PowerDomain* target = nullptr;
  for (const model::PowerDomain& d : all) {
    if (d.name == domain) {
      target = &d;
      break;
    }
  }
  if (target == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "unknown power domain '" + std::string(domain) + "'");
  }
  if (!target->enable_switch_off) return false;
  if (!target->switchoff_condition.has_value()) return true;

  const model::SwitchoffCondition& cond = *target->switchoff_condition;
  if (cond.state != "off") {
    return Status(ErrorCode::kSchemaViolation,
                  "unsupported switchoff condition state '" + cond.state +
                      "'");
  }
  // The condition names either a single domain or a domain group; a group
  // requires *all* members in the given state (Listing 12).
  auto is_off = [&off](std::string_view name) {
    return std::find(off.begin(), off.end(), name) != off.end();
  };
  for (const model::PowerDomainGroup& g : set.groups) {
    if (g.name == cond.domain) {
      std::string base = g.prototype.name.empty() ? g.name : g.prototype.name;
      for (std::uint64_t r = 0; r < g.quantity; ++r) {
        if (!is_off(strings::member_id(base, r))) return false;
      }
      return true;
    }
  }
  for (const model::PowerDomain& d : all) {
    if (d.name == cond.domain) return is_off(d.name);
  }
  return Status(ErrorCode::kUnresolvedRef,
                "switchoff condition references unknown domain '" +
                    cond.domain + "'");
}

}  // namespace xpdl::energy
