#include "xpdl/energy/cluster.h"

#include <algorithm>
#include <limits>

#include "xpdl/model/ir.h"
#include "xpdl/util/strings.h"

namespace xpdl::energy {
namespace {

/// Sums cores x frequency over the host (non-accelerator) subtree of a
/// node element; 2 flops/cycle (FMA).
double node_flops(const xml::Element& node) {
  double flops = 0.0;
  std::vector<const xml::Element*> stack = {&node};
  while (!stack.empty()) {
    const xml::Element* e = stack.back();
    stack.pop_back();
    if (e->tag() == "device" || e->tag() == "gpu" ||
        e->tag() == "power_domain" || e->tag() == "power_model") {
      continue;  // host compute only
    }
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "core") continue;
    auto freq = model::metric_of(*e, "frequency");
    if (freq.is_ok() && freq->has_value() && (*freq)->is_number()) {
      flops += (*freq)->value_si * 2.0;
    }
  }
  return flops;
}

}  // namespace

Result<ClusterEstimator> ClusterEstimator::create(
    const compose::ComposedModel& cluster, double active_watts_per_gflops) {
  ClusterEstimator est;

  // Nodes: every <node> with an id in the composed tree.
  std::vector<const xml::Element*> stack = {&cluster.root()};
  const xml::Element* cluster_elem = nullptr;
  while (!stack.empty()) {
    const xml::Element* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() == "cluster" && cluster_elem == nullptr) cluster_elem = e;
    if (e->tag() != "node") continue;
    NodeCapability cap;
    cap.id = std::string(e->attribute_or("id", ""));
    if (cap.id.empty()) continue;
    cap.flops = node_flops(*e);
    XPDL_ASSIGN_OR_RETURN(cap.static_power_w, static_power_of(*e));
    cap.active_power_w =
        cap.flops / 1e9 * active_watts_per_gflops;  // dynamic share
    est.nodes_.push_back(std::move(cap));
  }
  if (est.nodes_.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "the composed model contains no <node> elements with ids; "
                  "not a cluster model");
  }
  std::sort(est.nodes_.begin(), est.nodes_.end(),
            [](const NodeCapability& a, const NodeCapability& b) {
              return a.id < b.id;
            });

  // Inter-node link: the first interconnect under the cluster element
  // (Listing 11's InfiniBand ring); its channel carries the cost model.
  est.link_ = ChannelCost{};
  if (cluster_elem != nullptr) {
    for (const auto& c : cluster_elem->children()) {
      if (c->tag() != "interconnects") continue;
      for (const auto& ic : c->children()) {
        if (ic->tag() != "interconnect") continue;
        const xml::Element* channel = ic->first_child("channel");
        const xml::Element* source = channel != nullptr ? channel : ic.get();
        XPDL_ASSIGN_OR_RETURN(est.link_, channel_cost(*source));
        break;
      }
      break;
    }
  }
  if (est.link_.bandwidth_bps <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "no cluster-level interconnect with a bandwidth found");
  }
  return est;
}

Result<ClusterEstimate> ClusterEstimator::estimate(
    const std::vector<ClusterTask>& tasks, const Placement& placement) const {
  ClusterEstimate out;
  auto find_node = [&](std::string_view id) -> const NodeCapability* {
    for (const NodeCapability& n : nodes_) {
      if (n.id == id) return &n;
    }
    return nullptr;
  };
  std::map<std::string, const ClusterTask*, std::less<>> by_name;
  for (const ClusterTask& t : tasks) {
    if (!by_name.emplace(t.name, &t).second) {
      return Status(ErrorCode::kInvalidArgument,
                    "duplicate task name '" + t.name + "'");
    }
  }

  for (const ClusterTask& t : tasks) {
    auto placed = placement.find(t.name);
    if (placed == placement.end()) {
      return Status(ErrorCode::kInvalidArgument,
                    "task '" + t.name + "' has no placement");
    }
    const NodeCapability* node = find_node(placed->second);
    if (node == nullptr) {
      return Status(ErrorCode::kNotFound,
                    "placement of '" + t.name + "' names unknown node '" +
                        placed->second + "'");
    }
    if (node->flops <= 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "node '" + node->id + "' has no compute capability");
    }
    double compute_t = t.flops / node->flops;
    out.node_busy_s[node->id] += compute_t;
    out.compute_energy_j += compute_t * node->active_power_w;

    for (const auto& [producer, bytes] : t.inputs) {
      auto it = by_name.find(producer);
      if (it == by_name.end()) {
        return Status(ErrorCode::kUnresolvedRef,
                      "task '" + t.name + "' consumes unknown task '" +
                          producer + "'");
      }
      auto producer_placed = placement.find(producer);
      if (producer_placed == placement.end()) {
        return Status(ErrorCode::kInvalidArgument,
                      "task '" + producer + "' has no placement");
      }
      if (producer_placed->second == placed->second) continue;  // local
      double comm_t = link_.transfer_time_s(bytes);
      // The receiving node is busy for the transfer (first-order model).
      out.node_busy_s[node->id] += comm_t;
      out.comm_energy_j += link_.transfer_energy_j(bytes);
    }
  }

  for (const auto& [id, busy] : out.node_busy_s) {
    out.makespan_s = std::max(out.makespan_s, busy);
  }
  // All nodes draw static power for the whole makespan (nothing powers
  // down in this first-order model).
  double static_w = 0.0;
  for (const NodeCapability& n : nodes_) static_w += n.static_power_w;
  out.static_energy_j = static_w * out.makespan_s;
  return out;
}

Result<std::pair<Placement, ClusterEstimate>> ClusterEstimator::greedy_map(
    const std::vector<ClusterTask>& tasks, Objective objective) const {
  Placement placement;
  std::vector<ClusterTask> placed_so_far;
  placed_so_far.reserve(tasks.size());
  for (const ClusterTask& t : tasks) {
    placed_so_far.push_back(t);
    const NodeCapability* best_node = nullptr;
    double best_score = std::numeric_limits<double>::infinity();
    for (const NodeCapability& n : nodes_) {
      if (n.flops <= 0) continue;
      placement[t.name] = n.id;
      auto est = estimate(placed_so_far, placement);
      if (!est.is_ok()) return est.status();
      double score = objective == Objective::kMakespan
                         ? est->makespan_s
                         : est->total_energy_j();
      if (score < best_score) {
        best_score = score;
        best_node = &n;
      }
    }
    if (best_node == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "no node can run task '" + t.name + "'");
    }
    placement[t.name] = best_node->id;
  }
  XPDL_ASSIGN_OR_RETURN(ClusterEstimate final_estimate,
                        estimate(tasks, placement));
  return std::make_pair(std::move(placement), std::move(final_estimate));
}

}  // namespace xpdl::energy
