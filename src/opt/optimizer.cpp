// The optimization backends (see include/xpdl/opt/opt.h):
//
//  * exhaustive — lexicographic odometer over the full choice space.
//  * branch-and-bound — DFS in choice-index order. Two pruning engines:
//    objective lower bounds (tables: constant + sum/max of the per-variable
//    minima over the still-live choices; expressions: forward interval
//    evaluation of the compiled tape over the live hulls), and — when the
//    problem has expression constraints — `xpdl::solve` HC4 propagation on
//    a mirrored solve problem whose domains are reset to the live values
//    at every node. The incumbent tightens a synthesized bound constraint
//    `(objective) < __xpdl_opt_bound` (the bound variable's singleton
//    domain *is* the incumbent cost), so propagation deletes choice values
//    that no better-than-incumbent completion can use.
//
// Both backends visit full assignments in the same lexicographic order
// and accept through the same exact-evaluation path, so they return the
// identical optimum and the identical (lexicographically first) witness —
// the property sweep in tests/test_opt.cpp pins this.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "xpdl/obs/metrics.h"
#include "xpdl/opt/opt.h"
#include "xpdl/solve/interval.h"
#include "xpdl/solve/solve.h"
#include "xpdl/util/expr.h"

namespace xpdl::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Name of the synthesized solve variable carrying the incumbent cost.
constexpr std::string_view kBoundVariable = "__xpdl_opt_bound";

// ---------------------------------------------------------------------------
// Forward interval evaluation of a compiled solve tape over a box.
//
// Returns a superset of the values the expression can take when each
// variable ranges over its hull. The empty interval means the expression
// has *no* defined value anywhere in the box (every point errors) — the
// per-operation emptiness rules below are only ever that strong (e.g.
// division returns empty only when the divisor is identically zero).

using solve::Interval;
using solve::internal::Op;
using solve::internal::Tape;

/// Three-valued truth of a boolean-producing interval.
struct Truth {
  bool may_true = true;
  bool may_false = true;
};

Truth truth_of(Interval v) {
  if (v.is_empty()) return {false, false};
  return {!(v.lo == 0.0 && v.hi == 0.0), v.contains(0.0)};
}

Interval from_truth(Truth t) {
  if (!t.may_true && !t.may_false) return Interval::empty();
  if (!t.may_false) return Interval::singleton(1.0);
  if (!t.may_true) return Interval::singleton(0.0);
  return {0.0, 1.0};
}

Interval forward_eval(const Tape& tape, std::int32_t node,
                      const std::vector<Interval>& box) {
  const solve::internal::TapeNode& n = tape.nodes[static_cast<std::size_t>(node)];
  const auto kid = [&](std::size_t k) {
    return forward_eval(tape, n.kids[k], box);
  };
  switch (n.op) {
    case Op::kNumber:
      // A NaN literal cannot come out of the parser, but stay
      // conservative: NaN is a defined (if useless) value, not an error.
      return std::isnan(n.number) ? Interval::whole()
                                  : Interval::singleton(n.number);
    case Op::kVariable:
      return box[static_cast<std::size_t>(n.var)];
    case Op::kNegate:
      return solve::neg(kid(0));
    case Op::kNot: {
      const Truth t = truth_of(kid(0));
      // !x is true iff x == 0.
      return from_truth({t.may_false, t.may_true});
    }
    case Op::kAdd:
      return solve::add(kid(0), kid(1));
    case Op::kSub:
      return solve::sub(kid(0), kid(1));
    case Op::kMul:
      return solve::mul(kid(0), kid(1));
    case Op::kDiv:
      return solve::div(kid(0), kid(1));
    case Op::kMod:
      return solve::mod(kid(0), kid(1));
    case Op::kEq: {
      const Interval a = kid(0);
      const Interval b = kid(1);
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      if (a.hi < b.lo || b.hi < a.lo) return Interval::singleton(0.0);
      if (a.is_singleton() && b.is_singleton() && a.lo == b.lo) {
        return Interval::singleton(1.0);
      }
      return {0.0, 1.0};
    }
    case Op::kNe: {
      const Interval a = kid(0);
      const Interval b = kid(1);
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      if (a.hi < b.lo || b.hi < a.lo) return Interval::singleton(1.0);
      if (a.is_singleton() && b.is_singleton() && a.lo == b.lo) {
        return Interval::singleton(0.0);
      }
      return {0.0, 1.0};
    }
    case Op::kLt: {
      const Interval a = kid(0);
      const Interval b = kid(1);
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      if (a.hi < b.lo) return Interval::singleton(1.0);
      if (a.lo >= b.hi) return Interval::singleton(0.0);
      return {0.0, 1.0};
    }
    case Op::kLe: {
      const Interval a = kid(0);
      const Interval b = kid(1);
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      if (a.hi <= b.lo) return Interval::singleton(1.0);
      if (a.lo > b.hi) return Interval::singleton(0.0);
      return {0.0, 1.0};
    }
    case Op::kGt: {
      const Interval a = kid(0);
      const Interval b = kid(1);
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      if (a.lo > b.hi) return Interval::singleton(1.0);
      if (a.hi <= b.lo) return Interval::singleton(0.0);
      return {0.0, 1.0};
    }
    case Op::kGe: {
      const Interval a = kid(0);
      const Interval b = kid(1);
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      if (a.lo >= b.hi) return Interval::singleton(1.0);
      if (a.hi < b.lo) return Interval::singleton(0.0);
      return {0.0, 1.0};
    }
    case Op::kAnd: {
      // Exact semantics short-circuit: a false left operand yields 0
      // without touching the right one, an erroring left operand always
      // errors. Mirror that so emptiness stays sound.
      const Truth a = truth_of(kid(0));
      if (!a.may_true && !a.may_false) return Interval::empty();
      if (!a.may_true) return Interval::singleton(0.0);
      const Truth b = truth_of(kid(1));
      const bool may_true = a.may_true && b.may_true;
      const bool may_false = a.may_false || b.may_false;
      return from_truth({may_true, may_false});
    }
    case Op::kOr: {
      const Truth a = truth_of(kid(0));
      if (!a.may_true && !a.may_false) return Interval::empty();
      if (!a.may_false) return Interval::singleton(1.0);
      const Truth b = truth_of(kid(1));
      const bool may_true = a.may_true || b.may_true;
      const bool may_false = a.may_false && b.may_false;
      return from_truth({may_true, may_false});
    }
    case Op::kMin:
      return solve::min(kid(0), kid(1));
    case Op::kMax:
      return solve::max(kid(0), kid(1));
    case Op::kAbs:
      return solve::abs(kid(0));
    case Op::kFloor:
      return solve::floor(kid(0));
    case Op::kCeil:
      return solve::ceil(kid(0));
    case Op::kRound:
      return solve::round(kid(0));
    case Op::kSqrt:
      return solve::sqrt(kid(0));
    case Op::kPow:
      return solve::pow(kid(0), kid(1));
    case Op::kLog2:
      return solve::log2(kid(0));
    case Op::kError:
      return Interval::empty();
  }
  return Interval::whole();
}

// ---------------------------------------------------------------------------
// The mirrored solve problem used for constraint propagation.

struct Mirror {
  bool active = false;
  solve::Problem base;  ///< variables 0..n-1 align with the opt variables
  /// Index of the `__xpdl_opt_bound` variable, or -1 when the minimized
  /// objective is a table (tables are bounded directly, not via solve).
  std::int32_t bound_var = -1;
  /// Synthesized limit variables and their fixed values; propagation may
  /// wipe them out at an infeasible node, so every node restores them.
  std::vector<std::pair<std::size_t, double>> fixed;
};

/// One compiled expression objective: a tape whose variable slots align
/// with the opt variable indices.
struct CompiledExpression {
  solve::Problem holder;  ///< owns the tape
  const Tape* tape = nullptr;
};

enum class Mode : std::uint8_t { kMinimize, kTop, kPareto };

struct Search {
  const Problem& problem;
  const Optimizer::Options& options;
  Mode mode = Mode::kMinimize;
  std::size_t target_a = 0;  ///< minimized objective (first, for pareto)
  std::size_t target_b = 0;  ///< second pareto objective
  std::size_t top_n = 1;     ///< capacity in kTop mode

  Stats stats;
  bool exhausted = false;

  /// Objectives whose lower bound is worth computing at every node: the
  /// minimized target(s) plus every limited objective.
  std::vector<std::size_t> bounded;
  /// Compiled tapes of the expression objectives (empty slot otherwise).
  std::vector<CompiledExpression> compiled;

  Mirror mirror;
  solve::Solver propagator;

  /// kMinimize: the incumbent. kTop: up to `top_n` solutions sorted by
  /// (value asc, arrival == lexicographic order). kPareto: the archive.
  std::vector<Solution> pool;

  std::vector<std::size_t> prefix;  ///< fixed choice per assigned variable

  explicit Search(const Problem& p, const Optimizer::Options& o)
      : problem(p), options(o) {}

  // -- setup ----------------------------------------------------------------

  Status prepare() {
    const auto& vars = problem.variables();
    for (const DecisionVariable& v : vars) {
      if (v.choices.empty()) {
        return Status(ErrorCode::kInvalidArgument,
                      "variable '" + v.name + "' has no choices");
      }
    }
    bounded.push_back(target_a);
    if (mode == Mode::kPareto && target_b != target_a) {
      bounded.push_back(target_b);
    }
    for (std::size_t o = 0; o < problem.objective_count(); ++o) {
      if (problem.objective(o).limit.has_value() &&
          std::find(bounded.begin(), bounded.end(), o) == bounded.end()) {
        bounded.push_back(o);
      }
    }
    compiled.resize(problem.objective_count());
    for (std::size_t o : bounded) {
      const auto& obj = problem.objective(o);
      if (!obj.expression.has_value()) continue;
      CompiledExpression ce;
      for (const DecisionVariable& v : vars) {
        ce.holder.add_variable(v.name, solve::Domain::interval(-kInf, kInf));
      }
      ce.holder.add_constraint(*obj.expression);
      compiled[o].holder = std::move(ce.holder);
      compiled[o].tape = &compiled[o].holder.tape(0);
    }
    return Status::ok();
  }

  Status build_mirror() {
    const bool target_is_expr =
        problem.objective(target_a).expression.has_value() &&
        mode != Mode::kPareto;
    bool expr_limit = false;
    for (std::size_t o = 0; o < problem.objective_count(); ++o) {
      expr_limit |= problem.objective(o).expression.has_value() &&
                    problem.objective(o).limit.has_value();
    }
    if (problem.constraint_count() == 0 && !target_is_expr && !expr_limit) {
      return Status::ok();  // nothing propagation could use
    }
    for (const DecisionVariable& v : problem.variables()) {
      std::vector<double> values;
      values.reserve(v.choices.size());
      for (const Choice& c : v.choices) values.push_back(c.value);
      mirror.base.add_variable(v.name, solve::Domain::values(std::move(values)));
    }
    for (const expr::Expression& c : problem.constraints()) {
      mirror.base.add_constraint(c);
    }
    for (std::size_t o = 0; o < problem.objective_count(); ++o) {
      if (!problem.objective(o).expression.has_value() ||
          !problem.objective(o).limit.has_value()) {
        continue;
      }
      const std::string name =
          "__xpdl_opt_limit_" + std::to_string(o);
      mirror.fixed.emplace_back(
          mirror.base.add_variable(
              name, solve::Domain::singleton(*problem.objective(o).limit)),
          *problem.objective(o).limit);
      XPDL_ASSIGN_OR_RETURN(
          expr::Expression capped,
          expr::Expression::parse(
              "(" + problem.objective(o).expression->source() + ") <= " +
              name));
      mirror.base.add_constraint(capped);
    }
    if (target_is_expr) {
      mirror.bound_var = static_cast<std::int32_t>(mirror.base.add_variable(
          std::string(kBoundVariable), solve::Domain::singleton(kInf)));
      XPDL_ASSIGN_OR_RETURN(
          expr::Expression bound,
          expr::Expression::parse(
              "(" + problem.objective(target_a).expression->source() +
              ") < " + std::string(kBoundVariable)));
      mirror.base.add_constraint(bound);
    }
    mirror.active = true;
    return Status::ok();
  }

  // -- incumbent / archive --------------------------------------------------

  /// The cost a new point must beat strictly; +inf while unbounded.
  double scalar_bound() const {
    if (mode == Mode::kMinimize) {
      return pool.empty() ? kInf : pool.front().value;
    }
    if (mode == Mode::kTop) {
      return pool.size() < top_n ? kInf : pool.back().value;
    }
    return kInf;
  }

  Result<Solution> leaf_solution() {
    Solution s;
    s.choice = prefix;
    const auto& vars = problem.variables();
    s.assignment.reserve(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      s.assignment.emplace_back(vars[v].name,
                                vars[v].choices[prefix[v]].label);
    }
    s.values.reserve(problem.objective_count());
    for (std::size_t o = 0; o < problem.objective_count(); ++o) {
      XPDL_ASSIGN_OR_RETURN(double value, problem.objective_value(o, prefix));
      s.values.push_back(value);
    }
    s.value = s.values[target_a];
    return s;
  }

  void accept_leaf() {
    ++stats.leaves;
    if (!problem.feasible(prefix)) return;
    auto solution = leaf_solution();
    if (!solution.is_ok()) return;  // an objective errors: infeasible
    Solution s = std::move(solution).value();
    switch (mode) {
      case Mode::kMinimize:
        // Strictly better only: ties keep the earlier (lexicographically
        // first) witness.
        if (pool.empty() || s.value < pool.front().value) {
          pool.assign(1, std::move(s));
          ++stats.incumbents;
        }
        break;
      case Mode::kTop: {
        if (pool.size() >= top_n && !(s.value < pool.back().value)) break;
        // upper_bound keeps arrival (= lexicographic) order among equal
        // values.
        auto at = std::upper_bound(
            pool.begin(), pool.end(), s.value,
            [](double v, const Solution& q) { return v < q.value; });
        pool.insert(at, std::move(s));
        if (pool.size() > top_n) pool.pop_back();
        ++stats.incumbents;
        break;
      }
      case Mode::kPareto: {
        const double a = s.values[target_a];
        const double b = s.values[target_b];
        for (const Solution& q : pool) {
          if (q.values[target_a] <= a && q.values[target_b] <= b) {
            return;  // weakly dominated (covers exact duplicates)
          }
        }
        std::erase_if(pool, [&](const Solution& q) {
          return a <= q.values[target_a] && b <= q.values[target_b];
        });
        pool.push_back(std::move(s));
        ++stats.incumbents;
        break;
      }
    }
  }

  // -- node pruning ---------------------------------------------------------

  /// Lower bound of objective `o` over the remaining live choices; empty
  /// optional when every completion errors (expression objectives only).
  std::optional<double> lower_bound(
      std::size_t o, const std::vector<std::vector<std::size_t>>& live) {
    const auto& obj = problem.objective(o);
    const auto& vars = problem.variables();
    if (obj.expression.has_value()) {
      std::vector<Interval> box(vars.size());
      for (std::size_t v = 0; v < vars.size(); ++v) {
        double lo = kInf;
        double hi = -kInf;
        for (std::size_t c : live[v]) {
          lo = std::min(lo, vars[v].choices[c].value);
          hi = std::max(hi, vars[v].choices[c].value);
        }
        box[v] = {lo, hi};
      }
      const Tape& tape = *compiled[o].tape;
      const Interval r = forward_eval(tape, tape.root, box);
      if (r.is_empty()) return std::nullopt;
      return r.lo;
    }
    // Table: the per-variable minima combine monotonically, and summing in
    // variable order under IEEE rounding never exceeds the exact sum at
    // any completion built from the same choices.
    double acc = obj.constant;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      double m = kInf;
      for (std::size_t c : live[v]) m = std::min(m, obj.terms[v][c]);
      acc = obj.combine == Combine::kSum ? acc + m : std::max(acc, m);
    }
    return acc;
  }

  /// True when the subtree cannot contain an accepted point. Branches on
  /// the mode's acceptance rule with the lower bounds of the minimized
  /// objectives.
  bool bound_pruned(const std::vector<double>& lb) {
    switch (mode) {
      case Mode::kMinimize:
      case Mode::kTop:
        return !(lb[0] < scalar_bound());
      case Mode::kPareto: {
        const double a = lb[0];
        const double b = lb[1];
        for (const Solution& q : pool) {
          if (q.values[target_a] <= a && q.values[target_b] <= b) return true;
        }
        return false;
      }
    }
    return false;
  }

  /// Runs solve propagation on the mirror over the live values and filters
  /// the live sets in place. Returns false when the node is infeasible.
  bool propagate(std::vector<std::vector<std::size_t>>& live) {
    const auto& vars = problem.variables();
    for (std::size_t v = 0; v < vars.size(); ++v) {
      std::vector<double> values;
      values.reserve(live[v].size());
      for (std::size_t c : live[v]) values.push_back(vars[v].choices[c].value);
      mirror.base.set_domain(v, solve::Domain::values(std::move(values)));
    }
    for (const auto& [fv, value] : mirror.fixed) {
      mirror.base.set_domain(fv, solve::Domain::singleton(value));
    }
    if (mirror.bound_var >= 0) {
      mirror.base.set_domain(static_cast<std::size_t>(mirror.bound_var),
                             solve::Domain::singleton(scalar_bound()));
    }
    ++stats.propagations;
    if (!propagator.prune(mirror.base)) return false;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const solve::Domain& d = mirror.base.domain(v);
      std::erase_if(live[v], [&](std::size_t c) {
        return !d.contains(vars[v].choices[c].value);
      });
      if (live[v].empty()) return false;
    }
    return true;
  }

  // -- the walk -------------------------------------------------------------

  void dfs(std::size_t depth, std::vector<std::vector<std::size_t>> live) {
    if (exhausted) return;
    if (++stats.nodes > options.max_nodes) {
      exhausted = true;
      return;
    }
    if (mirror.active && !propagate(live)) {
      ++stats.pruned_infeasible;
      return;
    }
    std::vector<double> lb;
    lb.reserve(bounded.size());
    for (std::size_t i = 0; i < bounded.size(); ++i) {
      const std::size_t o = bounded[i];
      const auto bound = lower_bound(o, live);
      if (!bound.has_value()) {
        ++stats.pruned_infeasible;  // the objective errors everywhere
        return;
      }
      const auto& limit = problem.objective(o).limit;
      if (limit.has_value() && *bound > *limit) {
        ++stats.pruned_infeasible;
        return;
      }
      lb.push_back(*bound);
    }
    if (bound_pruned(lb)) {
      ++stats.pruned_bound;
      return;
    }
    if (depth == problem.variables().size()) {
      accept_leaf();
      return;
    }
    std::vector<std::size_t> branch = std::move(live[depth]);
    for (std::size_t c : branch) {
      live[depth].assign(1, c);
      prefix.push_back(c);
      dfs(depth + 1, live);
      prefix.pop_back();
      if (exhausted) return;
    }
  }

  Status run_branch_and_bound() {
    XPDL_RETURN_IF_ERROR(prepare());
    XPDL_RETURN_IF_ERROR(build_mirror());
    const auto& vars = problem.variables();
    std::vector<std::vector<std::size_t>> live(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      live[v].resize(vars[v].choices.size());
      for (std::size_t c = 0; c < live[v].size(); ++c) live[v][c] = c;
    }
    prefix.clear();
    prefix.reserve(vars.size());
    dfs(0, std::move(live));
    return Status::ok();
  }

  Status run_exhaustive() {
    XPDL_RETURN_IF_ERROR(prepare());
    const std::uint64_t points = problem.space_size();
    if (points > options.max_exhaustive_points) {
      return Status(ErrorCode::kInvalidArgument,
                    "choice space of " + std::to_string(points) +
                        " points exceeds the exhaustive backend's limit of " +
                        std::to_string(options.max_exhaustive_points));
    }
    const auto& vars = problem.variables();
    prefix.assign(vars.size(), 0);
    while (true) {
      ++stats.nodes;
      accept_leaf();
      // Lexicographic odometer: the last variable spins fastest.
      std::size_t v = vars.size();
      while (v > 0) {
        --v;
        if (++prefix[v] < vars[v].choices.size()) break;
        prefix[v] = 0;
        if (v == 0) return Status::ok();
      }
      if (vars.empty()) return Status::ok();
    }
  }

  Status run(Backend backend) {
    return backend == Backend::kExhaustive ? run_exhaustive()
                                           : run_branch_and_bound();
  }
};

void record(std::string_view api, const Stats& stats) {
  XPDL_OBS_COUNT("opt.queries", 1);
  XPDL_OBS_COUNT(api, 1);
  XPDL_OBS_COUNT("opt.nodes", static_cast<std::int64_t>(stats.nodes));
  XPDL_OBS_COUNT("opt.leaves", static_cast<std::int64_t>(stats.leaves));
  XPDL_OBS_COUNT("opt.pruned_bound",
                 static_cast<std::int64_t>(stats.pruned_bound));
  XPDL_OBS_COUNT("opt.pruned_infeasible",
                 static_cast<std::int64_t>(stats.pruned_infeasible));
  XPDL_OBS_COUNT("opt.propagations",
                 static_cast<std::int64_t>(stats.propagations));
  XPDL_OBS_COUNT("opt.incumbents",
                 static_cast<std::int64_t>(stats.incumbents));
}

Status check_objective(const Problem& problem, std::size_t objective) {
  if (objective >= problem.objective_count()) {
    return Status(ErrorCode::kInvalidArgument,
                  "objective index " + std::to_string(objective) +
                      " out of range (" +
                      std::to_string(problem.objective_count()) +
                      " objectives)");
  }
  return Status::ok();
}

}  // namespace

Result<MinimizeResult> Optimizer::minimize(const Problem& problem,
                                           std::size_t objective) const {
  XPDL_RETURN_IF_ERROR(check_objective(problem, objective));
  Search search(problem, options_);
  search.mode = Mode::kMinimize;
  search.target_a = objective;
  XPDL_RETURN_IF_ERROR(search.run(options_.backend));
  record("opt.minimize", search.stats);
  MinimizeResult result;
  result.stats = search.stats;
  result.exhausted_budget = search.exhausted;
  if (!search.pool.empty()) result.best = std::move(search.pool.front());
  return result;
}

Result<std::vector<Solution>> Optimizer::minimize_top(const Problem& problem,
                                                      std::size_t objective,
                                                      std::size_t n) const {
  XPDL_RETURN_IF_ERROR(check_objective(problem, objective));
  if (n == 0) return std::vector<Solution>{};
  Search search(problem, options_);
  search.mode = Mode::kTop;
  search.target_a = objective;
  search.top_n = n;
  XPDL_RETURN_IF_ERROR(search.run(options_.backend));
  record("opt.top", search.stats);
  if (search.exhausted) {
    return Status(ErrorCode::kUnavailable,
                  "optimization exceeded the node budget");
  }
  return std::move(search.pool);
}

Result<ParetoResult> Optimizer::pareto(const Problem& problem,
                                       std::size_t objective_a,
                                       std::size_t objective_b) const {
  XPDL_RETURN_IF_ERROR(check_objective(problem, objective_a));
  XPDL_RETURN_IF_ERROR(check_objective(problem, objective_b));
  if (objective_a == objective_b) {
    return Status(ErrorCode::kInvalidArgument,
                  "pareto needs two distinct objectives");
  }
  Search search(problem, options_);
  search.mode = Mode::kPareto;
  search.target_a = objective_a;
  search.target_b = objective_b;
  XPDL_RETURN_IF_ERROR(search.run(options_.backend));
  record("opt.pareto", search.stats);
  ParetoResult result;
  result.stats = search.stats;
  result.exhausted_budget = search.exhausted;
  result.front = std::move(search.pool);
  // The canonical staircase: first objective ascending. Ties cannot
  // survive in the archive (equal-a points dominate one another), so the
  // order is total.
  std::sort(result.front.begin(), result.front.end(),
            [&](const Solution& x, const Solution& y) {
              return x.values[objective_a] < y.values[objective_a];
            });
  return result;
}

}  // namespace xpdl::opt
