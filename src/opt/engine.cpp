// Compiling XPDL models into opt::Problems (see include/xpdl/opt/engine.h):
// the DVFS batch engine, PEPPHER-style variant selection, and the ranked
// configuration space shared by `xpdlc --configurations=best` and the
// server's `mode=best`.

#include <algorithm>
#include <functional>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "xpdl/compose/compose.h"
#include "xpdl/model/ir.h"
#include "xpdl/opt/engine.h"
#include "xpdl/util/strings.h"

namespace xpdl::opt {

namespace {

/// True when `name` is `prototype` followed by a member rank — how
/// `PowerDomainSet::expanded()` names group members (core_pd0, core_pd1).
bool is_group_member(std::string_view name, std::string_view prototype) {
  if (name.size() <= prototype.size()) return false;
  if (name.substr(0, prototype.size()) != prototype) return false;
  for (char c : name.substr(prototype.size())) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

Result<Engine> Engine::from_power_model(const model::PowerModel& pm) {
  Engine e;
  const std::vector<model::PowerDomain> expanded =
      pm.domains.has_value() ? pm.domains->expanded()
                             : std::vector<model::PowerDomain>{};
  for (const model::PowerStateMachine& m : pm.state_machines) {
    std::vector<StateRate> rates;
    for (const model::PowerState& s : m.states) {
      if (s.frequency_hz <= 0.0) continue;  // sleep states are not runnable
      rates.push_back({s.name, s.frequency_hz, s.power_w / s.frequency_hz,
                       1.0 / s.frequency_hz});
    }
    if (rates.empty()) continue;  // nothing to choose for this machine
    const std::size_t machine = e.rates_.size();
    e.rates_.push_back(std::move(rates));
    std::size_t matched = 0;
    for (const model::PowerDomain& d : expanded) {
      if (d.name == m.power_domain ||
          is_group_member(d.name, m.power_domain)) {
        e.instances_.push_back({d.name, machine});
        ++matched;
      }
    }
    if (matched == 0) {
      // No declared domain instance: the machine still governs one
      // anonymous instance (descriptors without a <power_domains> set).
      e.instances_.push_back(
          {m.power_domain.empty() ? m.name : m.power_domain, machine});
    }
  }
  if (e.instances_.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "power model '" + pm.identity.name +
                      "' has no runnable power states to optimize over");
  }
  e.domains_.reserve(e.instances_.size());
  for (const Instance& i : e.instances_) e.domains_.push_back(i.name);
  return e;
}

Result<Engine> Engine::from_element(const xml::Element& root) {
  std::vector<model::PowerModel> models;
  const std::function<Status(const xml::Element&)> visit =
      [&](const xml::Element& e) -> Status {
    if (e.tag() == "power_model") {
      XPDL_ASSIGN_OR_RETURN(model::PowerModel pm, model::PowerModel::parse(e));
      models.push_back(std::move(pm));
      return Status::ok();
    }
    for (const auto& child : e.children()) {
      XPDL_RETURN_IF_ERROR(visit(*child));
    }
    return Status::ok();
  };
  XPDL_RETURN_IF_ERROR(visit(root));
  if (models.empty()) {
    return Status(ErrorCode::kNotFound,
                  "no <power_model> element in the model");
  }
  Engine joint;
  for (const model::PowerModel& pm : models) {
    auto part = from_power_model(pm);
    if (!part.is_ok()) {
      if (models.size() == 1) return part.status();
      continue;  // a model without runnable states adds no variables
    }
    Engine& e = part.value();
    const std::size_t base = joint.rates_.size();
    for (auto& r : e.rates_) joint.rates_.push_back(std::move(r));
    for (Instance& i : e.instances_) {
      // Disambiguate colliding instance names across models.
      std::string name = i.name;
      while (std::any_of(joint.instances_.begin(), joint.instances_.end(),
                         [&](const Instance& j) { return j.name == name; })) {
        name = pm.identity.name + "." + name;
      }
      joint.instances_.push_back({std::move(name), base + i.machine});
    }
  }
  if (joint.instances_.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "no power model has a runnable power state");
  }
  joint.domains_.reserve(joint.instances_.size());
  for (const Instance& i : joint.instances_) joint.domains_.push_back(i.name);
  return joint;
}

Result<Problem> Engine::compile(const DvfsQuery& query) const {
  Problem p;
  std::vector<std::vector<double>> energy(instances_.size());
  std::vector<std::vector<double>> time(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    double cycles = query.cycles;
    if (auto it = query.cycles_by_domain.find(inst.name);
        it != query.cycles_by_domain.end()) {
      cycles = it->second;
    }
    if (!(cycles >= 0.0) || !std::isfinite(cycles)) {
      return Status(ErrorCode::kInvalidArgument,
                    "cycle count for domain '" + inst.name +
                        "' must be finite and nonnegative");
    }
    const std::vector<StateRate>& rates = rates_[inst.machine];
    std::vector<Choice> choices;
    choices.reserve(rates.size());
    energy[i].reserve(rates.size());
    time[i].reserve(rates.size());
    for (const StateRate& r : rates) {
      choices.push_back({r.name, r.frequency_hz});
      energy[i].push_back(cycles * r.joules_per_cycle);
      time[i].push_back(cycles * r.seconds_per_cycle);
    }
    p.add_variable(inst.name, std::move(choices));
  }
  XPDL_ASSIGN_OR_RETURN(
      std::size_t eo,
      p.add_table_objective("energy_j", Combine::kSum, std::move(energy)));
  XPDL_ASSIGN_OR_RETURN(
      std::size_t to,
      p.add_table_objective("time_s", Combine::kMax, std::move(time)));
  (void)eo;
  (void)to;
  if (query.deadline_s > 0.0) p.add_limit(kMakespanObjective, query.deadline_s);
  return p;
}

DvfsPlan Engine::to_plan(const DvfsQuery& query,
                         const Solution& solution) const {
  DvfsPlan plan;
  plan.feasible = true;
  plan.energy_j = solution.values[kEnergyObjective];
  plan.time_s = solution.values[kMakespanObjective];
  plan.per_domain.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    double cycles = query.cycles;
    if (auto it = query.cycles_by_domain.find(inst.name);
        it != query.cycles_by_domain.end()) {
      cycles = it->second;
    }
    const StateRate& r = rates_[inst.machine][solution.choice[i]];
    plan.per_domain.push_back({inst.name, r.name, cycles * r.seconds_per_cycle,
                               cycles * r.joules_per_cycle});
  }
  return plan;
}

Result<DvfsPlan> Engine::minimize_energy(
    const DvfsQuery& query, const Optimizer::Options& options) const {
  XPDL_ASSIGN_OR_RETURN(Problem problem, compile(query));
  Optimizer optimizer(options);
  XPDL_ASSIGN_OR_RETURN(MinimizeResult result,
                        optimizer.minimize(problem, kEnergyObjective));
  if (result.exhausted_budget) {
    return Status(ErrorCode::kUnavailable,
                  "optimization exceeded the node budget");
  }
  if (!result.best.has_value()) {
    DvfsPlan plan;
    plan.stats = result.stats;
    return plan;  // feasible == false: no state meets the deadline
  }
  DvfsPlan plan = to_plan(query, *result.best);
  plan.stats = result.stats;
  return plan;
}

Result<std::vector<DvfsPlan>> Engine::pareto(
    const DvfsQuery& query, const Optimizer::Options& options) const {
  XPDL_ASSIGN_OR_RETURN(Problem problem, compile(query));
  Optimizer optimizer(options);
  XPDL_ASSIGN_OR_RETURN(
      ParetoResult result,
      optimizer.pareto(problem, kEnergyObjective, kMakespanObjective));
  if (result.exhausted_budget) {
    return Status(ErrorCode::kUnavailable,
                  "optimization exceeded the node budget");
  }
  std::vector<DvfsPlan> plans;
  plans.reserve(result.front.size());
  for (const Solution& s : result.front) {
    DvfsPlan plan = to_plan(query, s);
    plan.stats = result.stats;
    plans.push_back(std::move(plan));
  }
  return plans;
}

Result<Problem> variant_problem(
    const std::map<std::string, std::vector<Variant>, std::less<>>&
        components) {
  if (components.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "variant selection needs at least one component");
  }
  Problem p;
  std::vector<std::vector<double>> energy;
  std::vector<std::vector<double>> time;
  for (const auto& [component, variants] : components) {
    if (variants.empty()) {
      return Status(ErrorCode::kInvalidArgument,
                    "component '" + component + "' has no variants");
    }
    std::vector<Choice> choices;
    std::vector<double> e;
    std::vector<double> t;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      // The choice value is the variant's rank, so constraints can pin or
      // exclude variants by index.
      choices.push_back({variants[i].name, static_cast<double>(i)});
      e.push_back(variants[i].energy_j);
      t.push_back(variants[i].time_s);
    }
    p.add_variable(component, std::move(choices));
    energy.push_back(std::move(e));
    time.push_back(std::move(t));
  }
  XPDL_ASSIGN_OR_RETURN(
      std::size_t energy_index,
      p.add_table_objective("energy_j", Combine::kSum, std::move(energy)));
  XPDL_ASSIGN_OR_RETURN(
      std::size_t time_index,
      p.add_table_objective("time_s", Combine::kMax, std::move(time)));
  (void)energy_index;
  (void)time_index;
  return p;
}

namespace {

/// The configuration problem plus the open-parameter variable indices —
/// what `rank_configurations` reports (bound params stay out of the
/// result, exactly like `compose::enumerate_configurations`).
struct ConfigurationBuild {
  Problem problem;
  std::vector<std::size_t> open_vars;
};

Result<ConfigurationBuild> build_configuration(
    const xml::Element& meta, repository::Repository* repo,
    const expr::Expression& objective) {
  // Flatten inheritance when possible so inherited params and constraints
  // participate, mirroring compose::enumerate_configurations.
  std::unique_ptr<xml::Element> flattened;
  const xml::Element* source = &meta;
  if (repo != nullptr && meta.has_attribute("extends")) {
    compose::Composer composer(*repo, [] {
      compose::Options o;
      o.require_bound_params = false;
      o.run_static_analysis = false;
      return o;
    }());
    XPDL_ASSIGN_OR_RETURN(compose::ComposedModel composed,
                          composer.compose(meta));
    flattened = composed.root().clone();
    source = flattened.get();
  }

  ConfigurationBuild build;
  XPDL_ASSIGN_OR_RETURN(model::ParamScope scope,
                        model::parse_param_scope(*source));
  const auto have = [&](std::string_view name) {
    for (const DecisionVariable& v : build.problem.variables()) {
      if (v.name == name) return true;
    }
    return false;
  };
  for (const model::Param& p : scope.params) {
    if (have(p.name)) continue;  // first declaration wins
    if (p.is_bound()) {
      build.problem.add_variable(
          p.name, {{strings::format("%g", *p.value_si), *p.value_si}});
    } else if (p.configurable && !p.range_si.empty()) {
      std::vector<Choice> choices;
      choices.reserve(p.range_si.size());
      for (double v : p.range_si) {
        choices.push_back({strings::format("%g", v), v});
      }
      build.open_vars.push_back(
          build.problem.add_variable(p.name, std::move(choices)));
    }
  }
  for (const model::Constraint& c : scope.constraints) {
    XPDL_ASSIGN_OR_RETURN(std::size_t constraint_index,
                          build.problem.add_constraint(c.expression));
    (void)constraint_index;
  }
  XPDL_ASSIGN_OR_RETURN(
      std::size_t objective_index,
      build.problem.add_expression_objective("objective", objective));
  (void)objective_index;
  return build;
}

}  // namespace

Result<Problem> configuration_problem(const xml::Element& meta,
                                      repository::Repository* repo,
                                      const expr::Expression& objective) {
  XPDL_ASSIGN_OR_RETURN(ConfigurationBuild build,
                        build_configuration(meta, repo, objective));
  return std::move(build.problem);
}

Result<std::vector<RankedConfiguration>> rank_configurations(
    const xml::Element& meta, repository::Repository* repo,
    const expr::Expression& objective, std::size_t n,
    const Optimizer::Options& options) {
  XPDL_ASSIGN_OR_RETURN(ConfigurationBuild build,
                        build_configuration(meta, repo, objective));
  Optimizer optimizer(options);
  XPDL_ASSIGN_OR_RETURN(std::vector<Solution> top,
                        optimizer.minimize_top(build.problem, 0, n));
  std::vector<RankedConfiguration> ranked;
  ranked.reserve(top.size());
  for (const Solution& s : top) {
    RankedConfiguration rc;
    rc.objective = s.value;
    for (std::size_t v : build.open_vars) {
      rc.values_si.emplace(build.problem.variables()[v].name,
                           build.problem.variables()[v].choices[s.choice[v]]
                               .value);
    }
    ranked.push_back(std::move(rc));
  }
  return ranked;
}

}  // namespace xpdl::opt
