// opt::Problem — the explicit discrete optimization problem (see
// include/xpdl/opt/opt.h). Exact-evaluation semantics live here; the
// search backends are in optimizer.cpp.

#include <algorithm>
#include <cmath>
#include <map>

#include "xpdl/opt/opt.h"

namespace xpdl::opt {

namespace {

/// Resolver over a full assignment: variable name -> chosen value.
expr::VariableResolver make_resolver(
    const std::vector<DecisionVariable>& vars,
    const std::vector<std::size_t>& point,
    std::map<std::string_view, double>& cache) {
  cache.clear();
  for (std::size_t v = 0; v < vars.size(); ++v) {
    // First variable of a name wins, matching solve::Problem lookups.
    cache.emplace(vars[v].name, vars[v].choices[point[v]].value);
  }
  return [&cache](std::string_view name) -> Result<double> {
    auto it = cache.find(name);
    if (it == cache.end()) {
      return Status(ErrorCode::kUnresolvedRef,
                    "unknown variable '" + std::string(name) + "'");
    }
    return it->second;
  };
}

}  // namespace

std::size_t Problem::add_variable(std::string name,
                                  std::vector<Choice> choices) {
  vars_.push_back({std::move(name), std::move(choices)});
  return vars_.size() - 1;
}

Result<std::size_t> Problem::add_table_objective(
    std::string name, Combine combine, std::vector<std::vector<double>> terms,
    double constant) {
  if (terms.size() != vars_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "objective '" + name + "': " + std::to_string(terms.size()) +
                      " term rows for " + std::to_string(vars_.size()) +
                      " variables");
  }
  for (std::size_t v = 0; v < terms.size(); ++v) {
    if (terms[v].size() != vars_[v].choices.size()) {
      return Status(ErrorCode::kInvalidArgument,
                    "objective '" + name + "': row for variable '" +
                        vars_[v].name + "' has " +
                        std::to_string(terms[v].size()) + " terms for " +
                        std::to_string(vars_[v].choices.size()) + " choices");
    }
  }
  Objective o;
  o.name = std::move(name);
  o.combine = combine;
  o.constant = constant;
  o.terms = std::move(terms);
  objectives_.push_back(std::move(o));
  return objectives_.size() - 1;
}

Result<std::size_t> Problem::add_expression_objective(
    std::string name, const expr::Expression& expression) {
  for (const std::string& ref : expression.variables()) {
    const auto known = [&] {
      for (const DecisionVariable& v : vars_) {
        if (v.name == ref) return true;
      }
      return false;
    }();
    if (!known) {
      return Status(ErrorCode::kUnresolvedRef,
                    "objective '" + name + "' references '" + ref +
                        "', which is not a decision variable");
    }
  }
  Objective o;
  o.name = std::move(name);
  o.expression = expression;
  objectives_.push_back(std::move(o));
  return objectives_.size() - 1;
}

Result<std::size_t> Problem::add_constraint(
    const expr::Expression& expression) {
  for (const std::string& ref : expression.variables()) {
    const auto known = [&] {
      for (const DecisionVariable& v : vars_) {
        if (v.name == ref) return true;
      }
      return false;
    }();
    if (!known) {
      return Status(ErrorCode::kUnresolvedRef,
                    "constraint '" + expression.source() + "' references '" +
                        ref + "', which is not a decision variable");
    }
  }
  constraints_.push_back(expression);
  return constraints_.size() - 1;
}

void Problem::add_limit(std::size_t objective, double max_value) {
  objectives_[objective].limit = max_value;
}

std::int32_t Problem::find_objective(std::string_view name) const noexcept {
  for (std::size_t o = 0; o < objectives_.size(); ++o) {
    if (objectives_[o].name == name) return static_cast<std::int32_t>(o);
  }
  return -1;
}

std::uint64_t Problem::space_size() const noexcept {
  std::uint64_t total = 1;
  for (const DecisionVariable& v : vars_) {
    const std::uint64_t n = v.choices.size();
    if (n == 0) return 0;
    if (total > kHugeSpace / n) return kHugeSpace;
    total *= n;
  }
  return total;
}

Result<double> Problem::objective_value(
    std::size_t objective, const std::vector<std::size_t>& point) const {
  if (point.size() != vars_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "point has " + std::to_string(point.size()) +
                      " choices for " + std::to_string(vars_.size()) +
                      " variables");
  }
  const Objective& o = objectives_[objective];
  if (o.expression.has_value()) {
    std::map<std::string_view, double> cache;
    return o.expression->evaluate(make_resolver(vars_, point, cache));
  }
  double acc = o.constant;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    const double t = o.terms[v][point[v]];
    acc = o.combine == Combine::kSum ? acc + t : std::max(acc, t);
  }
  return acc;
}

bool Problem::feasible(const std::vector<std::size_t>& point) const {
  if (point.size() != vars_.size()) return false;
  std::map<std::string_view, double> cache;
  for (const expr::Expression& c : constraints_) {
    auto holds = c.evaluate_bool(make_resolver(vars_, point, cache));
    if (!holds.is_ok() || !holds.value()) return false;
  }
  for (std::size_t o = 0; o < objectives_.size(); ++o) {
    if (!objectives_[o].limit.has_value()) continue;
    auto value = objective_value(o, point);
    // NaN compares false against the limit, so error points and undefined
    // values are both infeasible here.
    if (!value.is_ok() || !(value.value() <= *objectives_[o].limit)) {
      return false;
    }
  }
  return true;
}

}  // namespace xpdl::opt
