#include "xpdl/net/client.h"

#include <utility>

#include "xpdl/net/socket.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"

namespace xpdl::net {

Result<Response> HttpClient::get(const std::string& url,
                                 const std::vector<Header>& extra_headers) {
  obs::Span span("net.client.get");
  if (span.active()) span.arg("url", url);
  XPDL_ASSIGN_OR_RETURN(Url parsed, parse_url(url));

  Request request;
  request.method = "GET";
  request.target = parsed.path_query;
  request.set_header("Host",
                     parsed.host + ":" + std::to_string(parsed.port));
  request.set_header("User-Agent", "xpdl-net/1");
  request.set_header("Accept", "*/*");
  request.set_header("Connection", "close");
  for (const Header& h : extra_headers) request.set_header(h.name, h.value);

  std::uint64_t start = obs::now_ns();
  XPDL_ASSIGN_OR_RETURN(
      Socket conn, connect_tcp(parsed.host, parsed.port, options_.timeout_ms));
  XPDL_RETURN_IF_ERROR(conn.write_all(write_request(request)));

  // Read the whole exchange to EOF: the server honours our
  // `Connection: close`, so EOF delimits the response even without a
  // Content-Length (and chunked bodies arrive complete).
  std::string raw;
  char chunk[16384];
  for (;;) {
    auto got = conn.read_some(chunk, sizeof chunk);
    if (!got.is_ok()) {
      return std::move(got).status().with_context("reading response from '" +
                                                  url + "'");
    }
    if (*got == 0) break;
    raw.append(chunk, *got);
    if (raw.size() > options_.max_body_bytes + 65536) {
      // Body cap plus header allowance; precise enough for a repository
      // client.
      return Status(ErrorCode::kIoError,
                    "response from '" + url + "' exceeds the size cap");
    }
  }

  std::size_t head_end = find_head_end(raw);
  if (head_end == std::string::npos) {
    return Status(ErrorCode::kUnavailable,
                  "truncated response from '" + url + "'");
  }
  auto response = parse_response_head(raw.substr(0, head_end));
  if (!response.is_ok()) {
    return std::move(response).status().with_context(
        "parsing response from '" + url + "'");
  }
  std::string_view rest = std::string_view(raw).substr(head_end);
  if (iequals(response->header("Transfer-Encoding"), "chunked")) {
    auto body = decode_chunked(rest);
    if (!body.is_ok()) {
      return std::move(body).status().with_context(
          "decoding chunked response from '" + url + "'");
    }
    response->body = std::move(*body);
  } else if (!response->header("Content-Length").empty()) {
    XPDL_ASSIGN_OR_RETURN(std::size_t length, content_length(*response));
    if (rest.size() < length) {
      return Status(ErrorCode::kUnavailable,
                    "truncated response body from '" + url + "' (" +
                        std::to_string(rest.size()) + " of " +
                        std::to_string(length) + " bytes)");
    }
    response->body = std::string(rest.substr(0, length));
  } else {
    response->body = std::string(rest);
  }

  XPDL_OBS_COUNT("net.client.requests", 1);
  XPDL_OBS_COUNT("net.client.bytes_received", raw.size());
  static obs::Histogram& latency = obs::histogram("net.client.request_us");
  latency.record((obs::now_ns() - start) / 1000);
  if (span.active()) span.arg("status", std::uint64_t{
                                  static_cast<std::uint64_t>(response->status)});
  return std::move(*response);
}

}  // namespace xpdl::net
