#include "xpdl/net/repo_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "xpdl/cache/cache.h"
#include "xpdl/compose/compose.h"
#include "xpdl/obs/eventlog.h"
#include "xpdl/obs/flight.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/prometheus.h"
#include "xpdl/obs/trace.h"
#include "xpdl/query/query.h"
#include "xpdl/runtime/model.h"
#include "xpdl/util/io.h"
#include "xpdl/util/json.h"
#include "xpdl/util/strings.h"
#include "xpdl/xml/xml.h"

namespace xpdl::net {

namespace {

[[nodiscard]] int status_for_error(const Status& status) noexcept {
  switch (status.code()) {
    case ErrorCode::kUnresolvedRef:
    case ErrorCode::kNotFound:
      return 404;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kParseError:
      return 400;
    case ErrorCode::kConstraintViolation:
      return 409;  // e.g. a configuration space beyond the enumeration limit
    case ErrorCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

[[nodiscard]] Response from_status(const Status& status) {
  Response response = error_response(status_for_error(status),
                                     status.to_string());
  return response;
}

/// True when the If-None-Match header revalidates `etag`.
[[nodiscard]] bool etag_matches(const Request& request,
                                std::string_view etag) noexcept {
  std::string_view header = request.header("If-None-Match");
  if (header.empty()) return false;
  if (header == "*") return true;
  // A comma-separated list of entity tags; exact strong comparison.
  std::size_t pos = 0;
  while (pos < header.size()) {
    std::size_t comma = header.find(',', pos);
    if (comma == std::string_view::npos) comma = header.size();
    std::string_view candidate = header.substr(pos, comma - pos);
    while (!candidate.empty() && candidate.front() == ' ') {
      candidate.remove_prefix(1);
    }
    while (!candidate.empty() && candidate.back() == ' ') {
      candidate.remove_suffix(1);
    }
    if (candidate == etag) return true;
    pos = comma + 1;
  }
  return false;
}

[[nodiscard]] Response not_modified(std::string_view etag) {
  Response response;
  response.status = 304;
  response.set_header("ETag", etag);
  return response;
}

void add_histogram(json::Value& out, const obs::Histogram& h) {
  out["count"] = h.count();
  out["mean"] = h.mean();
  out["p50"] = h.percentile(0.50);
  out["p95"] = h.percentile(0.95);
  out["p99"] = h.percentile(0.99);
  out["max"] = h.max();
}

/// RED metrics (rate, errors, duration) per endpoint, under
/// net.server.ep.<endpoint>.*. Uses the registry's by-name lookup rather
/// than cached references: the set of endpoints is open-ended and the
/// lookup lock is cheap next to the socket round trip.
void record_endpoint(std::string_view endpoint, int status,
                     std::uint64_t duration_us) {
  std::string base = "net.server.ep.";
  base += endpoint;
  obs::counter(base + ".requests").add(1);
  if (status >= 500) {
    obs::counter(base + ".errors_5xx").add(1);
  } else if (status >= 400) {
    obs::counter(base + ".errors_4xx").add(1);
  }
  obs::histogram(base + ".duration_us").record(duration_us);
}

/// Shared 503 shape for budget exhaustion: the client should back off
/// briefly and retry, exactly as for an admission-control shed.
[[nodiscard]] Response deadline_exceeded_response(std::string_view where) {
  XPDL_OBS_COUNT("net.server.deadline_exceeded", 1);
  Response response = error_response(
      503, "request deadline exceeded " + std::string(where));
  response.set_header("Retry-After", "1");
  return response;
}

/// True when the request's Accept header asks for the Prometheus text
/// exposition rather than the default JSON: any listed media range of
/// text/plain or text/* does (a plain scrape sends `Accept: text/plain`
/// or a quality list; Prometheus itself accepts the 0.0.4 content type).
[[nodiscard]] bool wants_prometheus(const Request& request) noexcept {
  std::string_view accept = request.header("Accept");
  return accept.find("text/plain") != std::string_view::npos ||
         accept.find("text/*") != std::string_view::npos;
}

}  // namespace

std::string strong_etag(std::string_view bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "\"h%016llx\"",
                static_cast<unsigned long long>(cache::fnv1a64(bytes)));
  return std::string(buf);
}

Response error_response(int status, std::string_view message) {
  Response response;
  response.status = status;
  json::Value body;
  body["error"] = std::string(to_string(error_code_for_status(status)));
  body["message"] = std::string(message);
  body["status"] = status;
  response.body = json::write(body) + "\n";
  response.set_header("Content-Type", "application/json");
  return response;
}

Result<std::unique_ptr<RepoService>> RepoService::create(
    std::vector<std::string> roots, const repository::ScanOptions& scan,
    repository::ScanReport* report) {
  obs::Span span("net.service.create");
  auto service = std::unique_ptr<RepoService>(new RepoService());
  service->repo_ = std::make_unique<repository::Repository>(std::move(roots));
  XPDL_ASSIGN_OR_RETURN(repository::ScanReport scan_report,
                        service->repo_->scan(scan));
  if (report != nullptr) *report = std::move(scan_report);

  // Load every indexed descriptor's raw bytes once: the descriptor
  // endpoint serves them verbatim, so a remote scan sees byte-identical
  // content (and the same content-hash keys) as a local one.
  json::Value index;
  json::Array listing;
  for (const repository::DescriptorInfo& info :
       service->repo_->descriptors()) {
    ServedDescriptor served;
    served.info = info;
    if (info.path == "<memory>") {
      auto element = service->repo_->lookup(info.reference_name);
      if (!element.is_ok()) return std::move(element).status();
      served.bytes = xml::write(**element);
    } else {
      XPDL_ASSIGN_OR_RETURN(served.bytes, io::read_file(info.path));
    }
    served.etag = strong_etag(served.bytes);

    json::Value entry;
    entry["name"] = info.reference_name;
    entry["tag"] = info.tag;
    entry["meta"] = info.is_meta;
    entry["etag"] = served.etag;
    entry["path"] = "/v1/descriptors/" + url_encode(info.reference_name);
    entry["bytes"] = std::uint64_t{served.bytes.size()};
    listing.push_back(std::move(entry));
    service->descriptors_.emplace(info.reference_name, std::move(served));
  }
  index["count"] = std::uint64_t{service->descriptors_.size()};
  index["descriptors"] = std::move(listing);
  service->index_json_ = json::write(index, 2) + "\n";
  XPDL_OBS_GAUGE_SET("net.server.descriptors",
                     static_cast<double>(service->descriptors_.size()));
  return service;
}

Response RepoService::handle(const Request& request) {
  std::uint64_t start = obs::now_ns();
  std::string_view endpoint = "other";
  Response response = [&]() -> Response {
    std::string path = url_decode(request.path());
    constexpr std::string_view kOptimize = "/v1/optimize/";
    const bool is_optimize = path.rfind(kOptimize, 0) == 0;
    // Every endpoint is GET except /v1/optimize, which takes a JSON body
    // (the handler itself rejects non-POST methods there).
    if (request.method != "GET" && !is_optimize) {
      Response r = error_response(
          405, "only GET is supported by the model repository");
      r.set_header("Allow", "GET");
      return r;
    }
    // The cooperative half of the server's deadline contract: a request
    // whose budget is already spent (queueing, header read, body read)
    // is answered 503 before any expensive work starts.
    if (request.budget.expired()) {
      return deadline_exceeded_response("before handling began");
    }
    if (is_optimize) {
      endpoint = "optimize";
      return handle_optimize(
          request, std::string_view(path).substr(kOptimize.size()));
    }
    if (path == "/healthz") {
      endpoint = "healthz";
      Response r;
      r.body = (draining_ && draining_()) ? "draining\n" : "ok\n";
      r.set_header("Content-Type", "text/plain; charset=utf-8");
      return r;
    }
    if (path == "/metrics") {
      endpoint = "metrics";
      return handle_metrics(request);
    }
    if (path == "/debug/flight") {
      endpoint = "flight";
      return handle_flight();
    }
    if (path == "/v1/index") {
      endpoint = "index";
      return handle_index(request);
    }
    if (constexpr std::string_view kDescriptors = "/v1/descriptors/";
        path.rfind(kDescriptors, 0) == 0) {
      endpoint = "descriptors";
      return handle_descriptor(
          request, std::string_view(path).substr(kDescriptors.size()));
    }
    if (constexpr std::string_view kModels = "/v1/models/";
        path.rfind(kModels, 0) == 0) {
      endpoint = "models";
      return handle_model(request,
                          std::string_view(path).substr(kModels.size()));
    }
    if (path == "/v1/query") {
      endpoint = "query";
      return handle_query(request);
    }
    if (constexpr std::string_view kConfigure = "/v1/configure/";
        path.rfind(kConfigure, 0) == 0) {
      endpoint = "configure";
      return handle_configure(
          request, std::string_view(path).substr(kConfigure.size()));
    }
    return error_response(404, "no such endpoint: '" + path + "'");
  }();
  record_endpoint(endpoint, response.status,
                  (obs::now_ns() - start) / 1000);
  return response;
}

Response RepoService::handle_index(const Request& request) const {
  XPDL_OBS_COUNT("net.server.index_requests", 1);
  std::string etag = strong_etag(index_json_);
  if (etag_matches(request, etag)) return not_modified(etag);
  Response response;
  response.body = index_json_;
  response.set_header("Content-Type", "application/json");
  response.set_header("ETag", std::move(etag));
  return response;
}

Response RepoService::handle_descriptor(const Request& request,
                                        std::string_view name) {
  auto it = descriptors_.find(name);
  if (it == descriptors_.end()) {
    XPDL_OBS_COUNT("net.server.descriptor_misses", 1);
    return error_response(
        404, "no descriptor named '" + std::string(name) + "'");
  }
  const ServedDescriptor& served = it->second;
  if (etag_matches(request, served.etag)) {
    XPDL_OBS_COUNT("net.server.descriptor_not_modified", 1);
    return not_modified(served.etag);
  }
  XPDL_OBS_COUNT("net.server.descriptor_hits", 1);
  Response response;
  response.body = served.bytes;
  response.set_header("Content-Type", "application/xml");
  response.set_header("ETag", served.etag);
  response.set_header("X-XPDL-Kind", served.info.is_meta ? "meta" : "model");
  return response;
}

Response RepoService::handle_model(const Request& request,
                                   std::string_view ref) {
  obs::Span span("net.service.model");
  std::lock_guard<std::mutex> lock(compose_mutex_);
  auto it = artifacts_.find(ref);
  if (it == artifacts_.end()) {
    // The cold compose is the slowest path in the service and the lock
    // above can queue requests behind it: re-check the budget now so a
    // request that waited its deadline away sheds instead of composing.
    if (request.budget.expired()) {
      return deadline_exceeded_response("waiting to compose '" +
                                        std::string(ref) + "'");
    }
    XPDL_OBS_COUNT("net.server.model_compiles", 1);
    compose::Composer composer(*repo_);
    auto artifact = composer.compose_runtime(ref);
    if (!artifact.is_ok()) return from_status(artifact.status());
    Artifact entry;
    entry.etag = strong_etag(artifact->bytes);
    entry.bytes = std::move(artifact->bytes);
    it = artifacts_.emplace(std::string(ref), std::move(entry)).first;
    XPDL_OBS_GAUGE_SET("net.server.artifacts_cached",
                       static_cast<double>(artifacts_.size()));
  } else {
    XPDL_OBS_COUNT("net.server.model_memo_hits", 1);
  }
  if (etag_matches(request, it->second.etag)) {
    return not_modified(it->second.etag);
  }
  Response response;
  response.body = it->second.bytes;
  response.set_header("Content-Type", "application/octet-stream");
  response.set_header("ETag", it->second.etag);
  return response;
}

Response RepoService::handle_query(const Request& request) {
  obs::Span span("net.service.query");
  XPDL_OBS_COUNT("net.server.query_requests", 1);
  auto params = parse_query(request.query());
  auto model_it = params.find("model");
  auto q_it = params.find("q");
  if (model_it == params.end() || model_it->second.empty() ||
      q_it == params.end() || q_it->second.empty()) {
    return error_response(
        400, "the query endpoint requires 'model' and 'q' parameters");
  }

  // Reuse the memoized artifact; the runtime model is rebuilt from its
  // bytes (cheap: one arena deserialization). The budget rides along so
  // a cold compose on behalf of a query stays bounded too.
  Request artifact_request;
  artifact_request.budget = request.budget;
  Response artifact = handle_model(artifact_request, model_it->second);
  if (artifact.status != 200) return artifact;
  auto model = runtime::Model::deserialize(artifact.body);
  if (!model.is_ok()) return from_status(model.status());
  auto nodes = query::select(*model, q_it->second);
  if (!nodes.is_ok()) {
    Status st = nodes.status();
    // A malformed query is caller error, not server error.
    return error_response(400, st.to_string());
  }

  json::Value body;
  body["model"] = model_it->second;
  body["query"] = q_it->second;
  body["count"] = std::uint64_t{nodes->size()};
  json::Array results;
  for (const runtime::Node& node : *nodes) {
    json::Value entry;
    entry["tag"] = node.tag();
    if (!node.id().empty()) entry["id"] = node.id();
    if (!node.name().empty()) entry["name"] = node.name();
    if (!node.type().empty()) entry["type"] = node.type();
    results.push_back(std::move(entry));
  }
  body["results"] = std::move(results);
  Response response;
  response.body = json::write(body, 2) + "\n";
  response.set_header("Content-Type", "application/json");
  return response;
}

Response RepoService::handle_configure(const Request& request,
                                       std::string_view ref) {
  obs::Span span("net.service.configure");
  XPDL_OBS_COUNT("net.server.configure_requests", 1);
  auto params = parse_query(request.query());
  std::string mode = "all";
  if (auto it = params.find("mode"); it != params.end()) mode = it->second;
  if (mode != "all" && mode != "first" && mode != "best") {
    return error_response(400, "mode must be 'all', 'first' or 'best'");
  }
  std::size_t limit = 1000;
  if (auto it = params.find("limit"); it != params.end()) {
    auto parsed = strings::parse_uint(it->second);
    if (!parsed.is_ok()) {
      return error_response(400, "limit must be a non-negative integer");
    }
    constexpr std::uint64_t kMaxLimit =
        std::numeric_limits<std::size_t>::max();
    limit = static_cast<std::size_t>(std::min(*parsed, kMaxLimit));
  }
  // Solving shares the composer (inheritance flattening) with the model
  // endpoint; serialize with it and shed expired requests first.
  std::lock_guard<std::mutex> lock(compose_mutex_);
  if (request.budget.expired()) {
    return deadline_exceeded_response("waiting to configure '" +
                                      std::string(ref) + "'");
  }
  auto meta = repo_->lookup(ref);
  if (!meta.is_ok()) return from_status(meta.status());

  json::Value body;
  body["ref"] = std::string(ref);
  body["mode"] = mode;
  auto to_json = [](const compose::Configuration& c) {
    json::Value v;
    for (const auto& [name, value] : c.values_si) v[name] = value;
    return v;
  };
  json::Array configurations;
  if (mode == "best") {
    // Ranked mode: branch-and-bound over the declared space via
    // xpdl::opt — the `limit` best valid configurations by the objective
    // expression, ascending.
    auto obj_it = params.find("objective");
    if (obj_it == params.end() || obj_it->second.empty()) {
      return error_response(
          400, "mode=best requires an 'objective' expression parameter");
    }
    auto objective = expr::Expression::parse(obj_it->second);
    if (!objective.is_ok()) {
      return error_response(400, objective.status().to_string());
    }
    auto ranked = opt::rank_configurations(**meta, repo_.get(), *objective,
                                           std::max<std::size_t>(limit, 1));
    if (!ranked.is_ok()) {
      // The ref resolved above, so an unresolved name here is the
      // caller's objective referencing an unknown parameter.
      if (ranked.status().code() == ErrorCode::kUnresolvedRef) {
        return error_response(400, ranked.status().to_string());
      }
      return from_status(ranked.status());
    }
    body["objective"] = obj_it->second;
    body["satisfiable"] = !ranked->empty();
    body["count"] = std::uint64_t{ranked->size()};
    for (const opt::RankedConfiguration& rc : *ranked) {
      json::Value entry;
      json::Value values;
      for (const auto& [name, value] : rc.values_si) values[name] = value;
      entry["values"] = std::move(values);
      entry["objective"] = rc.objective;
      configurations.push_back(std::move(entry));
    }
  } else if (mode == "first") {
    auto first = compose::first_configuration(**meta, repo_.get());
    if (!first.is_ok()) return from_status(first.status());
    body["satisfiable"] = first->has_value();
    body["count"] = std::uint64_t{first->has_value() ? 1u : 0u};
    if (first->has_value()) configurations.push_back(to_json(**first));
  } else {
    auto all = compose::enumerate_configurations(**meta, repo_.get());
    if (!all.is_ok()) return from_status(all.status());
    body["satisfiable"] = !all->empty();
    body["count"] = std::uint64_t{all->size()};
    for (const compose::Configuration& c : *all) {
      if (configurations.size() >= limit) {
        body["truncated"] = true;
        break;
      }
      configurations.push_back(to_json(c));
    }
  }
  body["configurations"] = std::move(configurations);
  Response response;
  response.body = json::write(body, 2) + "\n";
  response.set_header("Content-Type", "application/json");
  return response;
}

Response RepoService::handle_optimize(const Request& request,
                                      std::string_view ref) {
  obs::Span span("net.service.optimize");
  XPDL_OBS_COUNT("net.server.optimize_requests", 1);
  if (request.method != "POST") {
    Response r = error_response(405, "/v1/optimize requires POST");
    r.set_header("Allow", "POST");
    return r;
  }
  if (ref.empty()) {
    return error_response(400, "/v1/optimize/<ref> requires a model ref");
  }

  // The body is an optional JSON object; an empty body means "minimum
  // energy for the default workload".
  std::string objective = "energy";
  opt::DvfsQuery query;
  query.cycles = 1e9;
  std::vector<expr::Expression> constraints;
  if (!request.body.empty()) {
    auto parsed = json::parse(request.body);
    if (!parsed.is_ok()) {
      return error_response(400, parsed.status().to_string());
    }
    if (!parsed->is_object()) {
      return error_response(400, "the optimize body must be a JSON object");
    }
    if (const json::Value* v = parsed->find("objective")) {
      if (!v->is_string()) {
        return error_response(400, "'objective' must be a string");
      }
      objective = v->as_string();
    }
    if (const json::Value* v = parsed->find("cycles")) {
      if (!v->is_number()) {
        return error_response(400, "'cycles' must be a number");
      }
      query.cycles = v->as_number();
    }
    if (const json::Value* v = parsed->find("deadline_s")) {
      if (!v->is_number()) {
        return error_response(400, "'deadline_s' must be a number");
      }
      query.deadline_s = v->as_number();
    }
    if (const json::Value* v = parsed->find("cycles_by_domain")) {
      if (!v->is_object()) {
        return error_response(
            400, "'cycles_by_domain' must map domain names to numbers");
      }
      for (const auto& [name, cycles] : v->as_object()) {
        if (!cycles.is_number()) {
          return error_response(
              400, "'cycles_by_domain' must map domain names to numbers");
        }
        query.cycles_by_domain[name] = cycles.as_number();
      }
    }
    if (const json::Value* v = parsed->find("constraints")) {
      if (!v->is_array()) {
        return error_response(
            400, "'constraints' must be an array of expression strings");
      }
      for (const json::Value& c : v->as_array()) {
        if (!c.is_string()) {
          return error_response(
              400, "'constraints' must be an array of expression strings");
        }
        auto expression = expr::Expression::parse(c.as_string());
        if (!expression.is_ok()) {
          return error_response(400, expression.status().to_string());
        }
        constraints.push_back(*std::move(expression));
      }
    }
  }
  if (objective != "energy" && objective != "makespan" &&
      objective != "pareto") {
    return error_response(
        400, "objective must be 'energy', 'makespan' or 'pareto'");
  }

  // Engine compilation shares the composer with the model endpoint;
  // serialize with it and shed requests that spent their deadline in the
  // queue. The compiled engine is memoized per ref — the batch-service
  // pattern: every later query only scales cached rates.
  std::lock_guard<std::mutex> lock(compose_mutex_);
  if (request.budget.expired()) {
    return deadline_exceeded_response("waiting to optimize '" +
                                      std::string(ref) + "'");
  }
  auto it = engines_.find(ref);
  if (it == engines_.end()) {
    XPDL_OBS_COUNT("net.server.optimize_compiles", 1);
    compose::Composer composer(*repo_);
    auto composed = composer.compose(ref);
    if (!composed.is_ok()) return from_status(composed.status());
    auto engine = opt::Engine::from_element(composed->root());
    if (!engine.is_ok()) return from_status(engine.status());
    it = engines_.emplace(std::string(ref), *std::move(engine)).first;
  } else {
    XPDL_OBS_COUNT("net.server.optimize_memo_hits", 1);
  }
  const opt::Engine& engine = it->second;

  auto problem = engine.compile(query);
  if (!problem.is_ok()) return from_status(problem.status());
  for (const expr::Expression& c : constraints) {
    // An unknown name in a caller-supplied constraint is caller error;
    // from_status would map kUnresolvedRef to 404 (reserved here for the
    // model ref itself).
    if (auto added = problem->add_constraint(c); !added.is_ok()) {
      return error_response(400, added.status().to_string());
    }
  }

  json::Value body;
  body["ref"] = std::string(ref);
  body["objective"] = objective;
  auto states_json = [](const opt::Solution& s) {
    json::Value states;
    for (const auto& [domain, state] : s.assignment) states[domain] = state;
    return states;
  };
  auto stats_json = [](const opt::Stats& s) {
    json::Value v;
    v["nodes"] = s.nodes;
    v["leaves"] = s.leaves;
    v["pruned_bound"] = s.pruned_bound;
    v["pruned_infeasible"] = s.pruned_infeasible;
    v["propagations"] = s.propagations;
    return v;
  };
  opt::Optimizer optimizer;
  if (objective == "pareto") {
    auto result = optimizer.pareto(*problem, opt::Engine::kEnergyObjective,
                                   opt::Engine::kMakespanObjective);
    if (!result.is_ok()) return from_status(result.status());
    json::Array front;
    for (const opt::Solution& point : result->front) {
      json::Value entry;
      entry["energy_j"] = point.values[opt::Engine::kEnergyObjective];
      entry["time_s"] = point.values[opt::Engine::kMakespanObjective];
      entry["states"] = states_json(point);
      front.push_back(std::move(entry));
    }
    body["count"] = std::uint64_t{result->front.size()};
    body["front"] = std::move(front);
    body["stats"] = stats_json(result->stats);
  } else {
    std::size_t target = objective == "energy"
                             ? opt::Engine::kEnergyObjective
                             : opt::Engine::kMakespanObjective;
    auto result = optimizer.minimize(*problem, target);
    if (!result.is_ok()) return from_status(result.status());
    if (result->exhausted_budget) {
      return error_response(503, "optimization exceeded the node budget");
    }
    body["feasible"] = result->best.has_value();
    if (result->best.has_value()) {
      body["energy_j"] = result->best->values[opt::Engine::kEnergyObjective];
      body["time_s"] = result->best->values[opt::Engine::kMakespanObjective];
      body["states"] = states_json(*result->best);
    }
    body["stats"] = stats_json(result->stats);
  }
  Response response;
  response.body = json::write(body, 2) + "\n";
  response.set_header("Content-Type", "application/json");
  return response;
}

Response RepoService::handle_metrics(const Request& request) const {
  auto counter_value = [](std::string_view name) {
    return obs::Registry::instance().counter(name).value();
  };
  // Exposition-time gauges: cheap derived values refreshed on every
  // scrape so both formats see them.
  std::uint64_t cache_hits = counter_value("cache.hits");
  std::uint64_t cache_misses = counter_value("cache.misses");
  double cache_hit_ratio =
      cache_hits + cache_misses == 0
          ? 0.0
          : static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses);
  XPDL_OBS_GAUGE_SET("cache.hit_ratio", cache_hit_ratio);
  XPDL_OBS_GAUGE_SET(
      "obs.flight.recorded",
      obs::flight_enabled()
          ? static_cast<double>(obs::FlightRecorder::instance().recorded())
          : 0.0);
  XPDL_OBS_GAUGE_SET(
      "obs.eventlog.written",
      static_cast<double>(obs::EventLog::instance().written()));

  // Content negotiation: Prometheus scrapes announce text/plain and get
  // the 0.0.4 text exposition; everything else gets the JSON document.
  if (wants_prometheus(request)) {
    Response response;
    response.body = obs::prometheus_text();
    response.set_header("Content-Type",
                        std::string(obs::kPrometheusContentType));
    return response;
  }

  json::Value counters;
  json::Value gauges;
  json::Value histograms;
  for (const obs::MetricInfo& metric : obs::Registry::instance().metrics()) {
    switch (metric.type) {
      case obs::MetricInfo::Type::kCounter:
        if (metric.counter->value() != 0) {
          counters[metric.name] = metric.counter->value();
        }
        break;
      case obs::MetricInfo::Type::kGauge:
        // Gauges are never skipped when zero: a circuit breaker gauge of
        // 0 means "closed", which is signal, not absence.
        gauges[metric.name] = metric.gauge->value();
        break;
      case obs::MetricInfo::Type::kHistogram:
        if (metric.histogram->count() != 0) {
          add_histogram(histograms[metric.name], *metric.histogram);
        }
        break;
    }
  }
  json::Value body;
  body["counters"] = std::move(counters);
  body["gauges"] = std::move(gauges);
  body["histograms"] = std::move(histograms);

  // Derived convenience block: the numbers a dashboard wants first.
  json::Value server;
  server["requests_total"] = counter_value("net.server.requests");
  server["descriptors_served"] = counter_value("net.server.descriptor_hits");
  server["descriptors_not_modified"] =
      counter_value("net.server.descriptor_not_modified");
  server["cache_hits"] = cache_hits;
  server["cache_misses"] = cache_misses;
  server["cache_hit_ratio"] = cache_hit_ratio;
  // Degradation signals are always present here, even at zero — the
  // counters section elides zero values, but "no request was ever shed"
  // is exactly what an operator dashboard needs to see spelled out.
  server["shed_total"] = counter_value("net.server.shed_total");
  server["deadline_exceeded"] = counter_value("net.server.deadline_exceeded");
  server["inflight"] =
      obs::Registry::instance().gauge("net.server.inflight").value();
  server["drain_us"] =
      obs::Registry::instance().gauge("net.server.drain_us").value();
  body["server"] = std::move(server);

  Response response;
  response.body = json::write(body, 2) + "\n";
  response.set_header("Content-Type", "application/json");
  // The metrics payload grows with the registry; serve it chunked so the
  // transfer-coding path stays exercised in production, not only in
  // tests.
  response.chunked = true;
  return response;
}

Response RepoService::handle_flight() const {
  json::Value body = obs::FlightRecorder::instance().to_json();
  body["enabled"] = obs::flight_enabled();
  Response response;
  response.body = json::write(body, 1) + "\n";
  response.set_header("Content-Type", "application/json");
  return response;
}

}  // namespace xpdl::net
