#include "xpdl/net/server.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "xpdl/net/socket.h"
#include "xpdl/obs/eventlog.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"

namespace xpdl::net {

namespace {

[[nodiscard]] std::size_t default_workers() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return std::min<std::size_t>(hw, 8);
}

[[nodiscard]] Response plain_error(int status, std::string_view message) {
  Response response;
  response.status = status;
  response.set_header("Content-Type", "text/plain; charset=utf-8");
  response.body = std::string(message);
  response.body += '\n';
  return response;
}

void count_status(int status) {
  if (status < 300) {
    XPDL_OBS_COUNT("net.server.status_2xx", 1);
  } else if (status < 400) {
    XPDL_OBS_COUNT("net.server.status_3xx", 1);
  } else if (status < 500) {
    XPDL_OBS_COUNT("net.server.status_4xx", 1);
  } else {
    XPDL_OBS_COUNT("net.server.status_5xx", 1);
  }
}

}  // namespace

struct HttpServer::Impl {
  ServerOptions options;
  Handler handler;
  Listener listener;
  std::vector<std::thread> threads;

  std::mutex mutex;
  std::condition_variable queue_cv;
  std::condition_variable stop_cv;
  std::deque<Socket> pending;
  bool stop_requested = false;
  bool started = false;
  std::atomic<std::uint64_t> served{0};

  void accept_loop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (stop_requested) return;
      }
      bool timed_out = false;
      auto conn = listener.accept_with_timeout(100.0, timed_out);
      if (!conn.is_ok()) return;  // listener closed or fatal
      if (timed_out || !conn->valid()) continue;
      XPDL_OBS_COUNT("net.server.connections", 1);
      std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(std::move(*conn));
      queue_cv.notify_one();
    }
  }

  void worker_loop() {
    for (;;) {
      Socket conn;
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_cv.wait(lock,
                      [&] { return stop_requested || !pending.empty(); });
        if (pending.empty()) return;  // stopping and drained
        conn = std::move(pending.front());
        pending.pop_front();
      }
      serve_connection(conn);
    }
  }

  /// One keep-alive connection: parse, dispatch, write, repeat.
  void serve_connection(Socket& conn) {
    if (!conn.set_timeout_ms(options.io_timeout_ms).is_ok()) return;
    std::string buffer;
    char chunk[8192];
    for (;;) {
      // Read until the header section is complete.
      std::size_t head_end;
      while ((head_end = find_head_end(buffer)) == std::string::npos) {
        if (buffer.size() > options.max_header_bytes) {
          (void)conn.write_all(
              write_response(plain_error(431, "header section too large")));
          return;
        }
        auto got = conn.read_some(chunk, sizeof chunk);
        if (!got.is_ok() || *got == 0) return;  // EOF, timeout or reset
        buffer.append(chunk, *got);
      }
      auto request = parse_request_head(buffer.substr(0, head_end));
      if (!request.is_ok()) {
        XPDL_OBS_COUNT("net.server.bad_requests", 1);
        count_status(400);
        (void)conn.write_all(
            write_response(plain_error(400, request.status().message())));
        return;
      }
      if (!request->header("Transfer-Encoding").empty()) {
        count_status(501);
        (void)conn.write_all(write_response(
            plain_error(501, "chunked request bodies not supported")));
        return;
      }
      auto body_len = content_length(*request);
      if (!body_len.is_ok()) {
        count_status(400);
        (void)conn.write_all(
            write_response(plain_error(400, body_len.status().message())));
        return;
      }
      if (*body_len > options.max_body_bytes) {
        count_status(413);
        (void)conn.write_all(
            write_response(plain_error(413, "request body too large")));
        return;
      }
      while (buffer.size() - head_end < *body_len) {
        auto got = conn.read_some(chunk, sizeof chunk);
        if (!got.is_ok() || *got == 0) return;
        buffer.append(chunk, *got);
      }
      request->body = buffer.substr(head_end, *body_len);
      buffer.erase(0, head_end + *body_len);

      Response response = dispatch(*request);
      bool keep_alive =
          request->version == "HTTP/1.1" &&
          !iequals(request->header("Connection"), "close") &&
          response.status < 500;
      response.set_header("Connection", keep_alive ? "keep-alive" : "close");
      if (!conn.write_all(write_response(response)).is_ok()) return;

      std::uint64_t total =
          served.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.max_requests != 0 && total >= options.max_requests) {
        request_stop_impl();
        return;
      }
      if (!keep_alive) return;
    }
  }

  [[nodiscard]] Response dispatch(const Request& request) {
    // Adopt the caller's W3C trace context (if any) before opening the
    // request span, so every span of this request — including the ones
    // the handler opens — joins the caller's trace.
    obs::TraceContext remote;
    bool have_remote =
        obs::parse_traceparent(request.header("traceparent"), remote);
    std::optional<obs::ScopedRemoteParent> adopt;
    if (have_remote) adopt.emplace(remote);

    obs::Span span("net.server.request");
    if (span.active()) span.arg("target", request.target);
    std::uint64_t start = obs::now_ns();
    static obs::Counter& faults_counter =
        obs::counter("resilience.faults.injected");
    std::uint64_t faults_before = faults_counter.value();
    Response response;
    try {
      response = handler(request);
    } catch (const std::exception& e) {
      response = plain_error(500, std::string("handler failed: ") + e.what());
    } catch (...) {
      response = plain_error(500, "handler failed");
    }
    std::uint64_t duration_us = (obs::now_ns() - start) / 1000;
    XPDL_OBS_COUNT("net.server.requests", 1);
    static obs::Histogram& latency = obs::histogram("net.server.request_us");
    latency.record(duration_us);
    count_status(response.status);
    if (response.header("Server").empty()) {
      response.set_header("Server", "xpdld");
    }

    // Echo the trace id the request ran under, so even a client that
    // records no trace of its own can correlate with the server's logs.
    obs::TraceContext ctx = have_remote ? remote : span.context();
    std::string trace_id;
    if (ctx.valid()) {
      trace_id = ctx.trace_id_hex();
      response.set_header("X-XPDL-Trace-Id", trace_id);
    }

    if (obs::flight_enabled()) {
      obs::FlightRecorder::instance().record(
          obs::FlightRecorder::Kind::kRequest, request.target, duration_us,
          static_cast<std::uint16_t>(response.status));
    }
    if (obs::EventLog::instance().enabled()) {
      obs::EventLog::Request record;
      record.method = request.method;
      record.path = request.target;
      record.status = response.status;
      record.bytes = response.body.size();
      record.duration_us = duration_us;
      record.trace_id = trace_id;
      // Process-wide delta: attributes faults of concurrent requests to
      // this record too — documented as approximate (docs/observability.md).
      record.faults_injected = faults_counter.value() - faults_before;
      obs::EventLog::instance().log_request(record);
    }
    return response;
  }

  void request_stop_impl() {
    std::lock_guard<std::mutex> lock(mutex);
    stop_requested = true;
    queue_cv.notify_all();
    stop_cv.notify_all();
  }
};

HttpServer::HttpServer(ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start(Handler handler) {
  XPDL_ASSIGN_OR_RETURN(
      impl_->listener,
      Listener::bind_tcp(impl_->options.host, impl_->options.port));
  impl_->handler = std::move(handler);
  impl_->started = true;
  std::size_t workers = impl_->options.threads != 0
                            ? impl_->options.threads
                            : default_workers();
  XPDL_OBS_GAUGE_SET("net.server.workers", static_cast<double>(workers));
  impl_->threads.reserve(workers + 1);
  impl_->threads.emplace_back([impl = impl_.get()] { impl->accept_loop(); });
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back(
        [impl = impl_.get()] { impl->worker_loop(); });
  }
  return Status::ok();
}

std::uint16_t HttpServer::port() const noexcept {
  return impl_->listener.port();
}

void HttpServer::request_stop() { impl_->request_stop_impl(); }

void HttpServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stop_cv.wait(lock, [&] { return impl_->stop_requested; });
}

void HttpServer::stop() {
  if (!impl_->started) return;
  impl_->request_stop_impl();
  impl_->listener.close();
  for (std::thread& t : impl_->threads) {
    if (t.joinable()) t.join();
  }
  impl_->threads.clear();
  impl_->started = false;
}

bool HttpServer::running() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->started && !impl_->stop_requested;
}

std::uint64_t HttpServer::served() const noexcept {
  return impl_->served.load(std::memory_order_relaxed);
}

}  // namespace xpdl::net
