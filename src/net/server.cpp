#include "xpdl/net/server.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "xpdl/net/socket.h"
#include "xpdl/obs/eventlog.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"

namespace xpdl::net {

namespace {

[[nodiscard]] std::size_t default_workers() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return std::min<std::size_t>(hw, 8);
}

[[nodiscard]] Response plain_error(int status, std::string_view message) {
  Response response;
  response.status = status;
  response.set_header("Content-Type", "text/plain; charset=utf-8");
  response.body = std::string(message);
  response.body += '\n';
  return response;
}

void count_status(int status) {
  if (status < 300) {
    XPDL_OBS_COUNT("net.server.status_2xx", 1);
  } else if (status < 400) {
    XPDL_OBS_COUNT("net.server.status_3xx", 1);
  } else if (status < 500) {
    XPDL_OBS_COUNT("net.server.status_4xx", 1);
  } else {
    XPDL_OBS_COUNT("net.server.status_5xx", 1);
  }
}

}  // namespace

struct HttpServer::Impl {
  ServerOptions options;
  Handler handler;
  Listener listener;
  std::vector<std::thread> threads;

  std::mutex mutex;
  std::condition_variable queue_cv;
  std::condition_variable stop_cv;
  std::deque<Socket> pending;
  bool stop_requested = false;
  bool started = false;
  std::atomic<bool> draining{false};
  std::uint64_t drain_start_ns = 0;  ///< guarded by `mutex`
  /// Connections currently held by workers (from pop to completion).
  std::atomic<std::size_t> inflight{0};
  std::atomic<std::uint64_t> shed_rng{0x9E3779B97F4A7C15ull};
  std::atomic<std::uint64_t> served{0};

  /// Retry-After for shed responses: 1..3 s, jittered so a herd of shed
  /// clients does not come back in lockstep.
  [[nodiscard]] unsigned jittered_retry_after_s() noexcept {
    std::uint64_t x = shed_rng.load(std::memory_order_relaxed);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    shed_rng.store(x, std::memory_order_relaxed);
    return 1 + static_cast<unsigned>((x * 0x2545F4914F6CDD1Dull) % 3);
  }

  /// Answers an over-capacity (or draining) connection with a canned
  /// 503 + Retry-After and closes it. The write gets a short timeout so
  /// a stalled peer cannot hold the accept loop.
  void shed_connection(Socket& conn, std::string_view why) {
    XPDL_OBS_COUNT("net.server.shed_total", 1);
    count_status(503);
    (void)conn.set_timeout_ms(std::min(options.io_timeout_ms, 1000.0));
    Response response = plain_error(503, why);
    response.set_header("Retry-After",
                        std::to_string(jittered_retry_after_s()));
    response.set_header("Connection", "close");
    (void)conn.write_all(write_response(response));
  }

  void accept_loop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (stop_requested) return;
        if (draining.load(std::memory_order_relaxed)) {
          std::uint64_t now = obs::now_ns();
          bool done = pending.empty() &&
                      inflight.load(std::memory_order_acquire) == 0;
          bool timed_out_drain =
              options.drain_timeout_ms > 0.0 &&
              now - drain_start_ns >
                  static_cast<std::uint64_t>(options.drain_timeout_ms * 1e6);
          if (done || timed_out_drain) {
            XPDL_OBS_GAUGE_SET(
                "net.server.drain_us",
                static_cast<double>((now - drain_start_ns) / 1000));
            if (timed_out_drain && !done) {
              XPDL_OBS_COUNT("net.server.drain_timeouts", 1);
            }
            stop_requested = true;
            queue_cv.notify_all();
            stop_cv.notify_all();
            return;
          }
        }
      }
      bool timed_out = false;
      auto conn = listener.accept_with_timeout(100.0, timed_out);
      if (!conn.is_ok()) return;  // listener closed or fatal
      if (timed_out || !conn->valid()) continue;
      XPDL_OBS_COUNT("net.server.connections", 1);
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(mutex);
        shed = draining.load(std::memory_order_relaxed) ||
               (options.max_pending != 0 &&
                pending.size() >= options.max_pending);
        if (!shed) {
          pending.push_back(std::move(*conn));
          queue_cv.notify_one();
        }
      }
      if (shed) {
        shed_connection(*conn, draining.load(std::memory_order_relaxed)
                                   ? "server is draining, retry elsewhere"
                                   : "server overloaded, retry later");
      }
    }
  }

  void worker_loop() {
    for (;;) {
      Socket conn;
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_cv.wait(lock,
                      [&] { return stop_requested || !pending.empty(); });
        if (pending.empty()) return;  // stopping and drained
        conn = std::move(pending.front());
        pending.pop_front();
        // Claimed under the queue lock so the drain coordinator never
        // observes "queue empty, nothing in flight" while a connection
        // is in hand-off between the two.
        inflight.fetch_add(1, std::memory_order_release);
      }
      std::size_t current = inflight.load(std::memory_order_relaxed);
      XPDL_OBS_GAUGE_SET("net.server.inflight",
                         static_cast<double>(current));
      if (options.max_inflight != 0 && current > options.max_inflight) {
        shed_connection(conn, "server at concurrency limit, retry later");
      } else {
        serve_connection(conn);
      }
      XPDL_OBS_GAUGE_SET(
          "net.server.inflight",
          static_cast<double>(
              inflight.fetch_sub(1, std::memory_order_release) - 1));
    }
  }

  /// One keep-alive connection: parse, dispatch, write, repeat.
  void serve_connection(Socket& conn) {
    if (!conn.set_timeout_ms(options.io_timeout_ms).is_ok()) return;
    std::string buffer;
    char chunk[8192];
    for (;;) {
      // Read until the header section is complete. The header-completion
      // deadline starts at the request's first byte — not while the
      // connection idles between keep-alive requests — so a slow-loris
      // client trickling header bytes is answered 408 after
      // header_deadline_ms instead of holding this worker for
      // io_timeout_ms per byte.
      std::uint64_t head_start_ns = buffer.empty() ? 0 : obs::now_ns();
      bool timeout_narrowed = false;
      std::size_t head_end;
      while ((head_end = find_head_end(buffer)) == std::string::npos) {
        if (buffer.size() > options.max_header_bytes) {
          (void)conn.write_all(
              write_response(plain_error(431, "header section too large")));
          return;
        }
        if (head_start_ns != 0 && options.header_deadline_ms > 0.0) {
          double remaining_ms =
              options.header_deadline_ms -
              static_cast<double>(obs::now_ns() - head_start_ns) / 1e6;
          if (remaining_ms <= 0.0) {
            XPDL_OBS_COUNT("net.server.header_timeouts", 1);
            count_status(408);
            Response timeout_response =
                plain_error(408, "request header not received in time");
            timeout_response.set_header("Connection", "close");
            (void)conn.write_all(write_response(timeout_response));
            return;
          }
          if (remaining_ms < options.io_timeout_ms) {
            // Bound the next read by what is left of the header window.
            (void)conn.set_timeout_ms(remaining_ms);
            timeout_narrowed = true;
          }
        }
        auto got = conn.read_some(chunk, sizeof chunk);
        if (!got.is_ok() || *got == 0) {
          // A read cut short by the narrowed header window is the slow
          // loris case; a plain idle timeout or EOF just closes.
          if (timeout_narrowed && head_start_ns != 0 &&
              static_cast<double>(obs::now_ns() - head_start_ns) / 1e6 >=
                  options.header_deadline_ms) {
            XPDL_OBS_COUNT("net.server.header_timeouts", 1);
            count_status(408);
            Response timeout_response =
                plain_error(408, "request header not received in time");
            timeout_response.set_header("Connection", "close");
            (void)conn.write_all(write_response(timeout_response));
          }
          return;
        }
        if (head_start_ns == 0) head_start_ns = obs::now_ns();
        buffer.append(chunk, *got);
      }
      if (timeout_narrowed &&
          !conn.set_timeout_ms(options.io_timeout_ms).is_ok()) {
        return;
      }
      auto request = parse_request_head(buffer.substr(0, head_end));
      if (!request.is_ok()) {
        XPDL_OBS_COUNT("net.server.bad_requests", 1);
        count_status(400);
        (void)conn.write_all(
            write_response(plain_error(400, request.status().message())));
        return;
      }
      if (!request->header("Transfer-Encoding").empty()) {
        count_status(501);
        (void)conn.write_all(write_response(
            plain_error(501, "chunked request bodies not supported")));
        return;
      }
      auto body_len = content_length(*request);
      if (!body_len.is_ok()) {
        count_status(400);
        (void)conn.write_all(
            write_response(plain_error(400, body_len.status().message())));
        return;
      }
      if (*body_len > options.max_body_bytes) {
        count_status(413);
        (void)conn.write_all(
            write_response(plain_error(413, "request body too large")));
        return;
      }
      while (buffer.size() - head_end < *body_len) {
        auto got = conn.read_some(chunk, sizeof chunk);
        if (!got.is_ok() || *got == 0) return;
        buffer.append(chunk, *got);
      }
      request->body = buffer.substr(head_end, *body_len);
      buffer.erase(0, head_end + *body_len);

      if (options.request_deadline_ms > 0.0) {
        request->budget = RequestBudget::with_ms(options.request_deadline_ms);
      }
      Response response = dispatch(*request);
      bool keep_alive =
          request->version == "HTTP/1.1" &&
          !iequals(request->header("Connection"), "close") &&
          response.status < 500 &&
          // While draining, finish this response but take no more work
          // on the connection — the client must reconnect elsewhere.
          !draining.load(std::memory_order_relaxed);
      response.set_header("Connection", keep_alive ? "keep-alive" : "close");
      if (!conn.write_all(write_response(response)).is_ok()) return;

      std::uint64_t total =
          served.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.max_requests != 0 && total >= options.max_requests) {
        request_stop_impl();
        return;
      }
      if (!keep_alive) return;
    }
  }

  [[nodiscard]] Response dispatch(const Request& request) {
    // Adopt the caller's W3C trace context (if any) before opening the
    // request span, so every span of this request — including the ones
    // the handler opens — joins the caller's trace.
    obs::TraceContext remote;
    bool have_remote =
        obs::parse_traceparent(request.header("traceparent"), remote);
    std::optional<obs::ScopedRemoteParent> adopt;
    if (have_remote) adopt.emplace(remote);

    obs::Span span("net.server.request");
    if (span.active()) span.arg("target", request.target);
    std::uint64_t start = obs::now_ns();
    static obs::Counter& faults_counter =
        obs::counter("resilience.faults.injected");
    std::uint64_t faults_before = faults_counter.value();
    Response response;
    try {
      response = handler(request);
    } catch (const std::exception& e) {
      response = plain_error(500, std::string("handler failed: ") + e.what());
    } catch (...) {
      response = plain_error(500, "handler failed");
    }
    std::uint64_t duration_us = (obs::now_ns() - start) / 1000;
    XPDL_OBS_COUNT("net.server.requests", 1);
    static obs::Histogram& latency = obs::histogram("net.server.request_us");
    latency.record(duration_us);
    count_status(response.status);
    if (response.header("Server").empty()) {
      response.set_header("Server", "xpdld");
    }

    // Echo the trace id the request ran under, so even a client that
    // records no trace of its own can correlate with the server's logs.
    obs::TraceContext ctx = have_remote ? remote : span.context();
    std::string trace_id;
    if (ctx.valid()) {
      trace_id = ctx.trace_id_hex();
      response.set_header("X-XPDL-Trace-Id", trace_id);
    }

    if (obs::flight_enabled()) {
      obs::FlightRecorder::instance().record(
          obs::FlightRecorder::Kind::kRequest, request.target, duration_us,
          static_cast<std::uint16_t>(response.status));
    }
    if (obs::EventLog::instance().enabled()) {
      obs::EventLog::Request record;
      record.method = request.method;
      record.path = request.target;
      record.status = response.status;
      record.bytes = response.body.size();
      record.duration_us = duration_us;
      record.trace_id = trace_id;
      // Process-wide delta: attributes faults of concurrent requests to
      // this record too — documented as approximate (docs/observability.md).
      record.faults_injected = faults_counter.value() - faults_before;
      obs::EventLog::instance().log_request(record);
    }
    return response;
  }

  void request_stop_impl() {
    std::lock_guard<std::mutex> lock(mutex);
    stop_requested = true;
    queue_cv.notify_all();
    stop_cv.notify_all();
  }

  void request_drain_impl() {
    std::lock_guard<std::mutex> lock(mutex);
    if (stop_requested || draining.load(std::memory_order_relaxed)) return;
    drain_start_ns = obs::now_ns();
    draining.store(true, std::memory_order_relaxed);
    // The accept loop is the drain coordinator: it sheds new
    // connections, watches pending + inflight reach zero (or the drain
    // timeout), and then flips stop_requested itself.
    queue_cv.notify_all();
  }
};

HttpServer::HttpServer(ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start(Handler handler) {
  XPDL_ASSIGN_OR_RETURN(
      impl_->listener,
      Listener::bind_tcp(impl_->options.host, impl_->options.port));
  impl_->handler = std::move(handler);
  impl_->started = true;
  std::size_t workers = impl_->options.threads != 0
                            ? impl_->options.threads
                            : default_workers();
  XPDL_OBS_GAUGE_SET("net.server.workers", static_cast<double>(workers));
  // Register the degradation signals up front so every surface
  // (/metrics JSON, Prometheus text, --stats) exports them from request
  // zero — a dashboard should see shed_total=0, not an absent series.
  obs::counter("net.server.shed_total");
  XPDL_OBS_GAUGE_SET("net.server.inflight", 0.0);
  XPDL_OBS_GAUGE_SET("net.server.drain_us", 0.0);
  impl_->threads.reserve(workers + 1);
  impl_->threads.emplace_back([impl = impl_.get()] { impl->accept_loop(); });
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back(
        [impl = impl_.get()] { impl->worker_loop(); });
  }
  return Status::ok();
}

std::uint16_t HttpServer::port() const noexcept {
  return impl_->listener.port();
}

void HttpServer::request_stop() { impl_->request_stop_impl(); }

void HttpServer::request_drain() { impl_->request_drain_impl(); }

bool HttpServer::draining() const noexcept {
  return impl_->draining.load(std::memory_order_relaxed);
}

void HttpServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stop_cv.wait(lock, [&] { return impl_->stop_requested; });
}

void HttpServer::stop() {
  if (!impl_->started) return;
  impl_->request_stop_impl();
  impl_->listener.close();
  for (std::thread& t : impl_->threads) {
    if (t.joinable()) t.join();
  }
  impl_->threads.clear();
  impl_->started = false;
}

bool HttpServer::running() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->started && !impl_->stop_requested;
}

std::uint64_t HttpServer::served() const noexcept {
  return impl_->served.load(std::memory_order_relaxed);
}

}  // namespace xpdl::net
