#include "xpdl/net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xpdl::net {

namespace {

[[nodiscard]] Status errno_status(std::string_view what, int err) {
  // Timeouts and resets are the transient class the retry policy acts
  // on; everything else is a plain I/O error.
  ErrorCode code = (err == EAGAIN || err == EWOULDBLOCK || err == EINTR ||
                    err == ECONNRESET || err == ECONNREFUSED ||
                    err == EPIPE || err == ETIMEDOUT || err == ENETUNREACH)
                       ? ErrorCode::kUnavailable
                       : ErrorCode::kIoError;
  return Status(code, std::string(what) + ": " + std::strerror(err));
}

[[nodiscard]] Status apply_timeout(int fd, int option, double ms) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec =
        static_cast<suseconds_t>((ms - static_cast<double>(tv.tv_sec) *
                                           1000.0) *
                                 1000.0);
  }
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv) != 0) {
    return errno_status("setsockopt", errno);
  }
  return Status::ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::set_timeout_ms(double ms) const {
  XPDL_RETURN_IF_ERROR(apply_timeout(fd_, SO_RCVTIMEO, ms));
  return apply_timeout(fd_, SO_SNDTIMEO, ms);
}

Result<std::size_t> Socket::read_some(char* buffer, std::size_t n) {
  for (;;) {
    ssize_t got = ::recv(fd_, buffer, n, 0);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    return errno_status("recv", errno);
  }
}

Status Socket::write_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send", errno);
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> connect_tcp(const std::string& host, std::uint16_t port,
                           double timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  std::string service = std::to_string(port);
  if (int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                             &results);
      rc != 0) {
    return Status(ErrorCode::kUnavailable,
                  "resolving '" + host + "': " + ::gai_strerror(rc));
  }
  Status last(ErrorCode::kUnavailable, "no addresses for '" + host + "'");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = errno_status("socket", errno);
      continue;
    }
    Socket sock(fd);
    if (Status st = sock.set_timeout_ms(timeout_ms); !st.is_ok()) {
      last = std::move(st);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      ::freeaddrinfo(results);
      return sock;
    }
    last = errno_status("connecting to " + host + ":" + service, errno);
  }
  ::freeaddrinfo(results);
  return last;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<Listener> Listener::bind_tcp(const std::string& host,
                                    std::uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket", errno);
  Listener listener;
  listener.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "invalid listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_status("binding " + host + ":" + std::to_string(port),
                        errno);
  }
  if (::listen(fd, backlog) != 0) return errno_status("listen", errno);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return errno_status("getsockname", errno);
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::accept_with_timeout(double timeout_ms,
                                             bool& timed_out) {
  timed_out = false;
  pollfd pfd{fd_, POLLIN, 0};
  int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc == 0) {
    timed_out = true;
    return Socket();
  }
  if (rc < 0) {
    if (errno == EINTR) {
      timed_out = true;
      return Socket();
    }
    return errno_status("poll", errno);
  }
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      timed_out = true;
      return Socket();
    }
    return errno_status("accept", errno);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace xpdl::net
