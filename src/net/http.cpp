#include "xpdl/net/http.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

namespace xpdl::net {

namespace {

[[nodiscard]] char lower(char c) noexcept {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}

[[nodiscard]] bool is_token_char(char c) noexcept {
  // RFC 9110 token characters (the subset that matters for methods and
  // header names).
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) !=
         std::string_view::npos;
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits the head into lines, tolerating CRLF and bare LF endings.
[[nodiscard]] std::vector<std::string_view> split_lines(
    std::string_view head) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t nl = head.find('\n', pos);
    if (nl == std::string_view::npos) nl = head.size();
    std::string_view line = head.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
    pos = nl + 1;
  }
  return lines;
}

[[nodiscard]] Status parse_header_lines(
    const std::vector<std::string_view>& lines, std::size_t first,
    std::vector<Header>& out) {
  for (std::size_t i = first; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status(ErrorCode::kParseError,
                    "malformed header line '" + std::string(line) + "'");
    }
    std::string_view name = line.substr(0, colon);
    for (char c : name) {
      if (!is_token_char(c)) {
        return Status(ErrorCode::kParseError,
                      "invalid header name '" + std::string(name) + "'");
      }
    }
    out.push_back(Header{std::string(name),
                         std::string(trim(line.substr(colon + 1)))});
  }
  return Status::ok();
}

[[nodiscard]] std::string_view find_header(
    const std::vector<Header>& headers, std::string_view name) noexcept {
  for (const Header& h : headers) {
    if (iequals(h.name, name)) return h.value;
  }
  return {};
}

void set_header_in(std::vector<Header>& headers, std::string_view name,
                   std::string_view value) {
  for (Header& h : headers) {
    if (iequals(h.name, name)) {
      h.value = std::string(value);
      return;
    }
  }
  headers.push_back(Header{std::string(name), std::string(value)});
}

[[nodiscard]] Result<std::size_t> parse_content_length(
    std::string_view value) {
  if (value.empty()) return std::size_t{0};
  std::size_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return Status(ErrorCode::kParseError,
                    "malformed Content-Length '" + std::string(value) + "'");
    }
    if (n > (std::size_t{1} << 40)) {
      return Status(ErrorCode::kParseError, "Content-Length out of range");
    }
    n = n * 10 + static_cast<std::size_t>(c - '0');
  }
  return n;
}

void append_headers(std::string& out, const std::vector<Header>& headers) {
  for (const Header& h : headers) {
    out += h.name;
    out += ": ";
    out += h.value;
    out += "\r\n";
  }
}

[[nodiscard]] int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::string_view Request::header(std::string_view name) const noexcept {
  return find_header(headers, name);
}

void Request::set_header(std::string_view name, std::string_view value) {
  set_header_in(headers, name, value);
}

std::string_view Request::path() const noexcept {
  std::string_view t = target;
  std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view Request::query() const noexcept {
  std::string_view t = target;
  std::size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view{} : t.substr(q + 1);
}

std::string_view Response::header(std::string_view name) const noexcept {
  return find_header(headers, name);
}

void Response::set_header(std::string_view name, std::string_view value) {
  set_header_in(headers, name, value);
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

ErrorCode error_code_for_status(int status) noexcept {
  if (status < 400) return ErrorCode::kOk;
  if (status == 404) return ErrorCode::kNotFound;
  if (status == 400) return ErrorCode::kInvalidArgument;
  if (status < 500) return ErrorCode::kIoError;
  return ErrorCode::kUnavailable;
}

namespace {

[[nodiscard]] std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RequestBudget RequestBudget::with_ms(double ms) noexcept {
  RequestBudget budget;
  std::uint64_t now = steady_now_ns();
  std::uint64_t delta =
      ms > 0.0 ? static_cast<std::uint64_t>(ms * 1e6) : std::uint64_t{0};
  budget.deadline_ns_ = now + delta;
  // A deadline of exactly "now" could collide with the 0 = unbounded
  // sentinel only if the steady clock reads 0 at process start; nudge.
  if (budget.deadline_ns_ == 0) budget.deadline_ns_ = 1;
  return budget;
}

bool RequestBudget::expired() const noexcept {
  return deadline_ns_ != 0 && steady_now_ns() >= deadline_ns_;
}

double RequestBudget::remaining_ms() const noexcept {
  if (deadline_ns_ == 0) return 1e18;  // unbounded
  std::uint64_t now = steady_now_ns();
  if (now >= deadline_ns_) {
    return -static_cast<double>(now - deadline_ns_) / 1e6;
  }
  return static_cast<double>(deadline_ns_ - now) / 1e6;
}

double parse_retry_after_ms(std::string_view value) noexcept {
  value = trim(value);
  if (value.empty() || value.size() > 9) return 0.0;
  double seconds = 0.0;
  for (char c : value) {
    if (c < '0' || c > '9') return 0.0;  // HTTP-date form: unsupported
    seconds = seconds * 10.0 + (c - '0');
  }
  return seconds * 1000.0;
}

std::size_t find_head_end(std::string_view buffer) noexcept {
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] != '\n') continue;
    if (i + 1 < buffer.size() && buffer[i + 1] == '\n') return i + 2;
    if (i + 2 < buffer.size() && buffer[i + 1] == '\r' &&
        buffer[i + 2] == '\n') {
      return i + 3;
    }
  }
  return std::string::npos;
}

Result<Request> parse_request_head(std::string_view head) {
  std::vector<std::string_view> lines = split_lines(head);
  if (lines.empty()) {
    return Status(ErrorCode::kParseError, "empty request");
  }
  std::string_view line = lines[0];
  std::size_t sp1 = line.find(' ');
  std::size_t sp2 = sp1 == std::string_view::npos
                        ? std::string_view::npos
                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Status(ErrorCode::kParseError,
                  "malformed request line '" + std::string(line) + "'");
  }
  Request request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.method.empty() ||
      !std::all_of(request.method.begin(), request.method.end(),
                   is_token_char)) {
    return Status(ErrorCode::kParseError,
                  "malformed method '" + request.method + "'");
  }
  if (request.target.empty() || request.target[0] != '/') {
    return Status(ErrorCode::kParseError,
                  "unsupported request target '" + request.target + "'");
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status(ErrorCode::kParseError,
                  "unsupported HTTP version '" + request.version + "'");
  }
  XPDL_RETURN_IF_ERROR(parse_header_lines(lines, 1, request.headers));
  return request;
}

Result<Response> parse_response_head(std::string_view head) {
  std::vector<std::string_view> lines = split_lines(head);
  if (lines.empty()) {
    return Status(ErrorCode::kParseError, "empty response");
  }
  std::string_view line = lines[0];
  if (line.rfind("HTTP/1.", 0) != 0) {
    return Status(ErrorCode::kParseError,
                  "malformed status line '" + std::string(line) + "'");
  }
  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
    return Status(ErrorCode::kParseError,
                  "malformed status line '" + std::string(line) + "'");
  }
  std::string_view code = line.substr(sp1 + 1, 3);
  int status = 0;
  for (char c : code) {
    if (c < '0' || c > '9') {
      return Status(ErrorCode::kParseError,
                    "malformed status code '" + std::string(code) + "'");
    }
    status = status * 10 + (c - '0');
  }
  Response response;
  response.status = status;
  XPDL_RETURN_IF_ERROR(parse_header_lines(lines, 1, response.headers));
  return response;
}

Result<std::size_t> content_length(const Request& request) {
  return parse_content_length(request.header("Content-Length"));
}

Result<std::size_t> content_length(const Response& response) {
  return parse_content_length(response.header("Content-Length"));
}

std::string encode_chunked(std::string_view body, std::size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 16384;
  std::string out;
  out.reserve(body.size() + 32);
  std::size_t pos = 0;
  char size_buf[20];
  while (pos < body.size()) {
    std::size_t n = std::min(chunk_size, body.size() - pos);
    std::snprintf(size_buf, sizeof size_buf, "%zx\r\n", n);
    out += size_buf;
    out += body.substr(pos, n);
    out += "\r\n";
    pos += n;
  }
  out += "0\r\n\r\n";
  return out;
}

Result<std::string> decode_chunked(std::string_view raw) {
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    std::size_t nl = raw.find('\n', pos);
    if (nl == std::string_view::npos) {
      return Status(ErrorCode::kParseError, "truncated chunk size line");
    }
    std::string_view size_line = raw.substr(pos, nl - pos);
    if (!size_line.empty() && size_line.back() == '\r') {
      size_line.remove_suffix(1);
    }
    // Chunk extensions (";...") are permitted and ignored.
    if (std::size_t semi = size_line.find(';');
        semi != std::string_view::npos) {
      size_line = size_line.substr(0, semi);
    }
    if (size_line.empty()) {
      return Status(ErrorCode::kParseError, "empty chunk size line");
    }
    std::size_t size = 0;
    for (char c : size_line) {
      int d = hex_digit(c);
      if (d < 0) {
        return Status(ErrorCode::kParseError,
                      "malformed chunk size '" + std::string(size_line) +
                          "'");
      }
      if (size > (std::size_t{1} << 40)) {
        return Status(ErrorCode::kParseError, "chunk size out of range");
      }
      size = size * 16 + static_cast<std::size_t>(d);
    }
    pos = nl + 1;
    if (size == 0) return out;  // final chunk; trailers ignored
    if (pos + size > raw.size()) {
      return Status(ErrorCode::kParseError, "truncated chunk data");
    }
    out.append(raw.substr(pos, size));
    pos += size;
    // Consume the CRLF (or LF) after the chunk data.
    if (pos < raw.size() && raw[pos] == '\r') ++pos;
    if (pos >= raw.size() || raw[pos] != '\n') {
      return Status(ErrorCode::kParseError, "missing chunk terminator");
    }
    ++pos;
  }
}

std::string write_response(const Response& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(reason_phrase(response.status)) + "\r\n";
  append_headers(out, response.headers);
  // A 304 carries no body by definition; everything else declares how the
  // body ends.
  if (response.status == 304 || response.status == 204) {
    out += "\r\n";
    return out;
  }
  if (response.chunked) {
    out += "Transfer-Encoding: chunked\r\n\r\n";
    out += encode_chunked(response.body);
  } else {
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n\r\n";
    out += response.body;
  }
  return out;
}

std::string write_request(const Request& request) {
  std::string out =
      request.method + " " + request.target + " " + request.version + "\r\n";
  append_headers(out, request.headers);
  if (!request.body.empty()) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      int hi = hex_digit(text[i + 1]);
      int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::string url_encode(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    bool unreserved = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '-' || c == '_' || c == '.' || c == '~';
    if (unreserved) {
      out += c;
    } else {
      auto u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    }
  }
  return out;
}

std::map<std::string, std::string, std::less<>> parse_query(
    std::string_view query) {
  std::map<std::string, std::string, std::less<>> out;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.insert_or_assign(url_decode(pair), std::string());
      } else {
        out.insert_or_assign(url_decode(pair.substr(0, eq)),
                             url_decode(pair.substr(eq + 1)));
      }
    }
    pos = amp + 1;
  }
  return out;
}

Result<Url> parse_url(std::string_view url) {
  if (!is_http_url(url)) {
    return Status(ErrorCode::kInvalidArgument,
                  "not an http:// URL: '" + std::string(url) + "'");
  }
  std::string_view rest = url.substr(7);  // past "http://"
  std::size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (authority.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "missing host in URL '" + std::string(url) + "'");
  }
  Url out;
  std::size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    out.host = std::string(authority);
  } else {
    out.host = std::string(authority.substr(0, colon));
    std::string_view port = authority.substr(colon + 1);
    unsigned value = 0;
    if (port.empty() || port.size() > 5) {
      return Status(ErrorCode::kInvalidArgument,
                    "malformed port in URL '" + std::string(url) + "'");
    }
    for (char c : port) {
      if (c < '0' || c > '9') {
        return Status(ErrorCode::kInvalidArgument,
                      "malformed port in URL '" + std::string(url) + "'");
      }
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value == 0 || value > 65535) {
      return Status(ErrorCode::kInvalidArgument,
                    "port out of range in URL '" + std::string(url) + "'");
    }
    out.port = static_cast<std::uint16_t>(value);
  }
  if (out.host.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "missing host in URL '" + std::string(url) + "'");
  }
  if (slash != std::string_view::npos) {
    out.path_query = std::string(rest.substr(slash));
  }
  return out;
}

bool is_http_url(std::string_view text) noexcept {
  return text.rfind("http://", 0) == 0;
}

}  // namespace xpdl::net
