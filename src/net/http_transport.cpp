#include "xpdl/net/http_transport.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <utility>

#include "xpdl/cache/cache.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/io.h"
#include "xpdl/util/json.h"

namespace xpdl::net {

namespace {

constexpr std::string_view kCacheMagic = "XPDLNET1";

/// Server backoff hints are per failing call and consumed by the retry
/// loop running on the same thread; a hint above this cap is clamped so
/// a misconfigured server cannot park a scan for minutes.
constexpr double kMaxRetryAfterHintMs = 30'000.0;

thread_local double t_retry_after_hint_ms = 0.0;

[[nodiscard]] std::string strip_trailing_slash(std::string url) {
  while (url.size() > sizeof("http://") && url.back() == '/') {
    url.pop_back();
  }
  return url;
}

/// One cache file per URL, named by the URL's hash.
[[nodiscard]] std::string cache_path_for(const std::string& dir,
                                         const std::string& url) {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.http",
                static_cast<unsigned long long>(cache::fnv1a64(url)));
  return dir + "/" + name;
}

struct CacheEntry {
  std::string etag;
  std::string bytes;
};

/// Cache file format: "XPDLNET1\n<etag>\n<bytes>".
[[nodiscard]] bool load_cache_entry(const std::string& path,
                                    CacheEntry& entry) {
  auto raw = io::read_file(path);
  if (!raw.is_ok()) return false;
  std::size_t first_nl = raw->find('\n');
  if (first_nl == std::string::npos ||
      std::string_view(*raw).substr(0, first_nl) != kCacheMagic) {
    return false;
  }
  std::size_t second_nl = raw->find('\n', first_nl + 1);
  if (second_nl == std::string::npos) return false;
  entry.etag = raw->substr(first_nl + 1, second_nl - first_nl - 1);
  entry.bytes = raw->substr(second_nl + 1);
  return !entry.etag.empty();
}

void store_cache_entry(const std::string& dir, const std::string& path,
                       std::string_view etag, std::string_view bytes) {
  if (etag.empty()) return;
  if (!io::make_directories(dir).is_ok()) return;
  std::string blob;
  blob.reserve(kCacheMagic.size() + etag.size() + bytes.size() + 2);
  blob.append(kCacheMagic);
  blob += '\n';
  blob += etag;
  blob += '\n';
  blob += bytes;
  // Temp-file + rename so a concurrent reader never sees a torn entry.
  std::string tmp = path + ".tmp";
  if (!io::write_file(tmp, blob).is_ok()) return;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return;
  }
  XPDL_OBS_COUNT("net.transport.cache_stores", 1);
  // Entry-count gauge for /metrics. Stores are rare (fresh 200s with an
  // ETag), so a directory listing here is off the hot path.
  std::error_code ec;
  std::uint64_t entries = 0;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    ++entries;
  }
  if (!ec) {
    XPDL_OBS_GAUGE_SET("net.transport.cache_entries",
                       static_cast<double>(entries));
  }
}

}  // namespace

std::string default_net_cache_dir() {
  const char* env = std::getenv("XPDL_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') {
    return std::string(env) + "/net";
  }
  return ".xpdl.cache/net";
}

struct HttpTransport::Impl {
  HttpTransportOptions options;
  HttpClient client;
  std::string cache_dir;

  std::mutex mutex;
  std::map<std::string, std::unique_ptr<resilience::CircuitBreaker>> breakers;

  explicit Impl(HttpTransportOptions opts)
      : options(std::move(opts)),
        client(options.client),
        cache_dir(options.cache_dir.empty() ? default_net_cache_dir()
                                            : options.cache_dir) {}

  [[nodiscard]] resilience::FaultInjector& injector() {
    return options.injector != nullptr ? *options.injector
                                       : resilience::FaultInjector::instance();
  }

  [[nodiscard]] resilience::CircuitBreaker& breaker(
      const std::string& host_port) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = breakers.find(host_port);
    if (it == breakers.end()) {
      it = breakers
               .emplace(host_port,
                        std::make_unique<resilience::CircuitBreaker>(
                            "net." + host_port, options.breaker))
               .first;
    }
    return *it->second;
  }

  /// The guarded fetch: fault site, breaker, conditional request, cache.
  [[nodiscard]] Result<std::string> fetch(const std::string& url) {
    obs::Span span("net.fetch");
    span.arg("url", url);
    // The hint describes the *most recent* failure on this thread only.
    t_retry_after_hint_ms = 0.0;
    XPDL_ASSIGN_OR_RETURN(Url parsed, parse_url(url));
    std::string host_port = parsed.host + ":" + std::to_string(parsed.port);
    resilience::CircuitBreaker& guard = breaker(host_port);
    XPDL_RETURN_IF_ERROR(guard.acquire());

    // Injected faults count as breaker failures: they model the network,
    // not the server's application layer.
    if (Status injected = injector().check("net.fetch:" + url);
        !injected.is_ok()) {
      guard.record(injected);
      return injected;
    }

    CacheEntry cached;
    bool have_cached = false;
    std::string cache_file;
    if (options.use_cache) {
      cache_file = cache_path_for(cache_dir, url);
      have_cached = load_cache_entry(cache_file, cached);
    }

    std::vector<Header> headers;
    // Cross-process trace propagation (W3C Trace Context): the server
    // parses this header and parents its spans onto our fetch span, so
    // xpdl-trace merge can stitch both processes into one timeline. When
    // no span is recording, a fresh context still gives the server a
    // trace id to log.
    if (span.active()) {
      headers.push_back(
          {"traceparent", obs::format_traceparent(span.context())});
      span.mark_flow_out();
    } else {
      headers.push_back({"traceparent", obs::current_traceparent()});
    }
    if (have_cached) {
      headers.push_back({"If-None-Match", cached.etag});
      XPDL_OBS_COUNT("net.transport.conditional_requests", 1);
    }
    XPDL_OBS_COUNT("net.transport.fetches", 1);
    auto response = client.get(url, headers);
    if (!response.is_ok()) {
      guard.record(response.status());
      return std::move(response).status();
    }

    if (response->status == 304 && have_cached) {
      guard.record(Status::ok());
      XPDL_OBS_COUNT("net.transport.not_modified", 1);
      return std::move(cached.bytes);
    }
    if (response->status >= 200 && response->status < 300) {
      guard.record(Status::ok());
      if (options.use_cache) {
        store_cache_entry(cache_dir, cache_file, response->header("ETag"),
                          response->body);
      }
      return std::move(response->body);
    }

    // An overloaded server's shed (503/429) carries a Retry-After hint:
    // remember it for the retry loop on this thread, so the next backoff
    // waits at least as long as the server asked for.
    if (response->status == 503 || response->status == 429) {
      double hint_ms = parse_retry_after_ms(response->header("Retry-After"));
      if (hint_ms > 0.0) {
        t_retry_after_hint_ms = std::min(hint_ms, kMaxRetryAfterHintMs);
        XPDL_OBS_COUNT("net.transport.retry_after_hints", 1);
      }
    }
    Status failure(error_code_for_status(response->status),
                   "GET '" + url + "' failed: HTTP " +
                       std::to_string(response->status) + " " +
                       std::string(reason_phrase(response->status)));
    // 4xx means the server answered deterministically — the host is
    // healthy, so the breaker records success; 5xx (including a 503
    // shed) counts against the per-host breaker.
    guard.record(response->status < 500 ? Status::ok() : failure);
    XPDL_OBS_COUNT("net.transport.http_errors", 1);
    return failure;
  }
};

HttpTransport::HttpTransport(HttpTransportOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

HttpTransport::~HttpTransport() = default;

double HttpTransport::retry_after_hint_ms() const noexcept {
  return t_retry_after_hint_ms;
}

resilience::CircuitBreaker& HttpTransport::breaker_for(
    const std::string& host_port) {
  return impl_->breaker(host_port);
}

Result<std::vector<std::string>> HttpTransport::list(const std::string& root) {
  std::string base = strip_trailing_slash(root);
  XPDL_ASSIGN_OR_RETURN(std::string body, impl_->fetch(base + "/v1/index"));
  auto index = json::parse(body);
  if (!index.is_ok()) {
    return std::move(index).status().with_context(
        "parsing repository index from '" + base + "'");
  }
  const json::Value* descriptors = index->find("descriptors");
  if (descriptors == nullptr || !descriptors->is_array()) {
    return Status(ErrorCode::kParseError,
                  "repository index from '" + base +
                      "' has no 'descriptors' array");
  }
  std::vector<std::string> urls;
  urls.reserve(descriptors->as_array().size());
  for (const json::Value& entry : descriptors->as_array()) {
    const json::Value* path = entry.find("path");
    if (path == nullptr || !path->is_string()) {
      return Status(ErrorCode::kParseError,
                    "repository index entry from '" + base +
                        "' has no 'path' string");
    }
    urls.push_back(base + path->as_string());
  }
  return urls;
}

Result<std::string> HttpTransport::read(const std::string& path) {
  return impl_->fetch(path);
}

RoutingTransport::RoutingTransport(
    std::unique_ptr<repository::Transport> local,
    std::unique_ptr<repository::Transport> http)
    : local_(std::move(local)), http_(std::move(http)) {}

Result<std::vector<std::string>> RoutingTransport::list(
    const std::string& root) {
  return is_http_url(root) ? http_->list(root) : local_->list(root);
}

Result<std::string> RoutingTransport::read(const std::string& path) {
  return is_http_url(path) ? http_->read(path) : local_->read(path);
}

std::unique_ptr<repository::Transport> make_http_aware_transport(
    HttpTransportOptions options) {
  return std::make_unique<repository::FaultInjectingTransport>(
      std::make_unique<RoutingTransport>(
          std::make_unique<repository::LocalFsTransport>(),
          std::make_unique<HttpTransport>(std::move(options))));
}

}  // namespace xpdl::net
