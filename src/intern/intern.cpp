#include "xpdl/intern/intern.h"

namespace xpdl::intern {

AtomTable& AtomTable::global() noexcept {
  static AtomTable table;
  return table;
}

const std::string* AtomTable::intern(std::string_view s) {
  Shard& shard = shards_[TransparentHash{}(s) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.pool.find(s);
  if (it == shard.pool.end()) {
    it = shard.pool.emplace(s).first;
    shard.bytes += it->size();
  }
  return &*it;
}

PoolStats AtomTable::stats() const {
  PoolStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.atoms += shard.pool.size();
    out.bytes += shard.bytes;
  }
  return out;
}

const std::string* empty_atom() noexcept {
  static const std::string empty;
  return &empty;
}

}  // namespace xpdl::intern
