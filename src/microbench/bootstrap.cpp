#include "xpdl/microbench/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/resilience/fault.h"
#include "xpdl/util/strings.h"

namespace xpdl::microbench {

double robust_mean(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  auto median_of = [](const std::vector<double>& s) {
    std::size_t n = s.size();
    return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
  };
  double median = median_of(sorted);

  std::vector<double> deviations;
  deviations.reserve(sorted.size());
  for (double v : sorted) deviations.push_back(std::fabs(v - median));
  std::sort(deviations.begin(), deviations.end());
  double mad = median_of(deviations);
  if (mad <= 0.0) return median;

  // 1.4826 scales the MAD to the stddev of a normal distribution; keep
  // everything within 3 sigma-equivalents of the median.
  double threshold = 3.0 * 1.4826 * mad;
  double sum = 0.0;
  std::size_t kept = 0;
  for (double v : samples) {
    if (std::fabs(v - median) <= threshold) {
      sum += v;
      ++kept;
    }
  }
  if (kept == 0) return median;  // unreachable: the median always survives
  if (kept < samples.size()) {
    XPDL_OBS_COUNT("bootstrap.samples_trimmed", samples.size() - kept);
  }
  return sum / static_cast<double>(kept);
}

Bootstrapper::Bootstrapper(SimMachine& machine, BootstrapOptions options)
    : machine_(machine), options_(std::move(options)), retry_(options_.retry) {
  if (options_.frequencies_hz.empty()) {
    options_.frequencies_hz.push_back(options_.default_frequency_hz);
  }
}

double Bootstrapper::aggregate(std::vector<double> samples) const {
  if (samples.empty()) return 0.0;
  if (options_.robust) return robust_mean(std::move(samples));
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

Result<double> Bootstrapper::measure_static_power() {
  if (options_.idle_interval_s <= 0 || options_.repetitions <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "bootstrap options require positive idle interval and "
                  "repetition count");
  }
  resilience::FaultInjector& injector = resilience::FaultInjector::instance();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options_.repetitions));
  for (int r = 0; r < options_.repetitions; ++r) {
    Status st = retry_.run("idle power measurement", [&]() -> Status {
      if (!injector.empty()) {
        XPDL_RETURN_IF_ERROR(injector.check("sensor.idle"));
      }
      double e0 = machine_.read_energy_counter();
      double t0 = machine_.now();
      machine_.idle(options_.idle_interval_s);
      double e1 = machine_.read_energy_counter();
      double t1 = machine_.now();
      samples.push_back((e1 - e0) / (t1 - t0));
      return Status::ok();
    });
    run_retries_ += static_cast<std::size_t>(retry_.last_run().retries);
    XPDL_RETURN_IF_ERROR(st);
  }
  return aggregate(std::move(samples));
}

Result<double> Bootstrapper::measure_instruction(std::string_view name,
                                                 double frequency_hz) {
  XPDL_OBS_COUNT("bootstrap.sim_runs",
                 static_cast<std::uint64_t>(options_.repetitions));
  resilience::FaultInjector& injector = resilience::FaultInjector::instance();
  const std::string site = "sensor.execute." + std::string(name);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options_.repetitions));
  for (int r = 0; r < options_.repetitions; ++r) {
    // One repetition = one counted measurement loop; a transient sensor
    // fault voids the whole repetition, so the retry re-runs it from the
    // first counter read.
    Status st = retry_.run(site, [&]() -> Status {
      if (!injector.empty()) {
        XPDL_RETURN_IF_ERROR(injector.check(site));
      }
      double e0 = machine_.read_energy_counter();
      double t0 = machine_.now();
      XPDL_RETURN_IF_ERROR(
          machine_.execute(name, options_.iterations, frequency_hz));
      double e1 = machine_.read_energy_counter();
      double t1 = machine_.now();
      double dynamic = (e1 - e0) - static_power_w_ * (t1 - t0);
      samples.push_back(dynamic / static_cast<double>(options_.iterations));
      return Status::ok();
    });
    run_retries_ += static_cast<std::size_t>(retry_.last_run().retries);
    XPDL_RETURN_IF_ERROR(st);
  }
  double energy = aggregate(std::move(samples));
  // Energy can come out slightly negative for near-zero-cost instructions
  // under noise; clamp — a negative per-instruction energy is unphysical.
  return std::max(energy, 0.0);
}

Result<BootstrapReport> Bootstrapper::bootstrap(model::InstructionSet& isa) {
  BootstrapReport report;
  run_retries_ = 0;
  XPDL_ASSIGN_OR_RETURN(static_power_w_, measure_static_power());
  report.estimated_static_power_w = static_power_w_;

  for (model::InstructionEnergy& inst : isa.instructions) {
    bool needs = inst.placeholder ||
                 (!inst.energy_j.has_value() && inst.table.empty());
    if (!needs && !options_.force) {
      ++report.skipped_instructions;
      continue;
    }
    std::vector<std::pair<double, double>> table;
    std::vector<BootstrapReport::Entry> entries;
    Status failure = Status::ok();
    for (double f : options_.frequencies_hz) {
      auto e = measure_instruction(inst.name, f);
      if (!e.is_ok()) {
        failure = std::move(e).status();
        break;
      }
      table.emplace_back(f, *e);
      entries.push_back(BootstrapReport::Entry{inst.name, f, *e});
    }
    if (!failure.is_ok()) {
      if (!options_.keep_going) {
        report.measurement_retries = run_retries_;
        return failure.with_context("bootstrapping instruction '" +
                                    inst.name + "'");
      }
      // Degraded mode: leave the '?' placeholder intact and loud, record
      // why, and keep measuring the remaining instructions.
      XPDL_OBS_COUNT("bootstrap.instructions_unmeasurable", 1);
      report.unmeasurable.push_back(
          BootstrapReport::Unmeasurable{inst.name, std::move(failure)});
      continue;
    }
    for (BootstrapReport::Entry& entry : entries) {
      report.entries.push_back(std::move(entry));
    }
    if (table.size() == 1) {
      inst.energy_j = table.front().second;
      inst.table.clear();
    } else {
      inst.table = std::move(table);
      inst.energy_j.reset();
    }
    inst.placeholder = false;
    ++report.measured_instructions;
  }
  report.measurement_retries = run_retries_;
  XPDL_OBS_COUNT("bootstrap.instructions_measured",
                 report.measured_instructions);
  XPDL_OBS_COUNT("bootstrap.instructions_skipped",
                 report.skipped_instructions);
  return report;
}

Result<BootstrapReport> Bootstrapper::bootstrap_model(xml::Element& root) {
  obs::Span span("bootstrap");
  BootstrapReport total;
  // Depth-first over the tree, bootstrapping each <instructions> element.
  std::vector<xml::Element*> stack = {&root};
  while (!stack.empty()) {
    xml::Element* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "instructions") continue;

    XPDL_ASSIGN_OR_RETURN(model::InstructionSet isa,
                          model::InstructionSet::parse(*e));
    XPDL_ASSIGN_OR_RETURN(BootstrapReport report, bootstrap(isa));

    // Write results back into the XML (Listing 14 shapes).
    for (const auto& inst_elem : e->children()) {
      if (inst_elem->tag() != "inst") continue;
      auto name = inst_elem->attribute("name");
      if (!name.has_value()) continue;
      const model::InstructionEnergy* inst = isa.find(*name);
      if (inst == nullptr || inst->placeholder) continue;
      if (inst->energy_j.has_value()) {
        inst_elem->set_attribute(
            "energy", strings::format("%.6g", *inst->energy_j * 1e9));
        inst_elem->set_attribute("energy_unit", "nJ");
      } else if (!inst->table.empty()) {
        inst_elem->remove_attribute("energy");
        inst_elem->remove_attribute("energy_unit");
        // Replace any existing <data> children with the measured table.
        auto& children =
            const_cast<std::vector<std::unique_ptr<xml::Element>>&>(
                inst_elem->children());
        std::erase_if(children, [](const std::unique_ptr<xml::Element>& c) {
          return c->tag() == "data";
        });
        for (const auto& [f, en] : inst->table) {
          xml::Element& d = inst_elem->add_child("data");
          d.set_attribute("frequency", strings::format("%.6g", f / 1e9));
          d.set_attribute("frequency_unit", "GHz");
          d.set_attribute("energy", strings::format("%.6g", en * 1e9));
          d.set_attribute("energy_unit", "nJ");
        }
      }
    }

    total.estimated_static_power_w = report.estimated_static_power_w;
    total.measured_instructions += report.measured_instructions;
    total.skipped_instructions += report.skipped_instructions;
    total.measurement_retries += report.measurement_retries;
    for (auto& entry : report.entries) total.entries.push_back(std::move(entry));
    for (auto& um : report.unmeasurable) {
      total.unmeasurable.push_back(std::move(um));
    }
  }
  XPDL_OBS_COUNT("bootstrap.placeholders_filled", total.measured_instructions);
  if (span.active()) {
    span.arg("measured", total.measured_instructions);
    span.arg("skipped", total.skipped_instructions);
    span.arg("unmeasurable", total.unmeasurable.size());
  }
  return total;
}

}  // namespace xpdl::microbench
