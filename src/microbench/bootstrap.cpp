#include "xpdl/microbench/bootstrap.h"

#include <cmath>

#include "xpdl/obs/metrics.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/strings.h"

namespace xpdl::microbench {

Bootstrapper::Bootstrapper(SimMachine& machine, BootstrapOptions options)
    : machine_(machine), options_(std::move(options)) {
  if (options_.frequencies_hz.empty()) {
    options_.frequencies_hz.push_back(options_.default_frequency_hz);
  }
}

Result<double> Bootstrapper::measure_static_power() {
  if (options_.idle_interval_s <= 0 || options_.repetitions <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "bootstrap options require positive idle interval and "
                  "repetition count");
  }
  double sum = 0.0;
  for (int r = 0; r < options_.repetitions; ++r) {
    double e0 = machine_.read_energy_counter();
    double t0 = machine_.now();
    machine_.idle(options_.idle_interval_s);
    double e1 = machine_.read_energy_counter();
    double t1 = machine_.now();
    sum += (e1 - e0) / (t1 - t0);
  }
  return sum / options_.repetitions;
}

Result<double> Bootstrapper::measure_instruction(std::string_view name,
                                                 double frequency_hz) {
  XPDL_OBS_COUNT("bootstrap.sim_runs",
                 static_cast<std::uint64_t>(options_.repetitions));
  double sum = 0.0;
  for (int r = 0; r < options_.repetitions; ++r) {
    double e0 = machine_.read_energy_counter();
    double t0 = machine_.now();
    XPDL_RETURN_IF_ERROR(
        machine_.execute(name, options_.iterations, frequency_hz));
    double e1 = machine_.read_energy_counter();
    double t1 = machine_.now();
    double dynamic = (e1 - e0) - static_power_w_ * (t1 - t0);
    sum += dynamic / static_cast<double>(options_.iterations);
  }
  double mean = sum / options_.repetitions;
  // Energy can come out slightly negative for near-zero-cost instructions
  // under noise; clamp — a negative per-instruction energy is unphysical.
  return std::max(mean, 0.0);
}

Result<BootstrapReport> Bootstrapper::bootstrap(model::InstructionSet& isa) {
  BootstrapReport report;
  XPDL_ASSIGN_OR_RETURN(static_power_w_, measure_static_power());
  report.estimated_static_power_w = static_power_w_;

  for (model::InstructionEnergy& inst : isa.instructions) {
    bool needs = inst.placeholder ||
                 (!inst.energy_j.has_value() && inst.table.empty());
    if (!needs && !options_.force) {
      ++report.skipped_instructions;
      continue;
    }
    std::vector<std::pair<double, double>> table;
    for (double f : options_.frequencies_hz) {
      XPDL_ASSIGN_OR_RETURN(double e, measure_instruction(inst.name, f));
      table.emplace_back(f, e);
      report.entries.push_back(
          BootstrapReport::Entry{inst.name, f, e});
    }
    if (table.size() == 1) {
      inst.energy_j = table.front().second;
      inst.table.clear();
    } else {
      inst.table = std::move(table);
      inst.energy_j.reset();
    }
    inst.placeholder = false;
    ++report.measured_instructions;
  }
  XPDL_OBS_COUNT("bootstrap.instructions_measured",
                 report.measured_instructions);
  XPDL_OBS_COUNT("bootstrap.instructions_skipped",
                 report.skipped_instructions);
  return report;
}

Result<BootstrapReport> Bootstrapper::bootstrap_model(xml::Element& root) {
  obs::Span span("bootstrap");
  BootstrapReport total;
  // Depth-first over the tree, bootstrapping each <instructions> element.
  std::vector<xml::Element*> stack = {&root};
  while (!stack.empty()) {
    xml::Element* e = stack.back();
    stack.pop_back();
    for (const auto& c : e->children()) stack.push_back(c.get());
    if (e->tag() != "instructions") continue;

    XPDL_ASSIGN_OR_RETURN(model::InstructionSet isa,
                          model::InstructionSet::parse(*e));
    XPDL_ASSIGN_OR_RETURN(BootstrapReport report, bootstrap(isa));

    // Write results back into the XML (Listing 14 shapes).
    for (const auto& inst_elem : e->children()) {
      if (inst_elem->tag() != "inst") continue;
      auto name = inst_elem->attribute("name");
      if (!name.has_value()) continue;
      const model::InstructionEnergy* inst = isa.find(*name);
      if (inst == nullptr || inst->placeholder) continue;
      if (inst->energy_j.has_value()) {
        inst_elem->set_attribute(
            "energy", strings::format("%.6g", *inst->energy_j * 1e9));
        inst_elem->set_attribute("energy_unit", "nJ");
      } else if (!inst->table.empty()) {
        inst_elem->remove_attribute("energy");
        inst_elem->remove_attribute("energy_unit");
        // Replace any existing <data> children with the measured table.
        auto& children =
            const_cast<std::vector<std::unique_ptr<xml::Element>>&>(
                inst_elem->children());
        std::erase_if(children, [](const std::unique_ptr<xml::Element>& c) {
          return c->tag() == "data";
        });
        for (const auto& [f, en] : inst->table) {
          xml::Element& d = inst_elem->add_child("data");
          d.set_attribute("frequency", strings::format("%.6g", f / 1e9));
          d.set_attribute("frequency_unit", "GHz");
          d.set_attribute("energy", strings::format("%.6g", en * 1e9));
          d.set_attribute("energy_unit", "nJ");
        }
      }
    }

    total.estimated_static_power_w = report.estimated_static_power_w;
    total.measured_instructions += report.measured_instructions;
    total.skipped_instructions += report.skipped_instructions;
    for (auto& entry : report.entries) total.entries.push_back(std::move(entry));
  }
  XPDL_OBS_COUNT("bootstrap.placeholders_filled", total.measured_instructions);
  if (span.active()) {
    span.arg("measured", total.measured_instructions);
    span.arg("skipped", total.skipped_instructions);
  }
  return total;
}

}  // namespace xpdl::microbench
