#include "xpdl/microbench/simmachine.h"

#include <cmath>

namespace xpdl::microbench {

SimMachine::SimMachine(SimMachineConfig config,
                       model::InstructionSet ground_truth)
    : config_(config), truth_(std::move(ground_truth)), rng_state_(config.seed) {
  if (rng_state_ == 0) rng_state_ = 1;
}

double SimMachine::next_noise_factor() {
  if (config_.noise_stddev <= 0) return 1.0;
  // xorshift64* -> two uniforms -> Box-Muller. Deterministic per seed;
  // good enough statistically for measurement noise.
  auto next_u64 = [this]() {
    std::uint64_t x = rng_state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  };
  double u1 = (static_cast<double>(next_u64() >> 11) + 1.0) / 9007199254740993.0;
  double u2 = (static_cast<double>(next_u64() >> 11) + 1.0) / 9007199254740993.0;
  double gauss = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return 1.0 + config_.noise_stddev * gauss;
}

double SimMachine::read_energy_counter() const noexcept {
  if (config_.counter_quantum_j <= 0) return energy_j_;
  return std::floor(energy_j_ / config_.counter_quantum_j) *
         config_.counter_quantum_j;
}

Status SimMachine::execute(std::string_view instruction, std::uint64_t count,
                           double frequency_hz) {
  if (frequency_hz <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "execute() requires a positive frequency");
  }
  if (frequency_cap_hz_ > 0 && frequency_hz > frequency_cap_hz_ * (1 + 1e-9)) {
    return Status(ErrorCode::kInvalidArgument,
                  "requested frequency exceeds the configured DVFS cap");
  }
  const model::InstructionEnergy* inst = truth_.find(instruction);
  if (inst == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "simulated machine has no instruction '" +
                      std::string(instruction) + "'");
  }
  XPDL_ASSIGN_OR_RETURN(double energy_per_inst, inst->energy_at(frequency_hz));

  double duration =
      static_cast<double>(count) / (config_.ipc * frequency_hz);
  double dynamic = static_cast<double>(count) * energy_per_inst;
  double background = config_.static_power_w * duration;
  double delta = (dynamic + background) * next_noise_factor();
  time_s_ += duration;
  energy_j_ += delta;
  return Status::ok();
}

void SimMachine::idle(double duration_s) {
  if (duration_s <= 0) return;
  double delta = config_.static_power_w * duration_s * next_noise_factor();
  time_s_ += duration_s;
  energy_j_ += delta;
}

model::InstructionSet paper_x86_ground_truth() {
  model::InstructionSet isa;
  isa.name = "x86_base_isa";
  isa.microbenchmark_suite = "mb_x86_base_1";

  auto add_table = [&](std::string name,
                       std::vector<std::pair<double, double>> table) {
    model::InstructionEnergy e;
    e.name = std::move(name);
    e.table = std::move(table);
    isa.instructions.push_back(std::move(e));
  };
  auto add_affine = [&](std::string name, double base_nj,
                        double slope_nj_per_ghz) {
    // Affine-in-frequency dynamic energy, tabulated over the paper's
    // 2.8..3.4 GHz DVFS range (energy rises with voltage~frequency).
    std::vector<std::pair<double, double>> table;
    for (double f_ghz = 2.8; f_ghz <= 3.4 + 1e-9; f_ghz += 0.1) {
      table.emplace_back(f_ghz * 1e9,
                         (base_nj + slope_nj_per_ghz * (f_ghz - 2.8)) * 1e-9);
    }
    add_table(std::move(name), std::move(table));
  };

  // divsd reproduces Listing 14 exactly (values in nJ at GHz points).
  add_table("divsd", {{2.8e9, 18.625e-9},
                      {2.9e9, 19.573e-9},
                      {3.0e9, 19.978e-9},
                      {3.1e9, 20.237e-9},
                      {3.2e9, 20.512e-9},
                      {3.3e9, 20.779e-9},
                      {3.4e9, 21.023e-9}});
  // Remaining entries: plausible relative costs (div >> mul > add ~ mov).
  add_affine("fmul", 2.10, 0.55);
  add_affine("fadd", 1.45, 0.40);
  add_affine("mov", 0.85, 0.22);
  add_affine("nop", 0.30, 0.08);
  add_affine("load", 3.20, 0.70);
  add_affine("store", 3.65, 0.80);
  return isa;
}

}  // namespace xpdl::microbench
