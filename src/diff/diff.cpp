#include "xpdl/diff/diff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "xpdl/compose/compose.h"
#include "xpdl/model/ir.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::diff {
namespace {

bool is_composer_attribute(std::string_view name) noexcept {
  return name == "expanded" || name == "resolved" ||
         name == compose::kEffectiveBandwidthAttr ||
         name == std::string(compose::kEffectiveBandwidthAttr) + "_unit" ||
         name == compose::kStaticPowerTotalAttr ||
         name == std::string(compose::kStaticPowerTotalAttr) + "_unit";
}

/// SI-normalized comparison of one attribute value pair on two elements.
bool values_equal(const xml::Element& le, const xml::Element& re,
                  std::string_view attr, std::string_view lv,
                  std::string_view rv, const Options& options) {
  if (lv == rv) return true;
  if (!options.unit_aware) return false;
  // Attempt unit-aware numeric comparison for metric attributes.
  if (model::is_structural_attribute(attr)) return false;
  auto lm = model::metric_of(le, attr);
  auto rm = model::metric_of(re, attr);
  if (!lm.is_ok() || !rm.is_ok() || !lm->has_value() || !rm->has_value()) {
    return false;
  }
  if (!(*lm)->is_number() || !(*rm)->is_number()) return false;
  double a = (*lm)->value_si;
  double b = (*rm)->value_si;
  return std::fabs(a - b) <= 1e-12 * std::max({1.0, std::fabs(a),
                                               std::fabs(b)});
}

/// Alignment key of a child: tag plus id/name (ordinal fallback keyed by
/// per-tag occurrence index for anonymous children).
std::string child_key(const xml::Element& e, std::size_t anon_ordinal) {
  std::string ident(e.attribute_or("id", e.attribute_or("name", "")));
  if (ident.empty()) {
    return e.tag() + "#" + std::to_string(anon_ordinal);
  }
  return e.tag() + ":" + ident;
}

std::string path_segment(const xml::Element& e, std::size_t anon_ordinal) {
  std::string ident(e.attribute_or("id", e.attribute_or("name", "")));
  if (ident.empty()) {
    return e.tag() + "[" + std::to_string(anon_ordinal) + "]";
  }
  return ident;
}

class Differ {
 public:
  Differ(const Options& options, std::vector<Change>& out)
      : options_(options), out_(out) {}

  void run(const xml::Element& left, const xml::Element& right,
           const std::string& path) {
    compare_attributes(left, right, path);

    // Align children by key.
    std::map<std::string, const xml::Element*> lmap, rmap;
    std::vector<std::string> order;  // left order first, then right-only
    index_children(left, lmap, &order);
    index_children(right, rmap, nullptr);
    for (const auto& [key, re] : rmap) {
      if (lmap.find(key) == lmap.end()) order.push_back(key);
    }
    std::map<std::string, std::size_t> seg_ordinal;
    for (const std::string& key : order) {
      auto li = lmap.find(key);
      auto ri = rmap.find(key);
      const xml::Element* any =
          li != lmap.end() ? li->second : ri->second;
      std::size_t ordinal = seg_ordinal[any->tag()]++;
      std::string child_path =
          path + "." + path_segment(*any, ordinal);
      if (li == lmap.end()) {
        out_.push_back({ChangeKind::kElementAdded, child_path, "", "",
                        "<" + any->tag() + ">"});
        continue;
      }
      if (ri == rmap.end()) {
        out_.push_back({ChangeKind::kElementRemoved, child_path, "",
                        "<" + any->tag() + ">", ""});
        continue;
      }
      run(*li->second, *ri->second, child_path);
    }
  }

 private:
  void index_children(const xml::Element& e,
                      std::map<std::string, const xml::Element*>& map,
                      std::vector<std::string>* order) {
    std::map<std::string, std::size_t> anon;
    for (const auto& c : e.children()) {
      std::string key = child_key(*c, anon[c->tag()]);
      if (!c->has_attribute("id") && !c->has_attribute("name")) {
        ++anon[c->tag()];
      }
      if (map.emplace(key, c.get()).second && order != nullptr) {
        order->push_back(key);
      }
    }
  }

  void compare_attributes(const xml::Element& left,
                          const xml::Element& right,
                          const std::string& path) {
    auto skip = [&](std::string_view name) {
      return options_.ignore_composer_attributes &&
             is_composer_attribute(name);
    };
    for (const xml::Attribute& a : left.attributes()) {
      if (skip(a.name.view())) continue;
      auto rv = right.attribute(a.name.view());
      if (!rv.has_value()) {
        out_.push_back({ChangeKind::kAttributeRemoved, path, a.name.str(),
                        a.value, ""});
      } else if (!values_equal(left, right, a.name.view(), a.value, *rv,
                               options_)) {
        out_.push_back({ChangeKind::kAttributeChanged, path, a.name.str(),
                        a.value, std::string(*rv)});
      }
    }
    for (const xml::Attribute& a : right.attributes()) {
      if (skip(a.name.view())) continue;
      if (!left.has_attribute(a.name.view())) {
        out_.push_back(
            {ChangeKind::kAttributeAdded, path, a.name.str(), "", a.value});
      }
    }
  }

  const Options& options_;
  std::vector<Change>& out_;
};

}  // namespace

std::string_view to_string(ChangeKind k) noexcept {
  switch (k) {
    case ChangeKind::kElementAdded: return "element-added";
    case ChangeKind::kElementRemoved: return "element-removed";
    case ChangeKind::kAttributeAdded: return "attribute-added";
    case ChangeKind::kAttributeRemoved: return "attribute-removed";
    case ChangeKind::kAttributeChanged: return "attribute-changed";
  }
  return "unknown";
}

std::string Change::to_string() const {
  std::string out(diff::to_string(kind));
  out += "  " + path;
  if (!attribute.empty()) out += " @" + attribute;
  if (!left.empty() || !right.empty()) {
    out += "  '" + left + "' -> '" + right + "'";
  }
  return out;
}

std::vector<Change> diff(const xml::Element& left, const xml::Element& right,
                         const Options& options) {
  std::vector<Change> out;
  std::string root_path(left.attribute_or(
      "id", left.attribute_or("name", left.tag())));
  Differ differ(options, out);
  differ.run(left, right, root_path);
  std::stable_sort(out.begin(), out.end(),
                   [](const Change& a, const Change& b) {
                     return a.path < b.path;
                   });
  return out;
}

bool equivalent(const xml::Element& left, const xml::Element& right,
                const Options& options) {
  return diff(left, right, options).empty();
}

}  // namespace xpdl::diff
