#include "xpdl/util/status.h"

namespace xpdl {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kSchemaViolation: return "schema-violation";
    case ErrorCode::kUnresolvedRef: return "unresolved-reference";
    case ErrorCode::kCycle: return "cycle";
    case ErrorCode::kConstraintViolation: return "constraint-violation";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kFormatError: return "format-error";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kInternal: return "internal-error";
  }
  return "unknown-error";
}

std::string SourceLocation::to_string() const {
  std::string out = file.str();
  if (line != 0) {
    if (!out.empty()) out += ':';
    out += std::to_string(line);
    if (column != 0) {
      out += ':';
      out += std::to_string(column);
    }
  }
  return out;
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = location_.to_string();
  if (!out.empty()) out += ": ";
  out += xpdl::to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

Status& Status::with_context(std::string_view context) {
  if (!is_ok()) {
    std::string prefixed(context);
    prefixed += ": ";
    prefixed += message_;
    message_ = std::move(prefixed);
  }
  return *this;
}

}  // namespace xpdl
