#include "xpdl/util/units.h"

#include <array>
#include <cmath>
#include <ostream>
#include <sstream>

#include "xpdl/util/strings.h"

namespace xpdl::units {
namespace {

struct UnitEntry {
  std::string_view symbol;
  Dimension dimension;
  double factor;
  double offset = 0.0;
};

// The unit table. Exact-match symbols; lookup falls back to a
// case-insensitive scan because the paper's listings themselves mix
// "KiB"/"kB"/"KB" spellings. Binary (Ki/Mi/Gi/Ti) and decimal (k/M/G/T)
// size prefixes are both supported and distinct.
constexpr double kKi = 1024.0;
constexpr std::array<UnitEntry, 68> kUnits = {{
    // --- size (SI base: byte) ---
    {"B", Dimension::kSize, 1.0},
    {"bit", Dimension::kSize, 1.0 / 8.0},
    {"kB", Dimension::kSize, 1e3},
    {"KB", Dimension::kSize, 1e3},
    {"MB", Dimension::kSize, 1e6},
    {"GB", Dimension::kSize, 1e9},
    {"TB", Dimension::kSize, 1e12},
    {"KiB", Dimension::kSize, kKi},
    {"MiB", Dimension::kSize, kKi * kKi},
    {"GiB", Dimension::kSize, kKi * kKi * kKi},
    {"TiB", Dimension::kSize, kKi * kKi * kKi * kKi},
    // --- frequency (SI base: Hz) ---
    {"Hz", Dimension::kFrequency, 1.0},
    {"kHz", Dimension::kFrequency, 1e3},
    {"MHz", Dimension::kFrequency, 1e6},
    {"GHz", Dimension::kFrequency, 1e9},
    {"THz", Dimension::kFrequency, 1e12},
    // --- power (SI base: W) ---
    {"nW", Dimension::kPower, 1e-9},
    {"uW", Dimension::kPower, 1e-6},
    {"mW", Dimension::kPower, 1e-3},
    {"W", Dimension::kPower, 1.0},
    {"kW", Dimension::kPower, 1e3},
    {"MW", Dimension::kPower, 1e6},
    // --- energy (SI base: J) ---
    {"fJ", Dimension::kEnergy, 1e-15},
    {"pJ", Dimension::kEnergy, 1e-12},
    {"nJ", Dimension::kEnergy, 1e-9},
    {"uJ", Dimension::kEnergy, 1e-6},
    {"mJ", Dimension::kEnergy, 1e-3},
    {"J", Dimension::kEnergy, 1.0},
    {"kJ", Dimension::kEnergy, 1e3},
    {"Wh", Dimension::kEnergy, 3600.0},
    {"kWh", Dimension::kEnergy, 3.6e6},
    // --- time (SI base: s) ---
    {"ps", Dimension::kTime, 1e-12},
    {"ns", Dimension::kTime, 1e-9},
    {"us", Dimension::kTime, 1e-6},
    {"ms", Dimension::kTime, 1e-3},
    {"s", Dimension::kTime, 1.0},
    {"sec", Dimension::kTime, 1.0},
    {"min", Dimension::kTime, 60.0},
    {"h", Dimension::kTime, 3600.0},
    // --- bandwidth (SI base: B/s) ---
    {"B/s", Dimension::kBandwidth, 1.0},
    {"kB/s", Dimension::kBandwidth, 1e3},
    {"KB/s", Dimension::kBandwidth, 1e3},
    {"MB/s", Dimension::kBandwidth, 1e6},
    {"GB/s", Dimension::kBandwidth, 1e9},
    {"TB/s", Dimension::kBandwidth, 1e12},
    {"KiB/s", Dimension::kBandwidth, kKi},
    {"MiB/s", Dimension::kBandwidth, kKi * kKi},
    {"GiB/s", Dimension::kBandwidth, kKi * kKi * kKi},
    {"TiB/s", Dimension::kBandwidth, kKi * kKi * kKi * kKi},
    {"bit/s", Dimension::kBandwidth, 1.0 / 8.0},
    {"kbit/s", Dimension::kBandwidth, 1e3 / 8.0},
    {"Mbit/s", Dimension::kBandwidth, 1e6 / 8.0},
    {"Gbit/s", Dimension::kBandwidth, 1e9 / 8.0},
    {"Tbit/s", Dimension::kBandwidth, 1e12 / 8.0},
    {"GT/s", Dimension::kBandwidth, 1e9},  // PCIe transfer rate, 1B/T approx.
    // --- voltage (SI base: V) ---
    {"uV", Dimension::kVoltage, 1e-6},
    {"mV", Dimension::kVoltage, 1e-3},
    {"V", Dimension::kVoltage, 1.0},
    // --- temperature (SI base: K) ---
    {"K", Dimension::kTemperature, 1.0},
    {"C", Dimension::kTemperature, 1.0, 273.15},
    {"degC", Dimension::kTemperature, 1.0, 273.15},
    // --- dimensionless ---
    {"", Dimension::kDimensionless, 1.0},
    {"1", Dimension::kDimensionless, 1.0},
    {"ratio", Dimension::kDimensionless, 1.0},
    {"percent", Dimension::kDimensionless, 0.01},
    {"%", Dimension::kDimensionless, 0.01},
    {"count", Dimension::kDimensionless, 1.0},
    {"flops/W", Dimension::kDimensionless, 1.0},
}};

const UnitEntry* find_entry(std::string_view symbol) {
  for (const UnitEntry& e : kUnits) {
    if (e.symbol == symbol) return &e;
  }
  // Case-insensitive fallback: the first case-folded match wins. This keeps
  // "KiB" vs "kb" tolerant without conflating distinct exact symbols.
  for (const UnitEntry& e : kUnits) {
    if (strings::iequals(e.symbol, symbol)) return &e;
  }
  return nullptr;
}

}  // namespace

std::string_view to_string(Dimension d) noexcept {
  switch (d) {
    case Dimension::kDimensionless: return "dimensionless";
    case Dimension::kSize: return "size";
    case Dimension::kFrequency: return "frequency";
    case Dimension::kPower: return "power";
    case Dimension::kEnergy: return "energy";
    case Dimension::kTime: return "time";
    case Dimension::kBandwidth: return "bandwidth";
    case Dimension::kVoltage: return "voltage";
    case Dimension::kTemperature: return "temperature";
  }
  return "unknown";
}

std::string_view si_symbol(Dimension d) noexcept {
  switch (d) {
    case Dimension::kDimensionless: return "";
    case Dimension::kSize: return "B";
    case Dimension::kFrequency: return "Hz";
    case Dimension::kPower: return "W";
    case Dimension::kEnergy: return "J";
    case Dimension::kTime: return "s";
    case Dimension::kBandwidth: return "B/s";
    case Dimension::kVoltage: return "V";
    case Dimension::kTemperature: return "K";
  }
  return "";
}

Result<Unit> parse_unit(std::string_view symbol) {
  std::string_view trimmed = strings::trim(symbol);
  const UnitEntry* e = find_entry(trimmed);
  if (e == nullptr) {
    return Status(ErrorCode::kParseError,
                  "unknown unit symbol '" + std::string(trimmed) + "'");
  }
  return Unit{e->dimension, e->factor, e->offset, std::string(trimmed)};
}

Result<Unit> parse_unit(std::string_view symbol, Dimension expected) {
  XPDL_ASSIGN_OR_RETURN(Unit u, parse_unit(symbol));
  if (u.dimension != expected) {
    return Status(ErrorCode::kParseError,
                  "unit '" + u.symbol + "' has dimension " +
                      std::string(to_string(u.dimension)) + ", expected " +
                      std::string(to_string(expected)));
  }
  return u;
}

Result<Quantity> Quantity::parse(std::string_view value,
                                 std::string_view unit_symbol) {
  XPDL_ASSIGN_OR_RETURN(double v, strings::parse_double(value));
  XPDL_ASSIGN_OR_RETURN(Unit u, parse_unit(unit_symbol));
  return Quantity(u.to_si(v), u.dimension);
}

Result<Quantity> Quantity::parse(std::string_view value,
                                 std::string_view unit_symbol,
                                 Dimension expected) {
  XPDL_ASSIGN_OR_RETURN(double v, strings::parse_double(value));
  XPDL_ASSIGN_OR_RETURN(Unit u, parse_unit(unit_symbol, expected));
  return Quantity(u.to_si(v), u.dimension);
}

double Quantity::in(const Unit& unit) const noexcept {
  assert(unit.dimension == dimension_ && "dimension mismatch in conversion");
  return unit.from_si(si_value_);
}

Result<double> Quantity::in(std::string_view symbol) const {
  XPDL_ASSIGN_OR_RETURN(Unit u, parse_unit(symbol, dimension_));
  return in(u);
}

namespace {

struct Scale {
  double factor;
  std::string_view suffix;
};

std::string scaled(double si, std::initializer_list<Scale> scales,
                   std::string_view base) {
  for (const Scale& s : scales) {
    if (std::fabs(si) >= s.factor) {
      std::ostringstream os;
      os << (si / s.factor) << ' ' << s.suffix;
      return os.str();
    }
  }
  std::ostringstream os;
  os << si << ' ' << base;
  return os.str();
}

}  // namespace

std::string Quantity::to_string() const {
  const double v = si_value_;
  switch (dimension_) {
    case Dimension::kSize:
      return scaled(v,
                    {{kKi * kKi * kKi * kKi, "TiB"},
                     {kKi * kKi * kKi, "GiB"},
                     {kKi * kKi, "MiB"},
                     {kKi, "KiB"}},
                    "B");
    case Dimension::kFrequency:
      return scaled(v, {{1e9, "GHz"}, {1e6, "MHz"}, {1e3, "kHz"}}, "Hz");
    case Dimension::kPower:
      return scaled(v, {{1e3, "kW"}, {1.0, "W"}, {1e-3, "mW"}, {1e-6, "uW"}},
                    "nW");
    case Dimension::kEnergy:
      return scaled(
          v, {{1.0, "J"}, {1e-3, "mJ"}, {1e-6, "uJ"}, {1e-9, "nJ"}}, "pJ");
    case Dimension::kTime:
      return scaled(v, {{1.0, "s"}, {1e-3, "ms"}, {1e-6, "us"}}, "ns");
    case Dimension::kBandwidth:
      return scaled(
          v, {{kKi * kKi * kKi, "GiB/s"}, {kKi * kKi, "MiB/s"}, {kKi, "KiB/s"}},
          "B/s");
    case Dimension::kVoltage:
      return scaled(v, {{1.0, "V"}}, "mV");
    case Dimension::kTemperature: {
      std::ostringstream os;
      os << v << " K";
      return os.str();
    }
    case Dimension::kDimensionless: {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }
  return {};
}

std::ostream& operator<<(std::ostream& os, const Quantity& q) {
  return os << q.to_string();
}

Dimension metric_dimension(std::string_view metric) noexcept {
  // Suffix rules first: XPDL composes metric names like energy_per_byte,
  // energy_offset_per_message, time_offset_per_message, static_power.
  auto ends_with = [&](std::string_view sfx) {
    return metric.size() >= sfx.size() &&
           metric.substr(metric.size() - sfx.size()) == sfx;
  };
  auto contains = [&](std::string_view part) {
    return metric.find(part) != std::string_view::npos;
  };
  if (metric == "size" || ends_with("size") || ends_with("_sz") ||
      metric == "gmsz" || metric == "msize") {
    return Dimension::kSize;
  }
  if (contains("bandwidth")) return Dimension::kBandwidth;
  if (contains("frequency") || metric == "cfrq") return Dimension::kFrequency;
  if (contains("power")) return Dimension::kPower;
  if (contains("energy")) return Dimension::kEnergy;
  if (contains("time") || contains("latency")) return Dimension::kTime;
  if (contains("voltage")) return Dimension::kVoltage;
  if (contains("temperature")) return Dimension::kTemperature;
  return Dimension::kDimensionless;
}

std::string unit_attribute_name(std::string_view metric) {
  // Sec. III-A: "As an exception, the unit for the metric size is
  // implicitly specified as unit."
  if (metric == "size") return "unit";
  std::string out(metric);
  out += "_unit";
  return out;
}

}  // namespace xpdl::units
