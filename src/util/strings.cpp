#include "xpdl/util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xpdl::strings {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = trim(s.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<double> parse_double(std::string_view s) {
  std::string buf(trim(s));
  if (buf.empty()) {
    return Status(ErrorCode::kParseError, "empty string where number expected");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status(ErrorCode::kParseError,
                  "'" + buf + "' is not a valid number");
  }
  return v;
}

Result<std::uint64_t> parse_uint(std::string_view s) {
  std::string buf(trim(s));
  if (buf.empty() || buf[0] == '-') {
    return Status(ErrorCode::kParseError,
                  "'" + buf + "' is not a valid non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status(ErrorCode::kParseError,
                  "'" + buf + "' is not a valid non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

Result<bool> parse_bool(std::string_view s) {
  std::string_view t = trim(s);
  if (iequals(t, "true") || iequals(t, "yes") || iequals(t, "on") || t == "1") {
    return true;
  }
  if (iequals(t, "false") || iequals(t, "no") || iequals(t, "off") ||
      t == "0") {
    return false;
  }
  return Status(ErrorCode::kParseError,
                "'" + std::string(t) + "' is not a valid boolean");
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  char c0 = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_')) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-')) {
      return false;
    }
  }
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string member_id(std::string_view prefix, std::size_t rank) {
  std::string out(prefix);
  out += std::to_string(rank);
  return out;
}

}  // namespace xpdl::strings
