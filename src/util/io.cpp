#include "xpdl/util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xpdl::io {

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot open file for reading",
                  SourceLocation{path, 0, 0});
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status(ErrorCode::kIoError, "read failure",
                  SourceLocation{path, 0, 0});
  }
  return buf.str();
}

Status write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open file for writing",
                  SourceLocation{path, 0, 0});
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status(ErrorCode::kIoError, "write failure",
                  SourceLocation{path, 0, 0});
  }
  return Status::ok();
}

Status write_file_durable(const std::string& path,
                          std::string_view contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("cannot open file for writing: ") +
                      std::strerror(errno),
                  SourceLocation{path, 0, 0});
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status(ErrorCode::kIoError,
                    std::string("write failure: ") + std::strerror(saved),
                    SourceLocation{path, 0, 0});
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status(ErrorCode::kIoError,
                  std::string("fsync failure: ") + std::strerror(saved),
                  SourceLocation{path, 0, 0});
  }
  if (::close(fd) != 0) {
    return Status(ErrorCode::kIoError,
                  std::string("close failure: ") + std::strerror(errno),
                  SourceLocation{path, 0, 0});
  }
  return Status::ok();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

Status make_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status(ErrorCode::kIoError,
                  "cannot create directory: " + ec.message(),
                  SourceLocation{path, 0, 0});
  }
  return Status::ok();
}

}  // namespace xpdl::io
