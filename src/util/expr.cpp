#include "xpdl/util/expr.h"

#include <cctype>
#include <cmath>
#include <sstream>

#include "xpdl/util/strings.h"

namespace xpdl::expr {
namespace {

std::unique_ptr<Node> clone(const Node& n) {
  auto out = std::make_unique<Node>();
  out->kind = n.kind;
  out->number = n.number;
  out->symbol = n.symbol;
  out->children.reserve(n.children.size());
  for (const auto& c : n.children) out->children.push_back(clone(*c));
  return out;
}

/// Recursive-descent parser over the raw text; keeps a cursor for
/// offset-precise error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<Node>> run() {
    XPDL_ASSIGN_OR_RETURN(auto node, parse_or());
    skip_ws();
    if (pos_ != text_.size()) {
      return error("unexpected trailing input");
    }
    return node;
  }

 private:
  Status error(std::string_view what) const {
    return Status(ErrorCode::kParseError,
                  "expression error at offset " + std::to_string(pos_) +
                      " in '" + std::string(text_) + "': " +
                      std::string(what));
  }

  void skip_ws() {
    while (pos_ < text_.size() && strings::is_space(text_[pos_])) ++pos_;
  }

  bool eat(std::string_view tok) {
    skip_ws();
    if (text_.substr(pos_, tok.size()) == tok) {
      // Avoid treating "<=" prefix "<" as a match when "<=" was intended;
      // callers must try longer operators first (they do).
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  static std::unique_ptr<Node> make_binary(std::string op,
                                           std::unique_ptr<Node> lhs,
                                           std::unique_ptr<Node> rhs) {
    auto n = std::make_unique<Node>();
    n->kind = NodeKind::kBinaryOp;
    n->symbol = std::move(op);
    n->children.push_back(std::move(lhs));
    n->children.push_back(std::move(rhs));
    return n;
  }

  Result<std::unique_ptr<Node>> parse_or() {
    XPDL_ASSIGN_OR_RETURN(auto lhs, parse_and());
    while (eat("||")) {
      XPDL_ASSIGN_OR_RETURN(auto rhs, parse_and());
      lhs = make_binary("||", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Node>> parse_and() {
    XPDL_ASSIGN_OR_RETURN(auto lhs, parse_cmp());
    while (eat("&&")) {
      XPDL_ASSIGN_OR_RETURN(auto rhs, parse_cmp());
      lhs = make_binary("&&", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Node>> parse_cmp() {
    XPDL_ASSIGN_OR_RETURN(auto lhs, parse_add());
    for (std::string_view op : {"==", "!=", "<=", ">=", "<", ">"}) {
      skip_ws();
      // '<' must not match the '<' of '<='; longer operators are tried
      // first so a bare '<'/'>' here is genuine.
      if (eat(op)) {
        XPDL_ASSIGN_OR_RETURN(auto rhs, parse_add());
        return make_binary(std::string(op), std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<Node>> parse_add() {
    XPDL_ASSIGN_OR_RETURN(auto lhs, parse_mul());
    while (true) {
      if (eat("+")) {
        XPDL_ASSIGN_OR_RETURN(auto rhs, parse_mul());
        lhs = make_binary("+", std::move(lhs), std::move(rhs));
      } else if (peek() == '-' && text_.substr(pos_, 2) != "->") {
        ++pos_;
        XPDL_ASSIGN_OR_RETURN(auto rhs, parse_mul());
        lhs = make_binary("-", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Node>> parse_mul() {
    XPDL_ASSIGN_OR_RETURN(auto lhs, parse_unary());
    while (true) {
      if (eat("*")) {
        XPDL_ASSIGN_OR_RETURN(auto rhs, parse_unary());
        lhs = make_binary("*", std::move(lhs), std::move(rhs));
      } else if (eat("/")) {
        XPDL_ASSIGN_OR_RETURN(auto rhs, parse_unary());
        lhs = make_binary("/", std::move(lhs), std::move(rhs));
      } else if (eat("%")) {
        XPDL_ASSIGN_OR_RETURN(auto rhs, parse_unary());
        lhs = make_binary("%", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Node>> parse_unary() {
    // The symbol is assigned via a sized string: GCC 12 at -O3 raises a
    // bogus -Wrestrict on operator=(const char*) here (PR 105329).
    if (eat("!")) {
      XPDL_ASSIGN_OR_RETURN(auto operand, parse_unary());
      auto n = std::make_unique<Node>();
      n->kind = NodeKind::kUnaryOp;
      n->symbol.assign(1, '!');
      n->children.push_back(std::move(operand));
      return n;
    }
    skip_ws();
    if (peek() == '-') {
      ++pos_;
      XPDL_ASSIGN_OR_RETURN(auto operand, parse_unary());
      auto n = std::make_unique<Node>();
      n->kind = NodeKind::kUnaryOp;
      n->symbol.assign(1, '-');
      n->children.push_back(std::move(operand));
      return n;
    }
    return parse_primary();
  }

  Result<std::unique_ptr<Node>> parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of expression");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      XPDL_ASSIGN_OR_RETURN(auto inner, parse_or());
      if (!eat(")")) return error("expected ')'");
      return inner;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return parse_ident_or_call();
    }
    return error("unexpected character '" + std::string(1, c) + "'");
  }

  Result<std::unique_ptr<Node>> parse_number() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    XPDL_ASSIGN_OR_RETURN(double v,
                          strings::parse_double(text_.substr(start, pos_ - start)));
    auto n = std::make_unique<Node>();
    n->kind = NodeKind::kNumber;
    n->number = v;
    return n;
  }

  Result<std::unique_ptr<Node>> parse_ident_or_call() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      auto n = std::make_unique<Node>();
      n->kind = NodeKind::kCall;
      n->symbol = std::move(name);
      if (peek() != ')') {
        while (true) {
          XPDL_ASSIGN_OR_RETURN(auto arg, parse_or());
          n->children.push_back(std::move(arg));
          if (!eat(",")) break;
        }
      }
      if (!eat(")")) return error("expected ')' after call arguments");
      return n;
    }
    auto n = std::make_unique<Node>();
    n->kind = NodeKind::kVariable;
    n->symbol = std::move(name);
    return n;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<double> eval(const Node& n, const VariableResolver& resolver) {
  switch (n.kind) {
    case NodeKind::kNumber:
      return n.number;
    case NodeKind::kVariable: {
      if (!resolver) {
        return Status(ErrorCode::kUnresolvedRef,
                      "free variable '" + n.symbol +
                          "' in expression with no resolver");
      }
      return resolver(n.symbol);
    }
    case NodeKind::kUnaryOp: {
      XPDL_ASSIGN_OR_RETURN(double v, eval(*n.children[0], resolver));
      if (n.symbol == "-") return -v;
      return v == 0.0 ? 1.0 : 0.0;  // '!'
    }
    case NodeKind::kBinaryOp: {
      XPDL_ASSIGN_OR_RETURN(double a, eval(*n.children[0], resolver));
      // Short-circuit logical operators.
      if (n.symbol == "&&") {
        if (a == 0.0) return 0.0;
        XPDL_ASSIGN_OR_RETURN(double b2, eval(*n.children[1], resolver));
        return b2 != 0.0 ? 1.0 : 0.0;
      }
      if (n.symbol == "||") {
        if (a != 0.0) return 1.0;
        XPDL_ASSIGN_OR_RETURN(double b2, eval(*n.children[1], resolver));
        return b2 != 0.0 ? 1.0 : 0.0;
      }
      XPDL_ASSIGN_OR_RETURN(double b, eval(*n.children[1], resolver));
      if (n.symbol == "+") return a + b;
      if (n.symbol == "-") return a - b;
      if (n.symbol == "*") return a * b;
      if (n.symbol == "/") {
        if (b == 0.0) {
          return Status(ErrorCode::kConstraintViolation,
                        "division by zero in expression");
        }
        return a / b;
      }
      if (n.symbol == "%") {
        if (b == 0.0) {
          return Status(ErrorCode::kConstraintViolation,
                        "modulo by zero in expression");
        }
        return std::fmod(a, b);
      }
      if (n.symbol == "==") return a == b ? 1.0 : 0.0;
      if (n.symbol == "!=") return a != b ? 1.0 : 0.0;
      if (n.symbol == "<") return a < b ? 1.0 : 0.0;
      if (n.symbol == "<=") return a <= b ? 1.0 : 0.0;
      if (n.symbol == ">") return a > b ? 1.0 : 0.0;
      if (n.symbol == ">=") return a >= b ? 1.0 : 0.0;
      return Status(ErrorCode::kInternal, "unknown operator " + n.symbol);
    }
    case NodeKind::kCall: {
      std::vector<double> args;
      args.reserve(n.children.size());
      for (const auto& c : n.children) {
        XPDL_ASSIGN_OR_RETURN(double v, eval(*c, resolver));
        args.push_back(v);
      }
      auto arity = [&](std::size_t want) -> Status {
        if (args.size() != want) {
          return Status(ErrorCode::kParseError,
                        "function '" + n.symbol + "' expects " +
                            std::to_string(want) + " argument(s), got " +
                            std::to_string(args.size()));
        }
        return Status::ok();
      };
      if (n.symbol == "min" || n.symbol == "max") {
        if (args.empty()) {
          return Status(ErrorCode::kParseError,
                        n.symbol + "() requires at least one argument");
        }
        double acc = args[0];
        for (double v : args) {
          acc = n.symbol == "min" ? std::min(acc, v) : std::max(acc, v);
        }
        return acc;
      }
      if (n.symbol == "abs") { XPDL_RETURN_IF_ERROR(arity(1)); return std::fabs(args[0]); }
      if (n.symbol == "floor") { XPDL_RETURN_IF_ERROR(arity(1)); return std::floor(args[0]); }
      if (n.symbol == "ceil") { XPDL_RETURN_IF_ERROR(arity(1)); return std::ceil(args[0]); }
      if (n.symbol == "round") { XPDL_RETURN_IF_ERROR(arity(1)); return std::round(args[0]); }
      if (n.symbol == "sqrt") {
        XPDL_RETURN_IF_ERROR(arity(1));
        if (args[0] < 0) {
          return Status(ErrorCode::kConstraintViolation, "sqrt of negative value");
        }
        return std::sqrt(args[0]);
      }
      if (n.symbol == "log2") {
        XPDL_RETURN_IF_ERROR(arity(1));
        if (args[0] <= 0) {
          return Status(ErrorCode::kConstraintViolation, "log2 of non-positive value");
        }
        return std::log2(args[0]);
      }
      if (n.symbol == "pow") { XPDL_RETURN_IF_ERROR(arity(2)); return std::pow(args[0], args[1]); }
      return Status(ErrorCode::kUnresolvedRef,
                    "unknown function '" + n.symbol + "'");
    }
  }
  return Status(ErrorCode::kInternal, "corrupt expression node");
}

void collect_variables(const Node& n, std::vector<std::string>& out) {
  if (n.kind == NodeKind::kVariable) {
    for (const std::string& existing : out) {
      if (existing == n.symbol) return;
    }
    out.push_back(n.symbol);
    return;
  }
  for (const auto& c : n.children) collect_variables(*c, out);
}

void print(const Node& n, std::ostream& os) {
  switch (n.kind) {
    case NodeKind::kNumber:
      os << n.number;
      return;
    case NodeKind::kVariable:
      os << n.symbol;
      return;
    case NodeKind::kUnaryOp:
      os << '(' << n.symbol;
      print(*n.children[0], os);
      os << ')';
      return;
    case NodeKind::kBinaryOp:
      os << '(';
      print(*n.children[0], os);
      os << ' ' << n.symbol << ' ';
      print(*n.children[1], os);
      os << ')';
      return;
    case NodeKind::kCall:
      os << n.symbol << '(';
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i != 0) os << ", ";
        print(*n.children[i], os);
      }
      os << ')';
      return;
  }
}

}  // namespace

Result<Expression> Expression::parse(std::string_view text) {
  Parser p(text);
  XPDL_ASSIGN_OR_RETURN(auto root, p.run());
  return Expression(std::move(root), std::string(text));
}

Result<double> Expression::evaluate(const VariableResolver& resolver) const {
  return eval(*root_, resolver);
}

Result<double> Expression::evaluate() const {
  return eval(*root_, VariableResolver{});
}

Result<bool> Expression::evaluate_bool(const VariableResolver& resolver) const {
  XPDL_ASSIGN_OR_RETURN(double v, evaluate(resolver));
  return v != 0.0;
}

std::vector<std::string> Expression::variables() const {
  std::vector<std::string> out;
  collect_variables(*root_, out);
  return out;
}

std::string Expression::to_string() const {
  std::ostringstream os;
  print(*root_, os);
  return os.str();
}

bool Expression::is_constant() const noexcept {
  return root_->kind == NodeKind::kNumber;
}

Expression::Expression(const Expression& other)
    : root_(clone(*other.root_)), source_(other.source_) {}

Expression& Expression::operator=(const Expression& other) {
  if (this != &other) {
    root_ = clone(*other.root_);
    source_ = other.source_;
  }
  return *this;
}

}  // namespace xpdl::expr
