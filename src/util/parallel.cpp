#include "xpdl/util/parallel.h"

#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace xpdl::util::parallel {
namespace {

struct WorkQueue {
  std::mutex mutex;
  std::deque<std::size_t> tasks;

  std::optional<std::size_t> pop_front() {
    std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return std::nullopt;
    std::size_t t = tasks.front();
    tasks.pop_front();
    return t;
  }
  std::optional<std::size_t> steal_back() {
    std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return std::nullopt;
    std::size_t t = tasks.back();
    tasks.pop_back();
    return t;
  }
};

}  // namespace

std::size_t default_threads() noexcept {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (threads > count) threads = count;

  // All tasks are queued up front (round-robin), so a worker terminates
  // once every deque is empty: no task ever spawns another task.
  std::vector<WorkQueue> queues(threads);
  for (std::size_t i = 0; i < count; ++i) {
    queues[i % threads].tasks.push_back(i);
  }

  auto worker = [&](std::size_t self) {
    for (;;) {
      std::optional<std::size_t> task = queues[self].pop_front();
      for (std::size_t k = 1; !task.has_value() && k < threads; ++k) {
        task = queues[(self + k) % threads].steal_back();
      }
      if (!task.has_value()) return;
      fn(*task);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    workers.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& w : workers) w.join();
}

}  // namespace xpdl::util::parallel
