#include "xpdl/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "xpdl/util/strings.h"

// GCC 12 reports a spurious -Wmaybe-uninitialized from the variant
// destructor when a parsed Value is moved into the returned Result<Value>
// (the recursive vector<Value> alternative confuses the inliner's
// uninitialized-use analysis).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace xpdl::json {

Value::Value(const Value& other) = default;
Value::Value(Value&& other) noexcept = default;
Value& Value::operator=(const Value& other) = default;
Value& Value::operator=(Value&& other) noexcept = default;
Value::~Value() = default;

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = Object{};
  return as_object()[std::string(key)];
}

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  const Object& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

void Value::push_back(Value element) {
  if (is_null()) data_ = Array{};
  as_array().push_back(std::move(element));
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += strings::format("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// ===========================================================================
// Parser

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    XPDL_ASSIGN_OR_RETURN(Value v, parse_value(0));
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing content after JSON value");
    }
    return v;
  }

 private:
  [[nodiscard]] Status fail(std::string_view what) const {
    return Status(ErrorCode::kParseError,
                  std::string(what) + " at offset " + std::to_string(pos_));
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() noexcept {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(std::string_view token) noexcept {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  Result<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("JSON nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        XPDL_ASSIGN_OR_RETURN(std::string s, parse_string());
        return Value(std::move(s));
      }
      case 't':
        if (consume("true")) return Value(true);
        return fail("invalid literal");
      case 'f':
        if (consume("false")) return Value(false);
        return fail("invalid literal");
      case 'n':
        if (consume("null")) return Value(nullptr);
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Result<Value> parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        !std::isfinite(v)) {
      pos_ = start;
      return fail("invalid number");
    }
    return Value(v);
  }

  Result<std::string> parse_string() {
    if (peek() != '"') return fail("expected '\"'");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          XPDL_ASSIGN_OR_RETURN(unsigned cp, parse_hex4());
          // Surrogate pair -> single code point.
          if (cp >= 0xD800 && cp <= 0xDBFF && consume("\\u")) {
            XPDL_ASSIGN_OR_RETURN(unsigned low, parse_hex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape sequence");
      }
    }
  }

  Result<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    return cp;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<Value> parse_array(int depth) {
    ++pos_;  // '['
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      XPDL_ASSIGN_OR_RETURN(Value v, parse_value(depth + 1));
      out.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value(std::move(out));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object(int depth) {
    ++pos_;  // '{'
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      XPDL_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_ws();
      if (peek() != ':') return fail("expected ':' in object");
      ++pos_;
      XPDL_ASSIGN_OR_RETURN(Value v, parse_value(depth + 1));
      out.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value(std::move(out));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ===========================================================================
// Writer

std::string number_text(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return strings::format("%.17g", v);
}

void write_value(const Value& v, int indent, int depth, std::string& out) {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: out += number_text(v.as_number()); break;
    case Value::Kind::kString:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Value::Kind::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        write_value(a[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : o) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += escape(key);
        out += "\":";
        if (indent > 0) out += ' ';
        write_value(member, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

Result<Value> parse(std::string_view text) {
  Parser parser(text);
  return parser.run();
}

std::string write(const Value& value, int indent) {
  std::string out;
  write_value(value, indent, 0, out);
  return out;
}

}  // namespace xpdl::json
