// Compatibility shim: the rules themselves live in src/analysis/.
#include "xpdl/lint/lint.h"

#include <set>

namespace xpdl::lint {
namespace {

/// Rule ids the legacy Options toggles cover, keyed by their toggle.
struct LegacyRule {
  bool Options::* toggle;
  std::string_view id;
};

constexpr LegacyRule kLegacyRules[] = {
    {&Options::missing_unit, "missing-unit"},
    {&Options::placeholder_without_mb, "placeholder-without-mb"},
    {&Options::fsm_connectivity, "fsm-not-strongly-connected"},
    {&Options::fsm_connectivity, "fsm-domain-unknown"},
    {&Options::unresolved_type, "unresolved-type"},
    {&Options::unreferenced_meta, "unreferenced-meta"},
    {&Options::duplicate_sibling_id, "duplicate-sibling-id"},
    {&Options::group_without_prefix, "group-without-prefix"},
    {&Options::unknown_role, "unknown-role"},
};

}  // namespace

analysis::RuleConfig to_rule_config(const Options& options) {
  analysis::RuleConfig config;
  std::set<std::string_view> legacy;
  for (const LegacyRule& rule : kLegacyRules) {
    legacy.insert(rule.id);
    if (!(options.*rule.toggle)) config.disabled.emplace(rule.id);
  }
  // Post-migration rules stay off: legacy callers expect exactly the old
  // finding set (the shipped-library-is-clean test pins this).
  for (const analysis::AnalysisRule* rule :
       analysis::Registry::instance().rules()) {
    if (legacy.find(rule->info().id) == legacy.end()) {
      config.disabled.insert(rule->info().id);
    }
  }
  return config;
}

std::vector<Finding> lint_descriptor(const xml::Element& root,
                                     const Options& options) {
  analysis::Options engine_options;
  engine_options.rules = to_rule_config(options);
  engine_options.analyze_models = false;
  return analysis::Engine(std::move(engine_options)).analyze_descriptor(root);
}

Result<std::vector<Finding>> lint_repository(repository::Repository& repo,
                                             const Options& options) {
  analysis::Options engine_options;
  engine_options.rules = to_rule_config(options);
  engine_options.analyze_models = false;
  XPDL_ASSIGN_OR_RETURN(
      analysis::Report report,
      analysis::Engine(std::move(engine_options)).analyze_repository(repo));
  return std::move(report.findings);
}

}  // namespace xpdl::lint
