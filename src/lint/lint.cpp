#include "xpdl/lint/lint.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "xpdl/model/ir.h"
#include "xpdl/model/power.h"
#include "xpdl/schema/schema.h"
#include "xpdl/util/strings.h"
#include "xpdl/util/units.h"

namespace xpdl::lint {
namespace {

void add(std::vector<Finding>& out, Severity severity, std::string rule,
         std::string message, SourceLocation location) {
  out.push_back(Finding{severity, std::move(rule), std::move(message),
                        std::move(location)});
}

void walk(const xml::Element& e,
          const std::function<void(const xml::Element&)>& fn) {
  fn(e);
  for (const auto& c : e.children()) walk(*c, fn);
}

void rule_missing_unit(const xml::Element& e, std::vector<Finding>& out) {
  const schema::ElementSpec* spec = schema::Schema::core().find(e.tag());
  if (spec == nullptr || !spec->allow_metric_attributes) return;
  for (const xml::Attribute& a : e.attributes()) {
    if (model::is_structural_attribute(a.name)) continue;
    if (a.name == "unit" ||
        (a.name.size() > 5 &&
         std::string_view(a.name).substr(a.name.size() - 5) == "_unit")) {
      continue;
    }
    if (!strings::parse_double(a.value).is_ok()) continue;
    units::Dimension dim = units::metric_dimension(a.name);
    if (dim == units::Dimension::kDimensionless) continue;
    if (!e.has_attribute(units::unit_attribute_name(a.name))) {
      add(out, Severity::kWarning, "missing-unit",
          "<" + e.tag() + "> metric '" + a.name +
              "' is numeric and dimensional (" +
              std::string(units::to_string(dim)) + ") but carries no '" +
              units::unit_attribute_name(a.name) + "' attribute",
          e.location());
    }
  }
}

void rule_placeholder_without_mb(const xml::Element& e,
                                 std::vector<Finding>& out) {
  if (e.tag() != "instructions") return;
  auto isa = model::InstructionSet::parse(e);
  if (!isa.is_ok()) return;  // schema/validation reports parse problems
  for (const auto& inst : isa->instructions) {
    if (inst.placeholder && inst.microbenchmark.empty() &&
        isa->microbenchmark_suite.empty()) {
      add(out, Severity::kError, "placeholder-without-mb",
          "instruction '" + inst.name +
              "' has energy '?' but neither an mb reference nor a suite "
              "default; deployment-time bootstrapping cannot derive it",
          inst.location);
    }
  }
}

void rule_fsm(const xml::Element& root, std::vector<Finding>& out) {
  walk(root, [&](const xml::Element& e) {
    if (e.tag() != "power_model") return;
    auto pm = model::PowerModel::parse(e);
    if (!pm.is_ok()) return;
    std::set<std::string> domains;
    if (pm->domains.has_value()) {
      for (const auto& d : pm->domains->expanded()) domains.insert(d.name);
      for (const auto& d : pm->domains->domains) domains.insert(d.name);
      for (const auto& g : pm->domains->groups) {
        domains.insert(g.prototype.name);
        domains.insert(g.name);
      }
    }
    for (const auto& fsm : pm->state_machines) {
      if (!fsm.strongly_connected()) {
        add(out, Severity::kWarning, "fsm-not-strongly-connected",
            "power state machine '" + fsm.name +
                "' has states that cannot be reached or left through the "
                "modeled transitions",
            e.location());
      }
      if (!fsm.power_domain.empty() && pm->domains.has_value() &&
          domains.find(fsm.power_domain) == domains.end()) {
        add(out, Severity::kWarning, "fsm-domain-unknown",
            "power state machine '" + fsm.name + "' governs domain '" +
                fsm.power_domain +
                "' which the power model's domain set does not declare",
            e.location());
      }
    }
  });
}

void rule_duplicate_sibling_id(const xml::Element& e,
                               std::vector<Finding>& out) {
  std::map<std::string_view, const xml::Element*> seen;
  for (const auto& c : e.children()) {
    auto id = c->attribute("id");
    if (!id.has_value() || id->empty()) continue;
    auto [it, inserted] = seen.emplace(*id, c.get());
    if (!inserted) {
      add(out, Severity::kError, "duplicate-sibling-id",
          "siblings share id '" + std::string(*id) + "' under <" + e.tag() +
              ">",
          c->location());
    }
  }
}

void rule_group_without_prefix(const xml::Element& e,
                               std::vector<Finding>& out) {
  if (e.tag() != "group" || !e.has_attribute("quantity")) return;
  if (e.has_attribute("prefix") || e.attribute_or("expanded", "") == "true") {
    return;
  }
  bool has_anonymous_component = false;
  for (const auto& c : e.children()) {
    if ((schema::is_component_tag(c->tag()) || c->tag() == "group") &&
        !c->has_attribute("id") && !c->has_attribute("name")) {
      has_anonymous_component = true;
    }
  }
  if (has_anonymous_component) {
    add(out, Severity::kNote, "group-without-prefix",
        "homogeneous group has anonymous members and no 'prefix'; the "
        "expanded members will not be referenceable by id",
        e.location());
  }
}

void rule_unknown_role(const xml::Element& e, std::vector<Finding>& out) {
  auto role = e.attribute("role");
  if (!role.has_value()) return;
  if (*role != "master" && *role != "worker" && *role != "hybrid") {
    add(out, Severity::kWarning, "unknown-role",
        "<" + e.tag() + "> has role '" + std::string(*role) +
            "'; XPDL keeps PDL's control roles master/worker/hybrid as an "
            "optional secondary aspect",
        e.location());
  }
}

}  // namespace

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::string out = location.to_string();
  if (!out.empty()) out += ": ";
  out += std::string(lint::to_string(severity));
  out += " [" + rule + "]: " + message;
  return out;
}

std::vector<Finding> lint_descriptor(const xml::Element& root,
                                     const Options& options) {
  std::vector<Finding> out;
  walk(root, [&](const xml::Element& e) {
    if (options.missing_unit) rule_missing_unit(e, out);
    if (options.placeholder_without_mb) rule_placeholder_without_mb(e, out);
    if (options.duplicate_sibling_id) rule_duplicate_sibling_id(e, out);
    if (options.group_without_prefix) rule_group_without_prefix(e, out);
    if (options.unknown_role) rule_unknown_role(e, out);
  });
  if (options.fsm_connectivity) rule_fsm(root, out);
  return out;
}

Result<std::vector<Finding>> lint_repository(repository::Repository& repo,
                                             const Options& options) {
  std::vector<Finding> out;
  // Per-descriptor rules plus reference graph construction.
  std::set<std::string> referenced;
  std::vector<repository::DescriptorInfo> infos = repo.descriptors();
  for (const auto& info : infos) {
    XPDL_ASSIGN_OR_RETURN(const xml::Element* root,
                          repo.lookup(info.reference_name));
    for (Finding& f : lint_descriptor(*root, options)) {
      if (f.location.file.empty()) f.location.file = info.path;
      out.push_back(std::move(f));
    }
    walk(*root, [&](const xml::Element& e) {
      if (auto type = e.attribute("type")) {
        // A root's type reference counts unless it names itself.
        if (*type != info.reference_name) referenced.emplace(*type);
      }
      if (auto ext = e.attribute("extends")) {
        for (const std::string& base : strings::split(*ext, ',')) {
          referenced.insert(base);
        }
      }
    });
  }

  for (const auto& info : infos) {
    if (options.unreferenced_meta && info.is_meta && info.tag != "system" &&
        referenced.find(info.reference_name) == referenced.end()) {
      add(out, Severity::kNote, "unreferenced-meta",
          "meta-model '" + info.reference_name +
              "' is not referenced by any other descriptor in the "
              "repository",
          SourceLocation{info.path, 0, 0});
    }
    if (!options.unresolved_type) continue;
    XPDL_ASSIGN_OR_RETURN(const xml::Element* root,
                          repo.lookup(info.reference_name));
    walk(*root, [&](const xml::Element& e) {
      if (!schema::is_component_tag(e.tag()) && e.tag() != "power_model") {
        return;
      }
      if (e.parent() != nullptr && e.parent()->tag() == "power_domain") {
        return;  // intra-model references (Listing 12)
      }
      auto type = e.attribute("type");
      if (!type.has_value() || repo.contains(*type)) return;
      add(out, Severity::kWarning, "unresolved-type",
          "<" + e.tag() + "> references type '" + std::string(*type) +
              "' which no repository descriptor defines (kind string or "
              "typo?)",
          e.location());
    });
  }
  return out;
}

Severity max_severity(const std::vector<Finding>& findings) {
  Severity max = Severity::kNote;
  for (const Finding& f : findings) {
    if (static_cast<int>(f.severity) > static_cast<int>(max)) {
      max = f.severity;
    }
  }
  return max;
}

}  // namespace xpdl::lint
