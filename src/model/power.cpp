#include "xpdl/model/power.h"

#include <algorithm>

#include "xpdl/util/strings.h"

namespace xpdl::model {
namespace {

/// Numeric SI value of metric `name` on `e`, or `fallback` when absent.
/// Placeholder and param-ref values are rejected where a number is needed.
Result<double> metric_number(const xml::Element& e, std::string_view name,
                             double fallback) {
  XPDL_ASSIGN_OR_RETURN(std::optional<Metric> m, metric_of(e, name));
  if (!m.has_value()) return fallback;
  if (m->kind != MetricKind::kNumber) {
    return Status(ErrorCode::kSchemaViolation,
                  "metric '" + std::string(name) + "' on <" + e.tag() +
                      "> must be a literal number here",
                  e.location());
  }
  return m->value_si;
}

}  // namespace

// ---------------------------------------------------------------------------
// PowerStateMachine

const PowerState* PowerStateMachine::find_state(
    std::string_view name) const noexcept {
  for (const PowerState& s : states) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const PowerTransition* PowerStateMachine::find_transition(
    std::string_view from, std::string_view to) const noexcept {
  for (const PowerTransition& t : transitions) {
    if (t.from == from && t.to == to) return &t;
  }
  return nullptr;
}

Status PowerStateMachine::validate() const {
  if (states.empty()) {
    return Status(ErrorCode::kSchemaViolation,
                  "power state machine '" + name + "' has no states");
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      if (states[i].name == states[j].name) {
        return Status(ErrorCode::kSchemaViolation,
                      "duplicate power state '" + states[i].name + "' in '" +
                          name + "'",
                      states[j].location);
      }
    }
  }
  for (const PowerTransition& t : transitions) {
    if (find_state(t.from) == nullptr) {
      return Status(ErrorCode::kUnresolvedRef,
                    "transition head '" + t.from + "' is not a state of '" +
                        name + "'",
                    t.location);
    }
    if (find_state(t.to) == nullptr) {
      return Status(ErrorCode::kUnresolvedRef,
                    "transition tail '" + t.to + "' is not a state of '" +
                        name + "'",
                    t.location);
    }
    if (t.from == t.to) {
      return Status(ErrorCode::kSchemaViolation,
                    "self-loop transition on state '" + t.from + "' in '" +
                        name + "'",
                    t.location);
    }
    if (t.time_s < 0 || t.energy_j < 0) {
      return Status(ErrorCode::kSchemaViolation,
                    "negative transition cost in '" + name + "'", t.location);
    }
  }
  return Status::ok();
}

bool PowerStateMachine::strongly_connected() const {
  if (states.size() <= 1) return true;
  // Reachability via BFS in both directions from state 0; a digraph is
  // strongly connected iff node 0 reaches all and all reach node 0.
  auto reach = [&](bool forward) {
    std::vector<bool> seen(states.size(), false);
    std::vector<std::size_t> stack = {0};
    seen[0] = true;
    auto index_of = [&](std::string_view n) -> std::size_t {
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].name == n) return i;
      }
      return states.size();
    };
    while (!stack.empty()) {
      std::size_t cur = stack.back();
      stack.pop_back();
      for (const PowerTransition& t : transitions) {
        std::string_view src = forward ? t.from : t.to;
        std::string_view dst = forward ? t.to : t.from;
        if (src == states[cur].name) {
          std::size_t d = index_of(dst);
          if (d < states.size() && !seen[d]) {
            seen[d] = true;
            stack.push_back(d);
          }
        }
      }
    }
    return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
  };
  return reach(true) && reach(false);
}

Result<PowerStateMachine> PowerStateMachine::parse(const xml::Element& e) {
  if (e.tag() != "power_state_machine") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <power_state_machine>, got <" + e.tag() + ">",
                  e.location());
  }
  PowerStateMachine fsm;
  fsm.name = std::string(e.attribute_or("name", ""));
  fsm.power_domain = std::string(e.attribute_or("power_domain", ""));
  if (const xml::Element* states = e.first_child("power_states")) {
    for (const auto& s : states->children()) {
      if (s->tag() != "power_state") continue;
      PowerState ps;
      XPDL_ASSIGN_OR_RETURN(ps.name, s->require_attribute("name"));
      XPDL_ASSIGN_OR_RETURN(ps.frequency_hz,
                            metric_number(*s, "frequency", 0.0));
      XPDL_ASSIGN_OR_RETURN(ps.power_w, metric_number(*s, "power", 0.0));
      ps.location = s->location();
      fsm.states.push_back(std::move(ps));
    }
  }
  if (const xml::Element* transitions = e.first_child("transitions")) {
    for (const auto& t : transitions->children()) {
      if (t->tag() != "transition") continue;
      PowerTransition tr;
      XPDL_ASSIGN_OR_RETURN(tr.from, t->require_attribute("head"));
      XPDL_ASSIGN_OR_RETURN(tr.to, t->require_attribute("tail"));
      XPDL_ASSIGN_OR_RETURN(tr.time_s, metric_number(*t, "time", 0.0));
      XPDL_ASSIGN_OR_RETURN(tr.energy_j, metric_number(*t, "energy", 0.0));
      tr.location = t->location();
      fsm.transitions.push_back(std::move(tr));
    }
  }
  XPDL_RETURN_IF_ERROR(fsm.validate());
  return fsm;
}

// ---------------------------------------------------------------------------
// PowerDomain

Result<PowerDomain> PowerDomain::parse(const xml::Element& e) {
  if (e.tag() != "power_domain") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <power_domain>, got <" + e.tag() + ">",
                  e.location());
  }
  PowerDomain d;
  d.name = std::string(e.attribute_or("name", ""));
  d.location = e.location();
  if (auto sw = e.attribute("enableSwitchOff")) {
    XPDL_ASSIGN_OR_RETURN(d.enable_switch_off, strings::parse_bool(*sw));
  }
  if (auto cond = e.attribute("switchoffCondition")) {
    // Syntax (Listing 12): "<domain-or-group> <state>", e.g.
    // "Shave_pds off".
    std::vector<std::string> parts = strings::split(*cond, ' ');
    if (parts.size() != 2) {
      return Status(ErrorCode::kSchemaViolation,
                    "switchoffCondition '" + std::string(*cond) +
                        "' must be of the form '<domain> <state>'",
                    e.location());
    }
    d.switchoff_condition = SwitchoffCondition{parts[0], parts[1]};
  }
  for (const auto& m : e.children()) {
    if (!is_hardware_tag(m->tag())) continue;
    PowerDomainMember member;
    member.tag = m->tag();
    member.type = std::string(m->attribute_or("type", ""));
    d.members.push_back(std::move(member));
  }
  return d;
}

std::vector<PowerDomain> PowerDomainSet::expanded() const {
  std::vector<PowerDomain> out = domains;
  for (const PowerDomainGroup& g : groups) {
    for (std::uint64_t i = 0; i < g.quantity; ++i) {
      PowerDomain d = g.prototype;
      d.name = strings::member_id(
          g.prototype.name.empty() ? g.name : g.prototype.name, i);
      out.push_back(std::move(d));
    }
  }
  return out;
}

Result<PowerDomainSet> PowerDomainSet::parse(const xml::Element& e) {
  if (e.tag() != "power_domains") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <power_domains>, got <" + e.tag() + ">",
                  e.location());
  }
  PowerDomainSet set;
  set.name = std::string(e.attribute_or("name", ""));
  for (const auto& c : e.children()) {
    if (c->tag() == "power_domain") {
      XPDL_ASSIGN_OR_RETURN(PowerDomain d, PowerDomain::parse(*c));
      set.domains.push_back(std::move(d));
    } else if (c->tag() == "group") {
      // Listing 12: <group name="Shave_pds" quantity="8"> around one
      // prototype power_domain.
      PowerDomainGroup g;
      g.name = std::string(c->attribute_or("name", ""));
      XPDL_ASSIGN_OR_RETURN(GroupSpec spec, parse_group(*c));
      if (!spec.quantity.has_value()) {
        return Status(ErrorCode::kSchemaViolation,
                      "power-domain group requires a literal quantity",
                      c->location());
      }
      g.quantity = *spec.quantity;
      const xml::Element* proto = c->first_child("power_domain");
      if (proto == nullptr) {
        return Status(ErrorCode::kSchemaViolation,
                      "power-domain group has no <power_domain> prototype",
                      c->location());
      }
      XPDL_ASSIGN_OR_RETURN(g.prototype, PowerDomain::parse(*proto));
      set.groups.push_back(std::move(g));
    }
  }
  return set;
}

// ---------------------------------------------------------------------------
// Instruction energy

Result<double> InstructionEnergy::energy_at(double frequency_hz) const {
  if (!table.empty()) {
    // Table is sorted by frequency; clamp outside, interpolate inside.
    if (frequency_hz <= table.front().first) return table.front().second;
    if (frequency_hz >= table.back().first) return table.back().second;
    for (std::size_t i = 1; i < table.size(); ++i) {
      if (frequency_hz <= table[i].first) {
        const auto& [f0, e0] = table[i - 1];
        const auto& [f1, e1] = table[i];
        double t = (frequency_hz - f0) / (f1 - f0);
        return e0 + t * (e1 - e0);
      }
    }
  }
  if (energy_j.has_value()) return *energy_j;
  return Status(ErrorCode::kNotFound,
                "instruction '" + name +
                    "' has no energy data (placeholder not bootstrapped)");
}

Result<InstructionEnergy> InstructionEnergy::parse(const xml::Element& e) {
  if (e.tag() != "inst") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <inst>, got <" + e.tag() + ">", e.location());
  }
  InstructionEnergy inst;
  XPDL_ASSIGN_OR_RETURN(inst.name, e.require_attribute("name"));
  inst.microbenchmark = std::string(e.attribute_or("mb", ""));
  inst.location = e.location();
  XPDL_ASSIGN_OR_RETURN(std::optional<Metric> m, metric_of(e, "energy"));
  if (m.has_value()) {
    if (m->kind == MetricKind::kPlaceholder) {
      inst.placeholder = true;
    } else if (m->kind == MetricKind::kNumber) {
      inst.energy_j = m->value_si;
    } else {
      return Status(ErrorCode::kSchemaViolation,
                    "instruction energy must be a number or '?'",
                    e.location());
    }
  }
  for (const auto& d : e.children()) {
    if (d->tag() != "data") continue;
    XPDL_ASSIGN_OR_RETURN(std::optional<Metric> f, metric_of(*d, "frequency"));
    XPDL_ASSIGN_OR_RETURN(std::optional<Metric> en, metric_of(*d, "energy"));
    if (!f.has_value() || !en.has_value() || !f->is_number() ||
        !en->is_number()) {
      return Status(ErrorCode::kSchemaViolation,
                    "<data> requires numeric frequency and energy",
                    d->location());
    }
    // Listing 14 gives bare frequencies ("2.8") meaning GHz; with no unit
    // attribute, treat values < 1e3 as GHz for table entries.
    double freq = f->value_si;
    if (f->unit_symbol.empty() && freq < 1e3) freq *= 1e9;
    inst.table.emplace_back(freq, en->value_si);
  }
  std::sort(inst.table.begin(), inst.table.end());
  if (!inst.table.empty()) inst.placeholder = false;
  return inst;
}

const InstructionEnergy* InstructionSet::find(
    std::string_view name) const noexcept {
  for (const InstructionEnergy& i : instructions) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

InstructionEnergy* InstructionSet::find(std::string_view name) noexcept {
  for (InstructionEnergy& i : instructions) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

Result<InstructionSet> InstructionSet::parse(const xml::Element& e) {
  if (e.tag() != "instructions") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <instructions>, got <" + e.tag() + ">",
                  e.location());
  }
  InstructionSet set;
  XPDL_ASSIGN_OR_RETURN(set.name, e.require_attribute("name"));
  set.microbenchmark_suite = std::string(e.attribute_or("mb", ""));
  for (const auto& c : e.children()) {
    if (c->tag() != "inst") continue;
    XPDL_ASSIGN_OR_RETURN(InstructionEnergy inst, InstructionEnergy::parse(*c));
    if (set.find(inst.name) != nullptr) {
      return Status(ErrorCode::kSchemaViolation,
                    "duplicate instruction '" + inst.name + "'",
                    c->location());
    }
    set.instructions.push_back(std::move(inst));
  }
  return set;
}

// ---------------------------------------------------------------------------
// Microbenchmarks

const Microbenchmark* MicrobenchmarkSuite::find(
    std::string_view id) const noexcept {
  for (const Microbenchmark& b : benchmarks) {
    if (b.id == id) return &b;
  }
  return nullptr;
}

Result<MicrobenchmarkSuite> MicrobenchmarkSuite::parse(const xml::Element& e) {
  if (e.tag() != "microbenchmarks") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <microbenchmarks>, got <" + e.tag() + ">",
                  e.location());
  }
  MicrobenchmarkSuite suite;
  XPDL_ASSIGN_OR_RETURN(suite.id, e.require_attribute("id"));
  suite.instruction_set = std::string(e.attribute_or("instruction_set", ""));
  suite.path = std::string(e.attribute_or("path", ""));
  suite.command = std::string(e.attribute_or("command", ""));
  for (const auto& c : e.children()) {
    if (c->tag() != "microbenchmark") continue;
    Microbenchmark b;
    XPDL_ASSIGN_OR_RETURN(b.id, c->require_attribute("id"));
    b.type = std::string(c->attribute_or("type", ""));
    b.file = std::string(c->attribute_or("file", ""));
    b.cflags = std::string(c->attribute_or("cflags", ""));
    b.lflags = std::string(c->attribute_or("lflags", ""));
    if (suite.find(b.id) != nullptr) {
      return Status(ErrorCode::kSchemaViolation,
                    "duplicate microbenchmark id '" + b.id + "'",
                    c->location());
    }
    suite.benchmarks.push_back(std::move(b));
  }
  return suite;
}

// ---------------------------------------------------------------------------
// PowerModel

const PowerStateMachine* PowerModel::machine_for_domain(
    std::string_view domain) const noexcept {
  for (const PowerStateMachine& m : state_machines) {
    if (m.power_domain == domain) return &m;
  }
  return nullptr;
}

Result<PowerModel> PowerModel::parse(const xml::Element& e) {
  if (e.tag() != "power_model") {
    return Status(ErrorCode::kInvalidArgument,
                  "expected <power_model>, got <" + e.tag() + ">",
                  e.location());
  }
  PowerModel pm;
  pm.identity = identity_of(e);
  for (const auto& c : e.children()) {
    if (c->tag() == "power_domains") {
      XPDL_ASSIGN_OR_RETURN(PowerDomainSet set, PowerDomainSet::parse(*c));
      pm.domains = std::move(set);
    } else if (c->tag() == "power_state_machine") {
      XPDL_ASSIGN_OR_RETURN(PowerStateMachine fsm,
                            PowerStateMachine::parse(*c));
      pm.state_machines.push_back(std::move(fsm));
    } else if (c->tag() == "instructions") {
      XPDL_ASSIGN_OR_RETURN(InstructionSet set, InstructionSet::parse(*c));
      pm.instruction_sets.push_back(std::move(set));
    } else if (c->tag() == "microbenchmarks") {
      XPDL_ASSIGN_OR_RETURN(MicrobenchmarkSuite suite,
                            MicrobenchmarkSuite::parse(*c));
      pm.microbenchmark_suites.push_back(std::move(suite));
    }
  }
  return pm;
}

}  // namespace xpdl::model
