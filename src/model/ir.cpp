#include "xpdl/model/ir.h"

#include <algorithm>

#include "xpdl/util/strings.h"

namespace xpdl::model {

Identity identity_of(const xml::Element& e) {
  Identity out;
  out.name = std::string(e.attribute_or("name", ""));
  out.id = std::string(e.attribute_or("id", ""));
  out.type_ref = std::string(e.attribute_or("type", ""));
  out.role = std::string(e.attribute_or("role", ""));
  if (auto ext = e.attribute("extends")) {
    out.extends = strings::split(*ext, ',');
  }
  return out;
}

bool is_structural_attribute(std::string_view name) noexcept {
  static constexpr std::string_view kStructural[] = {
      "name", "id", "type", "extends", "role", "prefix", "quantity",
      "head", "tail", "endian", "sets", "replacement", "write_policy",
      "level", "slices", "configurable", "range", "path", "command",
      "file", "cflags", "lflags", "expr", "instruction_set", "mb",
      "version", "enableSwitchOff", "switchoffCondition", "power_domain",
      "compute_capability", "doc",
      // Composer-written markers (not metrics).
      "expanded", "resolved",
  };
  return std::find(std::begin(kStructural), std::end(kStructural), name) !=
         std::end(kStructural);
}

namespace {

[[nodiscard]] bool is_unit_attribute(std::string_view name) noexcept {
  return name == "unit" ||
         (name.size() > 5 && name.substr(name.size() - 5) == "_unit");
}

/// Builds one Metric from attribute `name` with raw text `raw` on `e`.
Result<Metric> build_metric(const xml::Element& e, std::string_view name,
                            std::string_view raw) {
  Metric m;
  m.name = std::string(name);
  m.raw = std::string(raw);
  m.dimension = units::metric_dimension(name);
  std::string unit_attr = units::unit_attribute_name(name);
  if (auto u = e.attribute(unit_attr)) m.unit_symbol = std::string(*u);

  if (strings::is_placeholder(raw)) {
    m.kind = MetricKind::kPlaceholder;
    return m;
  }
  if (auto num = strings::parse_double(raw); num.is_ok()) {
    m.kind = MetricKind::kNumber;
    if (!m.unit_symbol.empty()) {
      XPDL_ASSIGN_OR_RETURN(units::Unit unit, units::parse_unit(m.unit_symbol));
      if (m.dimension != units::Dimension::kDimensionless &&
          unit.dimension != m.dimension) {
        return Status(ErrorCode::kSchemaViolation,
                      "metric '" + m.name + "' on <" + e.tag() +
                          "> uses unit '" + m.unit_symbol +
                          "' of the wrong dimension",
                      e.location());
      }
      m.dimension = unit.dimension;
      m.value_si = unit.to_si(num.value());
    } else {
      m.value_si = num.value();
    }
    return m;
  }
  if (strings::is_identifier(raw)) {
    m.kind = MetricKind::kParamRef;
    m.param_ref = std::string(raw);
    return m;
  }
  return Status(ErrorCode::kSchemaViolation,
                "metric '" + m.name + "' on <" + e.tag() + "> has value '" +
                    std::string(raw) +
                    "' which is not a number, parameter reference or '?'",
                e.location());
}

}  // namespace

Result<std::vector<Metric>> metrics_of(const xml::Element& e) {
  std::vector<Metric> out;
  for (const xml::Attribute& a : e.attributes()) {
    if (is_structural_attribute(a.name.view()) || is_unit_attribute(a.name.view())) continue;
    XPDL_ASSIGN_OR_RETURN(Metric m, build_metric(e, a.name.view(), a.value));
    out.push_back(std::move(m));
  }
  return out;
}

Result<std::optional<Metric>> metric_of(const xml::Element& e,
                                        std::string_view name) {
  auto raw = e.attribute(name);
  if (!raw.has_value()) return std::optional<Metric>{};
  XPDL_ASSIGN_OR_RETURN(Metric m, build_metric(e, name, *raw));
  return std::optional<Metric>(std::move(m));
}

Result<Param> parse_param(const xml::Element& e) {
  Param p;
  p.is_const = e.tag() == "const";
  p.location = e.location();
  XPDL_ASSIGN_OR_RETURN(p.name, e.require_attribute("name"));
  if (auto c = e.attribute("configurable")) {
    XPDL_ASSIGN_OR_RETURN(p.configurable, strings::parse_bool(*c));
  }
  p.declared_type = std::string(e.attribute_or("type", ""));
  if (auto u = e.attribute("unit")) {
    p.unit_symbol = std::string(*u);
  }

  // The value can be given as value="13" (Listing 9), or through a
  // dimension-specific metric attribute: size="5" unit="GB",
  // frequency="706" frequency_unit="MHz" (Listings 8/9).
  units::Unit unit;  // defaults to dimensionless / factor 1
  if (!p.unit_symbol.empty()) {
    XPDL_ASSIGN_OR_RETURN(unit, units::parse_unit(p.unit_symbol));
    p.dimension = unit.dimension;
  }

  auto bind_from = [&](std::string_view attr_name,
                       std::string_view raw) -> Status {
    if (strings::is_placeholder(raw)) return Status::ok();
    XPDL_ASSIGN_OR_RETURN(double v, strings::parse_double(raw));
    if (attr_name == "value") {
      p.value_si = unit.to_si(v);
      return Status::ok();
    }
    // Metric-named attribute: its own unit attribute wins.
    std::string unit_attr = units::unit_attribute_name(attr_name);
    units::Unit metric_unit = unit;
    if (auto us = e.attribute(unit_attr)) {
      XPDL_ASSIGN_OR_RETURN(metric_unit, units::parse_unit(*us));
      p.unit_symbol = std::string(*us);
    }
    p.dimension = metric_unit.dimension != units::Dimension::kDimensionless
                      ? metric_unit.dimension
                      : units::metric_dimension(attr_name);
    p.value_si = metric_unit.to_si(v);
    return Status::ok();
  };

  if (auto v = e.attribute("value")) {
    XPDL_RETURN_IF_ERROR(bind_from("value", *v));
  }
  for (const xml::Attribute& a : e.attributes()) {
    if (a.name == "value" || is_structural_attribute(a.name.view()) ||
        is_unit_attribute(a.name.view()) || a.name == "name") {
      continue;
    }
    XPDL_RETURN_IF_ERROR(bind_from(a.name.view(), a.value));
  }

  if (auto r = e.attribute("range")) {
    for (const std::string& part : strings::split(*r, ',')) {
      XPDL_ASSIGN_OR_RETURN(double v, strings::parse_double(part));
      p.range_si.push_back(unit.to_si(v));
    }
  }
  // Dimension fallback from the declared abstract type.
  if (p.dimension == units::Dimension::kDimensionless) {
    if (p.declared_type == "msize") p.dimension = units::Dimension::kSize;
    else if (p.declared_type == "frequency")
      p.dimension = units::Dimension::kFrequency;
  }
  return p;
}

const Param* ParamScope::find(std::string_view name) const noexcept {
  for (const Param& p : params) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Result<ParamScope> parse_param_scope(const xml::Element& e) {
  ParamScope scope;
  for (const auto& child : e.children()) {
    if (child->tag() == "const" || child->tag() == "param") {
      XPDL_ASSIGN_OR_RETURN(Param p, parse_param(*child));
      if (scope.find(p.name) != nullptr) {
        return Status(ErrorCode::kSchemaViolation,
                      "duplicate parameter '" + p.name + "'",
                      child->location());
      }
      scope.params.push_back(std::move(p));
    } else if (child->tag() == "constraints") {
      for (const auto& c : child->children()) {
        if (c->tag() != "constraint") continue;
        XPDL_ASSIGN_OR_RETURN(std::string text, c->require_attribute("expr"));
        XPDL_ASSIGN_OR_RETURN(auto parsed, expr::Expression::parse(text));
        scope.constraints.push_back(
            Constraint{std::move(parsed), c->location()});
      }
    }
  }
  return scope;
}

Result<GroupSpec> parse_group(const xml::Element& e) {
  GroupSpec g;
  g.prefix = std::string(e.attribute_or("prefix", ""));
  if (auto q = e.attribute("quantity")) {
    g.homogeneous = true;
    g.quantity_raw = std::string(*q);
    if (auto parsed = strings::parse_uint(*q); parsed.is_ok()) {
      g.quantity = parsed.value();
    } else if (!strings::is_identifier(*q)) {
      return Status(ErrorCode::kSchemaViolation,
                    "group quantity '" + g.quantity_raw +
                        "' is neither an integer nor a parameter reference",
                    e.location());
    }
  }
  return g;
}

bool is_hardware_tag(std::string_view tag) noexcept {
  static constexpr std::string_view kHardware[] = {
      "system", "cluster", "node",   "socket", "cpu",    "core",
      "cache",  "memory",  "device", "gpu",    "interconnect", "channel",
      "group",
  };
  return std::find(std::begin(kHardware), std::end(kHardware), tag) !=
         std::end(kHardware);
}

}  // namespace xpdl::model
