#include "xpdl/views/views.h"

#include <map>
#include <sstream>

#include "xpdl/model/ir.h"
#include "xpdl/util/strings.h"

namespace xpdl::views {
namespace {

/// Escapes a string for a DOT/PlantUML label.
std::string escape_label(std::string_view raw) {
  std::string out;
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Display label of an element: kind plus id/name plus headline metrics.
std::string element_label(const xml::Element& e) {
  std::string label = e.tag();
  std::string ident(e.attribute_or("id", e.attribute_or("name", "")));
  if (!ident.empty()) label += "\\n" + ident;
  for (const char* metric : {"frequency", "size", "static_power"}) {
    auto m = model::metric_of(e, metric);
    if (m.is_ok() && m->has_value() && (*m)->is_number()) {
      label += "\\n" + std::string(metric) + " = " +
               (*m)->quantity().to_string();
    }
  }
  return label;
}

class DotRenderer {
 public:
  DotRenderer(const DotOptions& options, std::ostringstream& os)
      : options_(options), os_(os) {}

  void run(const xml::Element& root) {
    os_ << "digraph " << options_.graph_name << " {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=box, fontname=\"Helvetica\", fontsize=10];\n"
        << "  edge [fontname=\"Helvetica\", fontsize=9];\n";
    render(root);
    if (options_.interconnect_edges) {
      for (const auto& [from, to, label] : interconnects_) {
        auto f = node_ids_.find(from);
        auto t = node_ids_.find(to);
        if (f == node_ids_.end() || t == node_ids_.end()) continue;
        os_ << "  " << f->second << " -> " << t->second
            << " [style=dashed, color=blue";
        if (!label.empty()) os_ << ", label=\"" << label << "\"";
        os_ << "];\n";
      }
    }
    os_ << "}\n";
  }

 private:
  /// Returns the DOT node id for `e`, emitting its declaration once.
  std::string declare(const xml::Element& e) {
    std::string id = "n" + std::to_string(counter_++);
    os_ << "  " << id << " [label=\"" << escape_label(element_label(e))
        << "\"];\n";
    std::string ident(e.attribute_or("id", ""));
    if (!ident.empty()) node_ids_.emplace(ident, id);
    return id;
  }

  /// Renders the subtree; returns the DOT id of the element's node, or
  /// "" when the element is a pass-through container.
  std::string render(const xml::Element& e) {
    // Skip non-structural subtrees entirely.
    if (e.tag() == "software" || e.tag() == "properties" ||
        e.tag() == "power_model" || e.tag() == "const" ||
        e.tag() == "param" || e.tag() == "constraints" ||
        e.tag() == "programming_model") {
      return "";
    }
    if (e.tag() == "interconnects") {
      for (const auto& c : e.children()) {
        if (c->tag() != "interconnect") continue;
        std::string label(c->attribute_or("type", ""));
        if (auto bw = c->attribute(compose::kEffectiveBandwidthAttr)) {
          auto v = strings::parse_double(*bw);
          if (v.is_ok()) {
            label += label.empty() ? "" : "\\n";
            label += units::bytes_per_second(v.value()).to_string();
          }
        }
        interconnects_.emplace_back(
            std::string(c->attribute_or("head", "")),
            std::string(c->attribute_or("tail", "")), escape_label(label));
      }
      return "";
    }
    // Collapse large expanded groups to one representative member.
    if (e.tag() == "group" && e.attribute_or("expanded", "") == "true" &&
        options_.collapse_groups_larger_than > 0 &&
        e.child_count() > options_.collapse_groups_larger_than) {
      std::string id = "n" + std::to_string(counter_++);
      os_ << "  " << id << " [label=\"group x" << e.child_count()
          << " members\\n(collapsed)\", style=dashed];\n";
      std::string child_id = render(*e.children().front());
      if (!child_id.empty()) {
        os_ << "  " << id << " -> " << child_id << ";\n";
      }
      return id;
    }
    // Anonymous non-component groups pass their children through.
    bool passthrough = e.tag() == "group" && !e.has_attribute("id") &&
                       !e.has_attribute("name");
    std::string id = passthrough ? "" : declare(e);
    for (const auto& c : e.children()) {
      std::string child_id = render(*c);
      if (!id.empty() && !child_id.empty()) {
        os_ << "  " << id << " -> " << child_id << ";\n";
      }
    }
    return id;
  }

  const DotOptions& options_;
  std::ostringstream& os_;
  int counter_ = 0;
  std::map<std::string, std::string> node_ids_;
  std::vector<std::tuple<std::string, std::string, std::string>>
      interconnects_;
};

}  // namespace

std::string to_dot(const xml::Element& root, const DotOptions& options) {
  std::ostringstream os;
  DotRenderer renderer(options, os);
  renderer.run(root);
  return os.str();
}

std::string to_dot(const compose::ComposedModel& model,
                   const DotOptions& options) {
  return to_dot(model.root(), options);
}

namespace {

void plantuml_object(const xml::Element& e, std::ostringstream& os,
                     int& counter,
                     std::vector<std::pair<std::string, std::string>>& links,
                     const std::string& parent_obj) {
  if (e.tag() == "properties" || e.tag() == "constraints") return;
  std::string obj = "o" + std::to_string(counter++);
  std::string ident(e.attribute_or("id", e.attribute_or("name", "")));
  os << "object \"" << escape_label(e.tag())
     << (ident.empty() ? "" : " " + escape_label(ident)) << "\" as " << obj
     << " {\n";
  for (const xml::Attribute& a : e.attributes()) {
    if (a.name == "id" || a.name == "name") continue;
    os << "  " << a.name << " = " << escape_label(a.value) << "\n";
  }
  os << "}\n";
  if (!parent_obj.empty()) links.emplace_back(parent_obj, obj);
  for (const auto& c : e.children()) {
    plantuml_object(*c, os, counter, links, obj);
  }
}

}  // namespace

std::string to_plantuml(const xml::Element& root) {
  std::ostringstream os;
  os << "@startuml\n";
  int counter = 0;
  std::vector<std::pair<std::string, std::string>> links;
  plantuml_object(root, os, counter, links, "");
  for (const auto& [parent, child] : links) {
    os << parent << " *-- " << child << "\n";
  }
  os << "@enduml\n";
  return os.str();
}

std::string schema_to_plantuml(const schema::Schema& schema) {
  std::ostringstream os;
  os << "@startuml\n"
     << "' XPDL core metamodel (generated from xpdl::schema::Schema)\n";
  for (const schema::ElementSpec& e : schema.elements()) {
    os << "class " << e.tag << " {\n";
    for (const schema::AttributeSpec& a : e.attributes) {
      os << "  " << (a.required ? "+" : "-") << a.name << " : "
         << schema::to_string(a.type) << "\n";
    }
    if (e.allow_metric_attributes) {
      os << "  .. metric attributes ..\n";
    }
    os << "}\n";
  }
  // Containment associations.
  for (const schema::ElementSpec& e : schema.elements()) {
    for (const std::string& child : e.child_tags) {
      if (schema.find(child) == nullptr) continue;
      os << e.tag << " o-- " << child << "\n";
    }
  }
  os << "@enduml\n";
  return os.str();
}

}  // namespace xpdl::views
