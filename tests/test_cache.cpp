// Tests for the content-hash snapshot cache (xpdl::cache) and the
// parallel repository scan built on it: warm runs must skip XML without
// changing a single observable byte, and every failure mode (corrupt
// snapshot, stale hash, disabled cache) must fall back to a plain parse.
#include "xpdl/cache/cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "synthetic_repo.h"
#include "xpdl/compose/compose.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/query/query.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"
#include "xpdl/xml/xml.h"

namespace xpdl::cache {
namespace {

namespace fs = std::filesystem;

/// Temporary directory tree, removed on destruction.
class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("xpdl_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }

  void write(const std::string& rel, std::string_view contents) {
    fs::path p = dir_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << contents;
  }

  [[nodiscard]] std::string path() const { return dir_.string(); }
  [[nodiscard]] fs::path dir() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

constexpr std::string_view kCpu = R"(<?xml version="1.0"?>
<cpu name="cached_cpu" frequency="2.0" frequency_unit="GHz">
  <core frequency="2.0" frequency_unit="GHz" />
  <cache name="L2" size="1" unit="MiB" sets="8" replacement="LRU" />
</cpu>
)";

constexpr std::string_view kSystem = R"(<?xml version="1.0"?>
<system id="cached_system">
  <socket><cpu id="c1" type="cached_cpu" /></socket>
</system>
)";

std::size_t snap_files(const fs::path& cache_dir) {
  if (!fs::exists(cache_dir)) return 0;
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(cache_dir)) {
    if (e.path().extension() == ".snap") ++n;
  }
  return n;
}

// --- hashing ------------------------------------------------------------

TEST(ContentKey, SensitiveToPathAndContent) {
  EXPECT_EQ(content_key("a.xpdl", "<cpu/>"), content_key("a.xpdl", "<cpu/>"));
  EXPECT_NE(content_key("a.xpdl", "<cpu/>"), content_key("b.xpdl", "<cpu/>"));
  EXPECT_NE(content_key("a.xpdl", "<cpu/>"), content_key("a.xpdl", "<gpu/>"));
  // Path/content boundary is unambiguous: ("ab", "c") != ("a", "bc").
  EXPECT_NE(content_key("ab", "c"), content_key("a", "bc"));
}

TEST(ContentKey, SchemaFingerprintIsStable) {
  EXPECT_EQ(schema_fingerprint(), schema_fingerprint());
  EXPECT_NE(schema_fingerprint(), 0u);
}

// --- snapshot codec -----------------------------------------------------

TEST(Snapshots, RoundTripsElementTreeAndWarnings) {
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  std::vector<std::string> warnings = {"w1", "warning two"};
  Options options{/*enabled=*/true, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  cache.store(Kind::kDescriptor, 42, *parsed.value().root, warnings);

  auto snap = cache.load(Kind::kDescriptor, 42);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(xml::write(*snap->root), xml::write(*parsed.value().root));
  EXPECT_EQ(snap->warnings, warnings);
}

TEST(Snapshots, KindsAndKeysDoNotCollide) {
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  Options options{true, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  cache.store(Kind::kDescriptor, 7, *parsed.value().root, {});
  EXPECT_FALSE(cache.load(Kind::kModel, 7).has_value());
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 8).has_value());
}

TEST(Snapshots, CorruptAndTruncatedFilesAreMisses) {
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  Options options{true, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  cache.store(Kind::kDescriptor, 99, *parsed.value().root, {});
  ASSERT_TRUE(cache.load(Kind::kDescriptor, 99).has_value());

  // Locate the snapshot and clobber it in every unpleasant way.
  fs::path snap_path;
  for (const auto& e : fs::directory_iterator(options.directory)) {
    if (e.path().extension() == ".snap") snap_path = e.path();
  }
  ASSERT_FALSE(snap_path.empty());
  std::string bytes;
  {
    std::ifstream in(snap_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }

  std::ofstream(snap_path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);  // truncated
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 99).has_value());

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x5a;  // bit rot -> checksum failure
  std::ofstream(snap_path, std::ios::binary) << flipped;
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 99).has_value());

  std::ofstream(snap_path, std::ios::binary) << "not a snapshot";
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 99).has_value());

  std::ofstream(snap_path, std::ios::binary) << "";  // zero bytes
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 99).has_value());

  // A correct store overwrites the wreckage.
  cache.store(Kind::kDescriptor, 99, *parsed.value().root, {});
  EXPECT_TRUE(cache.load(Kind::kDescriptor, 99).has_value());
}

TEST(Snapshots, CorruptSnapshotIsQuarantinedOnce) {
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  Options options{true, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  cache.store(Kind::kDescriptor, 123, *parsed.value().root, {});

  fs::path snap_path;
  for (const auto& e : fs::directory_iterator(options.directory)) {
    if (e.path().extension() == ".snap") snap_path = e.path();
  }
  ASSERT_FALSE(snap_path.empty());
  std::string bytes;
  {
    std::ifstream in(snap_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // A torn write: the checksum tail never made it to disk.
  std::ofstream(snap_path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 7);

  obs::Counter& corrupt = obs::counter("cache.corrupt");
  obs::Counter& quarantined = obs::counter("cache.quarantined");
  std::uint64_t corrupt0 = corrupt.value();
  std::uint64_t quarantined0 = quarantined.value();

  // First load: a miss, counted corrupt, the wreckage moved aside.
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 123).has_value());
  EXPECT_EQ(corrupt.value(), corrupt0 + 1);
  EXPECT_EQ(quarantined.value(), quarantined0 + 1);
  EXPECT_FALSE(fs::exists(snap_path));
  fs::path aside = snap_path;
  aside += ".corrupt";
  EXPECT_TRUE(fs::exists(aside)) << "corrupt snapshot not quarantined";

  // Second load: a plain file-missing miss. The damaged bytes are never
  // re-parsed and never re-quarantined.
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 123).has_value());
  EXPECT_EQ(corrupt.value(), corrupt0 + 1);
  EXPECT_EQ(quarantined.value(), quarantined0 + 1);

  // A fresh store writes straight to the original path and hits again.
  cache.store(Kind::kDescriptor, 123, *parsed.value().root, {});
  EXPECT_TRUE(cache.load(Kind::kDescriptor, 123).has_value());
}

TEST(Snapshots, StaleSnapshotIsNotQuarantined) {
  // A snapshot with an intact checksum but the wrong identity (here: a
  // descriptor snapshot copied over a model snapshot's path) is *stale*,
  // not corrupt: a plain miss, left in place to be overwritten.
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  Options options{true, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  cache.store(Kind::kDescriptor, 55, *parsed.value().root, {});

  fs::path snap_path;
  for (const auto& e : fs::directory_iterator(options.directory)) {
    if (e.path().extension() == ".snap") snap_path = e.path();
  }
  ASSERT_FALSE(snap_path.empty());
  // Kind is the first character of the filename (see path_for).
  std::string model_name = snap_path.filename().string();
  model_name[0] = static_cast<char>(Kind::kModel);
  fs::copy_file(snap_path, snap_path.parent_path() / model_name);

  obs::Counter& stale = obs::counter("cache.stale");
  obs::Counter& quarantined = obs::counter("cache.quarantined");
  std::uint64_t stale0 = stale.value();
  std::uint64_t quarantined0 = quarantined.value();
  EXPECT_FALSE(cache.load(Kind::kModel, 55).has_value());
  EXPECT_EQ(stale.value(), stale0 + 1);
  EXPECT_EQ(quarantined.value(), quarantined0);
  EXPECT_TRUE(fs::exists(snap_path.parent_path() / model_name))
      << "stale snapshot must stay in place";
}

TEST(Snapshots, DisabledCacheNeverReadsOrWrites) {
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  Options options{/*enabled=*/false, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  EXPECT_FALSE(cache.enabled());
  cache.store(Kind::kDescriptor, 1, *parsed.value().root, {});
  EXPECT_FALSE(cache.load(Kind::kDescriptor, 1).has_value());
  EXPECT_FALSE(fs::exists(options.directory));
}

TEST(Snapshots, EnvVariableDisablesTheCache) {
  TempDir tmp;
  auto parsed = xml::parse(std::string(kCpu));
  ASSERT_TRUE(parsed.is_ok());
  ::setenv("XPDL_NO_CACHE", "1", 1);
  Options options{/*enabled=*/true, tmp.path() + "/cache"};
  SnapshotCache cache(tmp.path(), options);
  ::unsetenv("XPDL_NO_CACHE");
  EXPECT_FALSE(cache.enabled());
  cache.store(Kind::kDescriptor, 1, *parsed.value().root, {});
  EXPECT_FALSE(fs::exists(options.directory));
}

// --- cached repository scans --------------------------------------------

repository::ScanOptions cached_scan(const std::string& dir,
                                    std::size_t threads = 1) {
  repository::ScanOptions options;
  options.threads = threads;
  options.cache.enabled = true;
  options.cache.directory = dir;
  // The fixtures here are deliberately tiny; disable the size threshold
  // so every file is snapshot-eligible and hit/miss counts are exact.
  options.cache.min_source_bytes = 0;
  return options;
}

TEST(CachedScan, WarmScanHitsAndMatchesColdScan) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;
  auto options = cached_scan(cache_dir.path());

  repository::Repository cold({repo_dir.path()});
  auto cold_report = cold.scan(options);
  ASSERT_TRUE(cold_report.is_ok());
  EXPECT_EQ(cold_report->cache_hits, 0u);
  EXPECT_EQ(cold_report->cache_misses, 2u);
  EXPECT_EQ(snap_files(cache_dir.path()), 2u);

  repository::Repository warm({repo_dir.path()});
  auto warm_report = warm.scan(options);
  ASSERT_TRUE(warm_report.is_ok());
  EXPECT_EQ(warm_report->cache_hits, 2u);
  EXPECT_EQ(warm_report->cache_misses, 0u);

  // Same index, same digest, same warnings.
  EXPECT_EQ(cold.size(), warm.size());
  EXPECT_EQ(cold.warnings(), warm.warnings());
  ASSERT_TRUE(cold.content_digest_valid());
  ASSERT_TRUE(warm.content_digest_valid());
  EXPECT_EQ(cold.content_digest(), warm.content_digest());
}

TEST(CachedScan, TinySourcesBypassTheSnapshotCache) {
  // Restoring a descriptor snapshot pays a second file open plus the
  // same tree rebuild the parser pays, so below min_source_bytes the
  // scan must neither store nor load snapshots — only files above the
  // threshold use the cache (EXPERIMENTS.md E16 measures the crossover).
  std::string big(kCpu);
  big += "<!-- " + std::string(1600, 'x') + " -->\n";
  TempDir repo_dir;
  repo_dir.write("tiny.xpdl", kSystem);  // well under 1 KiB
  repo_dir.write("big.xpdl", big);       // well over
  TempDir cache_dir;
  repository::ScanOptions options = cached_scan(cache_dir.path());
  options.cache.min_source_bytes = 1024;

  repository::Repository cold({repo_dir.path()});
  auto cold_report = cold.scan(options);
  ASSERT_TRUE(cold_report.is_ok());
  EXPECT_EQ(cold_report->cache_hits, 0u);
  EXPECT_EQ(cold_report->cache_misses, 2u);
  EXPECT_EQ(snap_files(cache_dir.path()), 1u);  // only big.xpdl stored

  repository::Repository warm({repo_dir.path()});
  auto warm_report = warm.scan(options);
  ASSERT_TRUE(warm_report.is_ok());
  EXPECT_EQ(warm_report->cache_hits, 1u);    // big.xpdl restored
  EXPECT_EQ(warm_report->cache_misses, 1u);  // tiny.xpdl re-parsed
  EXPECT_EQ(snap_files(cache_dir.path()), 1u);
  EXPECT_EQ(cold.size(), warm.size());
  EXPECT_EQ(cold.warnings(), warm.warnings());
  ASSERT_TRUE(cold.content_digest_valid());
  EXPECT_EQ(cold.content_digest(), warm.content_digest());
}

TEST(CachedScan, WarmComposeAndQueriesAreByteIdentical) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;

  auto run = [&](bool cache_enabled) {
    repository::Repository repo({repo_dir.path()});
    repository::ScanOptions options = cached_scan(cache_dir.path());
    options.cache.enabled = cache_enabled;
    auto report = repo.scan(options);
    EXPECT_TRUE(report.is_ok());
    compose::Composer composer(repo);
    auto composed = composer.compose("cached_system");
    EXPECT_TRUE(composed.is_ok()) << composed.status().to_string();
    auto model = runtime::Model::from_composed(*composed);
    EXPECT_TRUE(model.is_ok());
    auto cores = query::select(*model, "//core");
    EXPECT_TRUE(cores.is_ok());
    struct Out {
      std::string xml;
      std::vector<std::string> warnings;
      std::string runtime_blob;
      std::size_t core_matches;
    };
    return Out{xml::write(composed->root()), composed->warnings(),
               model->serialize(), cores->size()};
  };

  auto serial_uncached = run(false);   // reference: plain parse path
  auto cold_cached = run(true);        // populates descriptor+model cache
  auto warm_cached = run(true);        // served entirely from snapshots

  EXPECT_EQ(serial_uncached.xml, cold_cached.xml);
  EXPECT_EQ(serial_uncached.xml, warm_cached.xml);
  EXPECT_EQ(serial_uncached.warnings, warm_cached.warnings);
  EXPECT_EQ(serial_uncached.runtime_blob, warm_cached.runtime_blob);
  EXPECT_EQ(serial_uncached.core_matches, warm_cached.core_matches);
  EXPECT_EQ(serial_uncached.core_matches, 1u);
}

TEST(CachedScan, EditedFileInvalidatesItsSnapshot) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  TempDir cache_dir;
  auto options = cached_scan(cache_dir.path());

  repository::Repository first({repo_dir.path()});
  ASSERT_TRUE(first.scan(options).is_ok());

  // Warm hit before the edit...
  repository::Repository warm({repo_dir.path()});
  auto warm_report = warm.scan(options);
  ASSERT_TRUE(warm_report.is_ok());
  EXPECT_EQ(warm_report->cache_hits, 1u);

  // ...and a guaranteed miss after: the key embeds the content hash.
  std::string edited(kCpu);
  edited.replace(edited.find("2.0"), 3, "3.5");
  repo_dir.write("cpu.xpdl", edited);
  repository::Repository stale({repo_dir.path()});
  auto stale_report = stale.scan(options);
  ASSERT_TRUE(stale_report.is_ok());
  EXPECT_EQ(stale_report->cache_hits, 0u);
  EXPECT_EQ(stale_report->cache_misses, 1u);
  auto cpu = stale.lookup("cached_cpu");
  ASSERT_TRUE(cpu.is_ok());
  EXPECT_EQ((*cpu)->attribute_or("frequency", ""), "3.5");
}

TEST(CachedScan, CorruptSnapshotsFallBackToParsing) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;
  auto options = cached_scan(cache_dir.path());

  repository::Repository cold({repo_dir.path()});
  ASSERT_TRUE(cold.scan(options).is_ok());
  for (const auto& e : fs::directory_iterator(cache_dir.path())) {
    if (e.path().extension() == ".snap") {
      std::ofstream(e.path(), std::ios::binary) << "garbage";
    }
  }

  repository::Repository recovered({repo_dir.path()});
  auto report = recovered.scan(options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->cache_hits, 0u);
  EXPECT_EQ(report->cache_misses, 2u);
  EXPECT_TRUE(recovered.contains("cached_cpu"));
  EXPECT_TRUE(recovered.contains("cached_system"));
  EXPECT_EQ(cold.content_digest(), recovered.content_digest());
}

TEST(CachedScan, NoCacheBypassLeavesNoFiles) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  TempDir cache_dir;
  repository::ScanOptions options = cached_scan(cache_dir.path());
  options.cache.enabled = false;

  repository::Repository repo({repo_dir.path()});
  auto report = repo.scan(options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->cache_hits, 0u);
  EXPECT_EQ(snap_files(cache_dir.path()), 0u);
}

TEST(CachedScan, WarningsAreReplayedOnWarmHits) {
  TempDir repo_dir;
  // An undeclared-but-plausible metric attribute produces a validation
  // warning on the cold parse; a warm hit must replay it verbatim.
  repo_dir.write("cpu.xpdl",
                 "<cpu name=\"warny\" frequency=\"2.0\" "
                 "frequency_unit=\"GHz\" bogus_metric=\"7\" "
                 "bogus_metric_unit=\"W\"><core /></cpu>\n");
  TempDir cache_dir;
  auto options = cached_scan(cache_dir.path());

  repository::Repository cold({repo_dir.path()});
  ASSERT_TRUE(cold.scan(options).is_ok());
  repository::Repository warm({repo_dir.path()});
  auto warm_report = warm.scan(options);
  ASSERT_TRUE(warm_report.is_ok());
  EXPECT_EQ(warm_report->cache_hits, 1u);
  EXPECT_EQ(cold.warnings(), warm.warnings());
}

// --- parallel scan determinism ------------------------------------------

TEST(ParallelScan, SyntheticRepoIsDeterministicAcrossThreadCounts) {
  TempDir repo_dir;
  std::size_t files = xpdl::testing::write_synthetic_repo(repo_dir.dir());
  ASSERT_EQ(files, 500u);
  TempDir cache_dir;

  // Reference: serial, uncached.
  repository::Repository serial({repo_dir.path()});
  repository::ScanOptions serial_options;
  serial_options.threads = 1;
  auto serial_report = serial.scan(serial_options);
  ASSERT_TRUE(serial_report.is_ok());
  EXPECT_EQ(serial_report->files_seen, files);
  EXPECT_EQ(serial.size(), files);

  compose::Composer serial_composer(serial);
  auto serial_composed = serial_composer.compose("syn_system_3");
  ASSERT_TRUE(serial_composed.is_ok());
  std::string serial_xml = xml::write(serial_composed->root());

  for (std::size_t threads : {2u, 8u}) {
    repository::Repository parallel({repo_dir.path()});
    auto report = parallel.scan(cached_scan(cache_dir.path(), threads));
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(parallel.size(), serial.size()) << threads << " threads";
    EXPECT_EQ(parallel.warnings(), serial.warnings());
    EXPECT_EQ(parallel.content_digest(), serial.content_digest());
    EXPECT_EQ(parallel.descriptors().size(), serial.descriptors().size());

    compose::Composer composer(parallel);
    auto composed = composer.compose("syn_system_3");
    ASSERT_TRUE(composed.is_ok());
    EXPECT_EQ(xml::write(composed->root()), serial_xml);
  }
}

TEST(ParallelScan, QuarantinesAreIdenticalToSerialScan) {
  TempDir repo_dir;
  repo_dir.write("good.xpdl", kCpu);
  repo_dir.write("bad.xpdl", "<cpu name='broken'");  // unterminated
  repo_dir.write("worse.xpdl", "<banana name=\"x\" />\n");

  auto scan_with = [&](std::size_t threads) {
    repository::Repository repo({repo_dir.path()});
    repository::ScanOptions options;
    options.threads = threads;
    auto report = repo.scan(options);
    EXPECT_TRUE(report.is_ok());
    std::vector<std::string> quarantined;
    for (const auto& q : report->quarantined) {
      quarantined.push_back(q.path + ": " + q.reason.to_string());
    }
    return quarantined;
  };
  auto serial = scan_with(1);
  auto parallel = scan_with(8);
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial, parallel);
}

// --- load_file memoization ----------------------------------------------

TEST(LoadFile, RepeatedLoadsAreMemoized) {
  TempDir dir;
  dir.write("model.xpdl", kCpu);
  repository::Repository repo;
  auto first = repo.load_file(dir.path() + "/model.xpdl");
  ASSERT_TRUE(first.is_ok());
  auto second = repo.load_file(dir.path() + "/model.xpdl");
  ASSERT_TRUE(second.is_ok());
  // Same registered element, not a re-parse.
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(repo.size(), 1u);
}

TEST(LoadFile, EditedFileStillServesTheRegisteredDescriptor) {
  // Memoization is per-run by design: within one tool invocation the
  // first parse wins, matching the scan's index-once semantics.
  TempDir dir;
  dir.write("model.xpdl", kCpu);
  repository::Repository repo;
  auto first = repo.load_file(dir.path() + "/model.xpdl");
  ASSERT_TRUE(first.is_ok());
  dir.write("model.xpdl", "<cpu name=\"cached_cpu\" frequency=\"9.9\" "
                          "frequency_unit=\"GHz\"><core /></cpu>\n");
  auto second = repo.load_file(dir.path() + "/model.xpdl");
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ((*second)->attribute_or("frequency", ""), "2.0");
}

// --- composed-model cache ----------------------------------------------

TEST(ModelCache, SecondComposeIsServedFromSnapshot) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;

  repository::Repository repo({repo_dir.path()});
  ASSERT_TRUE(repo.scan(cached_scan(cache_dir.path())).is_ok());
  ASSERT_TRUE(repo.content_digest_valid());

  std::size_t before = snap_files(cache_dir.path());
  compose::Composer composer(repo);
  auto cold = composer.compose("cached_system");
  ASSERT_TRUE(cold.is_ok());
  EXPECT_EQ(snap_files(cache_dir.path()), before + 1);  // model snapshot

  auto warm = composer.compose("cached_system");
  ASSERT_TRUE(warm.is_ok());
  EXPECT_EQ(xml::write(warm->root()), xml::write(cold->root()));
  EXPECT_EQ(warm->warnings(), cold->warnings());
  // The restored model is fully indexed (id lookup works on hits).
  EXPECT_NE(warm->find_by_id("c1"), nullptr);
}

// --- byte-artifact snapshots (Kind::kRuntime) ---------------------------

TEST(BlobSnapshots, RoundTripsBytesWarningsAndStats) {
  TempDir dir;
  SnapshotCache cache("", Options{true, dir.path()});
  BlobSnapshot in;
  in.bytes = std::string("XPDLRT\0\x01\xFF" "binary payload", 23);
  in.warnings = {"warning one", "warning two"};
  in.stats = {7, 42, 1ull << 40};
  cache.store_blob(Kind::kRuntime, 0xfeedULL, in);

  auto out = cache.load_blob(Kind::kRuntime, 0xfeedULL);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->bytes, in.bytes);
  EXPECT_EQ(out->warnings, in.warnings);
  EXPECT_EQ(out->stats, in.stats);

  // Wrong key or kind is a miss, never a mis-decode.
  EXPECT_FALSE(cache.load_blob(Kind::kRuntime, 0xfeeeULL).has_value());
  EXPECT_FALSE(cache.load_blob(Kind::kModel, 0xfeedULL).has_value());
}

TEST(BlobSnapshots, CorruptBlobIsAMiss) {
  TempDir dir;
  SnapshotCache cache("", Options{true, dir.path()});
  BlobSnapshot in;
  in.bytes = std::string(4096, 'x');
  cache.store_blob(Kind::kRuntime, 5, in);

  fs::path snap;
  for (const auto& e : fs::directory_iterator(dir.path())) snap = e.path();
  ASSERT_FALSE(snap.empty());
  auto size = fs::file_size(snap);
  {  // flip one payload byte: checksum must reject the file
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put('y');
  }
  EXPECT_FALSE(cache.load_blob(Kind::kRuntime, 5).has_value());
  // The corrupt file is quarantined out of the way, so the slot is empty
  // until the next store.
  EXPECT_FALSE(fs::exists(snap));
  EXPECT_TRUE(fs::exists(snap.string() + ".corrupt"));

  cache.store_blob(Kind::kRuntime, 5, in);
  fs::resize_file(snap, size / 3);  // truncation too
  EXPECT_FALSE(cache.load_blob(Kind::kRuntime, 5).has_value());

  cache.store_blob(Kind::kRuntime, 5, in);  // store recovers
  EXPECT_TRUE(cache.load_blob(Kind::kRuntime, 5).has_value());
}

// --- the cached xpdlc artifact fast path --------------------------------

TEST(RuntimeArtifact, WarmArtifactIsByteIdenticalToCold) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;

  // Reference: no cache anywhere.
  repository::Repository plain({repo_dir.path()});
  ASSERT_TRUE(plain.scan().is_ok());
  compose::Composer plain_composer(plain);
  auto reference = plain_composer.compose_runtime("cached_system");
  ASSERT_TRUE(reference.is_ok());
  EXPECT_FALSE(reference->cache_hit);

  // Cold cached run derives the artifact and stores the blob.
  repository::Repository cold({repo_dir.path()});
  ASSERT_TRUE(cold.scan(cached_scan(cache_dir.path())).is_ok());
  compose::Composer cold_composer(cold);
  auto cold_art = cold_composer.compose_runtime("cached_system");
  ASSERT_TRUE(cold_art.is_ok());
  EXPECT_FALSE(cold_art->cache_hit);

  // Warm run serves it from the blob without composing.
  repository::Repository warm({repo_dir.path()});
  ASSERT_TRUE(warm.scan(cached_scan(cache_dir.path())).is_ok());
  compose::Composer warm_composer(warm);
  auto warm_art = warm_composer.compose_runtime("cached_system");
  ASSERT_TRUE(warm_art.is_ok());
  EXPECT_TRUE(warm_art->cache_hit);

  EXPECT_EQ(reference->bytes, cold_art->bytes);
  EXPECT_EQ(cold_art->bytes, warm_art->bytes);
  EXPECT_EQ(cold_art->warnings, warm_art->warnings);
  EXPECT_EQ(cold_art->element_count, warm_art->element_count);
  EXPECT_EQ(cold_art->id_count, warm_art->id_count);
  EXPECT_EQ(cold_art->node_count, warm_art->node_count);

  // The cached bytes are a loadable runtime model.
  auto model = runtime::Model::deserialize(warm_art->bytes);
  ASSERT_TRUE(model.is_ok());
  EXPECT_EQ(model->node_count(), warm_art->node_count);
  EXPECT_TRUE(model->find_by_id("c1").has_value());
}

TEST(RuntimeArtifact, EditedRepositoryInvalidatesTheArtifact) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;

  {
    repository::Repository repo({repo_dir.path()});
    ASSERT_TRUE(repo.scan(cached_scan(cache_dir.path())).is_ok());
    compose::Composer composer(repo);
    ASSERT_TRUE(composer.compose_runtime("cached_system").is_ok());
  }

  std::string edited(kCpu);
  auto pos = edited.find("2.0");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 3, "3.5");
  repo_dir.write("cpu.xpdl", edited);

  repository::Repository repo({repo_dir.path()});
  ASSERT_TRUE(repo.scan(cached_scan(cache_dir.path())).is_ok());
  compose::Composer composer(repo);
  auto art = composer.compose_runtime("cached_system");
  ASSERT_TRUE(art.is_ok());
  EXPECT_FALSE(art->cache_hit);  // new digest, new key
  auto model = runtime::Model::deserialize(art->bytes);
  ASSERT_TRUE(model.is_ok());
  auto cpu = model->find_by_id("c1");
  ASSERT_TRUE(cpu.has_value());
  EXPECT_EQ(cpu->attribute_or("frequency", ""), "3.5");
}

TEST(ModelCache, InjectedDescriptorDisablesModelCaching) {
  TempDir repo_dir;
  repo_dir.write("cpu.xpdl", kCpu);
  repo_dir.write("system.xpdl", kSystem);
  TempDir cache_dir;

  repository::Repository repo({repo_dir.path()});
  ASSERT_TRUE(repo.scan(cached_scan(cache_dir.path())).is_ok());
  auto injected = xml::parse("<gpu name=\"inmem\" />");
  ASSERT_TRUE(injected.is_ok());
  ASSERT_TRUE(repo.add_descriptor(std::move(injected.value().root)).is_ok());
  EXPECT_FALSE(repo.content_digest_valid());

  std::size_t before = snap_files(cache_dir.path());
  compose::Composer composer(repo);
  ASSERT_TRUE(composer.compose("cached_system").is_ok());
  // No model snapshot was written: the digest no longer describes disk.
  EXPECT_EQ(snap_files(cache_dir.path()), before);
}

}  // namespace
}  // namespace xpdl::cache
