// E1 — Reproduction of the paper's Listings 1-15.
//
// Every listing in the paper corresponds to a descriptor shipped in the
// models/ repository (cleaned up to well-formed XML; substitutions are
// documented in DESIGN.md). This suite pins each listing to its file,
// validates it against the core schema, and asserts the listing's
// distinguishing feature survives parsing and composition.
#include <gtest/gtest.h>

#include "xpdl/compose/compose.h"
#include "xpdl/model/power.h"
#include "xpdl/repository/repository.h"
#include "xpdl/schema/schema.h"
#include "xpdl/xml/xml.h"

namespace {

using xpdl::schema::Schema;

struct ListingCase {
  int listing;
  const char* file;       ///< path under models/
  const char* root_tag;
  const char* reference;  ///< name/id of the root element
};

class PaperListings : public ::testing::TestWithParam<ListingCase> {};

TEST_P(PaperListings, FileParsesAndValidates) {
  const ListingCase& c = GetParam();
  std::string path = std::string(XPDL_MODELS_DIR) + "/" + c.file;
  auto doc = xpdl::xml::parse_file(path);
  ASSERT_TRUE(doc.is_ok()) << path << ": " << doc.status().to_string();
  EXPECT_EQ(doc.value().root->tag(), c.root_tag) << "listing " << c.listing;
  auto ident = xpdl::model::identity_of(*doc.value().root);
  EXPECT_EQ(ident.reference_name(), c.reference);
  auto report = Schema::core().validate(*doc.value().root);
  EXPECT_TRUE(report.ok()) << "listing " << c.listing << ": "
                           << report.status().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllListings, PaperListings,
    ::testing::Values(
        ListingCase{1, "hardware/cpu/Intel_Xeon_E5_2630L.xpdl", "cpu",
                    "Intel_Xeon_E5_2630L"},
        ListingCase{2, "hardware/cache/ShaveL2.xpdl", "cache", "ShaveL2"},
        ListingCase{2, "hardware/memory/DDR3_16G.xpdl", "memory",
                    "DDR3_16G"},
        ListingCase{3, "hardware/interconnect/pcie3.xpdl", "interconnect",
                    "pcie3"},
        ListingCase{3, "hardware/interconnect/SPI.xpdl", "interconnect",
                    "SPI"},
        ListingCase{4, "systems/myriad_server.xpdl", "system",
                    "myriad_server"},
        ListingCase{5, "hardware/device/Movidius_MV153.xpdl", "device",
                    "Movidius_MV153"},
        ListingCase{6, "hardware/cpu/Movidius_Myriad1.xpdl", "cpu",
                    "Movidius_Myriad1"},
        ListingCase{7, "systems/liu_gpu_server.xpdl", "system",
                    "liu_gpu_server"},
        ListingCase{8, "hardware/gpu/Nvidia_Kepler.xpdl", "device",
                    "Nvidia_Kepler"},
        ListingCase{9, "hardware/gpu/Nvidia_K20c.xpdl", "device",
                    "Nvidia_K20c"},
        ListingCase{11, "systems/XScluster.xpdl", "system", "XScluster"},
        ListingCase{12, "power/power_model_Myriad1.xpdl", "power_model",
                    "power_model_Myriad1"},
        ListingCase{13, "power/power_model_E5_2630L.xpdl", "power_model",
                    "power_model_E5_2630L"}));

xpdl::repository::Repository& repo() {
  static auto* r = [] {
    auto opened = xpdl::repository::open_repository({XPDL_MODELS_DIR});
    assert(opened.is_ok());
    return opened.value().release();
  }();
  return *r;
}

TEST(Listing1, HierarchicalCacheScoping) {
  // L1 private per core, L2 shared by 2 cores, L3 shared by all — the
  // paper's canonical scoping example.
  xpdl::compose::Composer composer(repo());
  auto model = composer.compose("Intel_Xeon_E5_2630L");
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  // After composition: 4 cores, 4 L1s, 2 L2s, 1 L3.
  // Power-domain members are references, not hardware (Listing 12);
  // exclude them from the structural census.
  int cores = 0, caches = 0;
  std::vector<const xpdl::xml::Element*> stack = {&model->root()};
  while (!stack.empty()) {
    const auto* e = stack.back();
    stack.pop_back();
    if (e->tag() == "power_domain") continue;
    for (const auto& ch : e->children()) stack.push_back(ch.get());
    if (e->tag() == "core") ++cores;
    if (e->tag() == "cache") ++caches;
  }
  EXPECT_EQ(cores, 4);
  EXPECT_EQ(caches, 4 + 2 + 1);
}

TEST(Listing4, MyriadServerInterconnectEndpointsResolve) {
  xpdl::compose::Composer composer(repo());
  auto model = composer.compose("myriad_server");
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  // All four links (SPI, USB, HDMI, JTAG) composed with resolvable
  // endpoints (analysis would have failed otherwise).
  int links = 0;
  for (const char* id : {"connect1", "connect2", "connect3", "connect4"}) {
    if (model->find_by_id(id) != nullptr) ++links;
  }
  EXPECT_EQ(links, 4);
}

TEST(Listing5And6, Mv153CarriesMyriad1WithLeonAndShaves) {
  xpdl::compose::Composer composer(repo());
  auto model = composer.compose("myriad_server");
  ASSERT_TRUE(model.is_ok());
  const xpdl::xml::Element* leon =
      model->find_by_id("myriad_server.mv153board.Leon");
  ASSERT_NE(leon, nullptr);
  EXPECT_EQ(leon->attribute_or("endian", ""), "BE");
  // Eight SHAVE cores shave0..shave7.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(model->find_by_id("myriad_server.mv153board.shave" +
                                std::to_string(i)),
              nullptr)
        << i;
  }
  EXPECT_EQ(model->find_by_id("myriad_server.mv153board.shave8"), nullptr);
}

TEST(Listing6, MemoriesWithEndianAndSlices) {
  auto myriad = repo().lookup("Movidius_Myriad1");
  ASSERT_TRUE(myriad.is_ok());
  const xpdl::xml::Element* cmx = nullptr;
  for (const auto& c : (*myriad)->children()) {
    if (c->tag() == "memory" &&
        c->attribute_or("name", "") == "Movidius_CMX") {
      cmx = c.get();
    }
  }
  ASSERT_NE(cmx, nullptr);
  EXPECT_EQ(cmx->attribute("slices"), "8");
  EXPECT_EQ(cmx->attribute("endian"), "LE");
  EXPECT_EQ(cmx->attribute("type"), "CMX");
}

TEST(Listing10, FixedConfigurationOverridesInheritedGeneric) {
  // The concrete gpu1 fixes L1size/shmsize; the paper's Listing 10.
  xpdl::compose::Composer composer(repo());
  auto model = composer.compose("liu_gpu_server");
  ASSERT_TRUE(model.is_ok());
  const xpdl::xml::Element* gpu = model->find_by_id("gpu1");
  ASSERT_NE(gpu, nullptr);
  // Both params bound to 32 KB in the composed tree.
  int bound = 0;
  for (const auto& c : gpu->children()) {
    if (c->tag() != "param") continue;
    std::string_view name = c->attribute_or("name", "");
    if (name == "L1size" || name == "shmsize") {
      EXPECT_EQ(c->attribute_or("size", ""), "32") << name;
      ++bound;
    }
  }
  EXPECT_EQ(bound, 2);
}

TEST(Listing14, DivsdTableAndPlaceholders) {
  auto pm_doc = repo().lookup("power_model_E5_2630L");
  ASSERT_TRUE(pm_doc.is_ok());
  auto pm = xpdl::model::PowerModel::parse(**pm_doc);
  ASSERT_TRUE(pm.is_ok());
  const auto& isa = pm->instruction_sets.at(0);
  // Placeholders await deployment-time bootstrapping.
  EXPECT_TRUE(isa.find("fmul")->placeholder);
  EXPECT_TRUE(isa.find("fadd")->placeholder);
  // divsd ships the measured table.
  EXPECT_FALSE(isa.find("divsd")->placeholder);
  EXPECT_EQ(isa.find("divsd")->table.size(), 7u);
}

TEST(Listing15, SuiteReferencesResolve) {
  auto pm_doc = repo().lookup("power_model_E5_2630L");
  auto pm = xpdl::model::PowerModel::parse(**pm_doc);
  ASSERT_TRUE(pm.is_ok());
  const auto& suite = pm->microbenchmark_suites.at(0);
  EXPECT_EQ(suite.id, "mb_x86_base_1");
  EXPECT_EQ(suite.instruction_set, "x86_base_isa");
  EXPECT_EQ(suite.command, "mbscript.sh");
  // Listing 15's entries are present.
  EXPECT_NE(suite.find("fa1"), nullptr);
  EXPECT_NE(suite.find("mo1"), nullptr);
}

TEST(AllDescriptors, EveryIndexedFileValidatesCleanly) {
  // Sweep: every descriptor in the shipped repository is individually
  // loadable (scan would have failed otherwise) and carries a non-empty
  // reference name.
  for (const auto& info : repo().descriptors()) {
    EXPECT_FALSE(info.reference_name.empty());
    EXPECT_FALSE(info.tag.empty());
    auto found = repo().lookup(info.reference_name);
    EXPECT_TRUE(found.is_ok()) << info.reference_name;
  }
}

}  // namespace
