// Tests for the xpdl::analysis diagnostic-pass engine: registry, rule
// configuration, the semantic passes (units, constraints, inheritance,
// power, bandwidth), parallel-vs-serial determinism, baselines and the
// SARIF renderer (golden file; set XPDL_UPDATE_GOLDEN=1 to regenerate).
#include "xpdl/analysis/analysis.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "xpdl/analysis/pool.h"
#include "xpdl/analysis/sarif.h"
#include "xpdl/repository/repository.h"
#include "xpdl/util/io.h"
#include "xpdl/xml/xml.h"

namespace xpdl::analysis {
namespace {

std::vector<Finding> analyze_text(std::string_view text,
                                  Options options = {}) {
  auto doc = xml::parse(text);
  EXPECT_TRUE(doc.is_ok()) << (doc.is_ok() ? "" : doc.status().to_string());
  return Engine(std::move(options)).analyze_descriptor(*doc.value().root);
}

bool has_rule(const std::vector<Finding>& findings, std::string_view rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

const Finding* find_rule(const std::vector<Finding>& findings,
                         std::string_view rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

Report analyze_fixture_repo(Options options = {}) {
  repository::Repository repo({XPDL_ANALYSIS_REPO_DIR});
  EXPECT_TRUE(repo.scan().is_ok());
  auto report = Engine(std::move(options)).analyze_repository(repo);
  EXPECT_TRUE(report.is_ok())
      << (report.is_ok() ? "" : report.status().to_string());
  return std::move(*report);
}

TEST(Registry, BuiltInRulesAreRegisteredAndSorted) {
  const char* expected[] = {
      "bandwidth-downgrade",      "compose-error",
      "constraint-evaluation-error", "constraint-redundant",
      "constraint-unsatisfiable", "constraint-vacuous",
      "duplicate-sibling-id",     "energy-table-non-monotone",
      "extends-cycle",            "extends-diamond",
      "extends-unit-conflict",    "fsm-domain-unknown",
      "fsm-not-strongly-connected", "group-without-prefix",
      "missing-unit",             "param-range-unreachable",
      "placeholder-without-mb",   "power-sanity",
      "quarantined-file",         "unit-dimension-mismatch",
      "unknown-role",             "unreferenced-meta",
      "unresolved-type",
  };
  std::vector<const AnalysisRule*> rules = Registry::instance().rules();
  ASSERT_EQ(rules.size(), std::size(expected));
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i]->info().id, expected[i]);
    EXPECT_FALSE(rules[i]->info().summary.empty()) << expected[i];
  }
  EXPECT_NE(Registry::instance().find("missing-unit"), nullptr);
  EXPECT_EQ(Registry::instance().find("no-such-rule"), nullptr);
}

TEST(Registry, RejectsDuplicateIds) {
  class Dup : public AnalysisRule {
   public:
    [[nodiscard]] const RuleInfo& info() const noexcept override {
      static const RuleInfo info{"missing-unit", RuleScope::kDescriptor,
                                 Severity::kWarning, "dup"};
      return info;
    }
  };
  EXPECT_FALSE(
      Registry::instance().register_rule(std::make_unique<Dup>()).is_ok());
}

TEST(Severity, ParseAndPrintRoundTrip) {
  for (Severity s : {Severity::kNote, Severity::kWarning, Severity::kError}) {
    auto parsed = parse_severity(to_string(s));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_severity("fatal").is_ok());
}

TEST(RuleConfig, DisableOverridePromote) {
  RuleConfig config;
  config.disabled.insert("missing-unit");
  EXPECT_FALSE(config.enabled("missing-unit"));
  EXPECT_TRUE(config.enabled("unknown-role"));

  config.overrides.emplace("unknown-role", Severity::kError);
  EXPECT_EQ(config.effective("unknown-role", Severity::kWarning),
            Severity::kError);

  config.warnings_as_errors = true;
  EXPECT_EQ(config.effective("missing-unit", Severity::kWarning),
            Severity::kError);
  EXPECT_EQ(config.effective("group-without-prefix", Severity::kNote),
            Severity::kNote);
}

TEST(UnitDimensionMismatch, FlagsWrongAndUnknownUnits) {
  auto wrong = analyze_text(
      "<memory name=\"m\" static_power=\"4\" static_power_unit=\"KB\"/>");
  const Finding* f = find_rule(wrong, "unit-dimension-mismatch");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);

  auto unknown = analyze_text(
      "<memory name=\"m\" size=\"4\" unit=\"parsecs\"/>");
  EXPECT_TRUE(has_rule(unknown, "unit-dimension-mismatch"));

  auto ok = analyze_text(
      "<memory name=\"m\" static_power=\"4\" static_power_unit=\"W\"/>");
  EXPECT_FALSE(has_rule(ok, "unit-dimension-mismatch"));
}

TEST(PowerSanity, FlagsNegativeValues) {
  auto findings = analyze_text(R"(
    <power_model name="pm">
      <power_state_machine name="m" power_domain="pd">
        <power_states>
          <power_state name="A" power="-1" power_unit="W"/>
        </power_states>
      </power_state_machine>
      <power_domains><power_domain name="pd"/></power_domains>
    </power_model>)");
  const Finding* f = find_rule(findings, "power-sanity");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(EnergyTable, FlagsNonMonotoneTables) {
  auto bad = analyze_text(R"(
    <instructions name="isa" mb="s">
      <inst name="divsd" mb="d">
        <data frequency="2.8" frequency_unit="GHz" energy="18" energy_unit="nJ"/>
        <data frequency="3.0" frequency_unit="GHz" energy="12" energy_unit="nJ"/>
      </inst>
    </instructions>)");
  EXPECT_TRUE(has_rule(bad, "energy-table-non-monotone"));
  auto good = analyze_text(R"(
    <instructions name="isa" mb="s">
      <inst name="divsd" mb="d">
        <data frequency="2.8" frequency_unit="GHz" energy="12" energy_unit="nJ"/>
        <data frequency="3.0" frequency_unit="GHz" energy="18" energy_unit="nJ"/>
      </inst>
    </instructions>)");
  EXPECT_FALSE(has_rule(good, "energy-table-non-monotone"));
}

TEST(Constraints, UnsatisfiableIsErrorVacuousIsNote) {
  auto unsat = analyze_text(R"(
    <cpu name="c">
      <const name="total" size="64" unit="KB"/>
      <param name="a" configurable="true" type="msize" range="16, 32" unit="KB"/>
      <param name="b" configurable="true" type="msize" range="16, 32" unit="KB"/>
      <constraints><constraint expr="a + b &gt; total"/></constraints>
    </cpu>)");
  const Finding* f = find_rule(unsat, "constraint-unsatisfiable");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_FALSE(has_rule(unsat, "constraint-vacuous"));

  auto vacuous = analyze_text(R"(
    <cpu name="c">
      <param name="x" configurable="true" type="msize" range="16, 32" unit="KB"/>
      <constraints><constraint expr="x &gt; 0"/></constraints>
    </cpu>)");
  const Finding* v = find_rule(vacuous, "constraint-vacuous");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->severity, Severity::kNote);
  EXPECT_FALSE(has_rule(vacuous, "constraint-unsatisfiable"));

  // A properly restricting constraint raises neither diagnostic.
  auto restricting = analyze_text(R"(
    <cpu name="c">
      <const name="total" size="64" unit="KB"/>
      <param name="a" configurable="true" type="msize" range="16, 32, 48" unit="KB"/>
      <param name="b" configurable="true" type="msize" range="16, 32, 48" unit="KB"/>
      <constraints><constraint expr="a + b == total"/></constraints>
    </cpu>)");
  EXPECT_FALSE(has_rule(restricting, "constraint-unsatisfiable"));
  EXPECT_FALSE(has_rule(restricting, "constraint-vacuous"));

  // Constraints over unbound variables are undecidable: no finding.
  auto open = analyze_text(R"(
    <cpu name="c">
      <constraints><constraint expr="n &gt; 0"/></constraints>
    </cpu>)");
  EXPECT_FALSE(has_rule(open, "constraint-unsatisfiable"));
  EXPECT_FALSE(has_rule(open, "constraint-vacuous"));
}

TEST(Constraints, SolverDecidesSpacesBeyondTheEnumerationCap) {
  // 40^4 = 2,560,000 configurations — the seed enumerator bailed out at
  // 2^16 and stayed silent; the solver returns definite verdicts.
  std::string range = "1";
  for (int i = 2; i <= 40; ++i) range += ", " + std::to_string(i);
  std::string params;
  for (const char* name : {"a", "b", "c", "d"}) {
    params += "<param name=\"" + std::string(name) +
              "\" configurable=\"true\" type=\"integer\" range=\"" + range +
              "\"/>";
  }
  auto unsat = analyze_text(
      "<cpu name=\"c\">" + params +
      R"(<constraints><constraint expr="a + b + c + d &gt; 1000"/></constraints></cpu>)");
  const Finding* f = find_rule(unsat, "constraint-unsatisfiable");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("2560000 configuration(s)"), std::string::npos)
      << f->message;

  auto vacuous = analyze_text(
      "<cpu name=\"c\">" + params +
      R"(<constraints><constraint expr="a + b + c + d &lt; 1000"/></constraints></cpu>)");
  const Finding* v = find_rule(vacuous, "constraint-vacuous");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("2560000 configuration(s)"), std::string::npos)
      << v->message;
}

TEST(Constraints, RedundantConstraintIsReportedOnce) {
  auto report = analyze_text(R"(
    <cpu name="c">
      <param name="a" configurable="true" type="integer" range="1, 2, 3, 4"/>
      <param name="b" configurable="true" type="integer" range="1, 2, 3, 4"/>
      <constraints>
        <constraint expr="a + b &lt;= 5"/>
        <constraint expr="a + b &lt; 7"/>
      </constraints>
    </cpu>)");
  const Finding* f = find_rule(report, "constraint-redundant");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kNote);
  EXPECT_NE(f->message.find("a + b < 7"), std::string::npos) << f->message;
  // The restricting constraint itself is not redundant.
  std::size_t count = 0;
  for (const Finding& g : report) {
    if (g.rule == "constraint-redundant") ++count;
  }
  EXPECT_EQ(count, 1u);
  // Vacuous constraints are reported as vacuous, not redundant.
  auto vac = analyze_text(R"(
    <cpu name="c">
      <param name="a" configurable="true" type="integer" range="1, 2"/>
      <constraints>
        <constraint expr="a &lt;= 1"/>
        <constraint expr="a &gt; 0"/>
      </constraints>
    </cpu>)");
  EXPECT_FALSE(has_rule(vac, "constraint-redundant"));
  EXPECT_TRUE(has_rule(vac, "constraint-vacuous"));
}

TEST(Constraints, UnreachableRangeValuesAreWarned) {
  auto report = analyze_text(R"(
    <cpu name="c">
      <const name="total" size="64" unit="KB"/>
      <param name="l1" configurable="true" type="msize"
             range="16, 32, 48, 96" unit="KB"/>
      <param name="sp" configurable="true" type="msize"
             range="16, 32, 48" unit="KB"/>
      <constraints><constraint expr="l1 + sp == total"/></constraints>
    </cpu>)");
  const Finding* f = find_rule(report, "param-range-unreachable");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_NE(f->message.find("'l1'"), std::string::npos) << f->message;
  // Only l1 has an unreachable value; sp is fully reachable.
  std::size_t count = 0;
  for (const Finding& g : report) {
    if (g.rule == "param-range-unreachable") ++count;
  }
  EXPECT_EQ(count, 1u);
  // A fully-reachable scope (the Kepler pattern) stays silent.
  auto kepler = analyze_text(R"(
    <cpu name="c">
      <const name="total" size="64" unit="KB"/>
      <param name="l1" configurable="true" type="msize"
             range="16, 32, 48" unit="KB"/>
      <param name="sp" configurable="true" type="msize"
             range="16, 32, 48" unit="KB"/>
      <constraints><constraint expr="l1 + sp == total"/></constraints>
    </cpu>)");
  EXPECT_FALSE(has_rule(kepler, "param-range-unreachable"));
}

TEST(Constraints, EvaluationErrorPointsAreSurfacedNotSwallowed) {
  auto report = analyze_text(R"(
    <cpu name="c">
      <const name="total" size="64" unit="KB"/>
      <param name="d" configurable="true" type="integer" range="0, 2"/>
      <constraints><constraint expr="total / d &gt; 0"/></constraints>
    </cpu>)");
  const Finding* f = find_rule(report, "constraint-evaluation-error");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kNote);
  EXPECT_NE(f->message.find("division by zero"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("d = 0"), std::string::npos) << f->message;
  // The error point never satisfies the constraint, but d = 2 does:
  // neither unsatisfiable nor vacuous.
  EXPECT_FALSE(has_rule(report, "constraint-unsatisfiable"));
  EXPECT_FALSE(has_rule(report, "constraint-vacuous"));
}

TEST(UnknownRole, CaseInsensitiveWithHelpfulMessage) {
  for (const char* role : {"master", "Master", "WORKER", "Hybrid"}) {
    auto ok = analyze_text("<cpu name=\"c\" role=\"" + std::string(role) +
                           "\"/>");
    EXPECT_FALSE(has_rule(ok, "unknown-role")) << role;
  }
  auto bad = analyze_text("<cpu name=\"c\" role=\"overlord\"/>");
  const Finding* f = find_rule(bad, "unknown-role");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("overlord"), std::string::npos);
  EXPECT_NE(f->message.find("master"), std::string::npos);
  EXPECT_NE(f->message.find("worker"), std::string::npos);
  EXPECT_NE(f->message.find("hybrid"), std::string::npos);
}

TEST(FixtureRepo, EveryNewPassHasAFailingFixture) {
  Report report = analyze_fixture_repo();
  for (const char* rule :
       {"constraint-unsatisfiable", "constraint-vacuous",
        "constraint-redundant", "constraint-evaluation-error",
        "param-range-unreachable", "extends-cycle",
        "extends-diamond", "extends-unit-conflict", "bandwidth-downgrade",
        "power-sanity", "energy-table-non-monotone"}) {
    EXPECT_TRUE(has_rule(report.findings, rule)) << rule;
  }
  EXPECT_EQ(report.count(Severity::kError), 4u);
  // big_space.xpdl (3 params with pruned tails) + unreachable.xpdl (l1)
  // + diverror.xpdl (d = 0) on top of the three seed warnings.
  EXPECT_EQ(report.count(Severity::kWarning), 8u);
  EXPECT_GT(report.models_composed, 0u);
}

TEST(FixtureRepo, CycleMessageNamesBothModels) {
  Report report = analyze_fixture_repo();
  const Finding* f = find_rule(report.findings, "extends-cycle");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("CycleA"), std::string::npos);
  EXPECT_NE(f->message.find("CycleB"), std::string::npos);
}

TEST(FixtureRepo, ParallelAndSerialRunsAreIdentical) {
  Options serial;
  serial.threads = 1;
  Options parallel;
  parallel.threads = 8;
  Report a = analyze_fixture_repo(serial);
  Report b = analyze_fixture_repo(parallel);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].to_string(), b.findings[i].to_string()) << i;
    EXPECT_EQ(a.findings[i].severity, b.findings[i].severity) << i;
  }
  EXPECT_EQ(a.descriptors, b.descriptors);
  EXPECT_EQ(a.models_composed, b.models_composed);
}

TEST(FixtureRepo, DisablingAndPromotingRulesWorksEndToEnd) {
  Options options;
  options.rules.disabled.insert("unreferenced-meta");
  options.rules.overrides.emplace("extends-diamond", Severity::kError);
  Report report = analyze_fixture_repo(std::move(options));
  EXPECT_FALSE(has_rule(report.findings, "unreferenced-meta"));
  const Finding* f = find_rule(report.findings, "extends-diamond");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(Pool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool::parallel_for(8, kCount,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  // Degenerate shapes.
  pool::parallel_for(8, 0, [](std::size_t) { FAIL(); });
  int calls = 0;
  pool::parallel_for(1, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(Baseline, SuppressesFingerprintedFindings) {
  Report report = analyze_fixture_repo();
  std::size_t before = report.findings.size();
  ASSERT_GT(before, 0u);

  Baseline baseline = Baseline::from_findings(report.findings);

  // Round-trip through the serialized form.
  std::string path = testing::TempDir() + "xpdl_analysis_baseline.txt";
  ASSERT_TRUE(io::write_file(path, baseline.serialize()).is_ok());
  auto loaded = Baseline::load(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded->size(), baseline.size());

  EXPECT_EQ(report.apply_baseline(*loaded), before);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, before);
}

TEST(Baseline, FingerprintIgnoresDirectoryAndLine) {
  Finding a{Severity::kError, "r", "msg", SourceLocation{"/x/y/f.xpdl", 3, 1}};
  Finding b{Severity::kError, "r", "msg", SourceLocation{"/z/f.xpdl", 99, 7}};
  EXPECT_EQ(Baseline::fingerprint(a), Baseline::fingerprint(b));
  Finding c{Severity::kError, "r", "other", a.location};
  EXPECT_NE(Baseline::fingerprint(a), Baseline::fingerprint(c));
}

TEST(Sarif, MatchesGoldenFile) {
  Report report = analyze_fixture_repo();
  SarifOptions options;
  options.base_dir = XPDL_ANALYSIS_REPO_DIR;
  std::string actual = write_sarif(report, options);

  const char* update = std::getenv("XPDL_UPDATE_GOLDEN");
  if (update != nullptr && update[0] == '1') {
    ASSERT_TRUE(io::write_file(XPDL_ANALYSIS_GOLDEN_SARIF, actual).is_ok());
    GTEST_SKIP() << "golden regenerated";
  }
  auto expected = io::read_file(XPDL_ANALYSIS_GOLDEN_SARIF);
  ASSERT_TRUE(expected.is_ok()) << "run with XPDL_UPDATE_GOLDEN=1 once";
  EXPECT_EQ(actual, *expected);
}

TEST(Sarif, StructureIsWellFormed) {
  Report report = analyze_fixture_repo();
  json::Value log = to_sarif(report);
  EXPECT_EQ(log.as_object().at("version").as_string(), "2.1.0");
  const json::Array& runs = log.as_object().at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);
  const json::Object& run = runs[0].as_object();
  const json::Array& results = run.at("results").as_array();
  EXPECT_EQ(results.size(), report.findings.size());
  const json::Object& driver =
      run.at("tool").as_object().at("driver").as_object();
  const json::Array& rules = driver.at("rules").as_array();
  EXPECT_EQ(rules.size(), Registry::instance().rules().size());
  // Every result's ruleIndex points at the result's own ruleId.
  for (const json::Value& entry : results) {
    const json::Object& result = entry.as_object();
    auto idx = static_cast<std::size_t>(result.at("ruleIndex").as_number());
    ASSERT_LT(idx, rules.size());
    EXPECT_EQ(result.at("ruleId").as_string(),
              rules[idx].as_object().at("id").as_string());
  }
}

TEST(JsonReport, CarriesSummaryCounts) {
  Report report = analyze_fixture_repo();
  json::Value v = to_json(report);
  const json::Object& summary = v.as_object().at("summary").as_object();
  EXPECT_EQ(summary.at("errors").as_number(),
            static_cast<double>(report.count(Severity::kError)));
  EXPECT_EQ(v.as_object().at("findings").as_array().size(),
            report.findings.size());
}

}  // namespace
}  // namespace xpdl::analysis
