// Tests for the observability layer (xpdl::obs): metrics registry,
// histogram bucketing, span nesting / phase aggregation, and the Chrome
// trace_event JSON export (round-tripped through xpdl::json).
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/report.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/json.h"

namespace obs = xpdl::obs;
namespace json = xpdl::json;

namespace {

// Timing is process-global; every test leaves it disabled.
struct TimingGuard {
  explicit TimingGuard(bool enabled) { obs::set_timing_enabled(enabled); }
  ~TimingGuard() {
    obs::set_timing_enabled(false);
    obs::Tracer::instance().stop();
  }
};

[[maybe_unused]] const obs::PhaseStats* find_child(
    const obs::PhaseStats& node, std::string_view name) {
  for (const obs::PhaseStats& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

// ===========================================================================
// Counters

TEST(Counter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreAtomic) {
  obs::Counter& c = obs::counter("test.obs.atomic_counter");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Counter, MacroCachesRegistryEntry) {
  obs::counter("test.obs.macro_counter").reset();
  for (int i = 0; i < 3; ++i) {
    XPDL_OBS_COUNT("test.obs.macro_counter", 2);
  }
#if XPDL_OBS_ENABLED
  EXPECT_EQ(obs::counter("test.obs.macro_counter").value(), 6u);
#else
  EXPECT_EQ(obs::counter("test.obs.macro_counter").value(), 0u);
#endif
}

// ===========================================================================
// Histograms

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);
  for (std::size_t b = 0; b <= obs::Histogram::kBuckets; ++b) {
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_min(b)), b);
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_max(b)), b);
  }
}

TEST(Histogram, RecordsIntoLogBuckets) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(7), 1u);  // 100 in [64, 127]
}

TEST(Histogram, PercentileUpperBounds) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(1000);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 1u);
  // The tail sample is clamped by the exact max.
  EXPECT_EQ(h.percentile(1.0), 1000u);
  obs::Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ===========================================================================
// Registry

TEST(Registry, ReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.obs.stable");
  obs::Counter& b = obs::counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g = obs::gauge("test.obs.stable");  // same name, own namespace
  g.set(2.5);
  EXPECT_DOUBLE_EQ(obs::gauge("test.obs.stable").value(), 2.5);
}

TEST(Registry, MetricsListedSortedByName) {
  obs::counter("test.obs.zz");
  obs::counter("test.obs.aa");
  auto metrics = obs::Registry::instance().metrics();
  ASSERT_GE(metrics.size(), 2u);
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_LE(metrics[i - 1].name, metrics[i].name);
  }
}

// ===========================================================================
// Spans and phase aggregation

TEST(Span, DisabledSpanIsInactive) {
  TimingGuard guard(false);
  obs::Span span("test.obs.disabled_span");
  EXPECT_FALSE(span.active());
  span.arg("ignored", 1);  // must be a harmless no-op
}

#if XPDL_OBS_ENABLED

TEST(Span, NestingBuildsPhaseTree) {
  TimingGuard guard(true);
  obs::Tracer::instance().reset();
  {
    obs::Span outer("outer_phase");
    ASSERT_TRUE(outer.active());
    for (int i = 0; i < 3; ++i) {
      obs::Span inner("inner_phase");
    }
  }
  obs::set_timing_enabled(false);

  obs::PhaseStats root = obs::Tracer::instance().phase_tree();
  const obs::PhaseStats* outer = find_child(root, "outer_phase");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const obs::PhaseStats* inner = find_child(*outer, "inner_phase");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  // Children's inclusive time can never exceed the parent's.
  EXPECT_LE(inner->total_ns, outer->total_ns);
  // The report renders both phases.
  std::string report = obs::format_phase_tree();
  EXPECT_NE(report.find("outer_phase"), std::string::npos);
  EXPECT_NE(report.find("inner_phase"), std::string::npos);
}

TEST(Span, SpansOnDifferentThreadsNestIndependently) {
  TimingGuard guard(true);
  obs::Tracer::instance().reset();
  std::thread t1([] { obs::Span s("thread_phase_a"); });
  std::thread t2([] { obs::Span s("thread_phase_b"); });
  t1.join();
  t2.join();
  obs::set_timing_enabled(false);
  obs::PhaseStats root = obs::Tracer::instance().phase_tree();
  // Both are top-level phases: neither thread saw the other's stack.
  EXPECT_NE(find_child(root, "thread_phase_a"), nullptr);
  EXPECT_NE(find_child(root, "thread_phase_b"), nullptr);
}

TEST(Tracer, ChromeTraceJsonRoundTrip) {
  TimingGuard guard(true);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset();
  tracer.start("test-process");
  {
    obs::Span span("traced_phase");
    span.arg("model", "liu_gpu_server");
    span.arg("elements", std::uint64_t{285});
  }
  tracer.stop();

  // Serialize and re-parse through the JSON utilities.
  std::string text = json::write(tracer.to_chrome_json(), 1);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const json::Value& doc = *parsed;
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->as_array().size(), 2u);

  // Event 0 is the process_name metadata record.
  const json::Value& meta = events->as_array()[0];
  EXPECT_EQ(meta.find("ph")->as_string(), "M");
  EXPECT_EQ(meta.find("name")->as_string(), "process_name");
  EXPECT_EQ(meta.find("args")->find("name")->as_string(), "test-process");

  // The span shows up as a complete ("X") event with ts/dur in
  // microseconds and its args attached.
  const json::Value* span_event = nullptr;
  for (const json::Value& e : events->as_array()) {
    const json::Value* name = e.find("name");
    if (name != nullptr && name->as_string() == "traced_phase") {
      span_event = &e;
    }
  }
  ASSERT_NE(span_event, nullptr);
  EXPECT_EQ(span_event->find("ph")->as_string(), "X");
  EXPECT_EQ(span_event->find("cat")->as_string(), "xpdl");
  ASSERT_NE(span_event->find("ts"), nullptr);
  EXPECT_TRUE(span_event->find("ts")->is_number());
  ASSERT_NE(span_event->find("dur"), nullptr);
  EXPECT_TRUE(span_event->find("dur")->is_number());
  EXPECT_GE(span_event->find("dur")->as_number(), 0.0);
  EXPECT_TRUE(span_event->find("tid")->is_number());
  const json::Value* args = span_event->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("model")->as_string(), "liu_gpu_server");
  EXPECT_DOUBLE_EQ(args->find("elements")->as_number(), 285.0);
}

TEST(Tracer, StopEndsCollection) {
  TimingGuard guard(true);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset();
  tracer.start();
  EXPECT_TRUE(tracer.collecting());
  { obs::Span s("collected"); }
  tracer.stop();
  EXPECT_FALSE(tracer.collecting());
  std::size_t n = tracer.events().size();
  { obs::Span s("not_collected"); }
  EXPECT_EQ(tracer.events().size(), n);
}

#endif  // XPDL_OBS_ENABLED

// ===========================================================================
// JSON utilities

TEST(Json, ParseWriteRoundTrip) {
  const char* text =
      R"({"array":[1,2.5,true,null],"nested":{"k":"v"},"s":"a\"b\\c\nd"})";
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(json::write(*parsed), text);  // keys stay sorted -> exact match
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(json::parse("{").is_ok());
  EXPECT_FALSE(json::parse("[1,]").is_ok());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").is_ok());
  EXPECT_FALSE(json::parse("nul").is_ok());
  EXPECT_FALSE(json::parse("").is_ok());
}

TEST(Json, UnicodeEscapes) {
  // é is U+00E9 (two UTF-8 bytes); 😀 is the surrogate
  // pair for U+1F600 (four UTF-8 bytes).
  auto parsed = json::parse("\"\\u00e9-\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->as_string(), "\xC3\xA9-\xF0\x9F\x98\x80");
  // Raw UTF-8 passes through untouched.
  auto raw = json::parse("\"A\xC3\xA9\"");
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ(raw->as_string(), "A\xC3\xA9");
}

TEST(Json, IntegersWriteExactly) {
  json::Value v;
  v["n"] = json::Value(std::uint64_t{1234567});
  v["f"] = json::Value(2.5);
  EXPECT_EQ(json::write(v), R"({"f":2.5,"n":1234567})");
}

}  // namespace
