// Tests for the observability layer (xpdl::obs): metrics registry,
// histogram bucketing, span nesting / phase aggregation, the Chrome
// trace_event JSON export (round-tripped through xpdl::json), W3C trace
// context propagation, Prometheus text exposition, the flight recorder
// and the structured event log.
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "xpdl/obs/context.h"
#include "xpdl/obs/eventlog.h"
#include "xpdl/obs/flight.h"
#include "xpdl/obs/metrics.h"
#include "xpdl/obs/prometheus.h"
#include "xpdl/obs/report.h"
#include "xpdl/obs/trace.h"
#include "xpdl/util/io.h"
#include "xpdl/util/json.h"

namespace obs = xpdl::obs;
namespace json = xpdl::json;
namespace io = xpdl::io;

namespace {

// Timing is process-global; every test leaves it disabled.
struct TimingGuard {
  explicit TimingGuard(bool enabled) { obs::set_timing_enabled(enabled); }
  ~TimingGuard() {
    obs::set_timing_enabled(false);
    obs::Tracer::instance().stop();
  }
};

[[maybe_unused]] const obs::PhaseStats* find_child(
    const obs::PhaseStats& node, std::string_view name) {
  for (const obs::PhaseStats& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

// ===========================================================================
// Counters

TEST(Counter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreAtomic) {
  obs::Counter& c = obs::counter("test.obs.atomic_counter");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Counter, MacroCachesRegistryEntry) {
  obs::counter("test.obs.macro_counter").reset();
  for (int i = 0; i < 3; ++i) {
    XPDL_OBS_COUNT("test.obs.macro_counter", 2);
  }
#if XPDL_OBS_ENABLED
  EXPECT_EQ(obs::counter("test.obs.macro_counter").value(), 6u);
#else
  EXPECT_EQ(obs::counter("test.obs.macro_counter").value(), 0u);
#endif
}

// ===========================================================================
// Histograms

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);
  for (std::size_t b = 0; b <= obs::Histogram::kBuckets; ++b) {
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_min(b)), b);
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_max(b)), b);
  }
}

TEST(Histogram, RecordsIntoLogBuckets) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(7), 1u);  // 100 in [64, 127]
}

TEST(Histogram, PercentileUpperBounds) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(1000);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 1u);
  // The tail sample is clamped by the exact max.
  EXPECT_EQ(h.percentile(1.0), 1000u);
  obs::Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ===========================================================================
// Registry

TEST(Registry, ReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.obs.stable");
  obs::Counter& b = obs::counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g = obs::gauge("test.obs.stable");  // same name, own namespace
  g.set(2.5);
  EXPECT_DOUBLE_EQ(obs::gauge("test.obs.stable").value(), 2.5);
}

TEST(Registry, MetricsListedSortedByName) {
  obs::counter("test.obs.zz");
  obs::counter("test.obs.aa");
  auto metrics = obs::Registry::instance().metrics();
  ASSERT_GE(metrics.size(), 2u);
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_LE(metrics[i - 1].name, metrics[i].name);
  }
}

// ===========================================================================
// Spans and phase aggregation

TEST(Span, DisabledSpanIsInactive) {
  TimingGuard guard(false);
  obs::Span span("test.obs.disabled_span");
  EXPECT_FALSE(span.active());
  span.arg("ignored", 1);  // must be a harmless no-op
}

#if XPDL_OBS_ENABLED

TEST(Span, NestingBuildsPhaseTree) {
  TimingGuard guard(true);
  obs::Tracer::instance().reset();
  {
    obs::Span outer("outer_phase");
    ASSERT_TRUE(outer.active());
    for (int i = 0; i < 3; ++i) {
      obs::Span inner("inner_phase");
    }
  }
  obs::set_timing_enabled(false);

  obs::PhaseStats root = obs::Tracer::instance().phase_tree();
  const obs::PhaseStats* outer = find_child(root, "outer_phase");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const obs::PhaseStats* inner = find_child(*outer, "inner_phase");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  // Children's inclusive time can never exceed the parent's.
  EXPECT_LE(inner->total_ns, outer->total_ns);
  // The report renders both phases.
  std::string report = obs::format_phase_tree();
  EXPECT_NE(report.find("outer_phase"), std::string::npos);
  EXPECT_NE(report.find("inner_phase"), std::string::npos);
}

TEST(Span, SpansOnDifferentThreadsNestIndependently) {
  TimingGuard guard(true);
  obs::Tracer::instance().reset();
  std::thread t1([] { obs::Span s("thread_phase_a"); });
  std::thread t2([] { obs::Span s("thread_phase_b"); });
  t1.join();
  t2.join();
  obs::set_timing_enabled(false);
  obs::PhaseStats root = obs::Tracer::instance().phase_tree();
  // Both are top-level phases: neither thread saw the other's stack.
  EXPECT_NE(find_child(root, "thread_phase_a"), nullptr);
  EXPECT_NE(find_child(root, "thread_phase_b"), nullptr);
}

TEST(Tracer, ChromeTraceJsonRoundTrip) {
  TimingGuard guard(true);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset();
  tracer.start("test-process");
  {
    obs::Span span("traced_phase");
    span.arg("model", "liu_gpu_server");
    span.arg("elements", std::uint64_t{285});
  }
  tracer.stop();

  // Serialize and re-parse through the JSON utilities.
  std::string text = json::write(tracer.to_chrome_json(), 1);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const json::Value& doc = *parsed;
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->as_array().size(), 2u);

  // Event 0 is the process_name metadata record.
  const json::Value& meta = events->as_array()[0];
  EXPECT_EQ(meta.find("ph")->as_string(), "M");
  EXPECT_EQ(meta.find("name")->as_string(), "process_name");
  EXPECT_EQ(meta.find("args")->find("name")->as_string(), "test-process");

  // The span shows up as a complete ("X") event with ts/dur in
  // microseconds and its args attached.
  const json::Value* span_event = nullptr;
  for (const json::Value& e : events->as_array()) {
    const json::Value* name = e.find("name");
    if (name != nullptr && name->as_string() == "traced_phase") {
      span_event = &e;
    }
  }
  ASSERT_NE(span_event, nullptr);
  EXPECT_EQ(span_event->find("ph")->as_string(), "X");
  EXPECT_EQ(span_event->find("cat")->as_string(), "xpdl");
  ASSERT_NE(span_event->find("ts"), nullptr);
  EXPECT_TRUE(span_event->find("ts")->is_number());
  ASSERT_NE(span_event->find("dur"), nullptr);
  EXPECT_TRUE(span_event->find("dur")->is_number());
  EXPECT_GE(span_event->find("dur")->as_number(), 0.0);
  EXPECT_TRUE(span_event->find("tid")->is_number());
  const json::Value* args = span_event->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("model")->as_string(), "liu_gpu_server");
  EXPECT_DOUBLE_EQ(args->find("elements")->as_number(), 285.0);
}

TEST(Tracer, StopEndsCollection) {
  TimingGuard guard(true);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset();
  tracer.start();
  EXPECT_TRUE(tracer.collecting());
  { obs::Span s("collected"); }
  tracer.stop();
  EXPECT_FALSE(tracer.collecting());
  std::size_t n = tracer.events().size();
  { obs::Span s("not_collected"); }
  EXPECT_EQ(tracer.events().size(), n);
}

#endif  // XPDL_OBS_ENABLED

// ===========================================================================
// JSON utilities

TEST(Json, ParseWriteRoundTrip) {
  const char* text =
      R"({"array":[1,2.5,true,null],"nested":{"k":"v"},"s":"a\"b\\c\nd"})";
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(json::write(*parsed), text);  // keys stay sorted -> exact match
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(json::parse("{").is_ok());
  EXPECT_FALSE(json::parse("[1,]").is_ok());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").is_ok());
  EXPECT_FALSE(json::parse("nul").is_ok());
  EXPECT_FALSE(json::parse("").is_ok());
}

TEST(Json, UnicodeEscapes) {
  // é is U+00E9 (two UTF-8 bytes); 😀 is the surrogate
  // pair for U+1F600 (four UTF-8 bytes).
  auto parsed = json::parse("\"\\u00e9-\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->as_string(), "\xC3\xA9-\xF0\x9F\x98\x80");
  // Raw UTF-8 passes through untouched.
  auto raw = json::parse("\"A\xC3\xA9\"");
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ(raw->as_string(), "A\xC3\xA9");
}

TEST(Json, IntegersWriteExactly) {
  json::Value v;
  v["n"] = json::Value(std::uint64_t{1234567});
  v["f"] = json::Value(2.5);
  EXPECT_EQ(json::write(v), R"({"f":2.5,"n":1234567})");
}

// ===========================================================================
// W3C trace context

TEST(TraceContext, FormatParseRoundTrip) {
  obs::TraceContext ctx;
  ctx.trace_id_hi = 0x4bf92f3577b34da6ULL;
  ctx.trace_id_lo = 0xa3ce929d0e0e4736ULL;
  ctx.span_id = 0x00f067aa0ba902b7ULL;
  ctx.flags = 0x01;
  std::string header = obs::format_traceparent(ctx);
  EXPECT_EQ(header,
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");

  obs::TraceContext parsed;
  ASSERT_TRUE(obs::parse_traceparent(header, parsed));
  EXPECT_EQ(parsed.trace_id_hi, ctx.trace_id_hi);
  EXPECT_EQ(parsed.trace_id_lo, ctx.trace_id_lo);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  EXPECT_EQ(parsed.flags, 0x01);
  EXPECT_TRUE(parsed.sampled());
  EXPECT_EQ(parsed.trace_id_hex(), "4bf92f3577b34da6a3ce929d0e0e4736");
}

TEST(TraceContext, ParseRejectsMalformedHeaders) {
  obs::TraceContext out;
  out.span_id = 0xDEAD;  // must stay untouched on every failed parse
  const char* bad[] = {
      "",
      "00",
      // Upper-case hex is invalid per the W3C spec.
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
      // Version ff is forbidden.
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // All-zero trace id / span id are invalid.
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
      // Dashes in the wrong places.
      "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736x00f067aa0ba902b7-01",
      // Version 00 must be exactly 55 chars; suffixes need a dash.
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x",
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01xx",
  };
  for (const char* header : bad) {
    EXPECT_FALSE(obs::parse_traceparent(header, out)) << header;
    EXPECT_EQ(out.span_id, 0xDEADu) << header;
  }
  // A future version with a dash-separated suffix parses (per spec the
  // version-00 prefix is forward compatible).
  EXPECT_TRUE(obs::parse_traceparent(
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
      out));
  EXPECT_EQ(out.span_id, 0x00f067aa0ba902b7ULL);
}

TEST(TraceContext, FreshContextsAreValidAndDistinct) {
  obs::TraceContext a = obs::make_trace_context();
  obs::TraceContext b = obs::make_trace_context();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.trace_id_hex(), b.trace_id_hex());
  EXPECT_NE(obs::next_span_id(), obs::next_span_id());

  // Even with no span open and no remote parent, the current header is
  // well-formed so outgoing requests can always be stamped.
  obs::TraceContext current;
  EXPECT_TRUE(obs::parse_traceparent(obs::current_traceparent(), current));
}

#if XPDL_OBS_ENABLED

TEST(TraceContext, SpansAdoptRemoteParent) {
  TimingGuard guard(true);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset();
  tracer.start("adopt-test");

  obs::TraceContext remote;
  ASSERT_TRUE(obs::parse_traceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", remote));
  {
    obs::ScopedRemoteParent adopt(remote);
    EXPECT_EQ(obs::remote_parent_context().span_id, remote.span_id);
    obs::Span root("adopted_root");
    // Inside the span, the current context is the span itself, under the
    // remote trace id — exactly what a further downstream call would see.
    obs::TraceContext current = obs::current_context();
    EXPECT_EQ(current.trace_id_hi, remote.trace_id_hi);
    EXPECT_EQ(current.span_id, root.span_id());
    { obs::Span child("adopted_child"); }
  }
  tracer.stop();
  EXPECT_FALSE(obs::remote_parent_context().valid());

  const obs::TraceEvent* root_ev = nullptr;
  const obs::TraceEvent* child_ev = nullptr;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.name == "adopted_root") root_ev = &e;
    if (e.name == "adopted_child") child_ev = &e;
  }
  ASSERT_NE(root_ev, nullptr);
  ASSERT_NE(child_ev, nullptr);
  // The top-level span parents onto the remote caller's span and joins
  // its trace; the nested span parents locally but keeps the trace id.
  EXPECT_TRUE(root_ev->remote_parent);
  EXPECT_EQ(root_ev->parent_span_id, remote.span_id);
  EXPECT_EQ(root_ev->trace_id_hi, remote.trace_id_hi);
  EXPECT_EQ(root_ev->trace_id_lo, remote.trace_id_lo);
  EXPECT_FALSE(child_ev->remote_parent);
  EXPECT_EQ(child_ev->parent_span_id, root_ev->span_id);
  EXPECT_EQ(child_ev->trace_id_hi, remote.trace_id_hi);
}

#endif  // XPDL_OBS_ENABLED

// ===========================================================================
// Prometheus exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("net.server.requests"),
            "xpdl_net_server_requests");
  EXPECT_EQ(obs::prometheus_name("already_clean:name"),
            "xpdl_already_clean:name");
  EXPECT_EQ(obs::prometheus_name("weird-name#1 "), "xpdl_weird_name_1_");
}

TEST(Prometheus, GoldenExposition) {
  // Rendered from locally-constructed metrics (not the global registry)
  // so the expected text is stable no matter what other tests record.
  obs::Counter requests;
  requests.add(42);
  obs::Gauge temperature;
  temperature.set(2.5);
  obs::Gauge weird;
  weird.set(1.0);
  obs::Histogram latency;
  latency.record(0);
  latency.record(3);
  latency.record(3);
  latency.record(100);
  // The overload-protection signals (docs/robustness.md). shed_total
  // already carries the conventional counter suffix; the exporter must
  // not double it into _total_total.
  obs::Counter shed;
  shed.add(3);
  obs::Gauge inflight;
  inflight.set(2.0);
  obs::Gauge drain_us;
  drain_us.set(1250.5);

  std::vector<obs::MetricInfo> metrics;
  metrics.push_back({"demo.requests", obs::MetricInfo::Type::kCounter,
                     &requests, nullptr, nullptr});
  metrics.push_back({"demo.temperature", obs::MetricInfo::Type::kGauge,
                     nullptr, &temperature, nullptr});
  metrics.push_back({"demo.weird-name#1", obs::MetricInfo::Type::kGauge,
                     nullptr, &weird, nullptr});
  metrics.push_back({"demo.latency_us", obs::MetricInfo::Type::kHistogram,
                     nullptr, nullptr, &latency});
  metrics.push_back({"net.server.shed_total", obs::MetricInfo::Type::kCounter,
                     &shed, nullptr, nullptr});
  metrics.push_back({"net.server.inflight", obs::MetricInfo::Type::kGauge,
                     nullptr, &inflight, nullptr});
  metrics.push_back({"net.server.drain_us", obs::MetricInfo::Type::kGauge,
                     nullptr, &drain_us, nullptr});

  auto expected = io::read_file(XPDL_PROM_GOLDEN);
  ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();
  EXPECT_EQ(obs::to_prometheus_text(metrics), *expected);
}

TEST(Prometheus, EmptyHistogramStillWellFormed) {
  obs::Histogram idle;
  std::vector<obs::MetricInfo> metrics;
  metrics.push_back({"demo.idle", obs::MetricInfo::Type::kHistogram, nullptr,
                     nullptr, &idle});
  EXPECT_EQ(obs::to_prometheus_text(metrics),
            "# HELP xpdl_demo_idle xpdl metric demo.idle\n"
            "# TYPE xpdl_demo_idle histogram\n"
            "xpdl_demo_idle_bucket{le=\"+Inf\"} 0\n"
            "xpdl_demo_idle_sum 0\n"
            "xpdl_demo_idle_count 0\n");
}

// ===========================================================================
// Flight recorder

// The flight recorder is process-global and (like timing) makes Span
// constructors active; every test turns it back off on the way out.
struct FlightGuard {
  ~FlightGuard() {
    obs::FlightRecorder::instance().disable();
    obs::FlightRecorder::instance().clear();
  }
};

TEST(FlightRecorder, RecordSnapshotDumpRoundTrip) {
  FlightGuard guard;
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.enable(8);
  fr.clear();
  ASSERT_TRUE(fr.enabled());
  ASSERT_TRUE(obs::flight_enabled());

  fr.record(obs::FlightRecorder::Kind::kEvent, "alpha", 1);
  fr.record(obs::FlightRecorder::Kind::kRequest, "/v1/index", 250, 200);
  std::string long_name(80, 'x');
  fr.record(obs::FlightRecorder::Kind::kSpan, long_name, 7);

  std::vector<obs::FlightRecorder::Entry> entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_LT(entries[0].seq, entries[1].seq);  // oldest first
  EXPECT_LT(entries[1].seq, entries[2].seq);
  EXPECT_STREQ(entries[0].name, "alpha");
  EXPECT_EQ(entries[1].status, 200);
  EXPECT_EQ(std::string(entries[2].name),
            long_name.substr(0, obs::FlightRecorder::kNameBytes));

  json::Value doc = fr.to_json();
  const json::Value* arr = doc.find("entries");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->as_array().size(), 3u);

  // dump() writes the same document to disk.
  std::string path = ::testing::TempDir() + "xpdl_flight_test.json";
  ASSERT_TRUE(fr.dump(path).is_ok());
  auto text = io::read_file(path);
  ASSERT_TRUE(text.is_ok());
  auto parsed = json::parse(*text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->find("entries")->as_array().size(), 3u);
  std::remove(path.c_str());

  // The async-signal-safe dump emits one JSON object per line.
  std::string safe_path = ::testing::TempDir() + "xpdl_flight_sig.jsonl";
  int fd = ::open(safe_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  fr.dump_signal_safe(fd);
  ::close(fd);
  auto lines = io::read_file(safe_path);
  ASSERT_TRUE(lines.is_ok());
  std::size_t objects = 0;
  std::size_t start = 0;
  const std::string& body = *lines;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(start, end - start);
    if (!line.empty()) {
      auto obj = json::parse(line);
      EXPECT_TRUE(obj.is_ok()) << line;
      ++objects;
    }
    start = end + 1;
  }
  EXPECT_GE(objects, 3u);
  std::remove(safe_path.c_str());

  fr.clear();
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST(FlightRecorder, RingWrapKeepsNewest) {
  FlightGuard guard;
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.enable(8);
  fr.clear();
  std::uint64_t base = fr.recorded();
  for (int i = 0; i < 20; ++i) {
    fr.record(obs::FlightRecorder::Kind::kEvent, "wrap",
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(fr.recorded(), base + 20);
  std::vector<obs::FlightRecorder::Entry> entries = fr.snapshot();
  ASSERT_EQ(entries.size(), fr.capacity());
  // The survivors are the newest writes, still in order.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, entries[i - 1].seq + 1);
  }
  EXPECT_EQ(entries.back().value, 19u);
}

#if XPDL_OBS_ENABLED

TEST(FlightRecorder, SpansRecordEvenWithoutTiming) {
  FlightGuard guard;
  TimingGuard timing(false);  // flight alone must activate spans
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.enable(8);
  fr.clear();
  { obs::Span span("flight_only_span"); }
  std::vector<obs::FlightRecorder::Entry> entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_STREQ(entries[0].name, "flight_only_span");
  EXPECT_EQ(entries[0].kind,
            static_cast<std::uint8_t>(obs::FlightRecorder::Kind::kSpan));
}

#endif  // XPDL_OBS_ENABLED

// ===========================================================================
// Event log

TEST(EventLog, WritesSampledJsonl) {
  std::string path = ::testing::TempDir() + "xpdl_eventlog_test.jsonl";
  std::remove(path.c_str());
  obs::EventLog& log = obs::EventLog::instance();
  xpdl::Status st = log.open(path, 2);  // every 2nd record
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(log.enabled());

  for (int i = 0; i < 4; ++i) {
    obs::EventLog::Request r;
    r.method = "GET";
    r.path = "/v1/index";
    r.status = 200;
    r.bytes = static_cast<std::uint64_t>(10 + i);
    r.duration_us = 5;
    r.trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
    r.faults_injected = 1;
    log.log_request(r);
  }
  log.close();
  EXPECT_FALSE(log.enabled());

  auto text = io::read_file(path);
  ASSERT_TRUE(text.is_ok());
  std::size_t lines = 0;
  std::size_t start = 0;
  const std::string& body = *text;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      auto parsed = json::parse(line);
      ASSERT_TRUE(parsed.is_ok()) << line;
      EXPECT_EQ(parsed->find("method")->as_string(), "GET");
      EXPECT_EQ(parsed->find("path")->as_string(), "/v1/index");
      EXPECT_DOUBLE_EQ(parsed->find("status")->as_number(), 200.0);
      EXPECT_EQ(parsed->find("trace_id")->as_string(),
                "4bf92f3577b34da6a3ce929d0e0e4736");
      ASSERT_NE(parsed->find("ts_us"), nullptr);
      ASSERT_NE(parsed->find("duration_us"), nullptr);
      ASSERT_NE(parsed->find("faults_injected"), nullptr);
    }
    start = end + 1;
  }
  // 4 records at sample_every=2 -> exactly 2 lines on disk.
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
