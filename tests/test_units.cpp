// Unit tests for the xpdl::units system — symbol parsing, SI conversion,
// dimension classification and the metric/unit attribute naming rules of
// Sec. III-A.
#include "xpdl/util/units.h"

#include <gtest/gtest.h>

namespace xpdl::units {
namespace {

struct ConversionCase {
  const char* value;
  const char* unit;
  Dimension dimension;
  double expected_si;
};

class UnitConversion : public ::testing::TestWithParam<ConversionCase> {};

TEST_P(UnitConversion, ConvertsToSi) {
  const ConversionCase& c = GetParam();
  auto q = Quantity::parse(c.value, c.unit);
  ASSERT_TRUE(q.is_ok()) << c.unit << ": " << q.status().to_string();
  EXPECT_EQ(q->dimension(), c.dimension) << c.unit;
  EXPECT_DOUBLE_EQ(q->si(), c.expected_si) << c.value << " " << c.unit;
}

INSTANTIATE_TEST_SUITE_P(
    AllDimensions, UnitConversion,
    ::testing::Values(
        // size: binary vs decimal prefixes are distinct
        ConversionCase{"32", "KiB", Dimension::kSize, 32768.0},
        ConversionCase{"32", "kB", Dimension::kSize, 32000.0},
        ConversionCase{"15", "MiB", Dimension::kSize, 15.0 * 1048576},
        ConversionCase{"16", "GB", Dimension::kSize, 16e9},
        ConversionCase{"1", "TiB", Dimension::kSize, 1099511627776.0},
        ConversionCase{"8", "bit", Dimension::kSize, 1.0},
        ConversionCase{"5", "B", Dimension::kSize, 5.0},
        // frequency
        ConversionCase{"2", "GHz", Dimension::kFrequency, 2e9},
        ConversionCase{"180", "MHz", Dimension::kFrequency, 1.8e8},
        ConversionCase{"706", "MHz", Dimension::kFrequency, 7.06e8},
        ConversionCase{"1", "kHz", Dimension::kFrequency, 1e3},
        // power
        ConversionCase{"4", "W", Dimension::kPower, 4.0},
        ConversionCase{"20", "mW", Dimension::kPower, 0.02},
        ConversionCase{"1.5", "kW", Dimension::kPower, 1500.0},
        // energy (the instruction-energy scales of Listing 14)
        ConversionCase{"8", "pJ", Dimension::kEnergy, 8e-12},
        ConversionCase{"18.625", "nJ", Dimension::kEnergy, 18.625e-9},
        ConversionCase{"2", "uJ", Dimension::kEnergy, 2e-6},
        ConversionCase{"1", "Wh", Dimension::kEnergy, 3600.0},
        // time
        ConversionCase{"10", "us", Dimension::kTime, 1e-5},
        ConversionCase{"700", "ns", Dimension::kTime, 7e-7},
        ConversionCase{"1", "min", Dimension::kTime, 60.0},
        // bandwidth
        ConversionCase{"6", "GiB/s", Dimension::kBandwidth, 6.0 * 1073741824},
        ConversionCase{"56", "Gbit/s", Dimension::kBandwidth, 7e9},
        ConversionCase{"480", "Mbit/s", Dimension::kBandwidth, 6e7},
        // voltage / temperature
        ConversionCase{"900", "mV", Dimension::kVoltage, 0.9},
        ConversionCase{"300", "K", Dimension::kTemperature, 300.0}));

TEST(ParseUnit, CelsiusHasAdditiveOffset) {
  auto q = Quantity::parse("25", "C");
  ASSERT_TRUE(q.is_ok());
  EXPECT_NEAR(q->si(), 298.15, 1e-9);
}

TEST(ParseUnit, UnknownSymbolFails) {
  EXPECT_FALSE(parse_unit("parsec").is_ok());
  EXPECT_FALSE(parse_unit("XYZ").is_ok());
}

TEST(ParseUnit, CaseInsensitiveFallback) {
  // The paper's own listings mix "kB"/"KB"/"KiB"; unknown-case spellings
  // resolve case-insensitively.
  auto u = parse_unit("mhz");
  ASSERT_TRUE(u.is_ok());
  EXPECT_EQ(u->dimension, Dimension::kFrequency);
  EXPECT_DOUBLE_EQ(u->to_si_factor, 1e6);
}

TEST(ParseUnit, DimensionCheckRejectsMismatch) {
  EXPECT_TRUE(parse_unit("GHz", Dimension::kFrequency).is_ok());
  EXPECT_FALSE(parse_unit("GHz", Dimension::kPower).is_ok());
  EXPECT_FALSE(parse_unit("W", Dimension::kEnergy).is_ok());
}

TEST(Quantity, ConversionBackIntoUnits) {
  auto q = Quantity::parse("2", "GHz");
  ASSERT_TRUE(q.is_ok());
  EXPECT_DOUBLE_EQ(q->in("MHz").value(), 2000.0);
  EXPECT_DOUBLE_EQ(q->in("GHz").value(), 2.0);
  EXPECT_FALSE(q->in("W").is_ok());  // dimension mismatch
}

TEST(Quantity, RoundTripThroughEveryUnitIsIdentity) {
  // Property: from_si(to_si(x)) == x for all registered units we use.
  for (const char* sym :
       {"KiB", "MiB", "GB", "GHz", "MHz", "W", "mW", "pJ", "nJ", "uJ",
        "ns", "us", "ms", "GiB/s", "Gbit/s", "mV"}) {
    auto u = parse_unit(sym);
    ASSERT_TRUE(u.is_ok()) << sym;
    for (double v : {0.0, 1.0, 42.5, 1e-3, 1e6}) {
      EXPECT_NEAR(u->from_si(u->to_si(v)), v, 1e-9 * std::max(1.0, v))
          << sym << " " << v;
    }
  }
}

TEST(QuantityParse, RejectsBadNumbers) {
  EXPECT_FALSE(Quantity::parse("abc", "W").is_ok());
  EXPECT_FALSE(Quantity::parse("1..2", "W").is_ok());
}

TEST(QuantityToString, PicksHumanScale) {
  EXPECT_EQ(bytes(262144).to_string(), "256 KiB");
  EXPECT_EQ(hertz(2e9).to_string(), "2 GHz");
  EXPECT_EQ(joules(18.625e-9).to_string(), "18.625 nJ");
  EXPECT_EQ(seconds(1e-5).to_string(), "10 us");
  EXPECT_EQ(watts(4).to_string(), "4 W");
}

struct MetricDimCase {
  const char* metric;
  Dimension expected;
};

class MetricDimension : public ::testing::TestWithParam<MetricDimCase> {};

TEST_P(MetricDimension, ClassifiesByName) {
  EXPECT_EQ(metric_dimension(GetParam().metric), GetParam().expected)
      << GetParam().metric;
}

INSTANTIATE_TEST_SUITE_P(
    PaperMetrics, MetricDimension,
    ::testing::Values(
        MetricDimCase{"size", Dimension::kSize},
        MetricDimCase{"gmsz", Dimension::kSize},
        MetricDimCase{"L1size", Dimension::kSize},
        MetricDimCase{"frequency", Dimension::kFrequency},
        MetricDimCase{"cfrq", Dimension::kFrequency},
        MetricDimCase{"static_power", Dimension::kPower},
        MetricDimCase{"power", Dimension::kPower},
        MetricDimCase{"energy", Dimension::kEnergy},
        MetricDimCase{"energy_per_byte", Dimension::kEnergy},
        MetricDimCase{"energy_offset_per_message", Dimension::kEnergy},
        MetricDimCase{"time", Dimension::kTime},
        MetricDimCase{"time_offset_per_message", Dimension::kTime},
        MetricDimCase{"max_bandwidth", Dimension::kBandwidth},
        MetricDimCase{"quantity", Dimension::kDimensionless},
        MetricDimCase{"compute_capability", Dimension::kDimensionless}));

TEST(UnitAttributeName, SizeIsTheException) {
  // Sec. III-A: "the unit for the metric size is implicitly specified
  // as unit".
  EXPECT_EQ(unit_attribute_name("size"), "unit");
  EXPECT_EQ(unit_attribute_name("static_power"), "static_power_unit");
  EXPECT_EQ(unit_attribute_name("frequency"), "frequency_unit");
}

TEST(SiSymbols, CoverAllDimensions) {
  EXPECT_EQ(si_symbol(Dimension::kSize), "B");
  EXPECT_EQ(si_symbol(Dimension::kFrequency), "Hz");
  EXPECT_EQ(si_symbol(Dimension::kPower), "W");
  EXPECT_EQ(si_symbol(Dimension::kEnergy), "J");
  EXPECT_EQ(si_symbol(Dimension::kTime), "s");
  EXPECT_EQ(si_symbol(Dimension::kBandwidth), "B/s");
}

}  // namespace
}  // namespace xpdl::units
