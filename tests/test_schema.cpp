// Unit tests for the XPDL core schema and validator.
#include "xpdl/schema/schema.h"

#include <gtest/gtest.h>

#include "xpdl/xml/xml.h"

namespace xpdl::schema {
namespace {

const xml::Document parse_ok(std::string_view text) {
  auto doc = xml::parse(text);
  EXPECT_TRUE(doc.is_ok()) << (doc.is_ok() ? "" : doc.status().to_string());
  return std::move(doc).value();
}

ValidationReport validate(std::string_view text) {
  auto doc = parse_ok(text);
  return Schema::core().validate(*doc.root);
}

class CoreSchemaTags : public ::testing::TestWithParam<const char*> {};

TEST_P(CoreSchemaTags, EveryPaperConstructIsRegistered) {
  EXPECT_NE(Schema::core().find(GetParam()), nullptr) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllTags, CoreSchemaTags,
    ::testing::Values("system", "cluster", "node", "socket", "cpu", "core",
                      "cache", "memory", "device", "gpu", "group",
                      "interconnects", "interconnect", "channel",
                      "power_model", "power_domains", "power_domain",
                      "power_state_machine", "power_states", "power_state",
                      "transitions", "transition", "instructions", "inst",
                      "data", "microbenchmarks", "microbenchmark",
                      "software", "hostOS", "installed", "properties",
                      "property", "const", "param", "constraints",
                      "constraint", "programming_model"));

TEST(CoreSchema, UnknownTagIsRejected) {
  EXPECT_EQ(Schema::core().find("flux_capacitor"), nullptr);
  auto report = validate("<flux_capacitor/>");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.errors[0].code(), ErrorCode::kSchemaViolation);
}

TEST(Validate, ValidCpuDescriptorPasses) {
  auto report = validate(R"(
    <cpu name="X" frequency="2" frequency_unit="GHz">
      <core frequency="2" frequency_unit="GHz"/>
      <cache name="L1" size="32" unit="KiB"/>
    </cpu>)");
  EXPECT_TRUE(report.ok()) << report.status().to_string();
}

TEST(Validate, MissingRequiredAttributeIsAnError) {
  // <inst> requires name; <constraint> requires expr.
  auto r1 = validate("<instructions name=\"isa\"><inst/></instructions>");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.errors[0].message().find("name"), std::string::npos);
  auto r2 = validate("<constraints><constraint/></constraints>");
  EXPECT_FALSE(r2.ok());
}

TEST(Validate, DisallowedChildIsAnError) {
  // A socket may hold a cpu but not a cache.
  auto report = validate("<socket><cache name=\"L1\"/></socket>");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].message().find("does not allow child"),
            std::string::npos);
}

TEST(Validate, DisallowedAttributeIsAnError) {
  // <constraint> carries only expr.
  auto report = validate(
      "<constraints><constraint expr=\"1\" bogus=\"x\"/></constraints>");
  ASSERT_FALSE(report.ok());
}

TEST(Validate, UnknownUnitIsAnError) {
  auto report = validate("<cache name=\"L1\" size=\"32\" unit=\"XB\"/>");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].message().find("unknown unit"),
            std::string::npos);
}

TEST(Validate, WrongUnitDimensionIsAnError) {
  // static_power is a power metric; GHz is frequency.
  auto report = validate(
      "<memory name=\"m\" static_power=\"4\" static_power_unit=\"GHz\"/>");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].message().find("dimension"), std::string::npos);
}

TEST(Validate, MetricAcceptsNumberParamRefAndPlaceholder) {
  EXPECT_TRUE(validate("<cache name=\"c\" size=\"32\" unit=\"KB\"/>").ok());
  EXPECT_TRUE(validate("<cache name=\"c\" size=\"L1size\"/>").ok());
  EXPECT_TRUE(
      validate("<channel name=\"c\" energy_per_byte=\"?\"/>").ok());
  auto bad = validate("<cache name=\"c\" size=\"32px\"/>");
  EXPECT_FALSE(bad.ok());
}

TEST(Validate, NumericMetricWithoutUnitIsLintWarning) {
  auto report = validate("<memory name=\"m\" static_power=\"4\"/>");
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("static_power_unit"), std::string::npos);
}

TEST(Validate, BadConstraintExpressionIsAnError) {
  auto report = validate(
      "<constraints><constraint expr=\"1 +\"/></constraints>");
  ASSERT_FALSE(report.ok());
}

TEST(Validate, BadIdentifierIsAnError) {
  auto report = validate("<cpu name=\"0bad name\"/>");
  ASSERT_FALSE(report.ok());
}

TEST(Validate, PropertyAcceptsArbitraryAttributes) {
  auto report = validate(R"(
    <properties>
      <property name="ExternalPowerMeter" type="pm1" command="run.sh"
                anything_else="goes"/>
    </properties>)");
  EXPECT_TRUE(report.ok()) << report.status().to_string();
}

TEST(Validate, CollectsAllErrorsNotJustFirst) {
  auto report = validate(R"(
    <cpu name="X">
      <cache name="a" unit="XB" size="1"/>
      <cache name="b" unit="YB" size="1"/>
    </cpu>)");
  EXPECT_EQ(report.errors.size(), 2u);
  // status() summarizes the count.
  EXPECT_NE(report.status().message().find("1 more error"),
            std::string::npos);
}

TEST(Validate, GroupQuantityLiteralOrParamRef) {
  EXPECT_TRUE(validate("<group prefix=\"c\" quantity=\"4\"/>").ok());
  EXPECT_TRUE(validate("<group prefix=\"c\" quantity=\"num_SM\"/>").ok());
  EXPECT_FALSE(validate("<group prefix=\"c\" quantity=\"-2\"/>").ok());
}

TEST(ComponentTags, MatchSecIIID) {
  for (const char* t : {"cpu", "socket", "device", "gpu", "memory", "node",
                        "interconnect", "cluster", "system", "cache",
                        "core", "channel"}) {
    EXPECT_TRUE(is_component_tag(t)) << t;
  }
  EXPECT_FALSE(is_component_tag("group"));
  EXPECT_FALSE(is_component_tag("param"));
  EXPECT_FALSE(is_component_tag("power_state"));
}

TEST(SchemaXml, RoundTripsThroughItsXmlForm) {
  const Schema& core = Schema::core();
  std::string xml_text = core.to_xml();
  auto doc = xml::parse(xml_text);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  auto rebuilt = Schema::from_xml(*doc.value().root);
  ASSERT_TRUE(rebuilt.is_ok()) << rebuilt.status().to_string();
  ASSERT_EQ(rebuilt->elements().size(), core.elements().size());
  for (const ElementSpec& e : core.elements()) {
    const ElementSpec* r = rebuilt->find(e.tag);
    ASSERT_NE(r, nullptr) << e.tag;
    EXPECT_EQ(r->attributes.size(), e.attributes.size()) << e.tag;
    EXPECT_EQ(r->child_tags, e.child_tags) << e.tag;
    EXPECT_EQ(r->allow_metric_attributes, e.allow_metric_attributes);
    EXPECT_EQ(r->is_component, e.is_component);
    for (const AttributeSpec& a : e.attributes) {
      const AttributeSpec* ra = r->find_attribute(a.name);
      ASSERT_NE(ra, nullptr) << e.tag << "." << a.name;
      EXPECT_EQ(ra->type, a.type);
      EXPECT_EQ(ra->required, a.required);
    }
  }
}

TEST(SchemaXml, RejectsMalformedSchemaDocuments) {
  auto doc1 = xml::parse("<not_a_schema/>");
  EXPECT_FALSE(Schema::from_xml(*doc1.value().root).is_ok());
  auto doc2 = xml::parse(
      "<xpdl_schema><element tag=\"x\"><attribute name=\"a\" "
      "type=\"nosuch\"/></element></xpdl_schema>");
  EXPECT_FALSE(Schema::from_xml(*doc2.value().root).is_ok());
}

TEST(SchemaApi, AddElementRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.add_element({.tag = "widget"}).is_ok());
  EXPECT_FALSE(s.add_element({.tag = "widget"}).is_ok());
  EXPECT_NE(s.find("widget"), nullptr);
}

TEST(ValidateFiles, EveryShippedDescriptorIsValid) {
  // The whole models/ tree must pass schema validation; the repository
  // test covers indexing, this covers raw validity with zero errors.
  auto doc = xml::parse_file(std::string(XPDL_MODELS_DIR) +
                             "/systems/XScluster.xpdl");
  ASSERT_TRUE(doc.is_ok());
  auto report = Schema::core().validate(*doc.value().root);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
}

}  // namespace
}  // namespace xpdl::schema
