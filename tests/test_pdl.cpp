// Tests for the PDL compatibility importer (Sec. II).
#include "xpdl/pdl/pdl.h"

#include <gtest/gtest.h>

#include "xpdl/compose/compose.h"
#include "xpdl/model/ir.h"
#include "xpdl/repository/repository.h"
#include "xpdl/runtime/model.h"
#include "xpdl/schema/schema.h"

namespace xpdl::pdl {
namespace {

/// A PDL-style description of a GPU server: one Master CPU, one Worker
/// GPU, global memory, a PCIe link, and the paper's notorious
/// x86_MAX_CLOCK_FREQUENCY property.
constexpr const char* kPdlGpuServer = R"(
<Platform name="pdl_gpu_server">
  <ProcessingUnits>
    <ProcessingUnit id="pu_cpu" type="CPU">
      <ControlRelationship role="Master"/>
      <Property key="x86_MAX_CLOCK_FREQUENCY" value="2800"/>
      <Property key="NUM_CORES" value="4"/>
      <Property key="VENDOR" value="Intel"/>
    </ProcessingUnit>
    <ProcessingUnit id="pu_gpu" type="GPU" role="Worker">
      <Property key="CUDA_ARCH" value="sm_35"/>
    </ProcessingUnit>
  </ProcessingUnits>
  <MemoryRegions>
    <MemoryRegion id="mr_main" type="GLOBAL">
      <Property key="MEMORY_SIZE" value="16384"/>
    </MemoryRegion>
  </MemoryRegions>
  <Interconnects>
    <Interconnect id="ic_pcie">
      <From>pu_cpu</From>
      <To>pu_gpu</To>
    </Interconnect>
  </Interconnects>
</Platform>)";

TEST(Import, ProducesValidXpdlSystem) {
  ImportReport report;
  auto system = import_platform_text(kPdlGpuServer, &report);
  ASSERT_TRUE(system.is_ok()) << system.status().to_string();
  EXPECT_EQ((*system)->tag(), "system");
  EXPECT_EQ((*system)->attribute("id"), "pdl_gpu_server");
  auto validation = schema::Schema::core().validate(**system);
  EXPECT_TRUE(validation.ok()) << validation.status().to_string();
  EXPECT_EQ(report.processing_units, 2u);
  EXPECT_EQ(report.memory_regions, 1u);
  EXPECT_EQ(report.interconnects, 1u);
}

TEST(Import, RolesMapToHardwareStructure) {
  auto system = import_platform_text(kPdlGpuServer);
  ASSERT_TRUE(system.is_ok());
  // Master PU -> cpu in a socket with role annotation.
  const xml::Element* socket = (*system)->first_child("socket");
  ASSERT_NE(socket, nullptr);
  const xml::Element* cpu = socket->first_child("cpu");
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->attribute("id"), "pu_cpu");
  EXPECT_EQ(cpu->attribute("role"), "master");
  // Worker PU -> device.
  const xml::Element* dev = (*system)->first_child("device");
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->attribute("id"), "pu_gpu");
  EXPECT_EQ(dev->attribute("role"), "worker");
}

TEST(Import, PromotesWellKnownProperties) {
  ImportReport report;
  auto system = import_platform_text(kPdlGpuServer, &report);
  ASSERT_TRUE(system.is_ok());
  const xml::Element* cpu =
      (*system)->first_child("socket")->first_child("cpu");
  // x86_MAX_CLOCK_FREQUENCY [MHz] -> frequency attribute (the paper's
  // "should better be specified as a predefined attribute").
  EXPECT_EQ(cpu->attribute("frequency"), "2800");
  EXPECT_EQ(cpu->attribute("frequency_unit"), "MHz");
  // NUM_CORES -> core group.
  const xml::Element* group = cpu->first_child("group");
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->attribute("quantity"), "4");
  // MEMORY_SIZE -> size on the memory element.
  const xml::Element* mem = (*system)->first_child("memory");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->attribute("size"), "16384");
  EXPECT_EQ(mem->attribute("unit"), "MB");
  EXPECT_GE(report.promoted_properties, 3u);
}

TEST(Import, KeepsUnknownPropertiesAsEscapeHatch) {
  ImportReport report;
  auto system = import_platform_text(kPdlGpuServer, &report);
  ASSERT_TRUE(system.is_ok());
  const xml::Element* cpu =
      (*system)->first_child("socket")->first_child("cpu");
  const xml::Element* props = cpu->first_child("properties");
  ASSERT_NE(props, nullptr);
  bool vendor = false;
  for (const auto& p : props->children()) {
    if (p->attribute_or("name", "") == "VENDOR") {
      EXPECT_EQ(p->attribute("value"), "Intel");
      vendor = true;
    }
  }
  EXPECT_TRUE(vendor);
  EXPECT_GE(report.kept_properties, 2u);  // VENDOR + CUDA_ARCH
}

TEST(Import, InterconnectEndpointsBecomeHeadTail) {
  auto system = import_platform_text(kPdlGpuServer);
  ASSERT_TRUE(system.is_ok());
  const xml::Element* ics = (*system)->first_child("interconnects");
  ASSERT_NE(ics, nullptr);
  const xml::Element* link = ics->first_child("interconnect");
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->attribute("head"), "pu_cpu");
  EXPECT_EQ(link->attribute("tail"), "pu_gpu");
}

TEST(Import, ImportedModelComposesAndQueries) {
  // End to end: PDL text -> XPDL -> composer -> runtime Query API.
  auto system = import_platform_text(kPdlGpuServer);
  ASSERT_TRUE(system.is_ok());
  repository::Repository repo;
  compose::Composer composer(repo);
  auto composed = composer.compose(**system);
  ASSERT_TRUE(composed.is_ok()) << composed.status().to_string();
  auto model = runtime::Model::from_composed(*composed);
  ASSERT_TRUE(model.is_ok());
  EXPECT_EQ(model->count_cores(), 4u);  // from the promoted NUM_CORES
  EXPECT_EQ(model->count_devices(), 1u);
  EXPECT_TRUE(model->find_by_id("pu_gpu").has_value());
}

TEST(Import, ErrorsAndEdgeCases) {
  // Wrong root.
  EXPECT_FALSE(import_platform_text("<NotPdl/>").is_ok());
  // Unknown role.
  EXPECT_FALSE(import_platform_text(R"(
    <Platform name="p">
      <ProcessingUnit id="x" role="Emperor"/>
    </Platform>)").is_ok());
  // Missing role entirely.
  EXPECT_FALSE(import_platform_text(R"(
    <Platform name="p"><ProcessingUnit id="x"/></Platform>)").is_ok());
  // Interconnect without endpoints.
  EXPECT_FALSE(import_platform_text(R"(
    <Platform name="p"><Interconnect id="i"/></Platform>)").is_ok());
}

TEST(Import, MasterCountNotes) {
  // No master: allowed with a note (the Cell/B.E. stand-alone case).
  ImportReport no_master;
  auto ok = import_platform_text(R"(
    <Platform name="p">
      <ProcessingUnit id="w" role="Worker"/>
    </Platform>)", &no_master);
  ASSERT_TRUE(ok.is_ok());
  bool noted = false;
  for (const auto& n : no_master.notes) {
    if (n.find("no Master") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
  // Two masters: the dual-CPU-server case the paper raises.
  ImportReport dual;
  auto dual_ok = import_platform_text(R"(
    <Platform name="p">
      <ProcessingUnit id="a" role="Master"/>
      <ProcessingUnit id="b" role="Master"/>
    </Platform>)", &dual);
  ASSERT_TRUE(dual_ok.is_ok());
  noted = false;
  for (const auto& n : dual.notes) {
    if (n.find("2 Master") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(Import, HybridRoleStaysOnCpu) {
  auto system = import_platform_text(R"(
    <Platform name="p">
      <ProcessingUnit id="h" role="Hybrid" type="CellPPE"/>
    </Platform>)");
  ASSERT_TRUE(system.is_ok());
  const xml::Element* cpu =
      (*system)->first_child("socket")->first_child("cpu");
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->attribute("role"), "hybrid");
}

}  // namespace
}  // namespace xpdl::pdl
